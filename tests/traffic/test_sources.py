"""Processor attachment strategies."""

from __future__ import annotations

import pytest

from repro.core.topology import StringFigureTopology
from repro.traffic.sources import SOURCE_STRATEGIES, select_sources


@pytest.fixture
def topo():
    return StringFigureTopology(36, 4, seed=3)


class TestStrategies:
    def test_all_returns_everything(self, topo):
        assert select_sources(topo, "all") == topo.active_nodes

    def test_subset_spread(self, topo):
        picks = select_sources(topo, "subset", count=4)
        assert len(picks) == 4
        assert picks == sorted(picks)
        assert all(p in topo.active_nodes for p in picks)

    def test_random_seeded(self, topo):
        a = select_sources(topo, "random", count=4, seed=7)
        b = select_sources(topo, "random", count=4, seed=7)
        assert a == b
        c = select_sources(topo, "random", count=4, seed=8)
        assert a != c

    def test_corner_nodes_on_grid_extremes(self, topo):
        from repro.analysis.placement import GridPlacement

        picks = select_sources(topo, "corner", count=4)
        placement = GridPlacement(topo)
        assert len(picks) == 4
        positions = [placement.position(p) for p in picks]
        rows = [r for r, _c in positions]
        cols = [c for _r, c in positions]
        assert min(rows) == 0 and min(cols) == 0

    def test_count_clamped(self, topo):
        picks = select_sources(topo, "random", count=1000)
        assert len(picks) == topo.num_nodes

    def test_invalid_strategy(self, topo):
        with pytest.raises(ValueError):
            select_sources(topo, "edges")

    def test_invalid_count(self, topo):
        with pytest.raises(ValueError):
            select_sources(topo, "subset", count=0)

    @pytest.mark.parametrize("strategy", SOURCE_STRATEGIES)
    def test_respects_active_subset(self, topo, strategy):
        active = topo.active_nodes[: len(topo.active_nodes) // 2]
        picks = select_sources(topo, strategy, count=4, active=active)
        assert all(p in active for p in picks)

    def test_works_on_baselines(self):
        from repro.topologies.mesh import MeshTopology

        mesh = MeshTopology(36)
        picks = select_sources(mesh, "corner", count=4)
        assert len(picks) == 4
