"""Table III traffic patterns."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic.patterns import PATTERNS, HotspotTraffic, make_pattern


NODES = list(range(16))


class TestFactory:
    def test_all_table3_patterns_present(self):
        assert set(PATTERNS) == {
            "uniform_random",
            "tornado",
            "hotspot",
            "opposite",
            "neighbor",
            "complement",
            "partition2",
        }

    def test_unknown_pattern(self):
        with pytest.raises(ValueError):
            make_pattern("butterfly", NODES)

    def test_too_few_nodes(self):
        with pytest.raises(ValueError):
            make_pattern("tornado", [0])


class TestFormulas:
    def test_tornado_halfway(self):
        """dest = (src + nports/2) % nports."""
        pattern = make_pattern("tornado", NODES)
        rng = random.Random(0)
        for i, src in enumerate(NODES):
            assert pattern.destination(src, rng) == NODES[(i + 8) % 16]

    def test_opposite_mirror(self):
        """dest = nports - 1 - src."""
        pattern = make_pattern("opposite", NODES)
        rng = random.Random(0)
        for i, src in enumerate(NODES):
            assert pattern.destination(src, rng) == NODES[15 - i]

    def test_neighbor_successor(self):
        """dest = src + 1."""
        pattern = make_pattern("neighbor", NODES)
        rng = random.Random(0)
        for i, src in enumerate(NODES):
            assert pattern.destination(src, rng) == NODES[(i + 1) % 16]

    def test_complement_bitwise(self):
        """dest = src XOR (nports - 1)."""
        pattern = make_pattern("complement", NODES)
        rng = random.Random(0)
        for i, src in enumerate(NODES):
            assert pattern.destination(src, rng) == NODES[i ^ 15]

    def test_hotspot_single_destination(self):
        pattern = make_pattern("hotspot", NODES, hotspot=5)
        rng = random.Random(0)
        for src in NODES:
            if src != 5:
                assert pattern.destination(src, rng) == 5

    def test_hotspot_default_first_node(self):
        pattern = make_pattern("hotspot", NODES)
        assert pattern.hotspot == 0

    def test_hotspot_invalid_node(self):
        with pytest.raises(ValueError):
            HotspotTraffic(NODES, hotspot=99)

    def test_partition2_stays_in_half(self):
        pattern = make_pattern("partition2", NODES)
        rng = random.Random(0)
        for i, src in enumerate(NODES):
            for _ in range(20):
                dst = pattern.destination(src, rng)
                j = NODES.index(dst)
                assert (i < 8) == (j < 8)

    def test_uniform_random_covers_space(self):
        pattern = make_pattern("uniform_random", NODES)
        rng = random.Random(0)
        seen = {pattern.destination(0, rng) for _ in range(500)}
        assert len(seen) == 15  # everyone except the source


class TestActiveSubsets:
    """Patterns must work over non-contiguous (down-scaled) node sets."""

    SUBSET = [1, 3, 4, 7, 9, 12, 15, 16]

    @pytest.mark.parametrize("name", sorted(PATTERNS))
    def test_destinations_in_subset(self, name):
        pattern = make_pattern(name, self.SUBSET)
        rng = random.Random(1)
        for src in self.SUBSET:
            for _ in range(10):
                assert pattern.destination(src, rng) in self.SUBSET

    def test_unknown_source_rejected(self):
        pattern = make_pattern("tornado", self.SUBSET)
        with pytest.raises(ValueError):
            pattern.destination(2, random.Random(0))


@settings(max_examples=30, deadline=None)
@given(
    name=st.sampled_from(sorted(PATTERNS)),
    n=st.integers(min_value=2, max_value=64),
    seed=st.integers(min_value=0, max_value=100),
)
def test_property_destination_valid(name, n, seed):
    """Property: every pattern yields valid non-self destinations."""
    nodes = list(range(n))
    pattern = make_pattern(name, nodes)
    rng = random.Random(seed)
    for src in nodes[: min(8, n)]:
        dst = pattern.destination(src, rng)
        assert dst in nodes
        if name in ("uniform_random", "hotspot", "partition2", "opposite"):
            assert dst != src
