"""Dynamic energy model."""

from __future__ import annotations

import pytest

from repro.energy.model import (
    EnergyBreakdown,
    EnergyModel,
    radix_energy_factor,
)
from repro.network.stats import SimStats


class TestBreakdown:
    def test_totals(self):
        e = EnergyBreakdown(network_pj=1000.0, dram_pj=500.0)
        assert e.total_pj == 1500.0
        assert e.total_nj == 1.5

    def test_edp(self):
        e = EnergyBreakdown(network_pj=100.0, dram_pj=0.0)
        assert e.edp(delay_cycles=10, cycle_ns=3.2) == pytest.approx(3200.0)


class TestModel:
    def test_from_stats(self):
        stats = SimStats()
        stats.bit_hops = 1000
        stats.dram_bits = 100
        e = EnergyModel().from_stats(stats)
        assert e.network_pj == 5000.0
        assert e.dram_pj == 1200.0

    def test_packet_energy(self):
        model = EnergyModel()
        # 64B + 16B header = 640 bits; 3 hops at 5 pJ/bit/hop.
        assert model.network_energy_pj(64, 3) == 640 * 3 * 5

    def test_dram_energy(self):
        assert EnergyModel().dram_energy_pj(64) == 64 * 8 * 12

    def test_edp_from_stats(self):
        stats = SimStats()
        stats.bit_hops = 10
        edp = EnergyModel().edp(stats, delay_cycles=100)
        assert edp == pytest.approx(10 * 5 * 100 * 3.2)


class TestRadixAwareness:
    def test_reference_radix_is_unity(self):
        assert radix_energy_factor(8) == 1.0

    def test_high_radix_costs_more(self):
        assert radix_energy_factor(24) > radix_energy_factor(8) > radix_energy_factor(4)

    def test_invalid_radix(self):
        with pytest.raises(ValueError):
            radix_energy_factor(0)

    def test_radix_scaled_stats(self):
        stats = SimStats()
        stats.bit_hops = 100
        model = EnergyModel()
        flat = model.from_stats(stats)
        high = model.from_stats(stats, radix=24)
        assert high.network_pj > flat.network_pj
        assert high.dram_pj == flat.dram_pj
