"""Background node energy and EDP composition (Figure 9b machinery)."""

from __future__ import annotations

import pytest

from repro.energy.model import EnergyModel
from repro.network.config import NetworkConfig
from repro.network.stats import SimStats


class TestBackgroundEnergy:
    def test_scales_with_nodes_and_time(self):
        model = EnergyModel()
        base = model.background_pj(10, 100)
        assert model.background_pj(20, 100) == 2 * base
        assert model.background_pj(10, 200) == 2 * base

    def test_rate_from_config(self):
        cfg = NetworkConfig()
        model = EnergyModel(cfg)
        assert model.background_pj(1, 1) == cfg.node_background_pj_per_cycle

    def test_total_with_background(self):
        model = EnergyModel()
        stats = SimStats()
        stats.bit_hops = 100
        stats.dram_bits = 0
        total = model.total_with_background_pj(stats, active_nodes=4, cycles=10)
        assert total == pytest.approx(100 * 5.0 + 4 * 10 * 2000.0)

    def test_gating_saves_background(self):
        """The Figure 9b mechanism in miniature: fewer active nodes at
        equal runtime means strictly less total energy."""
        model = EnergyModel()
        stats = SimStats()
        stats.bit_hops = 1000
        full = model.total_with_background_pj(stats, 96, 5000)
        gated = model.total_with_background_pj(stats, 72, 5000)
        assert gated < full
