"""Power manager: gating plans, latencies, granularity."""

from __future__ import annotations

import pytest

from repro.core.reconfig import ReconfigurationManager
from repro.core.routing import GreediestRouting
from repro.core.topology import StringFigureTopology
from repro.energy.power_gating import PowerManager


@pytest.fixture
def manager():
    topo = StringFigureTopology(64, 4, seed=7)
    routing = GreediestRouting(topo)
    return PowerManager(ReconfigurationManager(topo, routing))


class TestGating:
    def test_gate_fraction(self, manager):
        plan = manager.gate_fraction(0.1, now_ns=0)
        assert len(plan.gated) >= 4  # ~6 of 64, allow gateability slack
        assert manager.active_fraction < 1.0

    def test_zero_fraction_noop(self, manager):
        plan = manager.gate_fraction(0.0)
        assert plan.gated == []
        assert manager.active_fraction == 1.0

    def test_invalid_fraction(self, manager):
        with pytest.raises(ValueError):
            manager.gate_fraction(1.0)
        with pytest.raises(ValueError):
            manager.gate_fraction(-0.1)

    def test_sleep_overhead_recorded(self, manager):
        plan = manager.gate_fraction(0.1, now_ns=0)
        assert plan.overhead_ns == 680.0
        assert plan.overhead_cycles >= 1

    def test_wake_restores_everything(self, manager):
        manager.gate_fraction(0.2, now_ns=0)
        plan = manager.wake_all(now_ns=200_000)
        assert manager.active_fraction == 1.0
        assert plan.overhead_ns == 5000.0
        assert manager.gated == []

    def test_network_usable_while_gated(self, manager):
        manager.gate_fraction(0.2, now_ns=0)
        assert manager.manager.validate_connectivity()


class TestGranularity:
    def test_back_to_back_rejected(self, manager):
        manager.gate_fraction(0.1, now_ns=0)
        with pytest.raises(RuntimeError):
            manager.gate_fraction(0.1, now_ns=50_000)  # < 100 us later

    def test_after_granularity_allowed(self, manager):
        manager.gate_fraction(0.1, now_ns=0)
        manager.wake_all(now_ns=150_000)  # >= 100 us later: fine

    def test_can_reconfigure_initially(self, manager):
        assert manager.can_reconfigure(0.0)
