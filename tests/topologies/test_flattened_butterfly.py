"""FB/AFB baselines."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.topologies.flattened_butterfly import (
    AdaptedFlattenedButterflyTopology,
    FlattenedButterflyTopology,
)


class TestFB:
    def test_diameter_two(self):
        """Any pair is reachable within a row move plus a column move."""
        fb = FlattenedButterflyTopology(64)
        lengths = dict(nx.all_pairs_shortest_path_length(fb.graph()))
        assert max(max(d.values()) for d in lengths.values()) <= 2

    def test_radix_grows_with_scale(self):
        """Table II: FB requires high-radix routers that scale with N."""
        assert FlattenedButterflyTopology.radix_scales_with_n is True
        r64 = FlattenedButterflyTopology(64).radix
        r256 = FlattenedButterflyTopology(256).radix
        assert r256 > r64

    def test_radix_formula(self):
        fb = FlattenedButterflyTopology(64)  # 8x8
        assert fb.radix == 7 + 7

    def test_connected(self):
        for n in (16, 64, 144):
            assert nx.is_connected(FlattenedButterflyTopology(n).graph())

    def test_prime_unsupported(self):
        with pytest.raises(ValueError):
            FlattenedButterflyTopology(61)

    def test_minimal_routing_two_hops_max(self):
        fb = FlattenedButterflyTopology(36)
        policy = fb.make_policy(adaptive=False)
        for src in range(36):
            for dst in range(36):
                if src != dst:
                    assert policy.route_length(src, dst) <= 2


class TestAFB:
    def test_lower_radix_than_fb(self):
        """AFB trades links for radix (bisection matching)."""
        fb = FlattenedButterflyTopology(256)
        afb = AdaptedFlattenedButterflyTopology(256)
        assert afb.radix < fb.radix

    def test_connected(self):
        for n in (64, 144, 256):
            assert nx.is_connected(AdaptedFlattenedButterflyTopology(n).graph())

    def test_fewer_edges_than_fb(self):
        fb = FlattenedButterflyTopology(256)
        afb = AdaptedFlattenedButterflyTopology(256)
        assert afb.graph().number_of_edges() < fb.graph().number_of_edges()

    def test_paths_still_short(self):
        afb = AdaptedFlattenedButterflyTopology(64)
        lengths = dict(nx.all_pairs_shortest_path_length(afb.graph()))
        mean = sum(
            d for row in lengths.values() for d in row.values()
        ) / (64 * 64)
        assert mean < 3.5

    def test_invalid_segment(self):
        with pytest.raises(ValueError):
            AdaptedFlattenedButterflyTopology(64, segment=1)

    def test_custom_segment_changes_radix(self):
        small = AdaptedFlattenedButterflyTopology(256, segment=2)
        large = AdaptedFlattenedButterflyTopology(256, segment=8)
        assert small.radix < large.radix
