"""Jellyfish random-regular-graph baseline."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.topologies.jellyfish import JellyfishTopology


class TestConstruction:
    def test_regularity(self):
        jf = JellyfishTopology(50, degree=4, seed=0)
        degrees = set(dict(jf.graph().degree()).values())
        assert degrees == {4}

    def test_connected(self):
        for seed in range(3):
            jf = JellyfishTopology(60, degree=4, seed=seed)
            assert nx.is_connected(jf.graph())

    def test_deterministic(self):
        a = JellyfishTopology(40, degree=4, seed=3)
        b = JellyfishTopology(40, degree=4, seed=3)
        assert set(a.graph().edges()) == set(b.graph().edges())

    def test_odd_degree_sum_rejected(self):
        with pytest.raises(ValueError):
            JellyfishTopology(9, degree=3)

    def test_degree_bounds(self):
        with pytest.raises(ValueError):
            JellyfishTopology(10, degree=1)
        with pytest.raises(ValueError):
            JellyfishTopology(10, degree=10)

    def test_radix_constant_in_n(self):
        assert JellyfishTopology(40, 4, 0).radix == 4
        assert JellyfishTopology(200, 4, 0).radix == 4


class TestRoutingState:
    def test_ksp_state_superlinear(self):
        """The Jellyfish drawback: per-router state grows with N."""
        small = JellyfishTopology(30, degree=4, seed=1).k_shortest_path_state(
            k=2, sample=8
        )
        large = JellyfishTopology(120, degree=4, seed=1).k_shortest_path_state(
            k=2, sample=8
        )
        assert large > 3 * small

    def test_routing_is_minimal(self):
        jf = JellyfishTopology(40, degree=4, seed=2)
        policy = jf.make_policy(adaptive=False)
        g = jf.graph()
        for src in range(0, 40, 5):
            lengths = nx.single_source_shortest_path_length(g, src)
            for dst in range(40):
                if src != dst:
                    assert policy.route_length(src, dst) == lengths[dst]
