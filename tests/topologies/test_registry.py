"""Topology/policy factory (Figure 8 configurations)."""

from __future__ import annotations

import pytest

from repro.core.topology import S2Topology, StringFigureTopology
from repro.network.policies import GreedyPolicy, MinimalPolicy
from repro.topologies.registry import (
    TOPOLOGY_NAMES,
    figure8_ports,
    make_policy,
    make_topology,
)


class TestPortSchedule:
    def test_figure8_ports(self):
        """4 network ports up to 128 nodes, 8 beyond (Figure 8)."""
        assert figure8_ports(16) == 4
        assert figure8_ports(128) == 4
        assert figure8_ports(256) == 8
        assert figure8_ports(1296) == 8


class TestFactory:
    def test_all_names_buildable(self):
        for name in TOPOLOGY_NAMES:
            topo = make_topology(name, 64, seed=0)
            assert topo.num_nodes == 64

    def test_sf_aliases(self):
        for alias in ("SF", "sf", "string-figure"):
            assert isinstance(make_topology(alias, 16, seed=0), StringFigureTopology)

    def test_s2_type(self):
        assert isinstance(make_topology("S2", 16, seed=0), S2Topology)

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            make_topology("torus", 16)

    def test_ports_override(self):
        topo = make_topology("SF", 64, seed=0, ports=8)
        assert topo.num_ports == 8

    def test_default_ports_follow_figure8(self):
        assert make_topology("SF", 64, seed=0).num_ports == 4
        assert make_topology("SF", 256, seed=0).num_ports == 8

    def test_kwargs_passthrough(self):
        odm = make_topology("ODM", 64, channels=3)
        assert odm.link_channels(0, 1) == 3


class TestPolicies:
    def test_sf_gets_greedy_policy(self):
        topo = make_topology("SF", 32, seed=0)
        assert isinstance(make_policy(topo), GreedyPolicy)

    def test_baselines_get_minimal_policy(self):
        for name in ("DM", "ODM", "FB", "AFB", "Jellyfish"):
            topo = make_topology(name, 64, seed=0)
            assert isinstance(make_policy(topo), MinimalPolicy)

    def test_adaptive_flag(self):
        topo = make_topology("DM", 64)
        assert make_policy(topo, adaptive=False).adaptive is False
        assert make_policy(topo, adaptive=True).adaptive is True

    def test_sf_nonadaptive(self):
        from repro.core.routing import AdaptiveGreediestRouting

        topo = make_topology("SF", 32, seed=0)
        policy = make_policy(topo, adaptive=False)
        assert not isinstance(policy.routing, AdaptiveGreediestRouting)
