"""DM/ODM mesh baselines."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.topologies.mesh import MeshTopology, OptimizedMeshTopology, mesh_dimensions


class TestDimensions:
    def test_square(self):
        assert mesh_dimensions(64) == (8, 8)
        assert mesh_dimensions(1296) == (36, 36)

    def test_rectangular(self):
        assert mesh_dimensions(128) == (8, 16)

    def test_prime_unsupported(self):
        """Figure 8 marks 17, 61, 113 as unsupported ("N") for mesh."""
        for n in (17, 61, 113):
            with pytest.raises(ValueError):
                mesh_dimensions(n)


class TestStructure:
    def test_grid_edges(self):
        mesh = MeshTopology(16)
        g = mesh.graph()
        # 4x4 grid: 2 * 4 * 3 = 24 edges.
        assert g.number_of_edges() == 24
        assert nx.is_connected(g)

    def test_radix_at_most_four(self):
        for n in (16, 64, 128):
            assert MeshTopology(n).radix <= 4

    def test_coordinates_roundtrip(self):
        mesh = MeshTopology(64)
        for node in range(64):
            r, c = mesh.coordinates_of(node)
            assert mesh.node_at(r, c) == node

    def test_not_reconfigurable(self):
        assert MeshTopology.reconfigurable is False


class TestXYRouting:
    def test_route_length_is_manhattan(self):
        mesh = MeshTopology(36)
        policy = mesh.make_policy(adaptive=False)
        for src in range(36):
            for dst in range(36):
                if src == dst:
                    continue
                sr, sc = mesh.coordinates_of(src)
                dr, dc = mesh.coordinates_of(dst)
                assert policy.route_length(src, dst) == abs(sr - dr) + abs(sc - dc)

    def test_xy_primary_moves_x_first(self):
        mesh = MeshTopology(36)
        policy = mesh.make_policy(adaptive=False)
        src = mesh.node_at(0, 0)
        dst = mesh.node_at(3, 3)
        first = policy.candidates(src, dst)[0]
        assert first == mesh.node_at(0, 1)  # X move before Y move

    def test_average_hops_analytic_close_to_measured(self):
        mesh = MeshTopology(64)
        policy = mesh.make_policy(adaptive=False)
        total = count = 0
        for src in range(64):
            for dst in range(64):
                if src != dst:
                    total += policy.route_length(src, dst)
                    count += 1
        measured = total / count
        # Analytic mean includes src==dst pairs; allow a small margin.
        assert measured == pytest.approx(
            mesh.average_hops_analytic(), rel=0.05
        )

    def test_hop_growth_with_scale(self):
        """Mesh path length grows ~sqrt(N) — the scalability failure."""
        small = MeshTopology(16).average_hops_analytic()
        large = MeshTopology(256).average_hops_analytic()
        assert large > 3 * small


class TestODM:
    def test_channels_default(self):
        odm = OptimizedMeshTopology(64)
        assert odm.link_channels(0, 1) == 2

    def test_channels_custom(self):
        odm = OptimizedMeshTopology(64, channels=4)
        assert odm.link_channels(5, 6) == 4

    def test_invalid_channels(self):
        with pytest.raises(ValueError):
            OptimizedMeshTopology(64, channels=0)

    def test_same_topology_as_dm(self):
        dm = MeshTopology(64)
        odm = OptimizedMeshTopology(64)
        assert set(dm.graph().edges()) == set(odm.graph().edges())
