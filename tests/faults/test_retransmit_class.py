"""Retransmit clones and traffic classes: inheritance and override."""

from __future__ import annotations

from repro.faults.layer import FaultLayer
from repro.network.packet import Packet
from repro.network.qos import BACKGROUND_CLASS, QoSConfig
from repro.network.simulator import NetworkSimulator
from repro.topologies.registry import make_policy, make_topology


def _sim(qos: bool = True) -> NetworkSimulator:
    topo = make_topology("SF", 16, seed=1)
    sim = NetworkSimulator(topo, make_policy(topo, adaptive=True))
    if qos:
        sim.install_qos(QoSConfig.default())
    return sim


def _capture_retransmit(layer: FaultLayer, packet: Packet) -> Packet:
    """Schedule one retransmit and return the clone the layer sends."""
    sim = layer.sim
    clones: list[Packet] = []
    original_send = sim.send

    def recording_send(p, time=None):
        clones.append(p)
        return original_send(p, time)

    sim.send = recording_send
    try:
        layer._schedule_retransmit(packet, first=0, attempts=0)
        sim.run(until=sim.now + layer.retransmit_timeout + 1)
    finally:
        sim.send = original_send
    assert len(clones) == 1
    return clones[0]


def test_clone_inherits_original_class_by_default():
    sim = _sim()
    layer = FaultLayer(sim)
    assert layer.retransmit_class is None
    packet = Packet(src=0, dst=5, tclass=1)
    clone = _capture_retransmit(layer, packet)
    assert clone.tclass == 1
    assert clone.pid != packet.pid


def test_retransmit_class_override_tags_clones_background():
    """Satellite 2: a layer constructed with the background override
    (as the QoS service does) rate-shapes retry storms below
    foreground traffic regardless of the lost packet's class."""
    sim = _sim()
    layer = FaultLayer(sim, retransmit_class=BACKGROUND_CLASS)
    packet = Packet(src=0, dst=5, tclass=0)
    clone = _capture_retransmit(layer, packet)
    assert clone.tclass == BACKGROUND_CLASS


def test_override_is_inert_without_qos_table():
    """Classless sims may still set the override; the tag rides along
    without consulting any table (carried-but-unused invariant)."""
    sim = _sim(qos=False)
    layer = FaultLayer(sim, retransmit_class=BACKGROUND_CLASS)
    packet = Packet(src=0, dst=5)
    clone = _capture_retransmit(layer, packet)
    assert clone.tclass == BACKGROUND_CLASS
    sim.run(until=sim.now + 200_000)
    assert sim.stats.in_flight == 0
