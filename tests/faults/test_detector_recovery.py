"""Detection, repair, and recovery — unit and regression tests."""

from __future__ import annotations

import pytest

from repro.core.routing import AdaptiveGreediestRouting
from repro.faults.detector import FaultDetector, GraphRepair, TableRepair
from repro.faults.injector import FaultRecord
from repro.faults.layer import FaultLayer
from repro.memory.migration import PageDirectory
from repro.network.policies import GreedyPolicy
from repro.network.simulator import NetworkSimulator
from repro.topologies.registry import make_topology


def sf_stack(n=32):
    topo = make_topology("SF", n, seed=0)
    routing = AdaptiveGreediestRouting(topo)
    policy = GreedyPolicy(routing)
    sim = NetworkSimulator(topo, policy)
    layer = FaultLayer(sim)
    return topo, routing, policy, sim, layer


class TestTableRepair:
    def test_blocks_both_endpoints(self):
        topo, routing, policy, sim, layer = sf_stack()
        u = topo.active_nodes[0]
        v = topo.neighbors(u)[0]
        repair = TableRepair(routing, policy)
        repair.route_around_link(u, v)
        assert not routing.is_direct(u, v)
        assert not routing.is_direct(v, u)

    def test_prunes_stale_two_hop_vias(self):
        """Regression: the 8<->41 commit livelock.

        After link (u, v) dies, a neighbor r of u that lists v as a
        two-hop target via u must lose that via — otherwise r keeps
        committing packets to a hop u cannot honor and the pair cycles
        forever.
        """
        topo, routing, policy, sim, layer = sf_stack()
        u = topo.active_nodes[0]
        v = topo.neighbors(u)[0]
        stale = [
            r for r, table in routing.tables.items()
            if r not in (u, v)
            and (entry := table.lookup(v)) is not None
            and entry.hop == 2
            and u in entry.vias
        ]
        assert stale, "need at least one r -- u -- v chain to test"
        repair = TableRepair(routing, policy)
        repair.route_around_link(u, v)
        for r in stale:
            entry = routing.tables[r].lookup(v)
            assert u not in entry.vias
            assert entry.vias or not entry.usable

    def test_restore_rebuilds_and_reimposes_other_failures(self):
        topo, routing, policy, sim, layer = sf_stack()
        u = topo.active_nodes[0]
        nbrs = topo.neighbors(u)
        v, w = nbrs[0], nbrs[1]
        repair = TableRepair(routing, policy)
        repair.route_around_link(u, v)
        repair.route_around_link(u, w)
        repair.restore_link(u, v)
        # (u, v) healthy again; (u, w) must still be down even though
        # the restore rebuilt u's whole neighborhood from the topology.
        assert routing.is_direct(u, v)
        assert not routing.is_direct(u, w)
        assert (min(u, w), max(u, w)) in repair.failed_links
        assert (min(u, v), max(u, v)) not in repair.failed_links

    def test_version_bump_invalidates_policy_caches(self):
        topo, routing, policy, sim, layer = sf_stack()
        u = topo.active_nodes[0]
        v = topo.neighbors(u)[0]
        before = routing.version
        TableRepair(routing, policy).route_around_link(u, v)
        assert routing.version > before


class TestGraphRepair:
    def test_link_removal_rebuilds_policy(self):
        topo = make_topology("DM", 36, seed=0)
        policy = topo.make_policy(adaptive=True)
        sim = NetworkSimulator(topo, policy)
        layer = FaultLayer(sim)
        repair = GraphRepair(sim, topo, layer)
        old_policy = sim.policy
        repair.route_around_link(0, 1)
        assert sim.policy is not old_policy
        assert repair.rebuilds == 1
        assert not topo.graph().has_edge(0, 1)
        # New policy routes 0 -> 1 the long way (via the next row/col).
        assert sim.policy.route_length(0, 1) > 1

    def test_disconnection_strands_minority_component(self):
        import networkx as nx

        topo = make_topology("DM", 36, seed=0)
        policy = topo.make_policy(adaptive=True)
        sim = NetworkSimulator(topo, policy)
        layer = FaultLayer(sim)
        repair = GraphRepair(sim, topo, layer)
        # Cut the corner node 0 off completely (it has 2 mesh links).
        graph = topo.graph()
        for w in list(graph.neighbors(0)):
            graph.remove_edge(0, w)
        repair._rebuild()
        assert not nx.is_connected(graph)
        assert 0 in repair.stranded
        assert 0 in layer.dead


class TestDetectorTimeline:
    def test_detection_lags_by_timeout(self):
        topo, routing, policy, sim, layer = sf_stack()
        repair = TableRepair(routing, policy)
        detector = FaultDetector(
            sim, layer, repair, detection_timeout=150
        )
        u = topo.active_nodes[0]
        v = topo.neighbors(u)[0]
        record = FaultRecord(kind="link_down", t_fault=0, link=(u, v))
        layer.fail_link_pair(u, v)
        detector.notice(record)
        assert routing.is_direct(u, v)  # not yet detected
        sim.run(until=149)
        assert record.t_detected is None
        sim.run(until=151)
        assert record.t_detected == 150
        assert record.t_repaired == 150
        assert not routing.is_direct(u, v)

    def test_flap_restored_while_endpoint_hung_is_absorbed(self):
        """Regression: the failure registry, not the freeze bit, is the
        detector's truth.

        A flap that physically restores while its endpoint is hung
        leaves the wire frozen (the hang owns the freeze); the
        detector must still rule the flap absorbed, or the healthy
        wire would be blocked in the tables with nothing ever
        unblocking it.
        """
        topo, routing, policy, sim, layer = sf_stack()
        u = topo.active_nodes[0]
        v = topo.neighbors(u)[0]
        repair = TableRepair(routing, policy)
        detector = FaultDetector(sim, layer, repair, detection_timeout=400)
        record = FaultRecord(kind="link_flap", t_fault=0, link=(u, v), duration=300)
        layer.fail_link_pair(u, v)
        detector.notice(record)
        neighbors = list(topo.neighbors(u))
        sim.schedule(100, lambda now: layer.hang_node(u, neighbors))
        sim.schedule(300, lambda now: (
            layer.restore_link_pair(u, v),
            detector.link_restored(record),
        ))
        sim.run(until=500)
        assert record.absorbed
        assert (min(u, v), max(u, v)) not in repair.failed_links
        assert sim.link_frozen(u, v)  # hang still owns the transmitter
        layer.resume_node(u, neighbors)
        assert not sim.link_frozen(u, v)
        assert routing.is_direct(u, v)  # never blacklisted

    def test_fast_flap_is_absorbed(self):
        topo, routing, policy, sim, layer = sf_stack()
        repair = TableRepair(routing, policy)
        detector = FaultDetector(sim, layer, repair, detection_timeout=200)
        u = topo.active_nodes[0]
        v = topo.neighbors(u)[0]
        record = FaultRecord(kind="link_flap", t_fault=0, link=(u, v), duration=50)
        layer.fail_link_pair(u, v)
        detector.notice(record)
        sim.schedule(50, lambda now: (
            layer.restore_link_pair(u, v),
            detector.link_restored(record),
        ))
        sim.run(until=300)
        assert record.absorbed
        assert detector.absorbed_flaps == 1
        assert routing.is_direct(u, v)  # never blocked


class TestPageDirectoryFaults:
    def test_drop_page_accounting_and_rulings(self):
        directory = PageDirectory()
        from repro.memory.address import AddressMapper

        mapper = AddressMapper([0, 1, 2, 3], interleave_bytes=4096)
        directory.populate(mapper, 8)
        assert directory.check_conservation()
        victim_pages = directory.resident_on(1)
        for page in victim_pages:
            directory.drop_page(page)
        assert directory.lost == victim_pages
        assert directory.check_conservation()
        ruling, target = directory.arrival_ruling(0, victim_pages[0])
        assert ruling == "lost" and target == -1
        with pytest.raises(ValueError):
            directory.drop_page(victim_pages[0])  # already gone

    def test_drop_page_refuses_in_flight(self):
        directory = PageDirectory()
        from repro.memory.address import AddressMapper

        mapper = AddressMapper([0, 1], interleave_bytes=4096)
        directory.populate(mapper, 2)
        directory.begin_move(0, 0, 1)
        with pytest.raises(RuntimeError):
            directory.drop_page(0)


class TestCrashRecoveryEndToEnd:
    def _run(self, mirrored: bool):
        from repro.workloads.faults import run_faults

        topo = make_topology("SF", 32, seed=0)
        return run_faults(
            topo, rate=0.08, schedule="crash", footprint_pages=32,
            mirrored=mirrored, warmup=200, measure=2500, seed=0,
        )

    def test_mirrored_crash_loses_nothing(self):
        result = self._run(mirrored=True)
        payload = result.payload()
        assert payload["num_faults"] == 1
        assert payload["pages_lost"] == 0
        assert payload["pages_recovered"] >= 1
        assert payload["recoveries_done"]
        assert payload["page_residency_ok"]
        assert payload["conserved"]
        # The crashed node left the topology: ring patched, tables gone.
        node = result.records[0].node
        assert not result.fault_injector.topology.is_active(node)

    def test_unmirrored_crash_loses_exactly_the_residents(self):
        result = self._run(mirrored=False)
        payload = result.payload()
        assert payload["pages_lost"] >= 1
        assert payload["pages_recovered"] == 0
        assert payload["page_conservation"]
        assert payload["page_residency_ok"]
        assert payload["conserved"]
        directory = result.directory
        node = result.records[0].node
        assert directory.resident_on(node) == []

    def test_recovery_timeline_is_ordered(self):
        result = self._run(mirrored=True)
        record = result.records[0]
        assert record.t_fault < record.t_detected
        assert record.t_detected <= record.t_repaired
        assert record.t_repaired <= record.t_recovered
        assert record.unreachable_node_cycles(result.run_end) == (
            record.t_recovered - record.t_fault
        )
