"""Unit tests for the simulator-level fault semantics (FaultLayer)."""

from __future__ import annotations

import pytest

from repro.faults.layer import FaultLayer
from repro.network.packet import Packet, PacketKind
from repro.network.simulator import NetworkSimulator
from repro.topologies.registry import make_policy, make_topology


def build_sim(n=32, design="SF", **layer_kwargs):
    topo = make_topology(design, n, seed=0)
    policy = make_policy(topo)
    sim = NetworkSimulator(topo, policy)
    layer = FaultLayer(sim, **layer_kwargs)
    return topo, sim, layer


def send_one(sim, src, dst, at=0):
    packet = Packet(src=src, dst=dst, kind=PacketKind.DATA)
    sim.send(packet, at)
    return packet


class TestLinkFailure:
    def test_mid_wire_packet_is_dropped_and_counted(self):
        # No retries: the clone would just wedge on the dead wire.
        topo, sim, layer = build_sim(max_retries=0)
        src = topo.active_nodes[0]
        nbr = topo.neighbors(src)[0]
        packet = send_one(sim, src, nbr)
        # Let the packet start transmission, then fail the wire under it.
        sim.run(until=2)
        doomed = layer.fail_link_pair(src, nbr)
        assert doomed >= 1
        sim.drain()
        assert sim.stats.dropped >= 1
        assert sim.stats.sent == sim.stats.delivered + sim.stats.dropped
        assert layer.drops["link"] == doomed
        assert packet.arrive_time is None

    def test_dropped_packet_is_retransmitted_and_delivered(self):
        topo, sim, layer = build_sim(retransmit_timeout=16)
        src = topo.active_nodes[0]
        nbr = topo.neighbors(src)[0]
        send_one(sim, src, nbr)
        sim.run(until=2)
        layer.fail_link_pair(src, nbr)
        # Repair knowledge: restore the link so the clone can route.
        sim.schedule(10, lambda now: layer.restore_link_pair(src, nbr))
        sim.drain()
        assert layer.retransmits == 1
        assert sim.stats.delivered == 1
        assert sim.stats.sent == 2  # original + clone
        assert sim.stats.sent == sim.stats.delivered + sim.stats.dropped

    def test_retry_gives_up_after_max_retries(self):
        topo, sim, layer = build_sim(retransmit_timeout=8, max_retries=2)
        src = topo.active_nodes[0]
        # Routing would re-route around one dead wire, so kill every
        # outgoing wire of the source: clones can never escape.
        send_one(sim, src, topo.neighbors(src)[0])
        sim.run(until=2)
        for w in sorted(set(topo.neighbors(src))):
            layer.fail_link_pair(src, w)
        # Clones re-enter at the source, route to some output port —
        # all frozen — so they queue; flush and count at the end.
        sim.drain()
        flushed = layer.flush_stuck()
        sim.drain()
        assert sim.stats.sent == sim.stats.delivered + sim.stats.dropped
        assert layer.retransmits <= 2
        assert flushed >= 0

    def test_frozen_link_holds_queue_until_restore(self):
        topo, sim, layer = build_sim()
        src = topo.active_nodes[0]
        nbr = topo.neighbors(src)[0]
        sim.freeze_link(src, nbr)
        packet = send_one(sim, src, nbr)
        sim.run(until=200)
        # With every path through other neighbors possible, greedy may
        # still deliver; force the direct-only case instead:
        if packet.arrive_time is None:
            assert sim.stats.delivered == 0
            sim.restore_link(src, nbr)
            sim.drain()
        assert sim.stats.delivered == 1
        assert sim.stats.dropped == 0


class TestCrashAndHang:
    def test_crash_drops_in_router_packets_and_marks_counts(self):
        topo, sim, layer = build_sim()
        victim = topo.active_nodes[5]
        neighbors = list(topo.neighbors(victim))
        # Queue a packet inside the victim: inject at the victim itself.
        send_one(sim, victim, neighbors[0])
        sim.run(until=1)  # arrival processed, packet queued on an out-port
        in_router, _mid = layer.crash_node(victim, neighbors)
        sim.drain()
        assert in_router + sim.stats.delivered >= 1
        assert sim.stats.sent == sim.stats.delivered + sim.stats.dropped
        assert victim in layer.crashed
        assert not layer.usable_source(victim)
        assert layer.usable_dest(victim)  # not *detected* dead yet

    def test_dead_destination_traffic_drops_and_is_abandoned(self):
        topo, sim, layer = build_sim()
        victim = topo.active_nodes[5]
        layer.crash_node(victim, topo.neighbors(victim))
        layer.mark_dead(victim)
        far = topo.active_nodes[-1]
        assert far != victim
        send_one(sim, far, victim)
        sim.drain()
        assert sim.stats.delivered == 0
        assert sim.stats.dropped == 1
        assert layer.drops["unreachable"] == 1
        assert layer.abandoned_unreachable == 1
        assert layer.retransmits == 0

    def test_hang_parks_holding_credit_and_resumes(self):
        topo, sim, layer = build_sim()
        victim = topo.active_nodes[5]
        neighbors = list(topo.neighbors(victim))
        layer.hang_node(victim, neighbors)
        src = neighbors[0]
        packet = send_one(sim, src, victim)
        sim.run(until=500)
        assert packet.arrive_time is None
        assert layer.parked_packets == 1
        assert sim.stats.dropped == 0
        layer.resume_node(victim, neighbors)
        sim.drain()
        assert packet.arrive_time is not None
        assert sim.stats.delivered == 1
        assert layer.park_cycle_sum > 0

    def test_resume_does_not_thaw_a_failed_wire(self):
        """Regression: freezing is shared between hangs and link faults.

        A hang freezes its node's outgoing wires; resuming it must not
        thaw a wire that a link fault killed while the node was hung —
        the failure registry, not the freeze bit, owns that state.
        """
        topo, sim, layer = build_sim()
        node = topo.active_nodes[0]
        neighbors = list(topo.neighbors(node))
        dead = neighbors[0]
        layer.fail_link_pair(node, dead)
        layer.hang_node(node, neighbors)
        layer.resume_node(node, neighbors)
        assert sim.link_frozen(node, dead)
        assert sim.link_frozen(dead, node)
        for w in neighbors[1:]:
            assert not sim.link_frozen(node, w)
        # Conversely, a flap restore while the node is hung must leave
        # its transmitter frozen (the hang still owns it) ...
        layer.hang_node(node, neighbors)
        layer.restore_link_pair(node, dead)
        assert sim.link_frozen(node, dead)
        # ... until the resume thaws it.
        layer.resume_node(node, neighbors)
        assert not sim.link_frozen(node, dead)

    def test_restore_does_not_resurrect_a_crashed_endpoint(self):
        topo, sim, layer = build_sim()
        node = topo.active_nodes[0]
        neighbors = list(topo.neighbors(node))
        w = neighbors[0]
        layer.fail_link_pair(node, w)  # the flap goes down
        layer.crash_node(w, topo.neighbors(w))  # ... then the far end dies
        layer.restore_link_pair(node, w)
        assert sim.link_frozen(node, w)
        assert sim.link_frozen(w, node)

    def test_flush_stuck_preserves_conservation(self):
        topo, sim, layer = build_sim()
        victim = topo.active_nodes[5]
        neighbors = list(topo.neighbors(victim))
        layer.hang_node(victim, neighbors)
        send_one(sim, neighbors[0], victim)
        sim.run(until=100)
        flushed = layer.flush_stuck()  # never resumed: parked flushes
        assert flushed == 1
        assert sim.stats.sent == sim.stats.delivered + sim.stats.dropped


class TestLazyFrozenChannels:
    def test_hung_router_never_satisfies_lazy_fast_path(self):
        """A frozen channel must not transmit just because its wire is
        idle.

        The lazy core decides "channel free" from per-channel
        ``free_at`` timestamps instead of pending LINK_FREE events, so
        freeze/fail must stay authoritative: a hung router's out-port
        whose wire went idle long ago still may not send until the
        hang is resumed.
        """
        topo, sim, layer = build_sim()
        victim = topo.active_nodes[5]
        neighbors = list(topo.neighbors(victim))
        dst = neighbors[0]
        # Two packets at the victim toward one neighbor: the first
        # claims the single-channel wire; the second queues behind it.
        p1 = send_one(sim, victim, dst)
        p2 = send_one(sim, victim, dst)
        sim.run(until=2)
        layer.hang_node(victim, neighbors)
        sim.run(until=400)
        port = sim._ports[victim * sim._n + dst]
        # The wire has been idle for hundreds of cycles, a packet is
        # queued, and the frozen link still never transmitted it.
        assert port.channels == 0 and port.saved_channels
        assert sim._busy_channels(port) == 0
        assert port.count >= 1
        assert p2.arrive_time is None
        assert sim.stats.dropped == 0
        layer.resume_node(victim, neighbors)
        sim.drain()
        assert p1.arrive_time is not None
        assert p2.arrive_time is not None
        assert sim.stats.sent == sim.stats.delivered


class TestWireOccupancyInvariant:
    @pytest.mark.parametrize("design,nodes,rate", [("SF", 64, 0.45)])
    def test_single_channel_wire_never_carries_two_packets(
        self, design, nodes, rate
    ):
        """Regression for the pre-existing _try_send fidelity bug.

        A credit-release cascade around a blocked cycle used to re-enter
        _try_send before the channel claim landed and overlap two
        packets on a one-channel wire.  The claim-before-release order
        makes the invariant unconditional; this instruments every send
        under the deadlock-recovery stress configuration to prove it.
        Runs the eager core so every in-flight transmission has a
        LINK_FREE heap entry to count (the lazy core elides them).
        """
        from repro.network.config import NetworkConfig
        from repro.network.simulator import _LINK_FREE
        from repro.traffic.injection import BernoulliInjector
        from repro.traffic.patterns import make_pattern

        topo = make_topology(design, nodes, seed=0)
        policy = make_policy(topo)
        # Tiny buffers + short stall timeout force deadlock recovery;
        # the emergency escalation lets the wedged run drain fully so
        # sent == delivered stays assertable.
        config = NetworkConfig(
            buffer_packets=2, deadlock_timeout_cycles=16,
            emergency_stall_threshold=16,
        )
        sim = NetworkSimulator(topo, policy, config, eager_link_events=True)
        original = sim._try_send
        violations = []

        def checked(port):
            original(port)
            on_wire = sum(
                1 for entry in sim._heap
                if entry[2] == _LINK_FREE and entry[3] is port
            )
            if on_wire > max(port.channels, port.saved_channels or 0):
                violations.append((port.u, port.v, on_wire))

        sim._try_send = checked
        injector = BernoulliInjector(
            sim, make_pattern("uniform_random", topo.active_nodes), rate,
            warmup=50, measure=300, seed=0,
        )
        injector.start()
        sim.run(until=350)
        sim.drain()
        assert not violations
        assert sim.stats.sent == sim.stats.delivered
