"""Machine-speed canary: shape, determinism, and sanity of the result."""

from __future__ import annotations

from repro.obs.canary import CANARY_OPS, run_canary


def test_result_shape_and_sanity():
    result = run_canary(repeats=1)
    assert result["ops"] == CANARY_OPS
    assert result["seconds"] > 0
    assert result["kops"] == CANARY_OPS / result["seconds"] / 1000.0


def test_best_of_repeats_is_fastest():
    result = run_canary(repeats=2)
    assert result["kops"] > 0
    # best-of semantics: more repeats can only report >= one repeat's
    # throughput on the same machine; just check it stays finite/sane.
    assert result["seconds"] < 60
