"""QuantileSketch.merge: exactness against concatenated samples.

The sketch is an exact value->count histogram, so merging two sketches
must be *indistinguishable* from having added both sample streams to a
single sketch — at every quantile, not just the exported ones.  The
property test drives that with arbitrary float streams; the example
tests pin the edge cases (empty sides, chaining, return value).
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.network.stats import QuantileSketch

_values = st.lists(
    st.floats(
        min_value=0.0, max_value=1e9,
        allow_nan=False, allow_infinity=False,
    ),
    max_size=200,
)
_quantiles = st.floats(min_value=0.0, max_value=100.0)


def _sketch_of(values) -> QuantileSketch:
    s = QuantileSketch()
    for v in values:
        s.add(v)
    return s


@given(a=_values, b=_values, q=_quantiles)
def test_merged_percentiles_equal_concatenated(a, b, q):
    merged = _sketch_of(a).merge(_sketch_of(b))
    combined = _sketch_of(a + b)
    assert merged.count == combined.count
    assert merged.counts == combined.counts
    assert merged.percentile(q) == combined.percentile(q)


@given(a=_values, b=_values, c=_values)
def test_merge_chains_and_counts(a, b, c):
    merged = _sketch_of(a).merge(_sketch_of(b)).merge(_sketch_of(c))
    assert merged.count == len(a) + len(b) + len(c)
    assert merged.counts == _sketch_of(a + b + c).counts


def test_merge_returns_self_and_leaves_other_untouched():
    a = _sketch_of([1, 2])
    b = _sketch_of([3])
    result = a.merge(b)
    assert result is a
    assert b.counts == {3: 1} and b.count == 1


def test_merge_empty_sides():
    empty = QuantileSketch()
    assert empty.merge(QuantileSketch()).count == 0
    assert _sketch_of([5]).merge(QuantileSketch()).percentile(50) == 5
    assert QuantileSketch().merge(_sketch_of([5])).percentile(50) == 5
