"""MetricsRegistry: registration, collection, exposition, timeseries."""

from __future__ import annotations

import json
import re

import pytest

from repro.network.stats import QuantileSketch
from repro.obs.registry import MetricsRegistry
from repro.obs.timeseries import TimeSeriesRecorder


class TestRegistration:
    def test_counter_and_gauge_roundtrip(self):
        reg = MetricsRegistry()
        c = reg.counter("widgets_total")
        g = reg.gauge("depth")
        c.inc()
        c.inc(4)
        g.set(7.5)
        snap = reg.snapshot()
        assert snap["counters"]["repro_widgets_total"] == 5
        assert snap["gauges"]["repro_depth"] == 7.5

    def test_namespace_prefix(self):
        reg = MetricsRegistry(namespace="custom")
        reg.counter("x_total")
        assert "custom_x_total" in reg.snapshot()["counters"]

    def test_labels_distinguish_series(self):
        reg = MetricsRegistry()
        a = reg.counter("ev_total", labels={"type": "a"})
        b = reg.counter("ev_total", labels={"type": "b"})
        a.inc(1)
        b.inc(2)
        snap = reg.snapshot()["counters"]
        assert snap['repro_ev_total{type="a"}'] == 1
        assert snap['repro_ev_total{type="b"}'] == 2

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError, match="re-registered"):
            reg.gauge("x_total")

    def test_pull_probes_resolve_at_collect_time(self):
        reg = MetricsRegistry()
        state = {"n": 0}
        reg.counter_probe("n_total", lambda: state["n"])
        assert reg.snapshot()["counters"]["repro_n_total"] == 0
        state["n"] = 42
        assert reg.snapshot()["counters"]["repro_n_total"] == 42

    def test_gauge_track_max(self):
        reg = MetricsRegistry()
        g = reg.gauge("hw")
        for v in (3, 9, 5):
            g.track_max(v)
        assert reg.snapshot()["gauges"]["repro_hw"] == 9

    def test_histogram_is_live_reference(self):
        reg = MetricsRegistry()
        sketch = QuantileSketch()
        reg.histogram("lat_cycles", sketch)
        sketch.add(10)
        sketch.add(20)
        hist = reg.snapshot()["histograms"]["repro_lat_cycles"]
        assert hist["count"] == 2
        assert hist["sum"] == 30
        assert hist["p99"] == 20

    def test_collector_emits_dynamic_labels(self):
        reg = MetricsRegistry()
        tenants = {"a": 1, "b": 2}

        def collect(emit):
            for name, n in tenants.items():
                emit("req_total", "counter", n, labels={"tenant": name})

        reg.collector(collect)
        snap = reg.snapshot()["counters"]
        assert snap['repro_req_total{tenant="a"}'] == 1
        tenants["c"] = 9  # label set grows between collects
        snap = reg.snapshot()["counters"]
        assert snap['repro_req_total{tenant="c"}'] == 9


#: One metric sample or # TYPE line of the text exposition format.
_PROM_LINE = re.compile(
    r"^(# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|summary)"
    r"|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.eE+-]+)$"
)


class TestPrometheus:
    def _populated(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("ev_total", labels={"type": "wake"}).inc(3)
        reg.gauge("cycle").set(100)
        sketch = reg.histogram("lat_cycles")
        for v in (1, 2, 3, 4, 100):
            sketch.add(v)
        return reg

    def test_every_line_parses(self):
        text = self._populated().to_prometheus()
        assert text.endswith("\n")
        for line in text.strip().splitlines():
            assert _PROM_LINE.match(line), f"unparseable line: {line!r}"

    def test_type_lines_precede_samples(self):
        text = self._populated().to_prometheus()
        seen_types = set()
        for line in text.strip().splitlines():
            if line.startswith("# TYPE"):
                seen_types.add(line.split()[2])
            else:
                name = re.match(r"[a-zA-Z_:][a-zA-Z0-9_:]*", line).group(0)
                base = re.sub(r"_(count|sum)$", "", name)
                assert name in seen_types or base in seen_types

    def test_histogram_rendered_as_summary(self):
        text = self._populated().to_prometheus()
        assert "# TYPE repro_lat_cycles summary" in text
        assert 'repro_lat_cycles{quantile="0.99"} 100' in text
        assert "repro_lat_cycles_count 5" in text
        assert "repro_lat_cycles_sum 110" in text

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labels={"k": 'a"b\\c'}).inc()
        text = reg.to_prometheus()
        assert r'{k="a\"b\\c"}' in text


class TestTimeSeriesRecorder:
    def test_interval_validation(self):
        with pytest.raises(ValueError, match="interval"):
            TimeSeriesRecorder(MetricsRegistry(), interval=0)

    def test_rows_carry_counter_deltas(self):
        reg = MetricsRegistry()
        c = reg.counter("n_total")
        rec = TimeSeriesRecorder(reg, interval=10)
        c.inc(5)
        rec.sample(10)
        c.inc(7)
        rec.sample(20)
        deltas = [row["counters"]["repro_n_total"] for row in rec.rows]
        assert deltas == [5, 7]

    def test_boundary_advances_past_now(self):
        rec = TimeSeriesRecorder(MetricsRegistry(), interval=10)
        assert rec.next_at == 10
        rec.sample(23)  # event landed past two boundaries
        assert rec.next_at == 30

    def test_sum_counters_equals_final_totals_after_flush(self):
        reg = MetricsRegistry()
        c = reg.counter("n_total")
        rec = TimeSeriesRecorder(reg, interval=10)
        for cycle in (10, 25, 31):
            c.inc(cycle)
            rec.sample(cycle)
        c.inc(100)  # tail-window increments, no boundary crossed
        rec.flush(40)
        assert rec.sum_counters()["repro_n_total"] == c.value

    def test_flush_is_idempotent_when_clean(self):
        reg = MetricsRegistry()
        reg.counter("n_total").inc()
        rec = TimeSeriesRecorder(reg, interval=10)
        rec.flush(15)
        rows = len(rec.rows)
        rec.flush(15)
        assert len(rec.rows) == rows

    def test_gauges_are_point_in_time(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        rec = TimeSeriesRecorder(reg, interval=10)
        g.set(3)
        rec.sample(10)
        g.set(8)
        rec.sample(20)
        assert [r["gauges"]["repro_depth"] for r in rec.rows] == [3, 8]

    def test_jsonl_roundtrip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("n_total").inc(2)
        rec = TimeSeriesRecorder(reg, interval=10)
        rec.sample(10)
        path = tmp_path / "ts.jsonl"
        rec.write_jsonl(path)
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows == rec.rows
