"""PacketTracer: deterministic sampling, bounds, and exports."""

from __future__ import annotations

import json

import pytest

from repro.obs.tracer import EVENT_NAMES, PacketTracer


class TestSampling:
    def test_decision_is_deterministic(self):
        a = PacketTracer(fraction=0.1, seed=3)
        b = PacketTracer(fraction=0.1, seed=3)
        assert [a.traced(pid) for pid in range(500)] == [
            b.traced(pid) for pid in range(500)
        ]

    def test_seed_changes_selection(self):
        a = PacketTracer(fraction=0.1, seed=0)
        b = PacketTracer(fraction=0.1, seed=1)
        assert [a.traced(p) for p in range(2000)] != [
            b.traced(p) for p in range(2000)
        ]

    def test_fraction_extremes(self):
        none = PacketTracer(fraction=0.0)
        everything = PacketTracer(fraction=1.0)
        assert not any(none.traced(p) for p in range(100))
        assert all(everything.traced(p) for p in range(100))

    def test_fraction_roughly_honored(self):
        tracer = PacketTracer(fraction=0.1, seed=0)
        hits = sum(tracer.traced(p) for p in range(20_000))
        assert 0.05 < hits / 20_000 < 0.15

    def test_fraction_validated(self):
        with pytest.raises(ValueError, match="fraction"):
            PacketTracer(fraction=1.5)


class TestBounds:
    def test_hop_records_bounded(self):
        tracer = PacketTracer(fraction=1.0, max_records=3)
        for i in range(10):
            tracer.hop(i, "arrive", i)
        assert len(tracer.records) == 3
        assert tracer.dropped_records == 7

    def test_ring_keeps_last_n(self):
        tracer = PacketTracer(ring_size=4)
        for cycle in range(10):
            tracer.note_event(cycle, cycle % len(EVENT_NAMES))
        dump = tracer.ring_dump()
        assert len(dump) == 4
        assert [d["cycle"] for d in dump] == [6, 7, 8, 9]
        assert dump[-1]["type"] == EVENT_NAMES[9 % len(EVENT_NAMES)]


class TestExports:
    def _traced(self) -> PacketTracer:
        tracer = PacketTracer(fraction=1.0)
        tracer.hop(5, "inject", 1, 0, 9)
        tracer.hop(6, "enqueue", 1, 0, 4, extra=2)
        tracer.hop(7, "send", 1, 0, 4, extra=3)
        tracer.hop(10, "deliver", 1, 9, 0, extra=5)
        return tracer

    def test_jsonl_one_record_per_line(self):
        lines = self._traced().to_jsonl().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["kind"] for r in records] == [
            "inject", "enqueue", "send", "deliver",
        ]
        assert records[1]["extra"] == 2

    def test_empty_exports(self):
        tracer = PacketTracer()
        assert tracer.to_jsonl() == ""
        assert tracer.chrome_trace()["traceEvents"][0]["ph"] == "M"

    def test_chrome_trace_shape(self):
        trace = self._traced().chrome_trace()
        events = trace["traceEvents"]
        assert json.loads(json.dumps(trace)) == trace  # JSON-safe
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X", "i"}
        (send,) = [e for e in events if e["ph"] == "X"]
        assert send["dur"] == 3 and send["ts"] == 7
        # Each traced packet gets a named thread track.
        names = [e for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"]
        assert names[0]["args"]["name"] == "pkt 1"

    def test_write_files(self, tmp_path):
        tracer = self._traced()
        chrome = tmp_path / "t.json"
        jsonl = tmp_path / "t.jsonl"
        tracer.write_chrome(chrome)
        tracer.write_jsonl(jsonl)
        assert "traceEvents" in json.loads(chrome.read_text())
        assert len(jsonl.read_text().splitlines()) == 4
