"""Probes installed vs absent must be observationally identical.

The observability layer's core contract: probes never schedule events
and never allocate sequence numbers, so an instrumented run's SimStats
(and, for the service, its completions/replay digests) are bit-for-bit
the stats of the uninstrumented run.  These tests mirror the lazy/eager
differential suite (``tests/network/test_lazy_differential.py``) with
the probed/bare axis: golden grid, live churn, link faults with
retransmits, and the multi-tenant service path — plus the counter
reconciliation the timeseries recorder guarantees.
"""

from __future__ import annotations

import pytest

from tests.network.golden_grid import (
    DRAIN,
    GRID,
    MEASURE,
    WARMUP,
    entry_key,
    stats_digest,
)

#: Fast subset of the golden grid run on every test invocation; the
#: full grid rides behind the ``slow`` marker like the lazy/eager suite.
FAST_GRID = [GRID[0], GRID[3], GRID[7]]


def _make_probes():
    from repro.obs import FabricProbes

    return FabricProbes.full(interval=64, fraction=0.05, ring_size=32)


def _run_grid_point(design, nodes, pattern_name, rate, seed, cfg, probes):
    from repro.network.config import NetworkConfig
    from repro.topologies.registry import make_policy, make_topology
    from repro.traffic.injection import run_synthetic
    from repro.traffic.patterns import make_pattern

    topo = make_topology(design, nodes, seed=0)
    policy = make_policy(topo)
    pattern = make_pattern(pattern_name, topo.active_nodes)
    config = NetworkConfig(**cfg) if cfg else None
    instrument = None if probes is None else probes.attach_sim
    return run_synthetic(
        topo, policy, pattern, rate, config=config,
        warmup=WARMUP, measure=MEASURE, drain_limit=DRAIN, seed=seed,
        instrument=instrument,
    )


@pytest.mark.parametrize(
    "design,nodes,pattern,rate,seed,cfg",
    FAST_GRID,
    ids=[entry_key(*entry[:5]) for entry in FAST_GRID],
)
def test_probed_matches_bare_fast(design, nodes, pattern, rate, seed, cfg):
    bare = _run_grid_point(design, nodes, pattern, rate, seed, cfg, None)
    probed = _run_grid_point(
        design, nodes, pattern, rate, seed, cfg, _make_probes()
    )
    assert stats_digest(bare) == stats_digest(probed)


@pytest.mark.slow
@pytest.mark.parametrize(
    "design,nodes,pattern,rate,seed,cfg",
    GRID,
    ids=[entry_key(*entry[:5]) for entry in GRID],
)
def test_probed_matches_bare_on_golden_grid(
    design, nodes, pattern, rate, seed, cfg
):
    bare = _run_grid_point(design, nodes, pattern, rate, seed, cfg, None)
    probed = _run_grid_point(
        design, nodes, pattern, rate, seed, cfg, _make_probes()
    )
    assert stats_digest(bare) == stats_digest(probed)


def _churn_run(probes):
    from repro.topologies.registry import make_topology
    from repro.workloads.churn import ChurnSchedule, run_churn

    topo = make_topology("SF", 48, seed=7)
    instrument = None if probes is None else probes.attach_sim
    return run_churn(
        topo, pattern="uniform_random", rate=0.15,
        schedule=ChurnSchedule.cycle(gate_at=400, wake_at=800, fraction=0.25),
        warmup=100, measure=1200, drain_limit=100_000, seed=7,
        instrument=instrument,
    )


def test_probed_matches_bare_under_churn():
    bare = _churn_run(None)
    probed = _churn_run(_make_probes())
    assert bare.payload() == probed.payload()


def _fault_run(probes):
    from repro.topologies.registry import make_topology
    from repro.workloads.faults import run_faults

    topo = make_topology("SF", 64, seed=0)
    instrument = None if probes is None else probes.attach_sim
    return run_faults(
        topo, pattern="uniform_random", rate=0.15,
        schedule="random", fault_rate=0.002,
        kinds=("link_down", "link_flap", "node_hang"),
        detection_timeout=150, retransmit_timeout=32,
        warmup=100, measure=1500, drain_limit=100_000, seed=3,
        instrument=instrument,
    )


def test_probed_matches_bare_under_faults():
    bare = _fault_run(None)
    probed = _fault_run(_make_probes())
    bare_payload, probed_payload = bare.payload(), probed.payload()
    assert bare_payload == probed_payload
    # The scenario must actually exercise the fault machinery, or the
    # equality above proves nothing about the fault-path hooks.
    assert probed_payload["num_faults"] >= 1


def _service_run(probes, keep=False):
    from repro.workloads.service import run_service

    def instrument(service):
        service.install_probes(probes)

    return run_service(
        nodes=48, tenants=4, requests_per_tenant=24, rate=0.05,
        footprint_pages=128, seed=11, scale_at=200, scale_count=2,
        scale_back_after=400, keep_service=keep,
        instrument=None if probes is None else instrument,
    )


def test_probed_matches_bare_service_digests():
    bare = _service_run(None)
    probed = _service_run(_make_probes())
    assert bare.digest == probed.digest
    assert bare.payload() == probed.payload()


def test_probed_service_replay_digest_identical():
    from repro.service.log import RequestLog, replay

    probed = _service_run(_make_probes(), keep=True)
    log = RequestLog.capture(probed.service)
    replayed = replay(log)  # replay runs bare: no probes installed
    assert replayed.digest() == probed.digest


def test_probed_run_reconciles_with_simstats():
    """Timeseries sums + event counters == the run's own final totals."""
    probes = _make_probes()
    stats = _run_grid_point(*GRID[0][:5], GRID[0][5], probes)
    sim = probes._sim
    probes.finish(sim.now)
    sums = probes.recorder.sum_counters()
    assert sums["repro_sim_packets_sent_total"] == stats.sent
    assert sums["repro_sim_packets_delivered_total"] == stats.delivered
    finals = {
        s.key: s.value
        for s in probes.registry.collect() if s.kind == "counter"
    }
    assert finals  # the probe set actually registered counters
    for key, value in finals.items():
        assert sums.get(key, 0) == value, key
    event_total = sum(
        v for k, v in finals.items() if k.startswith("repro_sim_events_total")
    )
    assert event_total == probes.events_processed() == sim._events_processed
