"""`repro trace` CLI and the daemon `metrics` verb, end to end."""

from __future__ import annotations

import asyncio
import json
import re

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.kind == "synthetic"
        assert args.sample_interval == 256
        assert args.trace_fraction == 0.02
        assert args.ring == 256

    def test_trace_rejects_uninstrumentable_kind(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "--kind", "path_stats"])

    def test_serve_metrics_flag(self):
        args = build_parser().parse_args(["serve", "--metrics"])
        assert args.metrics is True


def _run_trace(tmp_path, *extra):
    argv = [
        "trace", "--kind", "synthetic", "--design", "SF", "--nodes", "48",
        "--rate", "0.1", "--warmup", "100", "--measure", "300",
        "--out-dir", str(tmp_path), *extra,
    ]
    return main(argv)


class TestTraceCommand:
    def test_emits_all_artifacts_and_reconciles(self, tmp_path, capsys):
        assert _run_trace(tmp_path) == 0
        out = capsys.readouterr().out
        assert "reconciliation:    ok" in out
        suffixes = [
            ".timeseries.jsonl", ".trace.json", ".trace.jsonl",
            ".metrics.json", ".metrics.prom", ".summary.json",
        ]
        for suffix in suffixes:
            matches = list(tmp_path.glob(f"*{suffix}"))
            assert len(matches) == 1, suffix
            assert matches[0].stat().st_size > 0

    def test_chrome_trace_and_timeseries_valid(self, tmp_path):
        assert _run_trace(tmp_path) == 0
        (chrome,) = tmp_path.glob("*.trace.json")
        trace = json.loads(chrome.read_text())
        assert isinstance(trace["traceEvents"], list)
        assert {"ph", "pid", "ts"} <= set(
            next(e for e in trace["traceEvents"] if e["ph"] != "M")
        )
        (ts,) = tmp_path.glob("*.timeseries.jsonl")
        rows = [json.loads(line) for line in ts.read_text().splitlines()]
        assert rows and all({"cycle", "counters", "gauges"} <= set(r)
                            for r in rows)

    def test_counters_reconcile_with_payload_stats(self, tmp_path):
        """Summed timeseries deltas == the SimStats totals in the payload."""
        assert _run_trace(tmp_path) == 0
        (summary_path,) = tmp_path.glob("*.summary.json")
        summary = json.loads(summary_path.read_text())
        (ts,) = tmp_path.glob("*.timeseries.jsonl")
        sums: dict[str, float] = {}
        for line in ts.read_text().splitlines():
            for key, delta in json.loads(line)["counters"].items():
                sums[key] = sums.get(key, 0) + delta
        payload = summary["payload"]
        assert sums["repro_sim_packets_delivered_total"] == payload["delivered"]
        event_sum = sum(
            v for k, v in sums.items()
            if k.startswith("repro_sim_events_total")
        )
        assert event_sum == summary["obs"]["events_processed"]

    def test_unsupported_point_fails_cleanly(self, tmp_path, capsys):
        rc = main([
            "trace", "--kind", "churn", "--design", "DM", "--nodes", "36",
            "--rate", "0.05", "--out-dir", str(tmp_path),
        ])
        assert rc == 1
        assert "unsupported" in capsys.readouterr().out

    def test_service_kind_traces_full_stack(self, tmp_path, capsys):
        rc = main([
            "trace", "--kind", "service", "--nodes", "36", "--rate", "0.05",
            "--out-dir", str(tmp_path),
        ])
        assert rc == 0
        (prom,) = tmp_path.glob("*.metrics.prom")
        text = prom.read_text()
        assert "repro_service_latency_cycles" in text
        assert "repro_service_queue_depth" in text


_PROM_LINE = re.compile(
    r"^(# TYPE \S+ (counter|gauge|summary)"
    r"|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.eE+-]+)$"
)


class TestDaemonMetricsVerb:
    def _scrape(self, pre_install: bool) -> None:
        from repro.service.core import FabricService
        from repro.service.daemon import FabricDaemon

        async def scenario():
            service = FabricService(nodes=36, footprint_pages=64)
            if pre_install:
                service.install_probes()
            daemon = FabricDaemon(service, quantum=32)
            host, port = await daemon.start()
            reader, writer = await asyncio.open_connection(host, port)

            async def rpc(message):
                writer.write(json.dumps(message).encode() + b"\n")
                await writer.drain()
                return json.loads(await reader.readline())

            # Live traffic before and between scrapes: the metrics verb
            # must be safe mid-run, not only at quiescence.
            for i in range(4):
                resp = await rpc({"op": "read", "page": i, "id": f"r{i}"})
                assert resp["ok"]
            first = await rpc({"op": "metrics", "id": "m1"})
            assert first["ok"] and first["id"] == "m1"
            for line in first["prometheus"].strip().splitlines():
                assert _PROM_LINE.match(line), line
            snap = first["metrics"]
            assert {"counters", "gauges", "histograms"} <= set(snap)
            delivered = snap["counters"]["repro_sim_packets_delivered_total"]
            assert delivered >= 4
            resp = await rpc({"op": "write", "page": 0, "id": "w1"})
            assert resp["ok"]
            second = await rpc({"op": "metrics", "id": "m2"})
            counters = second["metrics"]["counters"]
            assert counters["repro_sim_packets_delivered_total"] > delivered
            writer.close()
            await daemon.stop()

        asyncio.run(scenario())

    def test_scrape_with_probes_preinstalled(self):
        self._scrape(pre_install=True)

    def test_scrape_installs_probes_lazily(self):
        self._scrape(pre_install=False)


class TestTraceAnatomy:
    def test_emits_anatomy_artifacts_and_gates_on_conservation(
        self, tmp_path, capsys,
    ):
        assert _run_trace(tmp_path) == 0
        out = capsys.readouterr().out
        assert "latency anatomy:" in out
        assert re.search(r"conservation:\s+ok", out)
        (anatomy_path,) = tmp_path.glob("*.anatomy.json")
        body = json.loads(anatomy_path.read_text())
        assert body["conserved"] is True
        assert body["delivered"] > 0
        assert body["component_totals"]["wire"] > 0
        assert body["hotspots"]["links_tracked"] > 0
        (csv_path,) = tmp_path.glob("*.links.csv")
        lines = csv_path.read_text().splitlines()
        assert lines[0].startswith("u,v,enqueues,")
        assert len(lines) == body["hotspots"]["links_tracked"] + 1

    def test_summary_payload_carries_obs_fields(self, tmp_path):
        assert _run_trace(tmp_path) == 0
        (summary_path,) = tmp_path.glob("*.summary.json")
        payload = json.loads(summary_path.read_text())["payload"]
        assert payload["obs_anatomy_conserved"] is True
        assert "obs_wire_frac" in payload

    def test_no_anatomy_suppresses_artifacts(self, tmp_path, capsys):
        assert _run_trace(tmp_path, "--no-anatomy") == 0
        out = capsys.readouterr().out
        assert "latency anatomy:" not in out
        assert not list(tmp_path.glob("*.anatomy.json"))
        assert not list(tmp_path.glob("*.links.csv"))


class TestHotspotsCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["hotspots"])
        assert args.design == "SF"
        assert args.mode == "incast"
        assert args.no_qos is False
        assert args.top == 8

    def test_reports_and_writes_artifacts(self, tmp_path, capsys):
        out_json = tmp_path / "hot.json"
        out_csv = tmp_path / "links.csv"
        rc = main([
            "hotspots", "--nodes", "48", "--rate", "0.25",
            "--warmup", "100", "--measure", "600",
            "--output", str(out_json), "--links-csv", str(out_csv),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "conservation: ok" in out
        assert "blocked\\behind" in out
        body = json.loads(out_json.read_text())
        assert body["conserved"] is True
        assert body["hotspots"]["top_links"]
        assert out_csv.read_text().startswith("u,v,")

    def test_classless_mode(self, capsys):
        rc = main([
            "hotspots", "--nodes", "48", "--rate", "0.25", "--no-qos",
            "--warmup", "100", "--measure", "600",
        ])
        assert rc == 0
        assert "conservation: ok" in capsys.readouterr().out
