"""Latency anatomy: the exact conservation law + bit-identicality.

Two families of guarantees:

* **Conservation** — on every delivered packet, the component sums of
  the delay decomposition equal the measured end-to-end latency
  *exactly* (integers, no epsilon), across synthetic traffic, live
  churn, unplanned faults (parking, retransmits, sweeps), and QoS
  interference runs.  The aggregate face of the same law: per-class
  latency totals equal the per-class component-column sums.
* **Bit-identicality** — installing the anatomy (at construction or
  mid-run) or tearing it out mid-run never changes the simulation:
  ``SimStats`` digests match the bare run exactly.  Mid-run install
  must also skip in-flight packets whole (``preinstall_skips``) rather
  than fabricate partial breakdowns.
"""

from __future__ import annotations

import pytest

from tests.network.golden_grid import (
    DRAIN,
    GRID,
    MEASURE,
    WARMUP,
    entry_key,
    stats_digest,
)

FAST_GRID = [GRID[0], GRID[3]]


def _probes(anatomy: bool = True):
    from repro.obs import FabricProbes

    return FabricProbes.full(
        interval=64, fraction=0.05, ring_size=32, anatomy=anatomy,
    )


def _assert_conserved(anatomy) -> None:
    """Both faces of the law: per-packet (violation counter) and the
    per-class aggregate (latency totals == component-column sums)."""
    assert anatomy.conserved(), anatomy.violation_examples
    assert anatomy.delivered > 0
    for totals in anatomy.class_totals.values():
        assert totals[1] == sum(totals[2:])


def _run_synthetic(probes):
    from repro.topologies.registry import make_policy, make_topology
    from repro.traffic.injection import run_synthetic
    from repro.traffic.patterns import make_pattern

    topo = make_topology("SF", 48, seed=0)
    return run_synthetic(
        topo, make_policy(topo),
        make_pattern("uniform_random", topo.active_nodes), 0.2,
        warmup=100, measure=800, drain_limit=40_000, seed=5,
        instrument=None if probes is None else probes.attach_sim,
    )


class TestConservationLaw:
    def test_synthetic(self):
        probes = _probes()
        stats = _run_synthetic(probes)
        anatomy = probes.anatomy
        _assert_conserved(anatomy)
        assert anatomy.delivered == stats.delivered
        totals = anatomy.component_totals()
        # Every hop pays serdes+wire and occupies its wires, so these
        # are structurally nonzero on any delivering run.
        assert totals["wire"] > 0 and totals["serialization"] > 0

    def test_under_churn(self):
        from repro.topologies.registry import make_topology
        from repro.workloads.churn import ChurnSchedule, run_churn

        probes = _probes()
        result = run_churn(
            make_topology("SF", 48, seed=7),
            pattern="uniform_random", rate=0.15,
            schedule=ChurnSchedule.cycle(
                gate_at=400, wake_at=800, fraction=0.25,
            ),
            warmup=100, measure=1200, drain_limit=100_000, seed=7,
            instrument=probes.attach_sim,
        )
        _assert_conserved(probes.anatomy)
        assert result.payload()["num_events"] >= 1

    def test_under_faults_with_parking(self):
        """Hangs/crashes park and re-route packets: the detour cycles
        must land in ``requeue`` and the sums must stay exact."""
        from repro.topologies.registry import make_topology
        from repro.workloads.faults import run_faults

        probes = _probes()
        result = run_faults(
            make_topology("SF", 64, seed=0), rate=0.15, seed=3,
            instrument=probes.attach_sim,
        )
        anatomy = probes.anatomy
        _assert_conserved(anatomy)
        assert result.payload()["num_faults"] >= 1
        assert anatomy.component_totals()["requeue"] > 0

    def test_qos_interference_attribution(self):
        """Under a class table, cross-class blocking is charged to
        ``arbitration`` — and equals the off-diagonal interference
        matrix exactly (same cycles, two views)."""
        from repro.topologies.registry import make_topology
        from repro.workloads.interference import run_interference

        result = run_interference(
            make_topology("SF", 64, seed=0),
            mode="incast", rate=0.3, fg_rate=0.05, qos=True,
            warmup=200, measure=1000, seed=1, anatomy=True,
        )
        anatomy = result.anatomy
        _assert_conserved(anatomy)
        cross = sum(
            cycles
            for i, row in anatomy.hotspots.matrix.items()
            for j, cycles in row.items()
            if i != j
        )
        assert anatomy.component_totals()["arbitration"] == cross
        assert cross > 0  # the scenario actually interfered

    def test_classless_run_has_no_arbitration(self):
        """Without a table every covered wait is queueing; the matrix
        still records who blocked whom (tags ride along regardless)."""
        from repro.topologies.registry import make_topology
        from repro.workloads.interference import run_interference

        result = run_interference(
            make_topology("SF", 64, seed=0),
            mode="incast", rate=0.3, fg_rate=0.05, qos=False,
            warmup=200, measure=1000, seed=1, anatomy=True,
        )
        anatomy = result.anatomy
        _assert_conserved(anatomy)
        assert anatomy.component_totals()["arbitration"] == 0
        assert anatomy.hotspots.matrix  # attribution still recorded

    def test_payload_fractions_sum_to_one(self):
        from repro.topologies.registry import make_topology
        from repro.workloads.interference import run_interference

        result = run_interference(
            make_topology("SF", 48, seed=0),
            mode="noise", rate=0.2, warmup=100, measure=600,
            anatomy=True,
        )
        payload = result.payload()
        assert payload["obs_anatomy_conserved"] is True
        from repro.obs.anatomy import COMPONENTS

        total = sum(payload[f"obs_{name}_frac"] for name in COMPONENTS)
        assert total == pytest.approx(1.0, abs=0.001)


def _manual_stats(probes=None, mutate=None):
    """A synthetic run driven through explicit run() boundaries so a
    test can flip observability state at a quiescent midpoint without
    touching the event heap (scheduling anything would itself change
    sequence allocation and void the comparison)."""
    from repro.network.simulator import NetworkSimulator
    from repro.topologies.registry import make_policy, make_topology
    from repro.traffic.injection import BernoulliInjector
    from repro.traffic.patterns import make_pattern

    topo = make_topology("SF", 48, seed=0)
    sim = NetworkSimulator(topo, make_policy(topo))
    if probes is not None:
        probes.attach_sim(sim)
    injector = BernoulliInjector(
        sim, make_pattern("uniform_random", topo.active_nodes), 0.2,
        warmup=100, measure=800, seed=5,
    )
    injector.start()
    sim.run(until=450)
    if mutate is not None:
        mutate(probes)
    sim.run(until=900)
    sim.run(until=40_000)
    sim.stats.measure_cycles = 800
    return sim.stats


class TestBitIdentical:
    @pytest.mark.parametrize(
        "design,nodes,pattern,rate,seed,cfg",
        FAST_GRID,
        ids=[entry_key(*entry[:5]) for entry in FAST_GRID],
    )
    def test_anatomy_probes_match_bare(
        self, design, nodes, pattern, rate, seed, cfg,
    ):
        from repro.network.config import NetworkConfig
        from repro.topologies.registry import make_policy, make_topology
        from repro.traffic.injection import run_synthetic
        from repro.traffic.patterns import make_pattern

        def run(probes):
            topo = make_topology(design, nodes, seed=0)
            return run_synthetic(
                topo, make_policy(topo),
                make_pattern(pattern, topo.active_nodes), rate,
                config=NetworkConfig(**cfg) if cfg else None,
                warmup=WARMUP, measure=MEASURE, drain_limit=DRAIN,
                seed=seed,
                instrument=None if probes is None else probes.attach_sim,
            )

        assert stats_digest(run(None)) == stats_digest(run(_probes()))

    def test_disable_mid_run_matches_bare(self):
        bare = _manual_stats()

        def disable(probes):
            probes.anatomy = None

        probes = _probes()
        probed = _manual_stats(probes, mutate=disable)
        assert stats_digest(bare) == stats_digest(probed)
        # The half-run anatomy kept whatever it finalized before the
        # disable — and all of it conserved.
        assert probes.anatomy is None

    def test_install_mid_run_matches_bare_and_skips_inflight(self):
        bare = _manual_stats()

        def install(probes):
            probes.install_anatomy()

        probes = _probes(anatomy=False)
        probed = _manual_stats(probes, mutate=install)
        assert stats_digest(bare) == stats_digest(probed)
        anatomy = probes.anatomy
        assert anatomy.conserved(), anatomy.violation_examples
        assert anatomy.delivered > 0
        # Packets injected before the install carry no state and must
        # be skipped whole, not decomposed from a partial lifecycle.
        assert anatomy.preinstall_skips > 0


class TestTracerComponents:
    def test_component_slices_sum_to_latency(self):
        """With every packet traced, each delivered pid's ``c:`` records
        sum to its ``deliver`` record's latency."""
        from repro.obs import FabricProbes

        probes = FabricProbes.full(fraction=1.0, anatomy=True)
        _run_synthetic(probes)
        by_pid: dict[int, dict[str, int]] = {}
        for record in probes.tracer.records:
            kind, pid, extra = record[1], record[2], record[5]
            row = by_pid.setdefault(pid, {"components": 0, "latency": None})
            if kind.startswith("c:"):
                row["components"] += extra
            elif kind == "deliver":
                row["latency"] = extra
        checked = 0
        for pid, row in by_pid.items():
            if row["latency"] is not None:
                assert row["components"] == row["latency"], pid
                checked += 1
        assert checked > 0

    def test_chrome_trace_has_component_slices(self):
        from repro.obs import FabricProbes

        probes = FabricProbes.full(fraction=1.0, anatomy=True)
        _run_synthetic(probes)
        trace = probes.tracer.chrome_trace()
        comp = [
            e for e in trace["traceEvents"]
            if e.get("cat") == "component"
        ]
        assert comp and all(e["ph"] == "X" for e in comp)
        sends = [
            e for e in trace["traceEvents"]
            if e.get("cat") == "hop" and e["ph"] == "X"
        ]
        # Satellite: send slices carry queue depth + credit state.
        assert sends and all(
            "queue_depth" in e["args"] and "credit" in e["args"]
            for e in sends
        )


class TestHotspotAggregator:
    def test_accumulators_and_csv(self):
        from repro.obs.hotspots import HotspotAggregator

        agg = HotspotAggregator()
        link = agg.link(3, 7)
        assert agg.link(3, 7) is link  # stable per directed link
        agg.note_enqueue(link, 2)
        agg.note_enqueue(link, 5)
        agg.note_wait(link, 10)
        agg.note_wait(link, 0)
        other = agg.link(7, 3)
        agg.note_enqueue(other, 1)
        agg.note_wait(other, 4)
        top = agg.top_links(8)
        assert [(e.u, e.v) for e in top] == [(3, 7), (7, 3)]
        assert top[0].wait_cycles == 10 and top[0].dequeues == 2
        csv = agg.links_csv().splitlines()
        assert csv[0] == ",".join(HotspotAggregator.CSV_FIELDS)
        assert len(csv) == 3
        rollup = agg.router_rollup(8)
        assert rollup[0]["router"] == 3
        assert rollup[0]["wait_cycles"] == 10

    def test_interference_matrix_labels(self):
        from repro.obs.hotspots import HotspotAggregator

        agg = HotspotAggregator()
        agg.note_blocking(0, 1, 25)
        agg.note_blocking(0, 1, 5)
        agg.note_blocking(1, 1, 7)
        table = agg.matrix_table({0: "latency", 1: "bulk"})
        assert table == {
            "latency": {"bulk": 30},
            "bulk": {"bulk": 7},
        }
        assert agg.matrix_table()["cls0"]["cls1"] == 30
