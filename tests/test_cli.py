"""CLI surface: `python -m repro ...`."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_topology_defaults(self):
        args = build_parser().parse_args(["topology", "SF"])
        assert args.nodes == 64
        assert args.seed == 0

    def test_all_commands_parse(self):
        parser = build_parser()
        for argv in (
            ["topology", "SF", "--nodes", "32"],
            ["simulate", "DM", "--rate", "0.1"],
            ["workload", "SF", "--workload", "grep"],
            ["reconfigure", "--fraction", "0.2"],
        ):
            assert parser.parse_args(argv) is not None


class TestCommands:
    def test_topology_sf(self, capsys):
        assert main(["topology", "SF", "--nodes", "32"]) == 0
        out = capsys.readouterr().out
        assert "router radix" in out
        assert "virtual spaces" in out

    def test_topology_baseline(self, capsys):
        assert main(["topology", "DM", "--nodes", "16"]) == 0
        out = capsys.readouterr().out
        assert "avg path" in out

    def test_simulate(self, capsys):
        code = main(
            ["simulate", "SF", "--nodes", "24", "--rate", "0.1",
             "--warmup", "50", "--measure", "150"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "avg latency" in out
        assert "accepted" in out

    def test_workload(self, capsys):
        code = main(
            ["workload", "SF", "--workload", "grep", "--nodes", "16",
             "--accesses", "300", "--scale", "0.01"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "runtime" in out

    def test_reconfigure(self, capsys):
        code = main(["reconfigure", "--nodes", "48", "--fraction", "0.15"])
        assert code == 0
        out = capsys.readouterr().out
        assert "down-scaled" in out
        assert "restored" in out

    def test_unknown_topology_errors(self):
        with pytest.raises(ValueError):
            main(["topology", "hypercube"])
