"""CLI surface: `python -m repro ...`."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_topology_defaults(self):
        args = build_parser().parse_args(["topology", "SF"])
        assert args.nodes == 64
        assert args.seed == 0

    def test_all_commands_parse(self):
        parser = build_parser()
        for argv in (
            ["topology", "SF", "--nodes", "32"],
            ["simulate", "DM", "--rate", "0.1"],
            ["workload", "SF", "--workload", "grep"],
            ["reconfigure", "--fraction", "0.2"],
            ["sweep", "--designs", "SF,DM", "--rates", "0.1,0.2"],
            ["churn", "--nodes", "64", "--gate-fraction", "0.25"],
            ["migrate", "--nodes", "64", "--gate-fraction", "0.25"],
            ["faults", "--nodes", "64", "--schedule", "crash"],
            ["perf", "--designs", "SF,DM", "--nodes", "36", "--repeats", "1"],
        ):
            assert parser.parse_args(argv) is not None

    def test_migrate_defaults(self):
        args = build_parser().parse_args(["migrate"])
        assert args.gate_fraction == 0.25
        assert args.mode == "both"
        assert args.workers == 1

    def test_churn_defaults(self):
        args = build_parser().parse_args(["churn"])
        assert args.gate_fraction == 0.25
        assert args.schedule == "cycle"
        assert args.workers == 1

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.kind == "synthetic"
        assert args.workers == 1
        assert not args.no_cache

    def test_perf_defaults(self):
        args = build_parser().parse_args(["perf"])
        assert args.designs == "SF,DM,Jellyfish"
        assert args.rates == "0.05"
        assert args.repeats == 2

    def test_faults_defaults(self):
        args = build_parser().parse_args(["faults"])
        assert args.designs == "SF,DM,Jellyfish"
        assert args.schedule == "random"
        assert args.detection_timeouts == "200"
        assert not args.no_mirror
        assert args.workers == 1


class TestCommands:
    def test_topology_sf(self, capsys):
        assert main(["topology", "SF", "--nodes", "32"]) == 0
        out = capsys.readouterr().out
        assert "router radix" in out
        assert "virtual spaces" in out

    def test_topology_baseline(self, capsys):
        assert main(["topology", "DM", "--nodes", "16"]) == 0
        out = capsys.readouterr().out
        assert "avg path" in out

    def test_simulate(self, capsys):
        code = main(
            ["simulate", "SF", "--nodes", "24", "--rate", "0.1",
             "--warmup", "50", "--measure", "150"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "avg latency" in out
        assert "accepted" in out

    def test_workload(self, capsys):
        code = main(
            ["workload", "SF", "--workload", "grep", "--nodes", "16",
             "--accesses", "300", "--scale", "0.01"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "runtime" in out

    def test_reconfigure(self, capsys):
        code = main(["reconfigure", "--nodes", "48", "--fraction", "0.15"])
        assert code == 0
        out = capsys.readouterr().out
        assert "down-scaled" in out
        assert "restored" in out

    def test_unknown_topology_errors(self):
        with pytest.raises(ValueError):
            main(["topology", "hypercube"])


class TestSweep:
    ARGS = [
        "sweep", "--designs", "SF,DM", "--nodes", "16",
        "--rates", "0.05,0.1", "--warmup", "30", "--measure", "80",
        "--drain-limit", "2000",
    ]

    def test_sweep_runs_and_caches(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main([*self.ARGS, "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "avg_lat" in out
        assert "4 simulated" in out
        # Second run is served entirely from the cache.
        assert main([*self.ARGS, "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "4 cache hits, 0 simulated" in out

    def test_sweep_no_cache(self, capsys, tmp_path):
        assert main([*self.ARGS, "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "0 cache hits" in out
        assert "cache:" not in out

    def test_sweep_output_json(self, capsys, tmp_path):
        output = tmp_path / "payloads.json"
        assert main(
            [*self.ARGS, "--no-cache", "--output", str(output)]
        ) == 0
        import json

        data = json.loads(output.read_text())
        assert len(data) == 4
        entry = next(iter(data.values()))
        assert entry["task"]["design"] in ("SF", "DM")
        assert entry["payload"]["measured_delivered"] > 0

    def test_perf_runs_and_reports_throughput(self, capsys, tmp_path):
        output = tmp_path / "perf.json"
        assert main([
            "perf", "--designs", "SF", "--nodes", "16",
            "--warmup", "30", "--measure", "80", "--drain-limit", "2000",
            "--repeats", "1", "--rates", "0.1", "--seeds", "0",
            "--output", str(output),
        ]) == 0
        out = capsys.readouterr().out
        assert "events/s" in out
        assert "1 simulated" in out
        import json

        data = json.loads(output.read_text())
        payload = next(iter(data.values()))["payload"]
        assert payload["events"] > 0
        assert payload["events_per_sec"] > 0
        assert payload["delivered"] > 0

    def test_churn_runs_and_caches(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        args = [
            "churn", "--nodes", "32", "--gate-fraction", "0.2",
            "--rates", "0.1", "--warmup", "150", "--measure", "1500",
            "--drain-limit", "20000", "--cache-dir", cache_dir,
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "peak_ratio" in out
        assert "conservation ok" in out
        assert "gate_off" in out and "gate_on" in out
        # Second run: served from the cache, same report.
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "1 cache hits, 0 simulated" in out
        assert "conservation ok" in out

    def test_migrate_runs_and_caches(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        args = [
            "migrate", "--nodes", "32", "--gate-fraction", "0.25",
            "--rates", "0.08", "--rate-limits", "64",
            "--footprint-pages", "64", "--warmup", "150",
            "--measure", "2000", "--drain-limit", "30000",
            "--cache-dir", cache_dir,
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "migrate vs teleport" in out
        assert "KiB actually moved (teleport: 0)" in out
        # Second run: both mode variants served from the cache.
        assert main(args) == 0
        out = capsys.readouterr().out
        assert out.count("1 cache hits, 0 simulated") == 2

    def test_migrate_single_mode_skips_comparison(self, capsys, tmp_path):
        args = [
            "migrate", "--nodes", "32", "--mode", "teleport",
            "--rates", "0.08", "--footprint-pages", "64",
            "--warmup", "150", "--measure", "1500",
            "--drain-limit", "20000",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "teleport" in out
        assert "migrate vs teleport" not in out

    def test_faults_runs_and_caches(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        args = [
            "faults", "--designs", "SF", "--nodes", "32",
            "--schedule", "crash", "--rates", "0.08",
            "--footprint-pages", "32", "--warmup", "150",
            "--measure", "2500", "--drain-limit", "30000",
            "--cache-dir", cache_dir,
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "conserved" in out
        assert "conservation ok" in out
        assert "node_crash" in out
        assert "recovered" in out
        for phase in ("baseline", "during", "after"):
            assert phase in out
        # Second run: served from the cache, same report.
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "1 cache hits, 0 simulated" in out
        assert "conservation ok" in out

    def test_faults_multi_design_comparison(self, capsys, tmp_path):
        args = [
            "faults", "--designs", "SF,DM", "--nodes", "32",
            "--rates", "0.08", "--footprint-pages", "0",
            "--warmup", "150", "--measure", "2000",
            "--drain-limit", "20000",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "resilience comparison" in out
        assert "worst during-fault p99" in out

    def test_sweep_from_spec_file(self, capsys, tmp_path):
        from repro.experiments import ExperimentSpec

        spec = ExperimentSpec(
            name="filed", kind="path_stats", designs=("SF",),
            nodes=(24,), seeds=(1,), sim_params={"sample_pairs": 100},
        )
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        assert main(["sweep", "--spec", str(path), "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "mean_hops" in out
        assert "filed" in out
