"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.routing import AdaptiveGreediestRouting, GreediestRouting
from repro.core.topology import S2Topology, StringFigureTopology


@pytest.fixture
def small_topology() -> StringFigureTopology:
    """The paper's running example scale: 9 nodes, 4-port routers."""
    return StringFigureTopology(9, 4, seed=42)


@pytest.fixture
def medium_topology() -> StringFigureTopology:
    return StringFigureTopology(61, 4, seed=7)


@pytest.fixture
def large_topology() -> StringFigureTopology:
    return StringFigureTopology(256, 8, seed=3)


@pytest.fixture
def small_routing(small_topology) -> GreediestRouting:
    return GreediestRouting(small_topology)


@pytest.fixture
def medium_routing(medium_topology) -> GreediestRouting:
    return GreediestRouting(medium_topology)


@pytest.fixture
def adaptive_routing(medium_topology) -> AdaptiveGreediestRouting:
    return AdaptiveGreediestRouting(medium_topology)


@pytest.fixture
def s2_topology() -> S2Topology:
    return S2Topology(32, 4, seed=5)
