"""Data-migration engine: directory invariants, real movement, stalls."""

from __future__ import annotations

import pytest

from repro.core.routing import AdaptiveGreediestRouting
from repro.core.topology import StringFigureTopology
from repro.memory.address import AddressMapper
from repro.memory.migration import (
    MigrationEngine,
    PageDirectory,
    PageState,
)
from repro.memory.node import MemoryNode
from repro.network.config import NetworkConfig
from repro.network.policies import GreedyPolicy
from repro.network.simulator import NetworkSimulator
from repro.workloads.migration import run_migration


class TestPageDirectory:
    def _directory(self, nodes=(0, 1, 2, 3), pages=16):
        mapper = AddressMapper(list(nodes))
        directory = PageDirectory()
        directory.populate(mapper, pages)
        return mapper, directory

    def test_populate_matches_mapper(self):
        mapper, directory = self._directory()
        for page in range(directory.num_pages):
            assert directory.owner_of(page) == mapper.node_of(mapper.page_addr(page))
            assert directory.state_of(page) is PageState.RESIDENT

    def test_arrival_rulings(self):
        _mapper, directory = self._directory()
        owner = directory.owner_of(0)
        other = (owner + 1) % 4
        assert directory.arrival_ruling(owner, 0) == ("serve", owner)
        assert directory.arrival_ruling(other, 0) == ("forward", owner)
        directory.begin_move(0, owner, other)
        assert directory.state_of(0) is PageState.IN_FLIGHT
        # New requests head for the destination and stall there...
        assert directory.resolve(0) == other
        assert directory.arrival_ruling(other, 0) == ("stall", other)
        # ...while stragglers reaching the source get forwarded on.
        assert directory.arrival_ruling(owner, 0) == ("forward", other)

    def test_land_flips_owner_and_releases_waiters(self):
        _mapper, directory = self._directory()
        src = directory.owner_of(3)
        dst = (src + 2) % 4
        directory.begin_move(3, src, dst)
        fired = []
        directory.when_landed(3, fired.append)
        directory.land(3, 777)
        assert fired == [777]
        assert directory.owner_of(3) == dst
        assert directory.state_of(3) is PageState.RESIDENT

    def test_begin_move_validates_source(self):
        _mapper, directory = self._directory()
        owner = directory.owner_of(0)
        with pytest.raises(RuntimeError):
            directory.begin_move(0, owner + 1, owner)
        directory.begin_move(0, owner, (owner + 1) % 4)
        with pytest.raises(RuntimeError):
            directory.begin_move(0, owner, (owner + 2) % 4)

    def test_waiting_requires_inflight(self):
        _mapper, directory = self._directory()
        with pytest.raises(ValueError):
            directory.when_landed(0, lambda t: None)

    def test_teleport_rejects_inflight_pages(self):
        _mapper, directory = self._directory()
        owner = directory.owner_of(0)
        directory.begin_move(0, owner, (owner + 1) % 4)
        with pytest.raises(RuntimeError):
            directory.teleport(0, (owner + 1) % 4)

    def test_conservation_check(self):
        _mapper, directory = self._directory()
        assert directory.check_conservation()
        owner = directory.owner_of(5)
        directory.begin_move(5, owner, (owner + 1) % 4)
        assert directory.check_conservation()
        directory.land(5, 0)
        assert directory.check_conservation()


def _engine_stack(
    nodes=32, pages=64, mode="migrate", rate_limit=64.0, **engine_kwargs
):
    topo = StringFigureTopology(nodes, 4, seed=7)
    policy = GreedyPolicy(AdaptiveGreediestRouting(topo))
    sim = NetworkSimulator(topo, policy, NetworkConfig())
    mapper = AddressMapper(list(topo.active_nodes))
    directory = PageDirectory()
    directory.populate(mapper, pages)
    memory_nodes: dict[int, MemoryNode] = {}

    def memory_node(node_id):
        if node_id not in memory_nodes:
            memory_nodes[node_id] = MemoryNode(node_id, sim)
        return memory_nodes[node_id]

    engine = MigrationEngine(
        sim, mapper, directory, memory_node,
        rate_limit_bytes_per_cycle=rate_limit, mode=mode, **engine_kwargs,
    )
    return sim, engine, directory


class TestMigrationEngine:
    def test_migrate_out_empties_victims(self):
        sim, engine, directory = _engine_stack()
        victims = engine.mapper.nodes[:4]
        planned = sum(len(directory.resident_on(v)) for v in victims)
        record = engine.migrate_out(victims)
        sim.drain()
        assert record.done
        assert record.pages_moved == record.pages_planned == planned
        assert record.bytes_moved == planned * engine.page_bytes
        for victim in victims:
            assert directory.resident_on(victim) == []
        assert directory.check_conservation()

    def test_conservation_holds_at_every_sampled_instant(self):
        """Every page is resident on one node or in flight, always."""
        sim, engine, directory = _engine_stack(rate_limit=16.0)
        violations = []

        def probe(now):
            if not directory.check_conservation():
                violations.append(now)
            owners = [directory.owner_of(p) for p in directory.pages]
            if len(owners) != directory.num_pages:
                violations.append(now)
            if engine.busy:
                sim.schedule(now + 64, probe)

        engine.migrate_out(engine.mapper.nodes[:4])
        sim.schedule(1, probe)
        sim.drain()
        assert not violations

    def test_round_trip_restores_residency(self):
        sim, engine, directory = _engine_stack()
        before = {p: directory.owner_of(p) for p in directory.pages}
        victims = engine.mapper.nodes[:4]
        engine.migrate_out(victims)
        engine.migrate_in(victims)  # queued behind the out-batch
        sim.drain()
        assert all(r.done for r in engine.records)
        assert {p: directory.owner_of(p) for p in directory.pages} == before

    def test_rate_limit_paces_makespan(self):
        slow_sim, slow_engine, _ = _engine_stack(rate_limit=8.0)
        fast_sim, fast_engine, _ = _engine_stack(rate_limit=128.0)
        slow_engine.migrate_out(slow_engine.mapper.nodes[:4])
        fast_engine.migrate_out(fast_engine.mapper.nodes[:4])
        slow_sim.drain()
        fast_sim.drain()
        slow = slow_engine.records[0].makespan_cycles
        fast = fast_engine.records[0].makespan_cycles
        assert slow > fast

    def test_on_done_fires_after_last_land(self):
        sim, engine, directory = _engine_stack()
        done_at = []
        engine.migrate_out(engine.mapper.nodes[:2], on_done=done_at.append)
        sim.drain()
        assert len(done_at) == 1
        assert done_at[0] == engine.records[0].t_end

    def test_teleport_moves_no_bytes(self):
        sim, engine, directory = _engine_stack(mode="teleport")
        victims = engine.mapper.nodes[:4]
        done_at = []
        record = engine.migrate_out(victims, on_done=done_at.append)
        sim.drain()
        assert record.done and record.bytes_moved == 0
        assert record.makespan_cycles == 0
        assert sim.stats.sent == 0  # zero network traffic
        assert done_at == [record.t_start]
        for victim in victims:
            assert directory.resident_on(victim) == []

    def test_parameter_validation(self):
        sim, engine, directory = _engine_stack()
        with pytest.raises(ValueError):
            MigrationEngine(
                sim, engine.mapper, directory, lambda n: None,
                rate_limit_bytes_per_cycle=0,
            )
        with pytest.raises(ValueError):
            MigrationEngine(
                sim, engine.mapper, directory, lambda n: None,
                max_inflight_pages=0,
            )
        with pytest.raises(ValueError):
            MigrationEngine(
                sim, engine.mapper, directory, lambda n: None, chunk_bytes=8
            )
        with pytest.raises(ValueError):
            MigrationEngine(
                sim, engine.mapper, directory, lambda n: None, mode="warp"
            )


def _scenario(mode="migrate", **kwargs):
    params = dict(
        rate=0.08,
        gate_fraction=0.25,
        footprint_pages=96,
        warmup=200,
        measure=2500,
        seed=0,
        mode=mode,
    )
    params.update(kwargs)
    topo = StringFigureTopology(32, 4, seed=11)
    return run_migration(topo, **params)


class TestRunMigration:
    @pytest.fixture(scope="class")
    def migrated(self):
        return _scenario("migrate")

    @pytest.fixture(scope="class")
    def teleported(self):
        return _scenario("teleport")

    def test_packet_conservation(self, migrated):
        stats = migrated.stats
        assert stats.sent == stats.delivered
        assert stats.in_flight == 0

    def test_no_foreground_request_lost(self, migrated):
        fg = migrated.foreground
        assert fg.issued == fg.completed
        assert fg.issued > 0

    def test_page_conservation_after_drain(self, migrated):
        assert migrated.directory.check_conservation()
        payload = migrated.payload()
        assert payload["page_conservation"]

    def test_real_bytes_moved_and_restored(self, migrated):
        payload = migrated.payload()
        gated = len(migrated.events[0].nodes)
        # Out + back in: each gated node's pages cross the network twice.
        assert payload["pages_moved"] == 2 * gated * (96 // 32)
        assert payload["bytes_moved"] == payload["pages_moved"] * 4096
        assert payload["migration_makespan"] > 0
        assert payload["migrations_done"]

    def test_events_carry_migration_records(self, migrated):
        assert len(migrated.events) == 2
        for event in migrated.events:
            assert event.migration is not None
            assert event.migration.done
        out, back = migrated.events
        assert out.migration.kind == "out"
        assert back.migration.kind == "in"
        # Migrate-out finished before the victims' links went down.
        assert out.migration.t_end <= out.t_blocked

    def test_teleport_baseline_is_free_and_undisturbed_by_stalls(self, teleported):
        payload = teleported.payload()
        assert payload["bytes_moved"] == 0
        assert payload["migration_makespan"] == 0
        assert payload["fg_stalled"] == 0
        assert payload["fg_issued"] == payload["fg_completed"]

    def test_migration_costs_show_up_vs_teleport(self, migrated, teleported):
        real = migrated.payload()
        free = teleported.payload()
        assert real["bytes_moved"] > free["bytes_moved"]
        # Same foreground offered load in both modes (same seed/rate).
        assert real["fg_issued"] == free["fg_issued"]

    def test_run_is_deterministic(self, migrated):
        again = _scenario("migrate")
        assert again.payload() == migrated.payload()

    def test_rejects_bad_windows(self):
        topo = StringFigureTopology(32, 4, seed=11)
        with pytest.raises(ValueError):
            run_migration(topo, gate_at=500, wake_at=400)

    def test_rejects_sub_cacheline_pages(self):
        topo = StringFigureTopology(32, 4, seed=11)
        with pytest.raises(ValueError, match="cache line"):
            run_migration(topo, page_bytes=32, footprint_pages=8)

    def test_migrate_in_rejects_unknown_nodes(self):
        _sim, engine, _directory = _engine_stack()
        with pytest.raises(ValueError, match="home order"):
            engine.migrate_in([10_000])
