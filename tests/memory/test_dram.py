"""DRAM open-page timing model."""

from __future__ import annotations

from repro.memory.dram import DramModel
from repro.network.config import NetworkConfig


class TestRowBuffer:
    def test_first_access_is_empty_activate(self):
        dram = DramModel()
        dram.access_cycles(0)
        assert dram.empties == 1
        assert dram.hits == 0

    def test_same_row_hits(self):
        dram = DramModel(row_bytes=2048)
        dram.access_cycles(0)
        dram.access_cycles(64)
        dram.access_cycles(1024)
        assert dram.hits == 2

    def test_row_conflict(self):
        dram = DramModel(num_banks=1, row_bytes=2048)
        dram.access_cycles(0)
        dram.access_cycles(2048)  # same bank, next row
        assert dram.conflicts == 1

    def test_bank_interleaving_avoids_conflicts(self):
        dram = DramModel(num_banks=8, row_bytes=2048)
        dram.access_cycles(0)
        dram.access_cycles(2048)  # different bank
        assert dram.conflicts == 0

    def test_latency_ordering(self):
        cfg = NetworkConfig()
        dram = DramModel(cfg, num_banks=1, row_bytes=2048)
        empty = dram.access_cycles(0)
        hit = dram.access_cycles(64)
        miss = dram.access_cycles(2048)
        assert hit < empty < miss

    def test_hit_rate(self):
        dram = DramModel(row_bytes=2048)
        assert dram.row_hit_rate == 0.0
        dram.access_cycles(0)
        dram.access_cycles(64)
        assert dram.row_hit_rate == 0.5

    def test_invalid_banks(self):
        import pytest

        with pytest.raises(ValueError):
            DramModel(num_banks=0)
