"""Background-class migration: page moves must not drag foreground p99."""

from __future__ import annotations

from repro.memory.address import AddressMapper
from repro.memory.migration import MigrationEngine, PageDirectory
from repro.memory.node import MemoryNode
from repro.network.packet import PacketKind
from repro.network.qos import BACKGROUND_CLASS, QoSConfig
from repro.network.simulator import NetworkSimulator
from repro.network.stats import percentile
from repro.topologies.registry import make_policy, make_topology
from repro.traffic.injection import BernoulliInjector
from repro.traffic.patterns import make_pattern


def _migration_under_load(tclass: int) -> tuple[float, int]:
    """Evacuate 12 nodes at full blast while foreground traffic runs;
    returns (foreground p99, pages moved)."""
    topo = make_topology("DM", 36, seed=1)
    sim = NetworkSimulator(topo, make_policy(topo, adaptive=True))
    sim.install_qos(QoSConfig.default())
    active = list(topo.active_nodes)
    mapper = AddressMapper(active, interleave_bytes=4096)
    directory = PageDirectory()
    directory.populate(mapper, 384)
    nodes: dict[int, MemoryNode] = {}

    def memory_node(nid: int) -> MemoryNode:
        if nid not in nodes:
            nodes[nid] = MemoryNode(nid, sim, sim.config)
        return nodes[nid]

    engine = MigrationEngine(
        sim, mapper, directory, memory_node,
        rate_limit_bytes_per_cycle=2048.0, max_inflight_pages=16,
        tclass=tclass,
    )
    samples: list[int] = []
    sim.on_delivery(
        lambda p, now: samples.append(p.latency)
        if p.measured and p.kind is PacketKind.DATA else None
    )
    warmup, measure = 200, 1500
    BernoulliInjector(
        sim, make_pattern("uniform_random", active), 0.08,
        warmup=warmup, measure=measure, seed=5,
    ).start()
    victims = active[:12]
    sim.schedule(warmup, lambda t: engine.migrate_out(victims))
    sim.run(until=warmup + measure)
    sim.run(until=warmup + measure + 250_000)
    assert sim.stats.in_flight == 0, "packet conservation violated"
    assert directory.check_conservation()
    return percentile(samples, 99), engine.total_pages_moved


def test_background_class_protects_foreground_p99():
    """Satellite 2: tagging MIG_READ/MIG_DATA as the background class
    improves foreground p99 during migration vs the untagged baseline
    (untagged migration competes inside the latency class's own
    reservation and priority band)."""
    untagged_p99, untagged_pages = _migration_under_load(0)
    tagged_p99, tagged_pages = _migration_under_load(BACKGROUND_CLASS)
    assert untagged_pages == tagged_pages > 0, "unequal migration work"
    assert tagged_p99 < untagged_p99


def test_migration_packets_carry_engine_class():
    """Every MIG_READ/MIG_DATA packet is stamped with the engine's class."""
    topo = make_topology("SF", 16, seed=1)
    sim = NetworkSimulator(topo, make_policy(topo, adaptive=True))
    sim.install_qos(QoSConfig.default())
    active = list(topo.active_nodes)
    mapper = AddressMapper(active, interleave_bytes=4096)
    directory = PageDirectory()
    directory.populate(mapper, 32)
    nodes: dict[int, MemoryNode] = {}

    def memory_node(nid: int) -> MemoryNode:
        if nid not in nodes:
            nodes[nid] = MemoryNode(nid, sim, sim.config)
        return nodes[nid]

    engine = MigrationEngine(
        sim, mapper, directory, memory_node, tclass=BACKGROUND_CLASS,
    )
    seen: list[int] = []
    sim.on_delivery(
        lambda p, now: seen.append(p.tclass)
        if p.kind in (PacketKind.MIG_READ, PacketKind.MIG_DATA) else None
    )
    engine.migrate_out(active[:2])
    sim.run(until=200_000)
    assert seen, "no migration packets observed"
    assert set(seen) == {BACKGROUND_CLASS}
