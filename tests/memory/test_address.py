"""Address interleaving across memory nodes."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.address import AddressMapper


class TestMapping:
    def test_round_robin_blocks(self):
        mapper = AddressMapper([0, 1, 2], interleave_bytes=4096)
        assert mapper.node_of(0) == 0
        assert mapper.node_of(4096) == 1
        assert mapper.node_of(8192) == 2
        assert mapper.node_of(12288) == 0

    def test_within_block_same_node(self):
        mapper = AddressMapper([5, 9], interleave_bytes=4096)
        assert mapper.node_of(100) == mapper.node_of(4000)

    def test_negative_rejected(self):
        mapper = AddressMapper([0, 1])
        with pytest.raises(ValueError):
            mapper.node_of(-1)

    def test_bad_interleave(self):
        with pytest.raises(ValueError):
            AddressMapper([0], interleave_bytes=1000)
        with pytest.raises(ValueError):
            AddressMapper([0], interleave_bytes=0)

    def test_no_nodes(self):
        with pytest.raises(ValueError):
            AddressMapper([])

    def test_capacity(self):
        mapper = AddressMapper([0, 1, 2, 3], node_capacity_bytes=8 << 30)
        assert mapper.total_capacity_bytes == 32 << 30


class TestLocalOffset:
    def test_offset_roundtrip(self):
        mapper = AddressMapper([0, 1], interleave_bytes=4096)
        # First block on node 0 starts at local 0; third block (addr
        # 8192) is node 0's second block -> local 4096.
        assert mapper.local_offset(0) == 0
        assert mapper.local_offset(8192) == 4096
        assert mapper.local_offset(8192 + 100) == 4196

    @given(
        addr=st.integers(min_value=0, max_value=2**40),
        n=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=50)
    def test_offset_dense(self, addr, n):
        """Local offsets tile each node's space without holes."""
        mapper = AddressMapper(list(range(n)), interleave_bytes=4096)
        offset = mapper.local_offset(addr)
        assert 0 <= offset <= addr


class TestRebalance:
    def test_rebalance_new_nodes(self):
        mapper = AddressMapper([0, 1, 2, 3])
        smaller = mapper.rebalance([0, 2])
        assert smaller.nodes == [0, 2]
        assert smaller.interleave_bytes == mapper.interleave_bytes

    def test_rebalanced_mapping_valid(self):
        mapper = AddressMapper([0, 1, 2, 3]).rebalance([7, 9, 11])
        for addr in range(0, 1 << 20, 4096):
            assert mapper.node_of(addr) in (7, 9, 11)


@settings(max_examples=40, deadline=None)
@given(
    addr=st.integers(min_value=0, max_value=2**44),
    nodes=st.lists(
        st.integers(min_value=0, max_value=1295), min_size=1, max_size=32, unique=True
    ),
)
def test_property_node_always_valid(addr, nodes):
    mapper = AddressMapper(nodes)
    assert mapper.node_of(addr) in nodes
