"""Address interleaving across memory nodes."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.address import AddressMapper, migration_delta


class TestMapping:
    def test_round_robin_blocks(self):
        mapper = AddressMapper([0, 1, 2], interleave_bytes=4096)
        assert mapper.node_of(0) == 0
        assert mapper.node_of(4096) == 1
        assert mapper.node_of(8192) == 2
        assert mapper.node_of(12288) == 0

    def test_within_block_same_node(self):
        mapper = AddressMapper([5, 9], interleave_bytes=4096)
        assert mapper.node_of(100) == mapper.node_of(4000)

    def test_negative_rejected(self):
        mapper = AddressMapper([0, 1])
        with pytest.raises(ValueError):
            mapper.node_of(-1)

    def test_bad_interleave(self):
        with pytest.raises(ValueError):
            AddressMapper([0], interleave_bytes=1000)
        with pytest.raises(ValueError):
            AddressMapper([0], interleave_bytes=0)

    def test_no_nodes(self):
        with pytest.raises(ValueError):
            AddressMapper([])

    def test_capacity(self):
        mapper = AddressMapper([0, 1, 2, 3], node_capacity_bytes=8 << 30)
        assert mapper.total_capacity_bytes == 32 << 30


class TestLocalOffset:
    def test_offset_roundtrip(self):
        mapper = AddressMapper([0, 1], interleave_bytes=4096)
        # First block on node 0 starts at local 0; third block (addr
        # 8192) is node 0's second block -> local 4096.
        assert mapper.local_offset(0) == 0
        assert mapper.local_offset(8192) == 4096
        assert mapper.local_offset(8192 + 100) == 4196

    @given(
        addr=st.integers(min_value=0, max_value=2**40),
        n=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=50)
    def test_offset_dense(self, addr, n):
        """Local offsets tile each node's space without holes."""
        mapper = AddressMapper(list(range(n)), interleave_bytes=4096)
        offset = mapper.local_offset(addr)
        assert 0 <= offset <= addr


class TestRebalance:
    def test_rebalance_new_nodes(self):
        mapper = AddressMapper([0, 1, 2, 3])
        smaller = mapper.rebalance([0, 2])
        assert smaller.nodes == [0, 2]
        assert smaller.interleave_bytes == mapper.interleave_bytes

    def test_rebalanced_mapping_valid(self):
        mapper = AddressMapper([0, 1, 2, 3]).rebalance([7, 9, 11])
        for addr in range(0, 1 << 20, 4096):
            assert mapper.node_of(addr) in (7, 9, 11)


@settings(max_examples=40, deadline=None)
@given(
    addr=st.integers(min_value=0, max_value=2**44),
    nodes=st.lists(
        st.integers(min_value=0, max_value=1295), min_size=1, max_size=32, unique=True
    ),
)
def test_property_node_always_valid(addr, nodes):
    mapper = AddressMapper(nodes)
    assert mapper.node_of(addr) in nodes


PAGES = range(512)


def _brute_force_diff(old: AddressMapper, new: AddressMapper):
    """Independent reference for the migration delta."""
    moves = []
    for page in PAGES:
        addr = page * old.interleave_bytes
        src, dst = old.node_of(addr), new.node_of(addr)
        if src != dst:
            moves.append((page, src, dst))
    return moves


class TestMinimalMovement:
    """Down/up-scaling relocates only the data that had to move."""

    def test_gate_off_moves_only_victim_pages(self):
        full = AddressMapper(list(range(8)))
        victims = {2, 5}
        gated = full.rebalance([n for n in full.nodes if n not in victims])
        for page in PAGES:
            addr = full.page_addr(page)
            before, after = full.node_of(addr), gated.node_of(addr)
            if before in victims:
                assert after not in victims
            else:
                assert after == before  # survivors' data never moves

    def test_second_batch_moves_only_departed_owners(self):
        """Rendezvous spill is stable under further departures."""
        full = AddressMapper(list(range(12)))
        gen1 = full.rebalance([n for n in range(12) if n not in (3, 7)])
        second = {1, 9}
        gen2 = gen1.rebalance([n for n in gen1.nodes if n not in second])
        for page, src, _dst in _brute_force_diff(gen1, gen2):
            # Everything that moved was owned by a departing node —
            # previously spilled pages on surviving nodes stay put.
            assert src in second, f"page {page} moved off surviving node {src}"

    def test_gate_on_reclaims_only_homed_pages(self):
        full = AddressMapper(list(range(8)))
        victims = (2, 5)
        gated = full.rebalance([n for n in range(8) if n not in victims])
        restored = gated.rebalance(list(range(8)))
        for page, _src, dst in _brute_force_diff(gated, restored):
            assert full.home_of(restored.page_addr(page)) == dst
            assert dst in victims

    def test_round_trip_restores_original_mapping(self):
        full = AddressMapper(list(range(9)))
        gated = full.rebalance([n for n in range(9) if n % 3 != 0])
        restored = gated.rebalance(list(range(9)))
        for page in PAGES:
            addr = full.page_addr(page)
            assert restored.node_of(addr) == full.node_of(addr)
            assert restored.local_offset(addr) == full.local_offset(addr)

    def test_local_offsets_stable_across_generations(self):
        full = AddressMapper(list(range(8)))
        gated = full.rebalance([0, 1, 2, 3, 4, 6])
        for page in PAGES:
            addr = full.page_addr(page) + 128
            assert gated.local_offset(addr) == full.local_offset(addr)

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=24),
        data=st.data(),
        addr=st.integers(min_value=0, max_value=2**40),
    )
    def test_every_address_maps_to_exactly_one_active_node(self, n, data, addr):
        full = AddressMapper(list(range(n)))
        active = data.draw(
            st.lists(
                st.sampled_from(range(n)), min_size=1, max_size=n, unique=True
            )
        )
        mapper = full.rebalance(active)
        owner = mapper.node_of(addr)
        assert owner in set(active)
        # Deterministic: resolving twice gives the same single owner.
        assert mapper.node_of(addr) == owner


class TestMigrationDelta:
    def test_delta_matches_brute_force_diff(self):
        full = AddressMapper(list(range(10)))
        gated = full.rebalance([n for n in range(10) if n not in (1, 4, 8)])
        assert migration_delta(full, gated, PAGES) == _brute_force_diff(full, gated)

    def test_delta_scales_with_gated_fraction(self):
        full = AddressMapper(list(range(16)))
        one = full.rebalance([n for n in range(16) if n != 0])
        four = full.rebalance(list(range(4, 16)))
        moves_one = migration_delta(full, one, PAGES)
        moves_four = migration_delta(full, four, PAGES)
        # Interleaving puts 1/16th of pages on each node.
        assert len(moves_one) == len(PAGES) // 16
        assert len(moves_four) == 4 * len(PAGES) // 16

    def test_delta_empty_for_identical_mappers(self):
        full = AddressMapper(list(range(6)))
        assert migration_delta(full, full.rebalance(full.nodes), PAGES) == []

    def test_delta_rejects_mismatched_interleave(self):
        a = AddressMapper([0, 1], interleave_bytes=4096)
        b = AddressMapper([0, 1], interleave_bytes=8192)
        with pytest.raises(ValueError):
            migration_delta(a, b, PAGES)

    def test_delta_sorted_and_deduplicated(self):
        full = AddressMapper(list(range(5)))
        gated = full.rebalance([0, 1, 2, 3])
        moves = migration_delta(full, gated, [9, 4, 9, 14, 4])
        assert moves == sorted(moves)
        assert len(moves) == len({page for page, _s, _d in moves})
