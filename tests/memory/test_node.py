"""Memory-node service model."""

from __future__ import annotations

import pytest

from repro.core.routing import GreediestRouting
from repro.core.topology import StringFigureTopology
from repro.memory.node import MemoryNode
from repro.network.packet import Packet, PacketKind
from repro.network.policies import GreedyPolicy
from repro.network.simulator import NetworkSimulator


@pytest.fixture
def sim():
    topo = StringFigureTopology(8, 4, seed=0)
    return NetworkSimulator(topo, GreedyPolicy(GreediestRouting(topo)))


class TestService:
    def test_read_generates_response(self, sim):
        node = MemoryNode(3, sim)
        request = Packet(src=0, dst=3, kind=PacketKind.READ_REQ, context="tag")
        node.service(request, now=10, local_addr=0)
        sim.drain()
        assert sim.stats.delivered == 1  # the response reached node 0

    def test_write_is_silent(self, sim):
        node = MemoryNode(3, sim)
        request = Packet(src=0, dst=3, kind=PacketKind.WRITE_REQ)
        node.service(request, now=10, local_addr=0)
        sim.drain()
        assert sim.stats.delivered == 0

    def test_respond_false_suppresses(self, sim):
        node = MemoryNode(3, sim)
        request = Packet(src=0, dst=3, kind=PacketKind.READ_REQ)
        node.service(request, now=10, local_addr=0, respond=False)
        sim.drain()
        assert sim.stats.delivered == 0

    def test_controller_serializes(self, sim):
        """Back-to-back requests queue at the controller."""
        node = MemoryNode(3, sim)
        t1 = node.service(
            Packet(src=0, dst=3, kind=PacketKind.WRITE_REQ), 0, 0
        )
        t2 = node.service(
            Packet(src=0, dst=3, kind=PacketKind.WRITE_REQ), 0, 64
        )
        assert t2 > t1

    def test_dram_energy_tallied(self, sim):
        node = MemoryNode(3, sim)
        node.service(Packet(src=0, dst=3, kind=PacketKind.WRITE_REQ), 0, 0)
        assert sim.stats.dram_bits == 8 * 64

    def test_context_carried_to_response(self, sim):
        node = MemoryNode(3, sim)
        seen = []
        sim.on_delivery(lambda pkt, t: seen.append(pkt))
        node.service(
            Packet(src=0, dst=3, kind=PacketKind.READ_REQ, context=("x", 1)),
            0,
            0,
        )
        sim.drain()
        assert seen[0].context == ("x", 1)
        assert seen[0].kind is PacketKind.READ_RESP
