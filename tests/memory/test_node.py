"""Memory-node service model."""

from __future__ import annotations

import pytest

from repro.core.routing import GreediestRouting
from repro.core.topology import StringFigureTopology
from repro.memory.node import MemoryNode
from repro.network.packet import Packet, PacketKind
from repro.network.policies import GreedyPolicy
from repro.network.simulator import NetworkSimulator


@pytest.fixture
def sim():
    topo = StringFigureTopology(8, 4, seed=0)
    return NetworkSimulator(topo, GreedyPolicy(GreediestRouting(topo)))


class TestService:
    def test_read_generates_response(self, sim):
        node = MemoryNode(3, sim)
        request = Packet(src=0, dst=3, kind=PacketKind.READ_REQ, context="tag")
        node.service(request, now=10, local_addr=0)
        sim.drain()
        assert sim.stats.delivered == 1  # the response reached node 0

    def test_write_is_silent(self, sim):
        node = MemoryNode(3, sim)
        request = Packet(src=0, dst=3, kind=PacketKind.WRITE_REQ)
        node.service(request, now=10, local_addr=0)
        sim.drain()
        assert sim.stats.delivered == 0

    def test_respond_false_suppresses(self, sim):
        node = MemoryNode(3, sim)
        request = Packet(src=0, dst=3, kind=PacketKind.READ_REQ)
        node.service(request, now=10, local_addr=0, respond=False)
        sim.drain()
        assert sim.stats.delivered == 0

    def test_controller_serializes(self, sim):
        """Back-to-back requests queue at the controller."""
        node = MemoryNode(3, sim)
        t1 = node.service(
            Packet(src=0, dst=3, kind=PacketKind.WRITE_REQ), 0, 0
        )
        t2 = node.service(
            Packet(src=0, dst=3, kind=PacketKind.WRITE_REQ), 0, 64
        )
        assert t2 > t1

    def test_dram_energy_tallied(self, sim):
        node = MemoryNode(3, sim)
        node.service(Packet(src=0, dst=3, kind=PacketKind.WRITE_REQ), 0, 0)
        assert sim.stats.dram_bits == 8 * 64

    def test_context_carried_to_response(self, sim):
        node = MemoryNode(3, sim)
        seen = []
        sim.on_delivery(lambda pkt, t: seen.append(pkt))
        node.service(
            Packet(src=0, dst=3, kind=PacketKind.READ_REQ, context=("x", 1)),
            0,
            0,
        )
        sim.drain()
        assert seen[0].context == ("x", 1)
        assert seen[0].kind is PacketKind.READ_RESP


ROW_BYTES = 2048  # DramModel default: one row per bank stripe


class TestBankParallelism:
    """The controller tracks occupancy per bank, not per node."""

    def test_different_banks_overlap(self, sim):
        node = MemoryNode(3, sim)
        t1 = node.service(
            Packet(src=0, dst=3, kind=PacketKind.WRITE_REQ), 0, 0
        )
        # Next row lives in the next bank: same issue time, no queueing.
        t2 = node.service(
            Packet(src=0, dst=3, kind=PacketKind.WRITE_REQ), 0, ROW_BYTES
        )
        assert node.dram.bank_of(0) != node.dram.bank_of(ROW_BYTES)
        assert t2 == t1  # identical first-access latency, in parallel

    def test_same_bank_still_serializes(self, sim):
        node = MemoryNode(3, sim)
        same_bank = ROW_BYTES * node.dram.num_banks
        assert node.dram.bank_of(0) == node.dram.bank_of(same_bank)
        t1 = node.service(Packet(src=0, dst=3, kind=PacketKind.WRITE_REQ), 0, 0)
        t2 = node.service(
            Packet(src=0, dst=3, kind=PacketKind.WRITE_REQ), 0, same_bank
        )
        assert t2 > t1

    def test_bulk_transfer_spans_banks(self, sim):
        """A page transfer overlaps rows across banks."""
        node = MemoryNode(3, sim)
        done = node.service_bulk(0, 0, 4096)  # two rows -> two banks
        # Serial execution would take at least two full row activations;
        # the second row overlaps in its own bank instead.
        serial_node = MemoryNode(4, sim, num_banks=1)
        serial_done = serial_node.service_bulk(0, 0, 4096)
        assert done < serial_done
        assert node.busy_until == done

    def test_migration_write_overlaps_foreground_read(self, sim):
        """The satellite's point: bulk traffic does not block other banks."""
        node = MemoryNode(3, sim)
        bulk_done = node.service_bulk(0, 0, 4096)  # occupies banks 0 and 1
        fg_addr = 2 * ROW_BYTES  # bank 2: untouched by the bulk write
        fg_done = node.service(
            Packet(src=0, dst=3, kind=PacketKind.READ_REQ), 0, fg_addr,
            respond=False,
        )
        assert fg_done < bulk_done  # served in parallel, not queued behind

    def test_bulk_rejects_empty_transfer(self, sim):
        node = MemoryNode(3, sim)
        with pytest.raises(ValueError):
            node.service_bulk(0, 0, 0)
