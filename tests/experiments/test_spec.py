"""ExperimentSpec expansion, serialization and hashing."""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentSpec, ExperimentTask


class TestExpansion:
    def test_synthetic_grid_size_and_order(self):
        spec = ExperimentSpec(
            name="grid",
            kind="synthetic",
            designs=("SF", "DM"),
            nodes=(16, 36),
            patterns=("uniform_random", "tornado"),
            rates=(0.1, 0.2, 0.3),
            seeds=(0, 1),
        )
        tasks = spec.tasks()
        assert len(tasks) == 2 * 2 * 2 * 3 * 2
        # Deterministic expansion order: design-major.
        assert tasks[0].design == "SF" and tasks[-1].design == "DM"
        assert tasks == spec.tasks()

    def test_saturation_ignores_rates(self):
        spec = ExperimentSpec(
            name="sat", kind="saturation", designs=("SF",),
            nodes=(16,), patterns=("uniform_random",), rates=(0.1, 0.9),
        )
        tasks = spec.tasks()
        assert len(tasks) == 1
        assert tasks[0].rate is None

    def test_workload_grid(self):
        spec = ExperimentSpec(
            name="wl", kind="workload", designs=("SF", "DM"),
            nodes=(16,), workloads=("redis", "grep"),
        )
        tasks = spec.tasks()
        assert len(tasks) == 4
        assert {t.workload for t in tasks} == {"redis", "grep"}
        assert all(t.pattern is None for t in tasks)

    def test_workload_kind_requires_workloads(self):
        with pytest.raises(ValueError, match="workload"):
            ExperimentSpec(name="bad", kind="workload")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            ExperimentSpec(name="bad", kind="quantum")

    def test_unknown_design_rejected_at_declaration(self):
        with pytest.raises(ValueError, match="WARP"):
            ExperimentSpec(name="bad", designs=("SF", "WARP"))

    def test_design_aliases_canonicalized(self):
        # Alias spellings collapse to one task/cache identity.
        spec = ExperimentSpec(name="alias", designs=("string-figure",))
        canonical = ExperimentSpec(name="alias", designs=("SF",))
        assert spec.tasks()[0].design == "SF"
        assert spec.tasks()[0].key() == canonical.tasks()[0].key()

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="nodes"):
            ExperimentSpec(name="bad", nodes=())
        with pytest.raises(ValueError, match="patterns"):
            ExperimentSpec(name="bad", kind="saturation", patterns=())


class TestTaskIdentity:
    def test_key_stable_across_param_ordering(self):
        a = ExperimentTask(
            kind="synthetic", design="SF", nodes=16, rate=0.1,
            pattern="uniform_random",
            sim_params=(("measure", 100), ("warmup", 50)),
        )
        b = ExperimentTask.from_dict(
            {
                "kind": "synthetic", "design": "SF", "nodes": 16,
                "rate": 0.1, "pattern": "uniform_random",
                "sim_params": {"warmup": 50, "measure": 100},
            }
        )
        assert a == b
        assert a.key() == b.key()

    def test_key_sensitive_to_every_axis(self):
        base = ExperimentTask(
            kind="synthetic", design="SF", nodes=16, rate=0.1,
            pattern="uniform_random",
        )
        variants = [
            ExperimentTask(kind="synthetic", design="S2", nodes=16,
                           rate=0.1, pattern="uniform_random"),
            ExperimentTask(kind="synthetic", design="SF", nodes=36,
                           rate=0.1, pattern="uniform_random"),
            ExperimentTask(kind="synthetic", design="SF", nodes=16,
                           rate=0.2, pattern="uniform_random"),
            ExperimentTask(kind="synthetic", design="SF", nodes=16,
                           rate=0.1, pattern="tornado"),
            ExperimentTask(kind="synthetic", design="SF", nodes=16,
                           rate=0.1, pattern="uniform_random", seed=1),
            ExperimentTask(kind="synthetic", design="SF", nodes=16,
                           rate=0.1, pattern="uniform_random",
                           topology_seed=1),
        ]
        keys = {base.key()} | {v.key() for v in variants}
        assert len(keys) == 1 + len(variants)

    def test_dict_round_trip(self):
        task = ExperimentTask(
            kind="path_stats", design="SF", nodes=96, seed=1,
            topology_params=(("coord_bits", None), ("ports", 4)),
            sim_params=(("sample_pairs", 800),),
        )
        assert ExperimentTask.from_dict(task.to_dict()) == task


class TestSpecSerialization:
    def test_json_round_trip(self):
        spec = ExperimentSpec(
            name="rt", kind="synthetic", designs=("SF", "ODM"),
            nodes=(16, 36), rates=(0.05, 0.2), seeds=(3,),
            topology_seed=4, sim_params={"warmup": 10},
            topology_params={"ports": 4},
        )
        restored = ExperimentSpec.from_json(spec.to_json())
        assert restored.tasks() == spec.tasks()
        assert restored.spec_hash() == spec.spec_hash()

    def test_from_file(self, tmp_path):
        spec = ExperimentSpec(name="file", designs=("SF",), nodes=(16,))
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        assert ExperimentSpec.from_file(path).tasks() == spec.tasks()

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown spec fields"):
            ExperimentSpec.from_dict({"name": "x", "turbo": True})

    def test_with_overrides_merges_mappings(self):
        base = ExperimentSpec(
            name="base", topology_params={"ports": 4},
            sim_params={"sample_pairs": 800},
        )
        variant = base.with_overrides(
            name="variant", topology_params={"direction": "uni"},
        )
        params = dict(variant.tasks()[0].topology_params)
        assert params == {"ports": 4, "direction": "uni"}
        # The base spec is untouched.
        assert "direction" not in dict(base.tasks()[0].topology_params)
