"""Determinism regression: worker count cannot change sweep results.

The engine's core guarantee — tasks are pure functions of their spec
fields with explicit seeds — means a sweep must produce bit-identical
payloads whether it runs in-process or across a multiprocessing pool,
fresh or with warm per-process memo caches.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentSpec, ParallelRunner, clear_memo

SPEC = ExperimentSpec(
    name="determinism",
    kind="synthetic",
    designs=("SF", "DM"),
    nodes=(16,),
    patterns=("uniform_random", "tornado"),
    rates=(0.05, 0.15),
    seeds=(6,),
    topology_seed=4,
    sim_params={"warmup": 30, "measure": 80, "drain_limit": 2000},
)


def test_serial_and_parallel_payloads_identical():
    serial = ParallelRunner(workers=1).run(SPEC)
    parallel = ParallelRunner(workers=4).run(SPEC)
    assert [t.key() for t in serial.tasks] == [t.key() for t in parallel.tasks]
    for task, payload in serial:
        assert parallel.payload(task) == payload, task.label()


def test_isolate_runner_payloads_identical():
    """Core pinning changes scheduling, never payloads."""
    serial = ParallelRunner(workers=1).run(SPEC)
    isolated = ParallelRunner(workers=4, isolate=True).run(SPEC)
    for task, payload in serial:
        assert isolated.payload(task) == payload, task.label()


def test_isolate_perf_sweep_reports_logical_events():
    """Perf payloads under --isolate: lazy and eager cores report the
    same logical event count (and identical traffic statistics); only
    the heap traffic differs."""
    spec = ExperimentSpec(
        name="perf-isolate",
        kind="perf",
        designs=("SF",),
        nodes=(16,),
        patterns=("uniform_random",),
        rates=(0.05,),
        seeds=(0,),
        sim_params={"warmup": 30, "measure": 80, "drain_limit": 2000,
                    "repeats": 1},
    )
    lazy = ParallelRunner(workers=0, isolate=True).run(spec)
    eager = ParallelRunner(workers=1).run(
        spec.with_overrides(sim_params={"eager_link_events": True})
    )
    payload = next(iter(lazy))[1]
    epayload = next(iter(eager))[1]
    assert epayload["link_events_elided"] == 0
    assert payload["link_events_elided"] > 0
    assert (payload["events_processed"] + payload["link_events_elided"]
            == payload["events"])
    assert payload["events"] == epayload["events"]
    for key in ("sent", "delivered", "avg_latency", "p99_latency",
                "avg_hops", "accepted_rate"):
        assert payload[key] == epayload[key], key


def test_repeat_runs_identical_with_warm_memo():
    clear_memo()
    runner = ParallelRunner(workers=1, keep_memo=True)
    cold = runner.run(SPEC)
    # Second serial run reuses memoized topologies/policies in-process;
    # reuse must be observationally invisible.
    warm = runner.run(SPEC)
    for task, payload in cold:
        assert warm.payload(task) == payload, task.label()
    clear_memo()


@pytest.mark.slow
def test_churn_sweep_deterministic_across_workers():
    """Live reconfiguration is still a pure function of the task.

    Churn tasks build fresh topologies (never the shared memos) and
    mutate them mid-run, so this pins the strongest engine guarantee:
    stateful gate/wake sequences produce bit-identical payloads at any
    worker count.
    """
    spec = ExperimentSpec(
        name="determinism-churn",
        kind="churn",
        designs=("SF",),
        nodes=(32, 48),
        patterns=("uniform_random",),
        rates=(0.08, 0.15),
        seeds=(3,),
        topology_seed=5,
        sim_params={"warmup": 150, "measure": 2500, "drain_limit": 30_000,
                    "gate_fraction": 0.2},
    )
    serial = ParallelRunner(workers=1).run(spec)
    parallel = ParallelRunner(workers=4).run(spec)
    assert [t.key() for t in serial.tasks] == [t.key() for t in parallel.tasks]
    for task, payload in serial:
        assert parallel.payload(task) == payload, task.label()
        # Conservation holds at every grid point, under both modes.
        assert payload["sent"] == payload["delivered"], task.label()


def test_workload_replay_deterministic_across_workers():
    spec = ExperimentSpec(
        name="determinism-workload",
        kind="workload",
        designs=("SF", "DM"),
        nodes=(16,),
        workloads=("grep",),
        topology_seed=3,
        sim_params={"trace_accesses": 200, "trace_scale": 0.01,
                    "trace_seed": 7},
    )
    serial = ParallelRunner(workers=1).run(spec)
    parallel = ParallelRunner(workers=4).run(spec)
    for task, payload in serial:
        assert parallel.payload(task) == payload, task.label()


def test_faults_sweep_deterministic_across_workers():
    """Unplanned failures are still a pure function of the task.

    Fault times, victim picks, detection actions, retransmissions, and
    crash recovery all derive from the task seeds, so a faults sweep
    must produce bit-identical payloads at any worker count — and the
    loss-conservation law must hold at every grid point.
    """
    spec = ExperimentSpec(
        name="determinism-faults",
        kind="faults",
        designs=("SF", "DM"),
        nodes=(32,),
        patterns=("uniform_random",),
        rates=(0.08,),
        seeds=(2, 5),
        topology_seed=4,
        sim_params={"warmup": 150, "measure": 2000, "drain_limit": 30_000,
                    "fault_rate": 0.003, "footprint_pages": 32,
                    "detection_timeout": 150},
    )
    serial = ParallelRunner(workers=1).run(spec)
    parallel = ParallelRunner(workers=4).run(spec)
    assert [t.key() for t in serial.tasks] == [t.key() for t in parallel.tasks]
    for task, payload in serial:
        assert parallel.payload(task) == payload, task.label()
        assert payload["sent"] == payload["delivered"] + payload["lost"], (
            task.label()
        )
        assert payload["page_conservation"], task.label()


def test_migration_sweep_deterministic_across_workers():
    """Data migration is still a pure function of the task.

    Migration tasks thread page moves through the event loop as real
    traffic racing the foreground load, so this pins that the whole
    engine (delta computation, rate-limited issue, stall/forward
    rulings) is deterministic at any worker count — and that both
    conservation invariants hold at every grid point.
    """
    spec = ExperimentSpec(
        name="determinism-migration",
        kind="migration",
        designs=("SF",),
        nodes=(32,),
        patterns=("uniform_random",),
        rates=(0.06, 0.1),
        seeds=(3,),
        topology_seed=5,
        sim_params={"warmup": 150, "measure": 2000, "drain_limit": 30_000,
                    "gate_fraction": 0.25, "footprint_pages": 64,
                    "rate_limit": 64.0},
    )
    serial = ParallelRunner(workers=1).run(spec)
    parallel = ParallelRunner(workers=4).run(spec)
    assert [t.key() for t in serial.tasks] == [t.key() for t in parallel.tasks]
    for task, payload in serial:
        assert parallel.payload(task) == payload, task.label()
        assert payload["sent"] == payload["delivered"], task.label()
        assert payload["fg_issued"] == payload["fg_completed"], task.label()
        assert payload["page_conservation"], task.label()
