"""The ``anatomy`` experiment kind: expansion, payload, report columns.

An ``anatomy`` task is an interference run with the latency anatomy
installed: the simulated results stay bit-identical to the plain
``interference`` kind (instrumentation never schedules events), and
the payload gains flat ``obs_``-prefixed decomposition fields that the
sweep report surfaces as auto-columns.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentSpec, ParallelRunner
from repro.experiments.report import sweep_table
from repro.experiments.worker import execute_task
from repro.obs.anatomy import COMPONENTS

SIM_PARAMS = {"warmup": 200, "measure": 600, "drain_limit": 60_000,
              "mode": "incast"}


def make_spec(**overrides):
    params = dict(
        name="anatomy-test",
        kind="anatomy",
        designs=("SF",),
        nodes=(36,),
        patterns=("uniform_random",),
        rates=(0.2,),
        seeds=(0,),
        topology_seed=1,
        sim_params=dict(SIM_PARAMS),
    )
    params.update(overrides)
    return ExperimentSpec(**params)


def test_kind_is_registered_and_requires_rates_and_patterns():
    assert make_spec().tasks()
    with pytest.raises(ValueError):
        make_spec(rates=()).tasks()
    with pytest.raises(ValueError):
        make_spec(patterns=()).tasks()


def test_grid_expansion_covers_axes():
    tasks = make_spec(rates=(0.1, 0.3), seeds=(0, 1)).tasks()
    assert len(tasks) == 4
    assert all(t.kind == "anatomy" for t in tasks)


def test_payload_carries_decomposition_fields():
    payload = execute_task(make_spec().tasks()[0])
    assert payload["obs_anatomy_conserved"] is True
    assert payload["obs_anatomy_delivered"] > 0
    fractions = [payload[f"obs_{name}_frac"] for name in COMPONENTS]
    assert sum(fractions) == pytest.approx(1.0, abs=0.001)
    assert "obs_hot_link_0" in payload


def test_simulated_results_match_plain_interference():
    """The anatomy kind never perturbs the run it is measuring."""
    anatomy = execute_task(make_spec().tasks()[0])
    plain = execute_task(make_spec(kind="interference").tasks()[0])
    stripped = {k: v for k, v in anatomy.items() if not k.startswith("obs_")}
    assert stripped == plain


def test_payload_deterministic_across_runs():
    task = make_spec().tasks()[0]
    assert execute_task(task) == execute_task(task)


def test_sweep_table_appends_obs_columns():
    result = ParallelRunner(workers=1).run(make_spec())
    table = sweep_table(result)
    assert "anatomy_conserved" in table
    assert "credit_stall_frac" in table
    assert "hot_link_0" in table
