"""The ``interference`` experiment kind: expansion, determinism, report."""

from __future__ import annotations

from repro.experiments import ExperimentSpec, ParallelRunner
from repro.experiments.report import sweep_table

SPEC = ExperimentSpec(
    name="interference-det",
    kind="interference",
    designs=("SF", "DM"),
    nodes=(36,),
    patterns=("uniform_random",),
    rates=(0.1, 0.35),
    seeds=(0,),
    topology_seed=1,
    sim_params={"warmup": 200, "measure": 600, "drain_limit": 60_000,
                "mode": "burst"},
)


def test_grid_expansion_covers_axes():
    tasks = SPEC.tasks()
    assert len(tasks) == 4
    assert {t.design for t in tasks} == {"SF", "DM"}
    assert {t.rate for t in tasks} == {0.1, 0.35}


def test_serial_and_parallel_payloads_identical():
    """Satellite 3: a 4-worker interference sweep is bit-identical to
    the serial run — the QoS arbiter state is task-local."""
    serial = ParallelRunner(workers=1).run(SPEC)
    parallel = ParallelRunner(workers=4).run(SPEC)
    assert [t.key() for t in serial.tasks] == [t.key() for t in parallel.tasks]
    for task, payload in serial:
        assert parallel.payload(task) == payload, task.label()


def test_payload_and_report_surface_per_class_columns():
    result = ParallelRunner(workers=1).run(SPEC)
    for _task, payload in result:
        assert payload["conserved"] and payload["drained"]
        for key in ("fg_p50", "fg_p99", "bulk_p50", "bulk_p99",
                    "p99_ratio", "mode", "qos", "radix"):
            assert key in payload
    table = sweep_table(result)
    assert "fg_p99" in table and "bulk_p99" in table


def test_classless_variant_rides_sim_params():
    spec = ExperimentSpec(
        name="interference-raw",
        kind="interference",
        designs=("SF",),
        nodes=(36,),
        patterns=("uniform_random",),
        rates=(0.1,),
        seeds=(0,),
        topology_seed=1,
        sim_params={"warmup": 200, "measure": 400, "mode": "noise",
                    "qos": False},
    )
    result = ParallelRunner(workers=1).run(spec)
    (_task, payload), = list(result)
    assert payload["qos"] is False
