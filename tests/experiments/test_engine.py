"""ParallelRunner execution, caching and memoization behavior."""

from __future__ import annotations

import pytest

from repro.experiments import (
    ExperimentSpec,
    ExperimentTask,
    ParallelRunner,
    ResultCache,
    clear_memo,
    execute_task,
    memo_sizes,
)

QUICK_SIM = {"warmup": 30, "measure": 80, "drain_limit": 2000}


def quick_spec(**overrides) -> ExperimentSpec:
    fields = dict(
        name="quick",
        kind="synthetic",
        designs=("SF",),
        nodes=(16,),
        patterns=("uniform_random",),
        rates=(0.05, 0.1),
        seeds=(0,),
        sim_params=QUICK_SIM,
    )
    fields.update(overrides)
    return ExperimentSpec(**fields)


class TestSerialExecution:
    def test_all_tasks_get_payloads(self):
        result = ParallelRunner().run(quick_spec())
        assert len(result) == 2
        for _task, payload in result:
            assert payload["measured_delivered"] > 0
            assert payload["accepted_rate"] == pytest.approx(1.0)

    def test_select_and_value(self):
        result = ParallelRunner().run(quick_spec())
        assert len(result.select(design="SF")) == 2
        latency = result.value("avg_latency", rate=0.1)
        assert latency > 0
        with pytest.raises(KeyError):
            result.get(design="DM")

    def test_duplicate_tasks_run_once(self):
        spec = quick_spec()
        result = ParallelRunner().run([spec, spec])
        assert len(result) == 2
        assert result.cache_misses == 2

    def test_unsupported_scale_is_data_not_error(self):
        # DM (mesh) cannot be built at 17 nodes.
        result = ParallelRunner().run(
            quick_spec(designs=("DM",), nodes=(17,), rates=(0.05,))
        )
        payload = result.get(design="DM")
        assert payload.get("unsupported") is True

    def test_unknown_kind_raises(self):
        task = ExperimentTask(kind="bogus", design="SF", nodes=16)
        with pytest.raises(ValueError, match="bogus"):
            execute_task(task)

    def test_workers_validation(self):
        with pytest.raises(ValueError):
            ParallelRunner(workers=-2)

    def test_programmer_errors_propagate(self):
        # A typo'd topology kwarg is a bug, not an unsupported point —
        # it must raise, serially and through the pool alike.
        spec = ExperimentSpec(
            name="typo", kind="path_stats", designs=("SF",),
            nodes=(16, 24), topology_params={"cord_bits": 5},
            sim_params={"sample_pairs": 20},
        )
        with pytest.raises(TypeError):
            ParallelRunner().run(spec)
        with pytest.raises(TypeError):
            ParallelRunner(workers=2).run(spec)


class TestCaching:
    def test_second_run_hits_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = ParallelRunner(cache=cache)
        spec = quick_spec()
        first = runner.run(spec)
        assert (first.cache_hits, first.cache_misses) == (0, 2)
        second = runner.run(spec)
        assert (second.cache_hits, second.cache_misses) == (2, 0)
        assert second.payloads == first.payloads

    def test_extending_grid_only_simulates_new_points(self, tmp_path):
        runner = ParallelRunner(cache=ResultCache(tmp_path))
        runner.run(quick_spec())
        extended = runner.run(quick_spec(rates=(0.05, 0.1, 0.2)))
        assert extended.cache_hits == 2
        assert extended.cache_misses == 1

    def test_perf_tasks_never_cached(self, tmp_path):
        """Wall-clock payloads must not be replayed as fresh timings."""
        cache = ResultCache(tmp_path)
        runner = ParallelRunner(cache=cache)
        spec = ExperimentSpec(
            name="perf-nocache", kind="perf", designs=("SF",), nodes=(16,),
            rates=(0.1,), seeds=(0,),
            sim_params={"warmup": 30, "measure": 80, "drain_limit": 2000,
                        "repeats": 1},
        )
        first = runner.run(spec)
        assert (first.cache_hits, first.cache_misses) == (0, 1)
        assert len(cache) == 0  # nothing stored
        second = runner.run(spec)
        assert (second.cache_hits, second.cache_misses) == (0, 1)

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = quick_spec().tasks()[0]
        cache.path_for(task).write_text("{not json")
        assert cache.get(task) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = ParallelRunner(cache=cache)
        runner.run(quick_spec())
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_code_change_invalidates_generation(self, tmp_path):
        spec = quick_spec()
        old = ParallelRunner(cache=ResultCache(tmp_path, fingerprint="aaa"))
        old.run(spec)
        # Same cache root, different code fingerprint: stale entries
        # must not be served.
        new_cache = ResultCache(tmp_path, fingerprint="bbb")
        result = ParallelRunner(cache=new_cache).run(spec)
        assert result.cache_hits == 0
        assert result.cache_misses == 2

    def test_stale_generations_pruned(self, tmp_path):
        stale = tmp_path / "0123456789ab"
        stale.mkdir()
        (stale / "deadbeef.json").write_text("{}")
        keep = tmp_path / "not-a-fingerprint"
        keep.mkdir()
        cache = ResultCache(tmp_path, fingerprint="aaaaaaaaaaaa")
        assert not stale.exists()
        assert keep.exists()
        assert cache.directory.exists()

    def test_hand_built_alias_task_shares_cache_identity(self):
        lower = ExperimentTask(
            kind="synthetic", design="sf", nodes=16,
            pattern="uniform_random", rate=0.1,
        )
        upper = ExperimentTask(
            kind="synthetic", design="SF", nodes=16,
            pattern="uniform_random", rate=0.1,
        )
        assert lower.design == "SF"
        assert lower.key() == upper.key()

    def test_default_fingerprint_is_stable(self, tmp_path):
        a = ResultCache(tmp_path)
        b = ResultCache(tmp_path)
        assert a.fingerprint == b.fingerprint
        assert len(a.fingerprint) == 12
        assert a.directory == b.directory


class TestMemoization:
    def test_topology_built_once_per_grid(self):
        clear_memo()
        ParallelRunner(keep_memo=True).run(
            quick_spec(rates=(0.05, 0.1, 0.2, 0.3))
        )
        sizes = memo_sizes()
        assert sizes["topologies"] == 1
        assert sizes["policies"] == 1
        clear_memo()
        assert memo_sizes()["topologies"] == 0

    def test_memo_cleared_after_sweep_by_default(self):
        clear_memo()
        ParallelRunner().run(quick_spec())
        assert memo_sizes()["topologies"] == 0

    def test_distinct_topology_params_not_conflated(self):
        clear_memo()
        runner = ParallelRunner(keep_memo=True)
        base = ExperimentSpec(
            name="ps", kind="path_stats", designs=("SF",), nodes=(24,),
            seeds=(1,), topology_params={"ports": 4},
            sim_params={"sample_pairs": 100},
        )
        uni = base.with_overrides(topology_params={"direction": "uni"})
        result = runner.run([base, uni])
        hops = [payload["mean_hops"] for _task, payload in result]
        assert memo_sizes()["topologies"] == 2
        # Uni-directional routing pays extra hops — the two variants
        # really were built separately.
        assert hops[1] > hops[0]
        clear_memo()


class TestKinds:
    def test_saturation_payload(self, tmp_path):
        spec = ExperimentSpec(
            name="sat", kind="saturation", designs=("SF",), nodes=(16,),
            patterns=("uniform_random",), seeds=(2,),
            sim_params={"warmup": 40, "measure": 100,
                        "drain_limit": 2000, "resolution": 0.2},
        )
        payload = ParallelRunner().run(spec).get(design="SF")
        assert 0.0 <= payload["saturation_rate"] <= 1.0

    def test_workload_payload(self):
        spec = ExperimentSpec(
            name="wl", kind="workload", designs=("SF",), nodes=(16,),
            workloads=("grep",),
            sim_params={"trace_accesses": 200, "trace_scale": 0.01,
                        "trace_seed": 0},
        )
        payload = ParallelRunner().run(spec).get(workload="grep")
        assert payload["operations"] > 0
        assert payload["throughput_ops_per_kcycle"] > 0
        assert payload["network_pj"] > 0
        assert payload["radix"] == 4

    def test_path_stats_payload(self):
        spec = ExperimentSpec(
            name="ps", kind="path_stats", designs=("SF",), nodes=(24,),
            seeds=(1,), sim_params={"sample_pairs": 100},
        )
        payload = ParallelRunner().run(spec).get(design="SF")
        assert payload["mean_hops"] >= 1.0
        assert payload["max_hops"] >= payload["p90_hops"]
        assert 0.0 <= payload["min_balance"] <= 1.0

    def test_path_stats_on_table_routed_design_is_unsupported(self):
        # Mesh has no greediest protocol; the point is data, not a crash.
        spec = ExperimentSpec(
            name="ps-dm", kind="path_stats", designs=("DM",), nodes=(16,),
            sim_params={"sample_pairs": 50},
        )
        payload = ParallelRunner().run(spec).get(design="DM")
        assert payload.get("unsupported") is True

    def test_workload_seed_axis_varies_the_trace(self):
        spec = ExperimentSpec(
            name="wl-seeds", kind="workload", designs=("SF",), nodes=(16,),
            workloads=("grep",), seeds=(0, 1),
            sim_params={"trace_accesses": 200, "trace_scale": 0.01},
        )
        result = ParallelRunner().run(spec)
        a = result.get(seed=0)
        b = result.get(seed=1)
        # Different seeds collect different traces -> different replays.
        assert a != b
