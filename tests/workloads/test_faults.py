"""Fault scenario tests: conservation, determinism anchors, phases."""

from __future__ import annotations

import pytest

from repro.faults.injector import FaultEvent, FaultPlan
from repro.topologies.registry import make_policy, make_topology
from repro.workloads.faults import run_faults


def test_no_fault_run_is_bit_identical_to_plain_simulator():
    """With an empty fault plan the whole stack must be a no-op.

    The fault layer's arrival intercept, the availability gates, and
    the (idle) page machinery may not perturb a single event: the
    SimStats of a faultless run_faults must equal a plain
    run_synthetic bit for bit.
    """
    from repro.network.config import NetworkConfig
    from repro.traffic.injection import run_synthetic
    from repro.traffic.patterns import make_pattern
    from tests.network.golden_grid import stats_digest

    params = dict(rate=0.12, warmup=100, measure=900, seed=3)
    topo = make_topology("SF", 48, seed=0)
    faulty = run_faults(
        topo, plan=FaultPlan([]), footprint_pages=16,
        rate=params["rate"], warmup=params["warmup"],
        measure=params["measure"], seed=params["seed"],
    )
    topo2 = make_topology("SF", 48, seed=0)
    plain = run_synthetic(
        topo2, make_policy(topo2),
        make_pattern("uniform_random", topo2.active_nodes),
        params["rate"],
        config=NetworkConfig(emergency_stall_threshold=16),
        warmup=params["warmup"], measure=params["measure"],
        seed=params["seed"],
    )
    assert stats_digest(faulty.stats) == stats_digest(plain)
    assert faulty.stats.dropped == 0
    assert faulty.payload()["num_faults"] == 0


@pytest.mark.parametrize("design,nodes", [("SF", 32), ("DM", 36), ("Jellyfish", 32)])
def test_mixed_faults_conserve_everything(design, nodes):
    topo = make_topology(design, nodes, seed=0)
    result = run_faults(
        topo, rate=0.08, schedule="random", fault_rate=0.003,
        footprint_pages=32, warmup=200, measure=2500, seed=2,
    )
    payload = result.payload()
    assert payload["num_faults"] > 0
    assert payload["conserved"], (payload["sent"], payload["delivered"], payload["lost"])
    assert payload["sent"] == payload["delivered"] + payload["lost"]
    assert payload["page_conservation"]
    assert payload["page_residency_ok"]
    # Every loss is attributed to exactly one cause.
    assert payload["lost"] == (
        payload["dropped_link"] + payload["dropped_crash"]
        + payload["dropped_unreachable"] + payload["dropped_flush"]
    )


def test_crash_plus_recovery_conservation_and_residency():
    """The acceptance invariants through a crash-and-recover run."""
    topo = make_topology("SF", 64, seed=0)
    result = run_faults(
        topo, rate=0.1, schedule="crash", footprint_pages=64,
        mirrored=True, warmup=200, measure=3000, seed=0,
    )
    payload = result.payload()
    assert payload["num_faults"] == 1
    assert payload["conserved"]
    assert payload["pages_lost"] == 0
    assert payload["pages_recovered"] >= 1
    assert payload["recoveries_done"]
    assert payload["page_conservation"]
    assert payload["page_residency_ok"]
    # Retransmissions happened and are accounted: every abandoned or
    # retried loss traces back to a drop.
    assert payload["retransmits"] + payload["abandoned_unreachable"] > 0
    record = result.records[0]
    assert record.t_recovered is not None
    assert payload["unreachable_node_cycles"] == (
        record.t_recovered - record.t_fault
    )


def test_phase_stats_show_disturbance_and_recovery():
    topo = make_topology("SF", 64, seed=0)
    result = run_faults(
        topo, rate=0.1, schedule="crash", footprint_pages=0,
        warmup=200, measure=3000, seed=0,
    )
    payload = result.payload()
    for phase in ("baseline", "during", "after"):
        assert payload[f"fg_{phase}_requests"] > 0
        assert payload[f"fg_p99_{phase}"] >= payload[f"fg_p50_{phase}"] > 0
    # The fault window hurts and the network comes back.
    assert payload["fg_p99_during"] > payload["fg_p99_baseline"]
    assert payload["all_recovered"]


def test_explicit_plan_targets_fire_as_declared():
    topo = make_topology("SF", 32, seed=0)
    victim = None
    # A cleanly-gateable victim so the crash excision stays patchable.
    from repro.core.reconfig import ReconfigurationManager
    from repro.core.routing import AdaptiveGreediestRouting

    probe_topo = make_topology("SF", 32, seed=0)
    manager = ReconfigurationManager(
        probe_topo, AdaptiveGreediestRouting(probe_topo)
    )
    victim = manager.gate_candidates(1)[0]
    plan = FaultPlan([
        FaultEvent(time=700, kind="node_hang", node=victim, duration=200),
        FaultEvent(time=1500, kind="node_crash", node=victim),
    ])
    result = run_faults(
        topo, rate=0.08, plan=plan, footprint_pages=16,
        warmup=200, measure=2500, seed=0,
    )
    kinds = [r.kind for r in result.records]
    assert kinds == ["node_hang", "node_crash"]
    assert all(r.node == victim for r in result.records)
    payload = result.payload()
    assert payload["conserved"]
    assert payload["unreachable_node_cycles"] > 0


def test_unsupported_without_shortcuts():
    topo = make_topology("S2", 32, seed=0)
    with pytest.raises(ValueError, match="shortcut"):
        run_faults(topo, plan=FaultPlan([]), measure=100)
