"""Interference workload: modes, determinism, and the classless differential."""

from __future__ import annotations

import pytest

from repro.topologies.registry import make_topology
from repro.workloads.interference import (
    INTERFERENCE_MODES,
    run_interference,
)


def _run(design="SF", nodes=36, **kwargs):
    topo = make_topology(design, nodes, seed=1)
    defaults = dict(rate=0.2, measure=800, seed=2)
    defaults.update(kwargs)
    return run_interference(topo, **defaults)


class TestModes:
    @pytest.mark.parametrize("mode", INTERFERENCE_MODES)
    def test_runs_conserve_and_report_both_classes(self, mode):
        result = _run(mode=mode)
        payload = result.payload()
        assert payload["conserved"] and payload["drained"]
        assert payload["fg_count"] > 0
        assert payload["bulk_count"] > 0
        assert payload["fg_p99"] >= payload["fg_p50"] > 0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            _run(mode="meteor")


class TestDeterminism:
    def test_same_seed_same_payload(self):
        assert _run(mode="burst").payload() == _run(mode="burst").payload()

    def test_seed_changes_traffic(self):
        a = _run(mode="noise", seed=2).payload()
        b = _run(mode="noise", seed=3).payload()
        assert a["sent"] != b["sent"] or a["fg_p99"] != b["fg_p99"]


class TestClasslessDifferential:
    def test_qos_off_matches_untagged_simulation(self):
        """``qos=False`` must be the pre-QoS simulator: the class tags
        ride along but the stat signature cannot move."""
        result = _run(mode="noise", qos=False)
        payload = result.payload()
        assert payload["qos"] is False
        assert payload["conserved"]
        # Re-running is bit-identical (the classless path has no
        # arbiter state to drift).
        assert _run(mode="noise", qos=False).payload() == payload

    def test_qos_protects_foreground_under_incast(self):
        protected = _run(mode="incast", rate=0.4, measure=1200).payload()
        exposed = _run(mode="incast", rate=0.4, measure=1200,
                       qos=False).payload()
        assert protected["fg_p99"] <= exposed["fg_p99"]
        # Bulk pays for its own burstiness under QoS, foreground does
        # not: the per-class split the report table prints.
        assert protected["fg_p99"] <= protected["bulk_p99"]
