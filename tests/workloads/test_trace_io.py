"""Trace save/load round-tripping."""

from __future__ import annotations

from repro.workloads.trace import WorkloadTrace, collect_trace


class TestTraceIO:
    def test_roundtrip(self, tmp_path):
        trace = collect_trace("grep", max_memory_accesses=300, scale=0.01)
        path = tmp_path / "grep.trace"
        trace.save(path)
        loaded = WorkloadTrace.load(path)
        assert loaded.workload == trace.workload
        assert loaded.num_accesses == trace.num_accesses
        assert loaded.instructions == trace.instructions
        assert loaded.miss_rates == trace.miss_rates
        for a, b in zip(trace.accesses, loaded.accesses):
            assert (a.cycle, a.addr, a.is_write, a.instruction_id) == (
                b.cycle,
                b.addr,
                b.is_write,
                b.instruction_id,
            )

    def test_loaded_trace_replays(self, tmp_path):
        from repro.topologies.registry import make_policy, make_topology
        from repro.workloads.runner import run_workload

        trace = collect_trace("redis", max_memory_accesses=400, scale=0.01)
        path = tmp_path / "redis.trace"
        trace.save(path)
        loaded = WorkloadTrace.load(path)
        topo = make_topology("SF", 16, seed=1)
        a = run_workload(topo, make_policy(topo), trace)
        b = run_workload(topo, make_policy(topo), loaded)
        assert a.runtime_cycles == b.runtime_cycles
        assert a.operations == b.operations

    def test_empty_trace_roundtrip(self, tmp_path):
        trace = WorkloadTrace(workload="empty")
        path = tmp_path / "empty.trace"
        trace.save(path)
        loaded = WorkloadTrace.load(path)
        assert loaded.num_accesses == 0
        assert loaded.workload == "empty"
