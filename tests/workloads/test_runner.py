"""Closed-loop trace-driven runner."""

from __future__ import annotations

import pytest

from repro.topologies.registry import make_policy, make_topology
from repro.workloads.runner import pick_socket_nodes, run_workload
from repro.workloads.trace import collect_trace


@pytest.fixture(scope="module")
def trace():
    return collect_trace("redis", max_memory_accesses=1500, scale=0.02)


@pytest.fixture(scope="module")
def sf_result(trace):
    topo = make_topology("SF", 36, seed=1)
    return run_workload(topo, make_policy(topo), trace)


class TestSocketPlacement:
    def test_four_spread_sockets(self):
        nodes = pick_socket_nodes(list(range(64)), 4)
        assert nodes == [0, 16, 32, 48]

    def test_fewer_nodes_than_sockets(self):
        assert pick_socket_nodes([3, 7], 4) == [3, 7]


class TestRun:
    def test_all_operations_complete(self, trace, sf_result):
        assert sf_result.operations == trace.num_accesses

    def test_runtime_positive(self, sf_result):
        assert sf_result.runtime_cycles > 0

    def test_read_latency_sane(self, sf_result):
        # Reads must at least pay a round trip plus DRAM service.
        assert sf_result.avg_read_latency > 10
        assert sf_result.avg_read_latency < 10_000

    def test_energy_populated(self, sf_result):
        assert sf_result.energy.network_pj > 0
        assert sf_result.energy.dram_pj > 0

    def test_edp_positive(self, sf_result):
        assert sf_result.edp() > 0

    def test_ipc_positive(self, sf_result):
        assert sf_result.ipc > 0

    def test_throughput_metric(self, sf_result):
        assert sf_result.throughput_ops_per_kcycle > 0

    def test_deterministic(self, trace):
        topo = make_topology("SF", 36, seed=1)
        a = run_workload(topo, make_policy(topo), trace)
        b = run_workload(topo, make_policy(topo), trace)
        assert a.runtime_cycles == b.runtime_cycles
        assert a.operations == b.operations

    def test_mlp_speeds_up_runtime(self, trace):
        topo = make_topology("SF", 36, seed=1)
        serial = run_workload(topo, make_policy(topo), trace, mlp=1)
        parallel = run_workload(topo, make_policy(topo), trace, mlp=16)
        assert parallel.runtime_cycles < serial.runtime_cycles

    def test_mesh_slower_than_sf(self, trace):
        """Topology quality shows up in workload runtime."""
        sf = make_topology("SF", 36, seed=1)
        dm = make_topology("DM", 36, seed=1)
        sf_run = run_workload(sf, make_policy(sf), trace)
        dm_run = run_workload(dm, make_policy(dm), trace)
        assert sf_run.avg_read_latency < dm_run.avg_read_latency

    def test_incomplete_run_raises(self, trace):
        topo = make_topology("SF", 36, seed=1)
        with pytest.raises(RuntimeError):
            run_workload(topo, make_policy(topo), trace, max_cycles=10)
