"""Trace collection through the cache hierarchy."""

from __future__ import annotations

import pytest

from repro.workloads.trace import CLOCK_RATIO, collect_trace


class TestCollection:
    def test_collects_requested_count(self):
        trace = collect_trace("grep", max_memory_accesses=500, scale=0.01)
        assert trace.num_accesses == 500

    def test_timestamps_monotonic(self):
        trace = collect_trace("redis", max_memory_accesses=500, scale=0.01)
        cycles = [a.cycle for a in trace.accesses]
        assert cycles == sorted(cycles)

    def test_clock_ratio(self):
        assert CLOCK_RATIO == pytest.approx(6.4)

    def test_cpi_stretches_time(self):
        fast = collect_trace("grep", max_memory_accesses=300, scale=0.01, cpi=1.0)
        slow = collect_trace("grep", max_memory_accesses=300, scale=0.01, cpi=4.0)
        assert slow.span_cycles > 2 * fast.span_cycles

    def test_deterministic(self):
        a = collect_trace("redis", max_memory_accesses=300, scale=0.01, seed=3)
        b = collect_trace("redis", max_memory_accesses=300, scale=0.01, seed=3)
        assert [(x.cycle, x.addr, x.is_write) for x in a.accesses] == [
            (x.cycle, x.addr, x.is_write) for x in b.accesses
        ]

    def test_seed_changes_trace(self):
        a = collect_trace("redis", max_memory_accesses=300, scale=0.01, seed=1)
        b = collect_trace("redis", max_memory_accesses=300, scale=0.01, seed=2)
        assert [x.addr for x in a.accesses] != [x.addr for x in b.accesses]

    def test_miss_rates_populated(self):
        trace = collect_trace("grep", max_memory_accesses=200, scale=0.01)
        assert set(trace.miss_rates) == {"L1", "L2", "L3"}

    def test_mpki_positive(self):
        trace = collect_trace("redis", max_memory_accesses=500, scale=0.01)
        assert trace.mpki > 0

    def test_unknown_workload(self):
        with pytest.raises(ValueError):
            collect_trace("nosql")


class TestSteadyState:
    def test_warmup_produces_writebacks(self):
        """Steady-state traces include dirty write-backs (sort writes
        half its footprint)."""
        trace = collect_trace("sort", max_memory_accesses=2000, scale=0.02)
        assert trace.write_fraction > 0.1

    def test_no_warmup_is_colder(self):
        warm = collect_trace(
            "sort", max_memory_accesses=1000, scale=0.02, warmup=True
        )
        cold = collect_trace(
            "sort", max_memory_accesses=1000, scale=0.02, warmup=False
        )
        assert warm.write_fraction >= cold.write_fraction

    def test_matmul_mostly_absorbed(self):
        """Compute-bound matmul generates sparse memory traffic."""
        trace = collect_trace(
            "matmul",
            max_memory_accesses=2000,
            scale=0.02,
            max_cpu_accesses=100_000,
        )
        assert trace.num_accesses < 2000  # capped by CPU budget
        assert trace.mpki < 50
