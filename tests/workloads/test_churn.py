"""Churn scenarios: schedules, churn-aware injection, the controller."""

from __future__ import annotations

import pytest

from repro.core.topology import StringFigureTopology
from repro.workloads.churn import (
    ChurnAction,
    ChurnSchedule,
    UtilizationController,
    run_churn,
)


class TestSchedules:
    def test_cycle_builds_two_actions(self):
        schedule = ChurnSchedule.cycle(gate_at=100, wake_at=500, fraction=0.25)
        assert [a.kind for a in schedule.actions] == ["gate_off", "gate_on"]
        assert schedule.actions[0].fraction == 0.25

    def test_cycle_rejects_wake_before_gate(self):
        with pytest.raises(ValueError, match="wake_at"):
            ChurnSchedule.cycle(gate_at=500, wake_at=500, fraction=0.25)

    def test_periodic_duty_cycles(self):
        schedule = ChurnSchedule.periodic(
            start=1000, period=2000, duty=0.5, fraction=0.1, cycles=3
        )
        times = [(a.time, a.kind) for a in schedule.actions]
        assert times == [
            (1000, "gate_off"),
            (2000, "gate_on"),
            (3000, "gate_off"),
            (4000, "gate_on"),
            (5000, "gate_off"),
            (6000, "gate_on"),
        ]

    def test_periodic_rejects_bad_duty(self):
        with pytest.raises(ValueError, match="duty"):
            ChurnSchedule.periodic(start=0, period=100, duty=1.5, fraction=0.1, cycles=1)

    def test_action_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown churn action"):
            ChurnAction(time=0, kind="explode")


class TestPeriodicChurn:
    def test_periodic_schedule_runs_all_cycles(self):
        topo = StringFigureTopology(48, 4, seed=5)
        schedule = ChurnSchedule.periodic(
            start=500, period=1600, duty=0.4, fraction=0.15, cycles=2
        )
        result = run_churn(
            topo, rate=0.1, schedule=schedule, warmup=200, measure=4000, seed=0
        )
        kinds = [e.kind for e in result.events]
        assert kinds == ["gate_off", "gate_on", "gate_off", "gate_on"]
        assert result.stats.sent == result.stats.delivered
        assert result.final_active_nodes == 48

    def test_payload_is_json_safe(self):
        import json

        topo = StringFigureTopology(32, 4, seed=5)
        schedule = ChurnSchedule.cycle(gate_at=500, wake_at=1200, fraction=0.2)
        result = run_churn(
            topo, rate=0.1, schedule=schedule, warmup=200, measure=2000, seed=0
        )
        payload = result.payload()
        round_tripped = json.loads(json.dumps(payload))
        assert round_tripped["sent"] == payload["sent"]
        assert round_tripped["events"][0]["kind"] == "gate_off"


class TestUtilizationController:
    def test_controller_gates_underutilized_network(self):
        topo = StringFigureTopology(48, 4, seed=5)
        result = run_churn(
            topo,
            rate=0.03,
            schedule=None,
            controller_params=dict(
                interval=800,
                low_util=0.05,
                high_util=0.5,
                gate_step=6,
                min_active_fraction=0.6,
            ),
            warmup=200,
            measure=9000,
            seed=1,
            granularity_ns=4000.0,  # let the controller act repeatedly
        )
        kinds = [e.kind for e in result.events]
        assert kinds and set(kinds) == {"gate_off"}
        assert result.min_active_nodes < 48
        # Floor respected: never below min_active_fraction of the net.
        assert result.min_active_nodes >= int(48 * 0.6)
        assert result.stats.sent == result.stats.delivered
        actions = [d["action"] for d in result.controller_log]
        assert any(a.startswith("gate_off") for a in actions)
        # Near the floor the controller stops gating and says why:
        # either no headroom or no cleanly-gateable victims remain.
        assert actions[-1] in ("at_floor", "no_candidates")

    def test_controller_wakes_on_high_utilization(self):
        """The wake decision path, driven directly."""
        topo = StringFigureTopology(48, 4, seed=5)

        from repro.core.reconfig import ReconfigurationManager
        from repro.core.routing import AdaptiveGreediestRouting
        from repro.energy.power_gating import PowerManager
        from repro.network.elastic import LiveReconfigurator
        from repro.network.policies import GreedyPolicy
        from repro.network.simulator import NetworkSimulator

        routing = AdaptiveGreediestRouting(topo)
        policy = GreedyPolicy(routing)
        sim = NetworkSimulator(topo, policy)
        manager = ReconfigurationManager(topo, routing)
        live = LiveReconfigurator(
            sim,
            manager,
            policy,
            power=PowerManager(manager, config=sim.config, granularity_ns=1.0),
        )
        controller = UtilizationController(live, low_util=0.01, high_util=0.1, gate_step=2)
        decision = controller._decide(100, util=0.0, active=48, total=48)
        assert decision.startswith("gate_off")
        sim.run(until=20_000)  # let the gate-off complete
        assert len(live.events) == 1
        decision = controller._decide(
            sim.now + 1000,
            util=0.5,
            active=len(topo.active_nodes),
            total=48,
        )
        assert decision.startswith("gate_on")
        sim.drain(limit=100_000)
        assert [e.kind for e in live.events] == ["gate_off", "gate_on"]
        assert len(topo.active_nodes) == 48

    def test_controller_respects_granularity(self):
        topo = StringFigureTopology(48, 4, seed=5)
        result = run_churn(
            topo,
            rate=0.03,
            schedule=None,
            controller_params=dict(
                interval=800, low_util=0.05, high_util=0.5, gate_step=4
            ),
            warmup=200,
            measure=5000,
            seed=1,
        )
        # Default 100 us granularity spans the whole run: one action.
        assert len(result.events) == 1
        assert any(d["action"] == "granularity" for d in result.controller_log)


class TestChurnInjector:
    def test_injection_skips_gated_sources(self):
        from repro.core.reconfig import ReconfigurationManager
        from repro.core.routing import AdaptiveGreediestRouting
        from repro.network.elastic import LiveReconfigurator
        from repro.network.policies import GreedyPolicy
        from repro.network.simulator import NetworkSimulator
        from repro.traffic.patterns import make_pattern
        from repro.workloads.churn import ChurnInjector

        topo = StringFigureTopology(32, 4, seed=5)
        routing = AdaptiveGreediestRouting(topo)
        policy = GreedyPolicy(routing)
        sim = NetworkSimulator(topo, policy)
        manager = ReconfigurationManager(topo, routing)
        live = LiveReconfigurator(sim, manager, policy)
        injector = ChurnInjector(
            sim,
            make_pattern("uniform_random", topo.active_nodes),
            0.3,
            warmup=0,
            measure=3000,
            seed=6,
            reconfig=live,
        )
        injector.start()
        live.gate_off(live.select_victims(count=4), at=500)
        sim.run(until=3000)
        sim.drain(limit=60_000)
        assert injector.skipped_sources > 0
        assert injector.redraws > 0
        assert sim.stats.sent == sim.stats.delivered
