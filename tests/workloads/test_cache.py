"""Cache hierarchy model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.cache import CacheHierarchy, CacheLevel


class TestCacheLevel:
    def test_geometry(self):
        level = CacheLevel("L1", 32 << 10, 4, 64)
        assert level.num_sets == 128

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            CacheLevel("X", 1000, 4, 64)

    def test_miss_then_hit(self):
        level = CacheLevel("L1", 32 << 10, 4)
        assert not level.lookup(1, False)
        level.fill(1, dirty=False)
        assert level.lookup(1, False)
        assert level.hits == 1 and level.misses == 1

    def test_lru_eviction_order(self):
        level = CacheLevel("tiny", 4 * 64, 4, 64)  # one set, 4 ways
        for line in range(4):
            level.fill(line * level.num_sets, False)
        level.lookup(0, False)  # touch line 0 -> MRU
        victim = level.fill(4 * level.num_sets, False)
        assert victim is not None
        assert victim[0] != 0  # line 0 was protected by the touch

    def test_dirty_tracked_on_write(self):
        level = CacheLevel("tiny", 4 * 64, 4, 64)
        level.fill(0, dirty=False)
        level.lookup(0, is_write=True)
        assert level.invalidate(0) is True

    def test_invalidate_missing(self):
        level = CacheLevel("tiny", 4 * 64, 4, 64)
        assert level.invalidate(99) is False


class TestHierarchy:
    def test_paper_geometry(self):
        h = CacheHierarchy()
        assert h.l1.size_bytes == 32 << 10
        assert h.l2.size_bytes == 2 << 20
        assert h.l3.size_bytes == 32 << 20
        assert (h.l1.assoc, h.l2.assoc, h.l3.assoc) == (4, 8, 16)

    def test_first_touch_misses_to_memory(self):
        h = CacheHierarchy()
        ops = h.access(0, False)
        assert ops == [(0, False)]

    def test_second_touch_hits(self):
        h = CacheHierarchy()
        h.access(0, False)
        assert h.access(0, False) == []
        assert h.access(32, False) == []  # same line

    def test_write_hit_absorbed(self):
        h = CacheHierarchy()
        h.access(0, False)
        assert h.access(0, True) == []

    def test_dirty_eviction_reaches_memory(self):
        """Write-back: evicted dirty L3 lines become memory writes."""
        h = CacheHierarchy(scale=1 / 512)  # tiny caches
        writes = []
        line = 0
        for _ in range(20000):
            for addr, is_write in h.access(line * 64, True):
                if is_write:
                    writes.append(addr)
            line += 1
            if writes:
                break
        assert writes

    def test_scaled_caches_shrink(self):
        big = CacheHierarchy()
        small = CacheHierarchy(scale=0.01)
        assert small.l3.size_bytes < big.l3.size_bytes
        assert small.l3.size_bytes >= small.l3.assoc * 64

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            CacheHierarchy(scale=0)

    def test_miss_rates_reported(self):
        h = CacheHierarchy()
        h.access(0, False)
        rates = h.miss_rates()
        assert set(rates) == {"L1", "L2", "L3"}
        assert all(0.0 <= r <= 1.0 for r in rates.values())

    def test_streaming_misses_every_line(self):
        """A stream larger than L3 misses at line granularity."""
        h = CacheHierarchy(scale=0.001)
        memory_reads = 0
        lines = 4 * (h.l3.size_bytes // 64)
        for i in range(lines):
            ops = h.access(i * 64, False)
            memory_reads += sum(1 for _a, w in ops if not w)
        assert memory_reads >= lines * 0.99


@settings(max_examples=20, deadline=None)
@given(
    addrs=st.lists(
        st.integers(min_value=0, max_value=1 << 22), min_size=1, max_size=300
    ),
)
def test_property_at_most_two_memory_ops_per_access(addrs):
    """Each CPU access yields <= 1 demand read + <= 2 writebacks."""
    h = CacheHierarchy(scale=0.001)
    for addr in addrs:
        ops = h.access(addr, True)
        assert len(ops) <= 3
        reads = [a for a, w in ops if not w]
        assert len(reads) <= 1
        if reads:
            assert reads[0] == (addr // 64) * 64
