"""The eight Table IV workload generators."""

from __future__ import annotations

import itertools

import pytest

from repro.workloads.generators import WORKLOADS, make_workload

EXPECTED = {
    "wordcount",
    "grep",
    "sort",
    "pagerank",
    "redis",
    "memcached",
    "matmul",
    "kmeans",
}


def _sample(name: str, n: int = 5000, scale: float = 0.01):
    stream = make_workload(name).stream(seed=1, scale=scale)
    return list(itertools.islice(stream, n))


class TestCatalog:
    def test_all_eight_present(self):
        assert set(WORKLOADS) == EXPECTED

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_workload("tpcc")

    def test_descriptions_nonempty(self):
        for w in WORKLOADS.values():
            assert w.description
            assert w.footprint_bytes > 0


@pytest.mark.parametrize("name", sorted(EXPECTED))
class TestStreams:
    def test_yields_accesses(self, name):
        sample = _sample(name)
        assert len(sample) == 5000
        for addr, is_write in sample:
            assert addr >= 0
            assert isinstance(is_write, bool)

    def test_deterministic(self, name):
        assert _sample(name, 500) == _sample(name, 500)

    def test_read_write_mix(self, name):
        sample = _sample(name)
        reads = sum(1 for _a, w in sample if not w)
        read_fraction = reads / len(sample)
        expected = WORKLOADS[name].read_fraction
        assert read_fraction == pytest.approx(expected, abs=0.2)


class TestCharacter:
    def test_grep_is_mostly_sequential(self):
        sample = _sample("grep", 2000)
        reads = [a for a, w in sample if not w]
        sequential = sum(
            1 for a, b in zip(reads, reads[1:]) if b - a == 64
        )
        assert sequential / len(reads) > 0.9

    def test_redis_skewed(self):
        """Zipfian keys: the top key appears far above uniform share."""
        sample = _sample("redis", 20000)
        index_reads = [a for a, w in sample if not w and a < (1 << 22)]
        counts: dict[int, int] = {}
        for a in index_reads:
            counts[a] = counts.get(a, 0) + 1
        top = max(counts.values())
        assert top > 5 * (len(index_reads) / max(1, len(counts)))

    def test_matmul_reuses_blocks(self):
        sample = _sample("matmul", 20000)
        unique_lines = {a // 64 for a, _w in sample}
        assert len(unique_lines) < len(sample) / 2  # heavy reuse

    def test_kmeans_centroids_hot(self):
        sample = _sample("kmeans", 20000, scale=0.002)
        addrs = [a for a, _w in sample]
        hot_region = max(addrs) - 64 * 64  # centroid block at the top
        hot = sum(1 for a in addrs if a >= hot_region)
        assert hot > len(addrs) * 0.2

    def test_sort_write_heavy(self):
        sample = _sample("sort", 10000)
        writes = sum(1 for _a, w in sample if w)
        assert writes / len(sample) > 0.3
