"""The examples must stay runnable — they are part of the public API."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=900,
    )


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        result = _run("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "greediest route" in result.stdout
        assert "routing table" in result.stdout

    def test_elastic_scaling(self):
        result = _run("elastic_scaling.py")
        assert result.returncode == 0, result.stderr
        assert "conservation ok" in result.stdout
        assert "peak latency" in result.stdout
        assert "KiB moved" in result.stdout
        assert "migrated out of" in result.stdout
        assert "75% powered" in result.stdout
        assert "after upgrade" in result.stdout

    def test_topology_explorer_small(self):
        result = _run("topology_explorer.py", "16")
        assert result.returncode == 0, result.stderr
        assert "SF" in result.stdout
