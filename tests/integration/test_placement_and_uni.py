"""Placement-aware workloads and uni-directional end-to-end runs."""

from __future__ import annotations

import pytest

from repro.analysis.placement import GridPlacement
from repro.core.routing import AdaptiveGreediestRouting
from repro.core.topology import StringFigureTopology
from repro.network.policies import GreedyPolicy
from repro.topologies.registry import make_policy, make_topology
from repro.traffic.injection import run_synthetic
from repro.traffic.patterns import make_pattern
from repro.workloads.runner import run_workload
from repro.workloads.trace import collect_trace


class TestPlacementAwareWorkload:
    def test_wire_latency_slows_workload(self):
        trace = collect_trace("memcached", max_memory_accesses=600, scale=0.02)
        topo = make_topology("SF", 36, seed=2)
        policy = make_policy(topo)
        flat = run_workload(topo, policy, trace)
        placed = run_workload(
            topo,
            policy,
            trace,
            link_latency=GridPlacement(topo).latency_fn(),
        )
        assert placed.runtime_cycles >= flat.runtime_cycles
        assert placed.operations == flat.operations


class TestUnidirectionalEndToEnd:
    @pytest.fixture(scope="class")
    def uni_topo(self):
        return StringFigureTopology(32, 4, seed=5, direction="uni")

    def test_traffic_delivers(self, uni_topo):
        policy = GreedyPolicy(AdaptiveGreediestRouting(uni_topo))
        pattern = make_pattern("uniform_random", uni_topo.active_nodes)
        stats = run_synthetic(
            uni_topo, policy, pattern, 0.1, warmup=80, measure=250
        )
        assert stats.accepted_rate > 0.99

    def test_longer_paths_than_bi(self, uni_topo):
        bi = StringFigureTopology(32, 4, seed=5, direction="bi")
        uni_policy = GreedyPolicy(AdaptiveGreediestRouting(uni_topo))
        bi_policy = GreedyPolicy(AdaptiveGreediestRouting(bi))
        pattern_uni = make_pattern("uniform_random", uni_topo.active_nodes)
        pattern_bi = make_pattern("uniform_random", bi.active_nodes)
        uni_stats = run_synthetic(
            uni_topo, uni_policy, pattern_uni, 0.1, warmup=80, measure=250
        )
        bi_stats = run_synthetic(
            bi, bi_policy, pattern_bi, 0.1, warmup=80, measure=250
        )
        assert uni_stats.avg_hops > bi_stats.avg_hops

    def test_workload_runs_on_uni(self, uni_topo):
        trace = collect_trace("grep", max_memory_accesses=400, scale=0.01)
        policy = GreedyPolicy(AdaptiveGreediestRouting(uni_topo))
        result = run_workload(uni_topo, policy, trace)
        assert result.operations == trace.num_accesses
