"""Cross-module integration tests."""

from __future__ import annotations

import pytest

from repro.analysis.placement import GridPlacement
from repro.core.reconfig import ReconfigurationManager
from repro.core.routing import AdaptiveGreediestRouting
from repro.core.topology import StringFigureTopology
from repro.energy.model import EnergyModel
from repro.energy.power_gating import PowerManager
from repro.network.policies import GreedyPolicy
from repro.topologies.registry import TOPOLOGY_NAMES, make_policy, make_topology
from repro.traffic.injection import run_synthetic
from repro.traffic.patterns import PATTERNS, make_pattern
from repro.workloads.runner import run_workload
from repro.workloads.trace import collect_trace


class TestAllTopologiesUnderTraffic:
    @pytest.mark.parametrize("name", TOPOLOGY_NAMES)
    def test_uniform_random_delivers(self, name):
        topo = make_topology(name, 36, seed=2)
        policy = make_policy(topo)
        pattern = make_pattern("uniform_random", topo.active_nodes)
        stats = run_synthetic(topo, policy, pattern, 0.1, warmup=80, measure=250)
        assert stats.accepted_rate > 0.99
        assert stats.avg_latency > 0

    @pytest.mark.parametrize("pattern_name", sorted(PATTERNS))
    def test_sf_under_all_patterns(self, pattern_name):
        topo = make_topology("SF", 32, seed=2)
        policy = make_policy(topo)
        pattern = make_pattern(pattern_name, topo.active_nodes)
        stats = run_synthetic(topo, policy, pattern, 0.1, warmup=80, measure=250)
        assert stats.accepted_rate > 0.9


class TestPlacementAwareSimulation:
    def test_wire_latency_increases_packet_latency(self):
        topo = StringFigureTopology(64, 4, seed=4)
        policy = GreedyPolicy(AdaptiveGreediestRouting(topo))
        pattern = make_pattern("uniform_random", topo.active_nodes)
        flat = run_synthetic(topo, policy, pattern, 0.1, warmup=80, measure=300)
        placed = run_synthetic(
            topo,
            policy,
            pattern,
            0.1,
            warmup=80,
            measure=300,
            link_latency=GridPlacement(topo).latency_fn(),
        )
        assert placed.avg_latency >= flat.avg_latency


class TestReconfigurationUnderTraffic:
    def test_gated_network_still_carries_traffic(self):
        topo = StringFigureTopology(48, 4, seed=6)
        routing = AdaptiveGreediestRouting(topo)
        manager = PowerManager(ReconfigurationManager(topo, routing))
        manager.gate_fraction(0.15)
        policy = GreedyPolicy(routing)
        pattern = make_pattern("uniform_random", topo.active_nodes)
        stats = run_synthetic(topo, policy, pattern, 0.1, warmup=80, measure=300)
        assert stats.accepted_rate > 0.99

    def test_downscaled_paths_stay_short_with_8_ports(self):
        """At the paper's p=8 working configuration, shortcut patching
        keeps the down-scaled network's paths essentially flat — the
        mechanism behind Figure 9(b)'s EDP gains."""
        topo = StringFigureTopology(48, 8, seed=6)
        routing = AdaptiveGreediestRouting(topo)
        policy = GreedyPolicy(routing)
        pattern_full = make_pattern("uniform_random", topo.active_nodes)
        full = run_synthetic(topo, policy, pattern_full, 0.08, warmup=80, measure=300)
        manager = PowerManager(ReconfigurationManager(topo, routing))
        plan = manager.gate_fraction(0.25)
        assert plan.gated
        pattern_small = make_pattern("uniform_random", topo.active_nodes)
        small = run_synthetic(
            topo, policy, pattern_small, 0.08, warmup=80, measure=300
        )
        assert small.accepted_rate > 0.99
        assert small.avg_hops <= full.avg_hops * 1.15


class TestWorkloadAcrossTopologies:
    def test_energy_and_runtime_consistent(self):
        trace = collect_trace("memcached", max_memory_accesses=800, scale=0.02)
        model = EnergyModel()
        for name in ("SF", "DM"):
            topo = make_topology(name, 36, seed=3)
            result = run_workload(topo, make_policy(topo), trace)
            assert result.operations == trace.num_accesses
            breakdown = model.from_stats(result.stats)
            assert breakdown.total_pj == pytest.approx(
                result.energy.total_pj
            )

    def test_dram_energy_topology_independent(self):
        """Same trace -> same DRAM bits regardless of topology."""
        trace = collect_trace("grep", max_memory_accesses=600, scale=0.02)
        energies = []
        for name in ("SF", "DM", "AFB"):
            topo = make_topology(name, 36, seed=3)
            result = run_workload(topo, make_policy(topo), trace)
            energies.append(result.energy.dram_pj)
        assert len(set(energies)) == 1
