"""Stateful property test: arbitrary reconfiguration sequences.

A hypothesis state machine drives random sequences of power-gate /
power-on / unmount / mount operations against one String Figure
network and checks the global invariants after every step:

* the active network stays connected;
* every active pair remains routable (sampled);
* routing tables reference only active nodes;
* port budgets are never exceeded;
* restoring all nodes returns to the pristine link set.

Two hypothesis profiles are registered: the quick ``dev`` profile
(default) and a ``ci`` profile with more examples, longer operation
sequences and derandomized (fixed-derivation) example generation, so
the CI job is both more thorough and perfectly reproducible.  Select
with ``HYPOTHESIS_PROFILE=ci``.  The profile is applied to this
module's state machine only — never loaded globally, which would
silently shrink the example budget of every other property test in
the session.
"""

from __future__ import annotations

import os

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

settings.register_profile(
    "dev", settings(max_examples=12, stateful_step_count=12, deadline=None)
)
settings.register_profile(
    "ci",
    settings(
        max_examples=60,
        stateful_step_count=30,
        deadline=None,
        derandomize=True,
        print_blob=True,
    ),
)

from repro.core.reconfig import ReconfigurationManager
from repro.core.routing import GreediestRouting
from repro.core.topology import StringFigureTopology

NUM_NODES = 32


class ReconfigMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.topo = StringFigureTopology(NUM_NODES, 4, seed=21)
        self.routing = GreediestRouting(self.topo)
        self.manager = ReconfigurationManager(self.topo, self.routing)
        self.baseline_links = set(self.topo.active_links())
        self.gated: list[int] = []

    @rule(idx=st.integers(min_value=0, max_value=200))
    def gate_one(self, idx):
        candidates = self.manager.gate_candidates(8)
        if not candidates or len(self.topo.active_nodes) <= NUM_NODES // 2:
            return
        victim = candidates[idx % len(candidates)]
        self.manager.power_gate(victim)
        self.gated.append(victim)

    @rule(idx=st.integers(min_value=0, max_value=200))
    def restore_one(self, idx):
        if not self.gated:
            return
        node = self.gated.pop(idx % len(self.gated))
        self.manager.power_on(node)

    @rule()
    def restore_all(self):
        while self.gated:
            self.manager.power_on(self.gated.pop())
        assert set(self.topo.active_links()) == self.baseline_links

    @invariant()
    def network_connected(self):
        if hasattr(self, "manager"):
            assert self.manager.validate_connectivity()

    @invariant()
    def ports_respected(self):
        if not hasattr(self, "topo"):
            return
        for node in self.topo.active_nodes:
            assert self.topo.active_degree(node) <= self.topo.num_ports

    @invariant()
    def tables_reference_active_only(self):
        if not hasattr(self, "routing"):
            return
        active = set(self.topo.active_nodes)
        for node in list(self.routing.tables):
            assert node in active
            table = self.routing.tables[node]
            for entry in table.one_hop() + table.two_hop():
                assert entry.node in active

    @invariant()
    def sampled_pairs_routable(self):
        if not hasattr(self, "routing"):
            return
        active = self.topo.active_nodes
        if len(active) < 2:
            return
        probes = [
            (active[0], active[-1]),
            (active[len(active) // 2], active[1]),
        ]
        for src, dst in probes:
            if src != dst:
                result = self.routing.route(src, dst)
                assert result.path[-1] == dst


TestReconfigStateMachine = ReconfigMachine.TestCase
TestReconfigStateMachine.settings = settings.get_profile(
    os.environ.get("HYPOTHESIS_PROFILE", "dev")
)
