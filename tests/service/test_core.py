"""FabricService core: request path, admission control, accounting."""

from __future__ import annotations

import pytest

from repro.network.stats import percentile
from repro.service.core import FabricService


def small_service(**overrides):
    params = dict(nodes=36, design="SF", footprint_pages=64)
    params.update(overrides)
    return FabricService(**params)


class TestRequestPath:
    def test_read_completes_with_latency(self):
        svc = small_service()
        req = svc.submit("a", "read", 5)
        svc.advance(5_000)
        assert req.status == "done"
        assert req.latency is not None and req.latency > 0

    def test_write_completes(self):
        svc = small_service()
        req = svc.submit("a", "write", 7, offset=128, size=256)
        svc.advance(5_000)
        assert req.status == "done"

    def test_latency_includes_queue_wait(self):
        # With outstanding budget 1, the second request's latency
        # starts at its submit time, not its injection time.
        svc = small_service(max_outstanding=1)
        first = svc.submit("a", "read", 1)
        second = svc.submit("a", "read", 2)
        assert second.status == "queued"
        svc.advance(10_000)
        assert first.status == "done" and second.status == "done"
        assert second.latency > first.latency

    def test_on_done_fires_exactly_once(self):
        svc = small_service()
        fired = []
        svc.submit("a", "read", 3, on_done=lambda r: fired.append(r.status))
        svc.advance(5_000)
        svc.drain()
        assert fired == ["done"]

    def test_validation_errors_complete_synchronously(self):
        svc = small_service()
        bad_page = svc.submit("a", "read", 10_000)
        bad_op = svc.submit("a", "erase", 1)
        bad_span = svc.submit("a", "read", 1, offset=4000, size=200)
        assert bad_page.status == "error"
        assert bad_op.status == "error"
        assert bad_span.status == "error"
        assert svc.outstanding == 0

    def test_requests_conserved_at_drain(self):
        svc = small_service()
        for i in range(50):
            svc.submit(f"t{i % 4}", "read", i % 64)
            svc.advance(3)
        report = svc.drain()
        assert report["all_conserved"]
        assert report["sent"] == report["delivered"] + report["dropped"]
        assert svc.outstanding == 0


class TestAdmissionControl:
    def test_queue_engages_past_outstanding_budget(self):
        svc = small_service(max_outstanding=4, queue_depth=100)
        reqs = [svc.submit("a", "read", i % 64) for i in range(20)]
        statuses = {r.status for r in reqs}
        assert "queued" in statuses
        assert svc.queued_total > 0
        svc.advance(20_000)
        svc.drain()
        assert all(r.status == "done" for r in reqs)

    def test_shed_past_queue_depth(self):
        svc = small_service(max_outstanding=2, queue_depth=4)
        reqs = [svc.submit("a", "read", i % 64) for i in range(20)]
        shed = [r for r in reqs if r.status == "shed"]
        assert len(shed) == 20 - 2 - 4
        assert svc.shed_total == len(shed)
        assert all(r.error == "overload" for r in shed)
        svc.drain()
        assert svc._requests_conserved()

    def test_watermark_queues_hot_destination(self):
        svc = small_service(node_watermark=1, max_outstanding=100)
        # Hammer one page: its home node saturates at 1 in-flight.
        reqs = [svc.submit("a", "read", 9) for _ in range(8)]
        assert any(r.status == "queued" for r in reqs)
        svc.advance(30_000)
        svc.drain()
        assert all(r.status == "done" for r in reqs)

    def test_fifo_order_preserved_under_queueing(self):
        svc = small_service(max_outstanding=1)
        reqs = [svc.submit("a", "read", i % 64) for i in range(10)]
        svc.advance(50_000)
        svc.drain()
        done_order = [
            seq for seq, status, _ in svc.completions if status == "done"
        ]
        assert done_order == sorted(done_order)
        assert all(r.status == "done" for r in reqs)

    def test_draining_service_sheds_new_requests(self):
        svc = small_service()
        svc.admitting = False
        req = svc.submit("a", "read", 1)
        assert req.status == "shed"
        assert req.error == "draining"


class TestTimeouts:
    def test_unserviceable_request_times_out(self):
        svc = small_service(request_timeout=500, reaper_interval=100)
        # Crash the home node of page 0 un-mirrored so the request
        # can neither be served nor recovered.
        svc._params  # keep service referenced
        home = svc.directory.resolve(0)
        svc.recovery.mirrored = False
        svc.inject_fault("node_crash", node=home)
        svc.advance(50)
        req = svc.submit("a", "read", 0)
        svc.advance(5_000)
        assert req.status in ("timeout", "failed")
        assert svc.outstanding == 0
        report = svc.drain()
        assert report["requests_conserved"]


class TestTenantAccounting:
    def test_percentiles_match_reference(self):
        svc = small_service()
        reqs = []
        for i in range(40):
            reqs.append(svc.submit("a", "read", (i * 7) % 64))
            svc.advance(17)
        svc.drain()
        latencies = [float(r.latency) for r in reqs]
        assert all(r.status == "done" for r in reqs)
        ts = svc.tenants["a"]
        assert ts.p50() == percentile(latencies, 50)
        assert ts.p99() == percentile(latencies, 99)

    def test_per_tenant_isolation_of_counts(self):
        svc = small_service()
        for i in range(12):
            svc.submit("alpha" if i % 3 else "beta", "read", i % 64)
            svc.advance(11)
        svc.drain()
        snap = svc.snapshot()
        assert snap["tenants"]["alpha"]["submitted"] == 8
        assert snap["tenants"]["beta"]["submitted"] == 4
        assert snap["submitted"] == 12

    def test_snapshot_is_json_safe(self):
        import json

        svc = small_service()
        svc.submit("a", "read", 1)
        svc.advance(2_000)
        json.dumps(svc.snapshot())
        json.dumps(svc.drain())
        json.dumps(svc.digest())


class TestConfigRoundTrip:
    def test_from_config_rebuilds_identical_service(self):
        svc = small_service(max_outstanding=17)
        clone = FabricService.from_config(svc.config_dict())
        assert clone.config_dict() == svc.config_dict()
        assert clone.max_outstanding == 17

    def test_invalid_footprint_rejected(self):
        with pytest.raises(ValueError):
            small_service(footprint_pages=0)
