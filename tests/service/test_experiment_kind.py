"""The ``service`` experiment kind: expansion, worker, report row."""

from __future__ import annotations

from repro.experiments import ExperimentSpec, ParallelRunner
from repro.experiments.report import sweep_table
from repro.experiments.worker import execute_task


def make_spec(**overrides):
    params = dict(
        name="svc-test",
        kind="service",
        designs=("SF",),
        nodes=(36,),
        rates=(0.1,),
        seeds=(0,),
        sim_params={
            "tenants": 4, "requests_per_tenant": 12, "footprint_pages": 64,
        },
    )
    params.update(overrides)
    return ExperimentSpec(**params)


def test_grid_expansion_matches_synthetic_axes():
    spec = make_spec(nodes=(36, 64), seeds=(0, 1))
    tasks = spec.tasks()
    assert len(tasks) == 4
    assert all(t.kind == "service" for t in tasks)


def test_worker_produces_conserved_payload():
    task = make_spec().tasks()[0]
    payload = execute_task(task)
    assert payload["submitted"] == 48
    assert payload["conserved"] is True
    assert payload["completed"] + payload["shed"] + payload["timeouts"] >= 48 - payload["shed"]
    assert "completions_digest" in payload


def test_payload_deterministic_across_runs():
    task = make_spec().tasks()[0]
    assert execute_task(task) == execute_task(task)


def test_unsupported_design_reported_not_raised():
    task = make_spec(designs=("DM",), nodes=(7,)).tasks()[0]
    payload = execute_task(task)
    assert payload.get("unsupported")


def test_sweep_table_renders_service_section():
    spec = make_spec()
    result = ParallelRunner(workers=1, cache=None).run(spec)
    table = sweep_table(result)
    assert "req/kcyc" in table and "conserved" in table
