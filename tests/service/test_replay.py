"""Replay determinism: captured logs re-run bit-identically."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service.core import FabricService
from repro.service.daemon import FabricDaemon
from repro.service.log import LOG_VERSION, RequestLog, drive, replay
from repro.workloads.service import run_service, synthetic_schedule


def build(**overrides):
    params = dict(nodes=36, design="SF", footprint_pages=64)
    params.update(overrides)
    return FabricService(**params)


class TestLogFormat:
    def test_save_load_round_trip(self, tmp_path):
        svc = build()
        svc.submit("a", "read", 1)
        svc.advance(100)
        svc.submit("b", "write", 2, size=128)
        svc.drain()
        path = str(tmp_path / "cap.jsonl")
        log = RequestLog.capture(svc)
        log.save(path)
        loaded = RequestLog.load(path)
        assert loaded.config == log.config
        assert loaded.entries == log.entries

    def test_load_rejects_missing_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "request", "t": 0}\n')
        with pytest.raises(ValueError, match="no header"):
            RequestLog.load(str(path))

    def test_load_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({
            "kind": "header", "version": LOG_VERSION + 1, "config": {},
        }) + "\n")
        with pytest.raises(ValueError, match="version"):
            RequestLog.load(str(path))


class TestSerialReplay:
    def test_synthetic_run_replays_bit_identically(self):
        result = run_service(
            nodes=64, tenants=6, requests_per_tenant=30, rate=0.08,
            footprint_pages=128, keep_service=True,
        )
        log = RequestLog.capture(result.service)
        replayed = replay(log)
        assert replayed.digest() == result.digest

    def test_replay_with_scale_and_fault_verbs(self):
        result = run_service(
            nodes=64, tenants=4, requests_per_tenant=40, rate=0.05,
            footprint_pages=128, scale_at=800, scale_count=2,
            scale_back_after=3_000, fault_at=1_500, fault_kind="link_flap",
            keep_service=True,
        )
        assert result.drain_report["all_conserved"]
        log = RequestLog.capture(result.service)
        replayed = replay(log)
        assert replayed.digest() == result.digest

    def test_different_seeds_differ(self):
        a = run_service(nodes=36, tenants=4, requests_per_tenant=20,
                        rate=0.1, footprint_pages=64, seed=0)
        b = run_service(nodes=36, tenants=4, requests_per_tenant=20,
                        rate=0.1, footprint_pages=64, seed=1)
        assert a.digest["completions"] != b.digest["completions"]

    def test_same_seed_is_reproducible(self):
        kwargs = dict(nodes=36, tenants=4, requests_per_tenant=20,
                      rate=0.1, footprint_pages=64, seed=3)
        assert run_service(**kwargs).digest == run_service(**kwargs).digest

    def test_schedule_is_deterministic(self):
        a = synthetic_schedule(tenants=3, requests_per_tenant=10, seed=5)
        b = synthetic_schedule(tenants=3, requests_per_tenant=10, seed=5)
        assert a == b
        assert all(
            a[i]["t"] <= a[i + 1]["t"] for i in range(len(a) - 1)
        )

    def test_drive_rejects_unknown_entry_kind(self):
        svc = build()
        with pytest.raises(ValueError, match="unknown log entry"):
            drive(svc, [{"kind": "mystery", "t": 0}])


class TestAsyncioIngestedReplay:
    def test_daemon_ingested_log_replays_bit_identically(self):
        """The tentpole determinism property, end to end.

        Requests ingested through real asyncio sockets — with whatever
        wall-clock interleaving the loop produced — are captured and
        re-run serially; the digests must match exactly.
        """

        async def scenario() -> FabricService:
            service = build(nodes=64, footprint_pages=128,
                            max_outstanding=8, node_watermark=2)
            daemon = FabricDaemon(service, quantum=32)
            host, port = await daemon.start()

            async def client(idx: int) -> None:
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(json.dumps(
                    {"op": "hello", "tenant": f"t{idx}"}
                ).encode() + b"\n")
                await writer.drain()
                await reader.readline()
                for i in range(15):
                    writer.write(json.dumps({
                        "op": "read" if (idx + i) % 3 else "write",
                        "page": (idx * 31 + i * 7) % 128,
                        "id": f"t{idx}/{i}",
                    }).encode() + b"\n")
                    await writer.drain()
                    await reader.readline()
                writer.close()

            await asyncio.gather(*[client(i) for i in range(6)])
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(json.dumps({"op": "shutdown"}).encode() + b"\n")
            await writer.drain()
            report = json.loads(await reader.readline())
            assert report["all_conserved"]
            writer.close()
            await daemon.wait_stopped()
            return service

        service = asyncio.run(scenario())
        log = RequestLog.capture(service)
        assert len([e for e in log.entries if e["kind"] == "request"]) == 90
        replayed = replay(log)
        assert replayed.digest() == service.digest()
