"""Live control verbs against a serving fabric: scale, fault, drain."""

from __future__ import annotations

from repro.service.core import FabricService
from repro.service.log import RequestLog, drive, replay
from repro.workloads.service import synthetic_schedule


def build(**overrides):
    params = dict(nodes=64, design="SF", footprint_pages=128)
    params.update(overrides)
    return FabricService(**params)


class TestScaleMidTraffic:
    def test_scale_down_loses_zero_pages(self):
        svc = build()
        entries = synthetic_schedule(
            tenants=6, requests_per_tenant=40, rate=0.06,
            footprint_pages=128, seed=2, scale_at=600, scale_count=2,
        )
        drive(svc, entries)
        report = svc.drain()
        assert report["all_conserved"]
        assert report["pages_lost"] == 0
        assert len(svc.engine.records) >= 1  # pages really moved
        snap = svc.snapshot()
        assert snap["active_nodes"] == 62
        assert snap["completed"] == snap["submitted"] - snap["shed"]

    def test_scale_cycle_restores_capacity(self):
        svc = build()
        down = svc.scale_down(count=2)
        assert down["ok"]
        svc.advance(20_000)
        up = svc.scale_up()
        assert up["ok"] and up["nodes"] == down["nodes"]
        svc.advance(20_000)
        svc.drain()
        assert len(svc.topology.active_nodes) == 64
        assert svc.directory.check_conservation()
        assert len(svc.directory.lost) == 0

    def test_scale_rejected_on_non_reconfigurable_design(self):
        svc = build(design="DM", nodes=64)
        result = svc.scale_down(count=2)
        assert not result["ok"]
        assert "String Figure" in result["error"]

    def test_requests_to_gated_node_still_served(self):
        svc = build()
        victims = svc.scale_down(count=2)["nodes"]
        victim_pages = [
            p for p in svc.directory.pages
            if svc.directory.owner_of(p) in victims
        ]
        assert victim_pages
        svc.advance(50)  # mid-migration
        reqs = [svc.submit("a", "read", p) for p in victim_pages[:8]]
        svc.advance(60_000)
        svc.drain()
        assert all(r.status == "done" for r in reqs)

    def test_scale_replays_bit_identically(self):
        svc = build()
        entries = synthetic_schedule(
            tenants=4, requests_per_tenant=30, rate=0.08,
            footprint_pages=128, seed=9, scale_at=400, scale_count=2,
            scale_back_after=5_000,
        )
        drive(svc, entries)
        svc.drain()
        replayed = replay(RequestLog.capture(svc))
        assert replayed.digest() == svc.digest()


class TestFaultMidTraffic:
    def test_crash_with_mirroring_recovers_pages(self):
        svc = build()
        entries = synthetic_schedule(
            tenants=4, requests_per_tenant=30, rate=0.05,
            footprint_pages=128, seed=4, fault_at=900,
            fault_kind="node_crash",
        )
        drive(svc, entries)
        report = svc.drain()
        assert report["conserved"]  # packet law holds even under loss
        assert report["pages_lost"] == 0  # mirrored recovery rehomed them
        assert len(svc.fault_injector.records) == 1

    def test_drain_is_checkpoint_not_shutdown(self):
        svc = build()
        svc.submit("a", "read", 1)
        first = svc.drain()
        assert first["all_conserved"]
        req = svc.submit("a", "read", 2)  # admission re-opened
        svc.advance(5_000)
        assert req.status == "done"
