"""Slow-request log: exact decomposition, bounded ring, operator feed."""

from __future__ import annotations

import io
import json

from repro.service.core import FabricService
from repro.service.daemon import FabricDaemon


def slow_service(threshold: int = 1, **overrides):
    params = dict(
        nodes=36, design="SF", footprint_pages=64,
        slow_log_threshold=threshold,
    )
    params.update(overrides)
    svc = FabricService(**params)
    svc.install_probes()
    return svc


def run_traffic(svc, n: int = 30) -> None:
    for i in range(n):
        svc.submit(f"t{i % 3}", "read" if i % 2 else "write", i % 64)
        svc.advance(7)
    svc.advance(10_000)


class TestSlowRecords:
    def test_threshold_one_logs_every_completion(self):
        svc = slow_service(threshold=1)
        run_traffic(svc)
        assert svc.slow_log_total == svc.snapshot()["completed"]
        assert svc.slow_log_total > 0

    def test_high_threshold_logs_nothing(self):
        svc = slow_service(threshold=10**9)
        run_traffic(svc)
        assert svc.slow_log_total == 0
        assert list(svc.slow_log) == []

    def test_no_threshold_disables_logging(self):
        svc = slow_service(threshold=None)
        run_traffic(svc)
        assert svc.slow_log_total == 0
        assert "slow_requests" not in svc.snapshot()

    def test_parts_sum_to_latency_exactly(self):
        """The headline guarantee: ``admission + network + dram ==
        latency`` on every record, with the network side itself the
        exact sum of its anatomy components."""
        svc = slow_service(threshold=1)
        run_traffic(svc)
        with_components = 0
        for record in svc.slow_log:
            assert (
                record["admission"] + record["network"] + record["dram"]
                == record["latency"]
            ), record
            # Requests served by the home node itself have no network
            # legs and therefore no component dict; the rest must sum.
            if "components" in record:
                with_components += 1
                assert record["network"] == sum(
                    record["components"].values()
                )
            else:
                assert record["network"] == 0
        assert with_components > 0

    def test_without_probes_still_decomposes(self):
        # No anatomy installed: network reads 0 and dram absorbs the
        # whole post-admission remainder — the sum stays exact.
        svc = FabricService(
            nodes=36, footprint_pages=64, slow_log_threshold=1,
        )
        run_traffic(svc)
        assert svc.slow_log_total > 0
        for record in svc.slow_log:
            assert "components" not in record
            assert record["network"] == 0
            assert (
                record["admission"] + record["dram"] == record["latency"]
            )

    def test_ring_is_bounded(self):
        svc = slow_service(threshold=1, slow_log_size=4)
        run_traffic(svc, n=30)
        assert svc.slow_log_total > 4
        assert len(svc.slow_log) == 4

    def test_on_slow_fires_per_record(self):
        svc = slow_service(threshold=1)
        seen: list[dict] = []
        svc.on_slow = seen.append
        run_traffic(svc)
        assert len(seen) == svc.slow_log_total
        assert seen[-1] == list(svc.slow_log)[-1]

    def test_records_json_safe_and_identified(self):
        svc = slow_service(threshold=1)
        run_traffic(svc)
        record = json.loads(json.dumps(list(svc.slow_log)[0]))
        for key in ("seq", "tenant", "op", "page", "t_submit", "t_done",
                    "latency", "admission", "network", "dram"):
            assert key in record, key


class TestSnapshotAndConfig:
    def test_snapshot_exposes_slow_block(self):
        svc = slow_service(threshold=1, slow_log_size=16)
        run_traffic(svc)
        block = svc.snapshot()["slow_requests"]
        assert block["threshold"] == 1
        assert block["total"] == svc.slow_log_total
        assert 0 < len(block["recent"]) <= 8

    def test_threshold_round_trips_through_config(self):
        svc = slow_service(threshold=42, slow_log_size=7)
        clone = FabricService.from_config(svc.config_dict())
        assert clone.slow_log_threshold == 42
        assert clone.slow_log.maxlen == 7


class TestDaemonStream:
    def test_stream_gets_one_json_line_per_slow_request(self):
        svc = slow_service(threshold=1)
        stream = io.StringIO()
        FabricDaemon(svc, slow_log_stream=stream)
        run_traffic(svc, n=10)
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == svc.slow_log_total
        for line in lines:
            record = json.loads(line)
            assert (
                record["admission"] + record["network"] + record["dram"]
                == record["latency"]
            )
