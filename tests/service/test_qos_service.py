"""Service-layer QoS: tenant classes, class-aware admission, SLO blocks —
plus the stale-source-ring regression (satellite 1)."""

from __future__ import annotations

import zlib

from repro.network.qos import BULK_CLASS
from repro.service.core import FabricService
from repro.service.log import RequestLog, replay


def _drive(svc: FabricService, plan, step: int = 10) -> None:
    for tenant, op, page in plan:
        svc.submit(tenant, op, page)
        svc.advance(step)


class TestSourceRingRefresh:
    def test_ring_follows_scale_down(self):
        """Satellite 1: after an unmount, a tenant first seen post-scale
        must hash onto the *current* active ring, not the construction
        ring — the stale ring kept the old modulus and could hand out
        excised nodes."""
        svc = FabricService(nodes=36, footprint_pages=64)
        before = sorted(svc.topology.active_nodes)
        report = svc.scale_down(count=4)
        assert report["ok"], report
        # Let the gate-off pipeline finish (block/migrate/switch).
        svc.advance(200_000)
        after = sorted(svc.topology.active_nodes)
        assert len(after) < len(before)
        # A tenant named to collide with the stale modulus: with the old
        # ring, crc32 % len(before) could index a gated node; the fixed
        # ring can only yield currently-active nodes.
        for tenant in ("late-tenant", "t2", "zz-post-scale"):
            src = svc._pick_source(tenant)
            assert src in after, (tenant, src)
            start = zlib.crc32(tenant.encode()) % len(after)
            assert src in after[start:] + after[:start]

    def test_ring_covers_scale_up_additions(self):
        svc = FabricService(nodes=36, footprint_pages=64)
        svc.scale_down(count=4)
        svc.advance(200_000)
        shrunk = sorted(svc.topology.active_nodes)
        svc.scale_up()
        svc.advance(200_000)
        regrown = sorted(svc.topology.active_nodes)
        assert len(regrown) > len(shrunk)
        # New tenants hash over the regrown ring, reaching woken nodes.
        reachable = {
            svc._pick_source(f"tenant-{i}") for i in range(4 * len(regrown))
        }
        assert reachable - set(shrunk), "woken nodes never selected"

    def test_replay_digest_stable_across_scaling(self):
        svc = FabricService(nodes=36, footprint_pages=64)
        _drive(svc, [(f"t{i % 3}", "read", i % 64) for i in range(20)])
        svc.scale_down(count=2)
        svc.advance(100_000)
        _drive(svc, [(f"late{i % 2}", "read", i % 64) for i in range(10)])
        svc.drain()
        log = RequestLog.capture(svc)
        assert replay(log).digest() == svc.digest()


class TestTenantClasses:
    def _qos_service(self, **kwargs) -> FabricService:
        return FabricService(
            nodes=36, footprint_pages=64, qos=True,
            tenant_classes={"bulk-a": BULK_CLASS, "bulk-b": BULK_CLASS},
            **kwargs,
        )

    def test_params_roundtrip_through_config(self):
        svc = self._qos_service()
        clone = FabricService.from_config(svc.config_dict())
        assert clone._qos is not None
        assert clone.tenant_classes == svc.tenant_classes

    def test_unmapped_tenants_ride_class_zero(self):
        svc = self._qos_service()
        assert svc.class_of_tenant("bulk-a") == BULK_CLASS
        assert svc.class_of_tenant("anything-else") == 0

    def test_classless_service_has_no_qos_surfaces(self):
        svc = FabricService(nodes=36, footprint_pages=64)
        _drive(svc, [("t", "read", i % 64) for i in range(10)])
        svc.drain()
        assert "per_class" not in svc.latency_summary()
        assert "qos" not in svc.snapshot()
        assert "classes" not in svc.digest()

    def test_per_class_slo_accounting(self):
        svc = self._qos_service()
        plan = []
        for i in range(30):
            plan.append(("lat" if i % 3 == 0 else f"bulk-{'ab'[i % 2]}",
                         "read", i % 64))
        _drive(svc, plan)
        report = svc.drain()
        per_class = report["latency"]["per_class"]
        assert per_class["latency"]["completed"] == 10
        assert per_class["bulk"]["completed"] == 20
        assert per_class["latency"]["p99"] > 0
        snap = svc.snapshot()
        assert snap["qos"]["tenant_classes"]["bulk-a"] == BULK_CLASS
        assert set(svc.digest()["classes"]) == {
            "latency", "bulk", "background",
        }

    def test_replay_preserves_qos_digest(self):
        svc = self._qos_service()
        _drive(svc, [(f"bulk-{'ab'[i % 2]}" if i % 2 else "lat",
                      "read", i % 64) for i in range(24)])
        svc.drain()
        log = RequestLog.capture(svc)
        replayed = replay(log)
        assert replayed.digest() == svc.digest()
        assert "classes" in replayed.digest()


class TestClassAwareAdmission:
    def test_bulk_sheds_first_under_overload(self):
        """Priority tenants keep admitting while bulk exhausts its
        halved budget, queues, and sheds — submitted at one quiescent
        cycle so the network cannot drain between submissions."""
        svc = FabricService(
            nodes=36, footprint_pages=64, qos=True,
            tenant_classes={"bulk": BULK_CLASS},
            max_outstanding=16, queue_depth=8, node_watermark=1_000_000,
        )
        for i in range(40):
            svc.submit("bulk", "read", i % 64)
        bulk_stats = svc.tenant("bulk")
        # Bulk budget is 16 >> 1 = 8: the rest queued then shed.
        assert bulk_stats.shed > 0
        assert svc.outstanding == 8
        # A latency tenant still has headroom under its full budget.
        request = svc.submit("urgent", "read", 0)
        assert request.status == "inflight"
        svc.drain()

    def test_classless_admission_unchanged(self):
        svc = FabricService(
            nodes=36, footprint_pages=64,
            max_outstanding=16, queue_depth=8, node_watermark=1_000_000,
        )
        for i in range(40):
            svc.submit("any", "read", i % 64)
        assert svc.outstanding == 16
        svc.drain()
