"""Daemon wire protocol: newline-JSON verbs over real sockets."""

from __future__ import annotations

import asyncio
import json

from repro.service.core import FabricService
from repro.service.daemon import FabricDaemon


async def boot(**overrides):
    params = dict(nodes=36, design="SF", footprint_pages=64)
    params.update(overrides)
    service = FabricService(**params)
    daemon = FabricDaemon(service, quantum=32)
    host, port = await daemon.start()
    return service, daemon, host, port


async def connect(host, port):
    return await asyncio.open_connection(host, port)


async def roundtrip(reader, writer, message: dict) -> dict:
    writer.write(json.dumps(message).encode() + b"\n")
    await writer.drain()
    return json.loads(await reader.readline())


def test_read_write_roundtrip():
    async def scenario():
        service, daemon, host, port = await boot()
        reader, writer = await connect(host, port)
        ack = await roundtrip(
            reader, writer, {"op": "hello", "tenant": "alice"}
        )
        assert ack == {"ok": True, "tenant": "alice"}
        resp = await roundtrip(
            reader, writer, {"op": "read", "page": 3, "id": "r1"}
        )
        assert resp["ok"] and resp["status"] == "done"
        assert resp["id"] == "r1" and resp["tenant"] == "alice"
        assert resp["latency"] > 0
        resp = await roundtrip(
            reader, writer,
            {"op": "write", "page": 4, "size": 256, "id": "w1"},
        )
        assert resp["ok"] and resp["op"] == "write"
        writer.close()
        await daemon.stop()

    asyncio.run(scenario())


def test_stats_and_error_handling():
    async def scenario():
        service, daemon, host, port = await boot()
        reader, writer = await connect(host, port)
        bad = await roundtrip(reader, writer, {"op": "frobnicate"})
        assert not bad["ok"] and "unknown op" in bad["error"]
        not_json = b"this is not json\n"
        writer.write(not_json)
        await writer.drain()
        parse_err = json.loads(await reader.readline())
        assert not parse_err["ok"]
        out_of_range = await roundtrip(
            reader, writer, {"op": "read", "page": 9999, "id": "bad"}
        )
        assert not out_of_range["ok"] and out_of_range["status"] == "error"
        stats = await roundtrip(reader, writer, {"op": "stats"})
        assert stats["ok"] and stats["nodes"] == 36
        assert "tenants" in stats
        writer.close()
        await daemon.stop()

    asyncio.run(scenario())

def test_default_tenant_assigned_per_connection():
    async def scenario():
        service, daemon, host, port = await boot()
        r1, w1 = await connect(host, port)
        r2, w2 = await connect(host, port)
        await roundtrip(r1, w1, {"op": "read", "page": 1, "id": "a"})
        await roundtrip(r2, w2, {"op": "read", "page": 2, "id": "b"})
        stats = await roundtrip(r1, w1, {"op": "stats"})
        assert len(stats["tenants"]) == 2  # client-0, client-1
        w1.close()
        w2.close()
        await daemon.stop()

    asyncio.run(scenario())


def test_drain_and_shutdown_verbs():
    async def scenario():
        service, daemon, host, port = await boot()
        reader, writer = await connect(host, port)
        for i in range(5):
            writer.write(json.dumps(
                {"op": "read", "page": i, "id": f"r{i}"}
            ).encode() + b"\n")
        await writer.drain()
        for _ in range(5):
            json.loads(await reader.readline())
        drained = await roundtrip(reader, writer, {"op": "drain", "id": "d"})
        assert drained["verb"] == "drain" and drained["all_conserved"]
        down = await roundtrip(reader, writer, {"op": "shutdown"})
        assert down["verb"] == "shutdown" and down["all_conserved"]
        writer.close()
        await daemon.wait_stopped()
        assert service.outstanding == 0

    asyncio.run(scenario())


def test_concurrent_clients_all_complete():
    async def scenario():
        service, daemon, host, port = await boot(
            max_outstanding=6, node_watermark=2, queue_depth=64
        )
        done = []

        async def client(idx):
            reader, writer = await connect(host, port)
            for i in range(10):
                resp = await roundtrip(reader, writer, {
                    "op": "read", "page": (idx * 13 + i) % 64,
                    "id": f"{idx}/{i}",
                })
                done.append(resp["status"])
            writer.close()

        await asyncio.gather(*[client(i) for i in range(8)])
        await daemon.stop()
        assert len(done) == 80
        assert all(status == "done" for status in done)
        assert service.queued_total > 0  # budget 6 vs 8 clients

    asyncio.run(scenario())
