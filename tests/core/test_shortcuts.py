"""Shortcut generation rules (paper Figure 3c)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coordinates import CoordinateSystem
from repro.core.shortcuts import SHORTCUT_OFFSETS, generate_shortcuts


def test_offsets_are_two_and_four():
    assert SHORTCUT_OFFSETS == (2, 4)


def test_targets_at_ring_offsets():
    cs = CoordinateSystem(20, 2, seed=1)
    shortcuts = set(generate_shortcuts(cs))
    for u, v in shortcuts:
        offset_2 = cs.ring_neighbor(u, 0, 2)
        offset_4 = cs.ring_neighbor(u, 0, 4)
        assert v in (offset_2, offset_4)


def test_higher_id_rule():
    """Paper: "We only connect to a node with node number larger"."""
    cs = CoordinateSystem(30, 2, seed=2)
    for u, v in generate_shortcuts(cs):
        assert v > u


def test_higher_id_rule_disabled():
    cs = CoordinateSystem(30, 2, seed=2)
    unrestricted = generate_shortcuts(cs, higher_id_only=False)
    restricted = generate_shortcuts(cs)
    assert len(unrestricted) > len(restricted)
    assert set(restricted) <= {(u, v) for u, v in unrestricted}


def test_at_most_two_per_origin():
    cs = CoordinateSystem(50, 2, seed=3)
    origins: dict[int, int] = {}
    for u, _v in generate_shortcuts(cs):
        origins[u] = origins.get(u, 0) + 1
    assert max(origins.values()) <= 2


def test_no_self_loops_on_tiny_rings():
    cs = CoordinateSystem(2, 1, seed=0)
    assert all(u != v for u, v in generate_shortcuts(cs))
    cs4 = CoordinateSystem(4, 1, seed=0)
    assert all(u != v for u, v in generate_shortcuts(cs4))


def test_deduplicated():
    cs = CoordinateSystem(6, 2, seed=1)
    shortcuts = generate_shortcuts(cs)
    assert len(shortcuts) == len(set(shortcuts))


def test_deterministic():
    a = generate_shortcuts(CoordinateSystem(25, 2, seed=9))
    b = generate_shortcuts(CoordinateSystem(25, 2, seed=9))
    assert a == b


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=100),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_shortcut_properties_hold_for_any_size(n, seed):
    cs = CoordinateSystem(n, 2, seed=seed)
    shortcuts = generate_shortcuts(cs)
    origins: dict[int, int] = {}
    for u, v in shortcuts:
        assert 0 <= u < n and 0 <= v < n
        assert u != v
        assert v > u
        origins[u] = origins.get(u, 0) + 1
    if origins:
        assert max(origins.values()) <= len(SHORTCUT_OFFSETS)
