"""Dynamic and static reconfiguration (paper §III-C)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.reconfig import ReconfigurationManager
from repro.core.routing import GreediestRouting
from repro.core.topology import S2Topology, StringFigureTopology


@pytest.fixture
def system():
    topo = StringFigureTopology(64, 4, seed=7)
    routing = GreediestRouting(topo)
    return topo, routing, ReconfigurationManager(topo, routing)


def _all_pairs_deliver(topo, routing) -> tuple[int, int]:
    total = fallback = 0
    active = topo.active_nodes
    for a in active:
        for b in active:
            if a == b:
                continue
            result = routing.route(a, b)
            assert result.path[-1] == b
            total += result.hops
            fallback += result.fallback_hops
    return total, fallback


class TestPowerGating:
    def test_s2_cannot_reconfigure(self):
        topo = S2Topology(32, 4, seed=1)
        routing = GreediestRouting(topo)
        with pytest.raises(ValueError):
            ReconfigurationManager(topo, routing)

    def test_gate_single_node(self, system):
        topo, routing, mgr = system
        victim = mgr.gate_candidates(1)[0]
        event = mgr.power_gate(victim)
        assert event.kind == "gate_off"
        assert not topo.is_active(victim)
        assert mgr.validate_connectivity()
        _all_pairs_deliver(topo, routing)

    def test_gate_already_inactive_raises(self, system):
        topo, routing, mgr = system
        victim = mgr.gate_candidates(1)[0]
        mgr.power_gate(victim)
        with pytest.raises(ValueError):
            mgr.power_gate(victim)

    def test_power_on_inactive_only(self, system):
        _topo, _routing, mgr = system
        with pytest.raises(ValueError):
            mgr.power_on(0)

    def test_gate_and_restore_roundtrip(self, system):
        topo, routing, mgr = system
        baseline_links = set(topo.active_links())
        victims = mgr.gate_candidates(8)
        assert len(victims) == 8
        for v in victims:
            mgr.power_gate(v)
        assert len(topo.active_nodes) == 64 - 8
        assert mgr.validate_connectivity()
        _total, _fallback = _all_pairs_deliver(topo, routing)
        for v in victims:
            mgr.power_on(v)
        assert len(topo.active_nodes) == 64
        assert set(topo.active_links()) == baseline_links
        assert topo.active_shortcuts == set()
        total, fallback = _all_pairs_deliver(topo, routing)
        assert fallback == 0

    def test_shortcut_patching_on_gate(self, system):
        """Gating a cleanly-gateable node activates a bridging wire or
        relies on an existing base link across the gap."""
        topo, routing, mgr = system
        for victim in mgr.gate_candidates(4):
            pred, succ = mgr._active_ring_neighbors(victim)
            mgr.power_gate(victim)
            new_pred, new_succ = pred, succ
            # After gating, pred's active clockwise ring successor must
            # be reachable in one hop (patched ring invariant).
            assert new_succ in topo.neighbors(new_pred) or topo.direction.value == "uni"

    def test_events_recorded(self, system):
        topo, routing, mgr = system
        victim = mgr.gate_candidates(1)[0]
        event = mgr.power_gate(victim)
        assert event.links_disabled
        assert event.tables_updated
        assert mgr.events[-1] is event

    def test_cannot_gate_below_two_nodes(self):
        topo = StringFigureTopology(3, 4, seed=0)
        routing = GreediestRouting(topo)
        mgr = ReconfigurationManager(topo, routing)
        victims = [v for v in range(3) if mgr.cleanly_gateable(v)]
        if victims:
            mgr.power_gate(victims[0])
        with pytest.raises(ValueError):
            for v in topo.active_nodes:
                mgr.power_gate(v)


class TestVictimSelection:
    def test_candidates_are_spaced(self, system):
        topo, _routing, mgr = system
        victims = mgr.gate_candidates(10, min_spacing=3)
        positions = sorted(topo.coords.ring_position(v, 0) for v in victims)
        n = topo.num_nodes
        for a, b in zip(positions, positions[1:]):
            assert b - a >= 3
        # wraparound spacing
        if len(positions) > 1:
            assert positions[0] + n - positions[-1] >= 3

    def test_candidates_are_gateable(self, system):
        _topo, _routing, mgr = system
        for v in mgr.gate_candidates(10):
            assert mgr.cleanly_gateable(v)

    def test_inactive_not_gateable(self, system):
        _topo, _routing, mgr = system
        victim = mgr.gate_candidates(1)[0]
        mgr.power_gate(victim)
        assert not mgr.cleanly_gateable(victim)


class TestStaticReconfiguration:
    def test_unmount_mount_cycle(self, system):
        """Design reuse: deploy a subset, expand later (paper §III-C)."""
        topo, routing, mgr = system
        reserved = mgr.gate_candidates(6)
        for node in reserved:
            event = mgr.unmount(node)
            assert event.kind == "unmount"
        assert len(topo.active_nodes) == 58
        assert mgr.validate_connectivity()
        _all_pairs_deliver(topo, routing)
        for node in reserved:
            event = mgr.mount(node)
            assert event.kind == "mount"
        assert len(topo.active_nodes) == 64
        _total, fallback = _all_pairs_deliver(topo, routing)
        assert fallback == 0

    def test_unmount_active_only(self, system):
        _topo, _routing, mgr = system
        victim = mgr.gate_candidates(1)[0]
        mgr.unmount(victim)
        with pytest.raises(ValueError):
            mgr.unmount(victim)

    def test_mount_mounted_raises(self, system):
        _topo, _routing, mgr = system
        with pytest.raises(ValueError):
            mgr.mount(0)


class TestTableConsistencyAfterReconfig:
    def test_no_gated_nodes_in_tables(self, system):
        topo, routing, mgr = system
        victims = mgr.gate_candidates(5)
        for v in victims:
            mgr.power_gate(v)
        gated = set(victims)
        for node in topo.active_nodes:
            table = routing.tables[node]
            for entry in table.one_hop() + table.two_hop():
                assert entry.node not in gated
                assert not (entry.vias & gated)

    def test_tables_unblocked_after_reconfig(self, system):
        topo, routing, mgr = system
        victim = mgr.gate_candidates(1)[0]
        mgr.power_gate(victim)
        for node in topo.active_nodes:
            for entry in routing.tables[node].entries():
                assert not entry.blocked

    def test_gated_node_has_no_table(self, system):
        topo, routing, mgr = system
        victim = mgr.gate_candidates(1)[0]
        mgr.power_gate(victim)
        assert victim not in routing.tables


class TestConnectivityValidation:
    def test_intact_network_connected(self, system):
        _topo, _routing, mgr = system
        assert mgr.validate_connectivity()

    def test_heavy_gating_stays_connected(self, system):
        topo, routing, mgr = system
        victims = mgr.gate_candidates(12)
        for v in victims:
            mgr.power_gate(v)
            assert mgr.validate_connectivity()

    def test_graph_matches_active_view(self, system):
        topo, _routing, mgr = system
        victims = mgr.gate_candidates(4)
        for v in victims:
            mgr.power_gate(v)
        g = topo.graph()
        assert set(g.nodes()) == set(topo.active_nodes)
        assert nx.is_connected(g)
