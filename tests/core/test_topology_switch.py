"""MUX-based topology switch model (paper Figure 7)."""

from __future__ import annotations

import pytest

from repro.core.topology import LinkKind, StringFigureTopology
from repro.core.topology_switch import TopologySwitch


@pytest.fixture
def topo():
    return StringFigureTopology(40, 4, seed=13)


def _node_with_shortcut(topo):
    u, v = topo.shortcut_wires[0]
    return u, v


class TestAttachedWires:
    def test_includes_all_incident_links(self, topo):
        switch = TopologySwitch(topo, 0)
        for u, v in switch.attached_wires():
            assert 0 in (u, v)
            assert topo.link_kind(u, v) is not None

    def test_shortcut_wires_classified(self, topo):
        u, _v = _node_with_shortcut(topo)
        switch = TopologySwitch(topo, u)
        for a, b in switch.shortcut_wires():
            assert topo.link_kind(a, b) is LinkKind.SHORTCUT


class TestPortAccounting:
    def test_base_topology_uses_ports(self, topo):
        for node in range(topo.num_nodes):
            switch = TopologySwitch(topo, node)
            assert switch.ports_in_use() == topo.active_degree(node)
            assert switch.free_ports() >= 0

    def test_cannot_activate_without_free_ports(self, topo):
        u, v = _node_with_shortcut(topo)
        switch = TopologySwitch(topo, u)
        if switch.free_ports() == 0:
            assert not switch.can_activate(u, v)

    def test_can_activate_after_gating_neighbors(self, topo):
        """Gating a node frees ports at its neighbors."""
        u, v = _node_with_shortcut(topo)
        switch = TopologySwitch(topo, u)
        # Free a port at both endpoints by deactivating one neighbor each.
        for endpoint in (u, v):
            for w in topo.neighbors(endpoint):
                if w not in (u, v):
                    topo.set_node_active(w, False)
                    break
        assert switch.free_ports() >= 1
        assert switch.can_activate(u, v)

    def test_unknown_wire_rejected(self, topo):
        switch = TopologySwitch(topo, 0)
        assert not switch.can_activate(0, 0)

    def test_inactive_endpoint_rejected(self, topo):
        u, v = _node_with_shortcut(topo)
        topo.set_node_active(v, False)
        switch = TopologySwitch(topo, u)
        assert not switch.can_activate(u, v)
        topo.set_node_active(v, True)


class TestMuxCost:
    def test_mux_count_bounded(self, topo):
        """At most two shortcut wires -> bounded mux hardware."""
        for node in range(topo.num_nodes):
            switch = TopologySwitch(topo, node)
            assert switch.mux_count() <= 2 * 4  # 2 sides x (2 out + 2 in)
