"""Per-router decision-table kernels vs the scalar greedy path.

``GreediestRouting.kernel_next_hop`` answers a cold ``(router, dst)``
pair from one vectorized all-destination pass.  It must agree with the
scalar ``next_hop`` decision — same via, same commit, same
fallback/valid classification — for every pair, and its cached tables
must drop whenever the routing ``version`` moves (reconfiguration and
fault-repair rebuilds).
"""

from __future__ import annotations

import pytest

from repro.core.reconfig import ReconfigurationManager
from repro.core.routing import AdaptiveGreediestRouting, GreediestRouting
from repro.core.topology import StringFigureTopology
from repro.faults.detector import TableRepair
from repro.network.policies import GreedyPolicy


def assert_kernel_matches_scalar(topo, routing):
    """Exhaustive (src, dst) equivalence, including the None/fallback
    classification (kernel None <=> scalar enters the ring walk)."""
    active = topo.active_nodes
    checked = kernel_hits = 0
    for current in active:
        for dst in active:
            if current == dst:
                continue
            entry = routing.kernel_next_hop(current, dst)
            nxt, state = routing.next_hop(current, dst)
            if entry is None:
                assert state.in_fallback, (current, dst)
            else:
                kernel_hits += 1
                assert not state.in_fallback, (current, dst)
                assert entry == (nxt, state.commit), (current, dst)
            checked += 1
    assert checked == len(active) * (len(active) - 1)
    # On an intact network greedy always progresses: the kernel must
    # answer every pair, not silently defer to the scalar path.
    assert kernel_hits == checked
    return kernel_hits


@pytest.mark.parametrize("nodes,ports", [(64, 4), (144, 4)])
def test_kernel_equals_scalar_exhaustive(nodes, ports):
    topo = StringFigureTopology(nodes, ports, seed=0)
    assert_kernel_matches_scalar(topo, GreediestRouting(topo))


def test_kernel_equals_scalar_one_hop_only():
    topo = StringFigureTopology(64, 4, seed=0)
    routing = GreediestRouting(topo, use_two_hop=False)
    active = topo.active_nodes
    for current in active:
        for dst in active:
            if current == dst:
                continue
            entry = routing.kernel_next_hop(current, dst)
            nxt, state = routing.next_hop(current, dst)
            if entry is None:
                assert state.in_fallback
            else:
                assert entry == (nxt, state.commit)


def test_size_gate_disables_kernel():
    topo = StringFigureTopology(64, 4, seed=0)
    routing = GreediestRouting(topo)
    routing.kernel_max_nodes = 32
    a, b = topo.active_nodes[0], topo.active_nodes[10]
    assert routing.kernel_next_hop(a, b) is None
    assert routing._md_matrix is None  # the O(N^2) matrix never built


def test_tables_invalidate_on_reconfiguration():
    topo = StringFigureTopology(64, 4, seed=7)
    routing = GreediestRouting(topo)
    victim = ReconfigurationManager(topo, routing).gate_candidates(1)[0]
    # Warm every router's table against the intact network.
    assert_kernel_matches_scalar(topo, routing)
    before = routing.version
    ReconfigurationManager(topo, routing).power_gate(victim)
    assert routing.version > before
    # Post-gate decisions must match post-gate scalar routing; any
    # stale table would still forward toward the gated node.
    active = topo.active_nodes
    assert victim not in active
    for current in active:
        for dst in active:
            if current == dst:
                continue
            entry = routing.kernel_next_hop(current, dst)
            if entry is not None:
                nxt, state = routing.next_hop(current, dst)
                assert entry == (nxt, state.commit), (current, dst)
                assert entry[0] != victim


def test_tables_invalidate_on_fault_repair():
    topo = StringFigureTopology(64, 4, seed=0)
    routing = AdaptiveGreediestRouting(topo)
    policy = GreedyPolicy(routing)
    repair = TableRepair(routing, policy)
    u = topo.active_nodes[0]
    v = topo.neighbors(u)[0]
    # Warm, then find a destination the warm table answers via the
    # soon-to-fail wire.
    stale_via_v = [
        dst for dst in topo.active_nodes
        if dst != u
        and (entry := routing.kernel_next_hop(u, dst)) is not None
        and entry[0] == v
    ]
    assert stale_via_v  # a one-hop neighbor is always someone's via
    repair.route_around_link(u, v)
    for dst in stale_via_v:
        entry = routing.kernel_next_hop(u, dst)
        if entry is not None:
            assert entry[0] != v
            nxt, state = routing.next_hop(u, dst)
            assert entry == (nxt, state.commit)
    # Restore rebuilds the neighborhood; decisions return to the
    # intact-network answers.
    repair.restore_link(u, v)
    assert_kernel_matches_scalar(topo, routing)
