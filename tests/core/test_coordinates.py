"""Unit and property tests for circular distances and coordinates."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coordinates import (
    CoordinateSystem,
    balanced_coordinate,
    circular_distance,
    clockwise_distance,
    min_circular_distance,
    min_clockwise_distance,
    quantize_coordinate,
)

unit = st.floats(min_value=0.0, max_value=1.0, exclude_max=True, allow_nan=False)


class TestCircularDistance:
    def test_zero_for_identical(self):
        assert circular_distance(0.3, 0.3) == 0.0

    def test_wraps_around(self):
        assert circular_distance(0.95, 0.05) == pytest.approx(0.1)

    def test_half_is_max(self):
        assert circular_distance(0.0, 0.5) == pytest.approx(0.5)

    def test_simple(self):
        assert circular_distance(0.2, 0.6) == pytest.approx(0.4)

    @given(unit, unit)
    def test_symmetric(self, u, v):
        assert circular_distance(u, v) == pytest.approx(circular_distance(v, u))

    @given(unit, unit)
    def test_bounded(self, u, v):
        d = circular_distance(u, v)
        assert 0.0 <= d <= 0.5

    @given(unit, unit, unit)
    def test_triangle_inequality(self, u, v, w):
        assert circular_distance(u, w) <= (
            circular_distance(u, v) + circular_distance(v, w) + 1e-12
        )

    @given(unit, unit)
    def test_matches_clockwise_min(self, u, v):
        d = circular_distance(u, v)
        assert d == pytest.approx(
            min(clockwise_distance(u, v), clockwise_distance(v, u)), abs=1e-12
        )


class TestClockwiseDistance:
    def test_forward(self):
        assert clockwise_distance(0.2, 0.7) == pytest.approx(0.5)

    def test_wraps(self):
        assert clockwise_distance(0.7, 0.2) == pytest.approx(0.5)

    def test_zero(self):
        assert clockwise_distance(0.4, 0.4) == 0.0

    @given(unit, unit)
    def test_in_range(self, u, v):
        assert 0.0 <= clockwise_distance(u, v) < 1.0

    @given(unit, unit)
    def test_antisymmetric_sum(self, u, v):
        if u != v:
            total = clockwise_distance(u, v) + clockwise_distance(v, u)
            assert total == pytest.approx(1.0)


class TestMinDistances:
    def test_min_over_spaces(self):
        assert min_circular_distance((0.1, 0.9), (0.2, 0.5)) == pytest.approx(0.1)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            min_circular_distance((0.1,), (0.2, 0.3))

    def test_clockwise_mismatch_raises(self):
        with pytest.raises(ValueError):
            min_clockwise_distance((0.1,), (0.2, 0.3))

    @given(st.lists(unit, min_size=1, max_size=4), st.data())
    def test_min_circular_bounded_by_each_space(self, coords_u, data):
        coords_v = data.draw(
            st.lists(unit, min_size=len(coords_u), max_size=len(coords_u))
        )
        md = min_circular_distance(coords_u, coords_v)
        for u, v in zip(coords_u, coords_v):
            assert md <= circular_distance(u, v) + 1e-12


class TestQuantization:
    def test_seven_bit_grid(self):
        q = quantize_coordinate(0.5, 7)
        assert q == pytest.approx(64 / 128)

    def test_stays_in_unit_interval(self):
        assert 0.0 <= quantize_coordinate(0.9999, 7) < 1.0

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            quantize_coordinate(0.5, 0)

    @given(unit, st.integers(min_value=1, max_value=16))
    def test_error_bounded_by_half_step(self, coord, bits):
        q = quantize_coordinate(coord, bits)
        step = 1.0 / (1 << bits)
        assert circular_distance(coord, q) <= step / 2 + 1e-12


class TestBalancedCoordinate:
    def test_first_draw_uniform(self):
        rng = random.Random(0)
        c = balanced_coordinate([], rng, candidates=4)
        assert 0.0 <= c < 1.0

    def test_invalid_candidates(self):
        with pytest.raises(ValueError):
            balanced_coordinate([], random.Random(0), candidates=0)

    def test_picks_larger_gap(self):
        # With many candidates, the draw should land far from 0.0.
        rng = random.Random(1)
        c = balanced_coordinate([0.0], rng, candidates=64)
        assert circular_distance(c, 0.0) > 0.2

    def test_balance_improves_with_candidates(self):
        """Best-of-k sampling yields measurably more even rings."""
        plain = CoordinateSystem(200, 1, seed=3, candidates=1)
        balanced = CoordinateSystem(200, 1, seed=3, candidates=8)
        assert balanced.balance_score(0) > plain.balance_score(0)


class TestCoordinateSystem:
    def test_dimensions(self):
        cs = CoordinateSystem(10, 3, seed=0)
        assert len(cs.vector(0)) == 3
        assert cs.num_nodes == 10

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            CoordinateSystem(0, 1)
        with pytest.raises(ValueError):
            CoordinateSystem(4, 0)

    def test_deterministic(self):
        a = CoordinateSystem(20, 2, seed=11)
        b = CoordinateSystem(20, 2, seed=11)
        assert all(a.vector(v) == b.vector(v) for v in range(20))

    def test_seeds_differ(self):
        a = CoordinateSystem(20, 2, seed=1)
        b = CoordinateSystem(20, 2, seed=2)
        assert any(a.vector(v) != b.vector(v) for v in range(20))

    def test_adding_space_preserves_existing(self):
        """Space streams are independent: space 0 is stable under L."""
        two = CoordinateSystem(15, 2, seed=9)
        four = CoordinateSystem(15, 4, seed=9)
        for v in range(15):
            assert two.coordinate(v, 0) == four.coordinate(v, 0)
            assert two.coordinate(v, 1) == four.coordinate(v, 1)

    def test_ring_is_permutation(self):
        cs = CoordinateSystem(17, 2, seed=4)
        for space in range(2):
            assert sorted(cs.ring(space)) == list(range(17))

    def test_ring_sorted_by_coordinate(self):
        cs = CoordinateSystem(17, 2, seed=4)
        ring = cs.ring(0)
        coords = [cs.coordinate(v, 0) for v in ring]
        assert coords == sorted(coords)

    def test_ring_position_roundtrip(self):
        cs = CoordinateSystem(17, 2, seed=4)
        for v in range(17):
            assert cs.ring(0)[cs.ring_position(v, 0)] == v

    def test_successor_predecessor_inverse(self):
        cs = CoordinateSystem(17, 2, seed=4)
        for space in range(2):
            for v in range(17):
                assert cs.predecessor(cs.successor(v, space), space) == v

    def test_ring_neighbor_wraps(self):
        cs = CoordinateSystem(5, 1, seed=0)
        ring = cs.ring(0)
        assert cs.ring_neighbor(ring[-1], 0, 1) == ring[0]

    def test_md_symmetry(self):
        cs = CoordinateSystem(12, 2, seed=6)
        for a in range(12):
            for b in range(12):
                assert cs.md(a, b) == pytest.approx(cs.md(b, a))

    def test_md_zero_iff_same_node_without_quantization(self):
        cs = CoordinateSystem(12, 2, seed=6)
        for a in range(12):
            assert cs.md(a, a) == 0.0
            for b in range(12):
                if a != b:
                    assert cs.md(a, b) > 0.0

    def test_quantized_coordinates_on_grid(self):
        cs = CoordinateSystem(20, 2, seed=8, coord_bits=7)
        for v in range(20):
            for c in cs.vector(v):
                assert math.isclose(c * 128, round(c * 128), abs_tol=1e-9)

    def test_quantized_unique_when_room(self):
        cs = CoordinateSystem(20, 1, seed=8, coord_bits=7)
        coords = [cs.coordinate(v, 0) for v in range(20)]
        assert len(set(coords)) == 20

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=2, max_value=40),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_construction_invariants_hold(self, n, spaces, seed):
        cs = CoordinateSystem(n, spaces, seed=seed)
        for space in range(spaces):
            assert sorted(cs.ring(space)) == list(range(n))
            for v in range(n):
                assert 0.0 <= cs.coordinate(v, space) < 1.0
