"""Two-VC deadlock-avoidance assignment (paper §IV-A)."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core.virtual_channels import NUM_VIRTUAL_CHANNELS, select_virtual_channel

unit = st.floats(min_value=0.0, max_value=1.0, exclude_max=True, allow_nan=False)


def test_exactly_two_channels():
    assert NUM_VIRTUAL_CHANNELS == 2


def test_low_to_high_uses_vc0():
    assert select_virtual_channel(0.1, 0.9) == 0


def test_high_to_low_uses_vc1():
    assert select_virtual_channel(0.9, 0.1) == 1


def test_equal_coordinates_default_vc0():
    assert select_virtual_channel(0.5, 0.5) == 0


@given(unit, unit)
def test_vc_always_valid(src, dst):
    assert select_virtual_channel(src, dst) in (0, 1)


@given(unit, unit)
def test_opposite_directions_use_distinct_vcs(src, dst):
    if src != dst:
        assert select_virtual_channel(src, dst) != select_virtual_channel(dst, src)
