"""Construction invariants of the String Figure topology."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.topology import (
    LinkKind,
    S2Topology,
    StringFigureTopology,
)


class TestConstruction:
    def test_rejects_tiny_networks(self):
        with pytest.raises(ValueError):
            StringFigureTopology(1, 4)

    def test_rejects_too_few_ports(self):
        with pytest.raises(ValueError):
            StringFigureTopology(8, 1)

    def test_num_spaces_is_half_ports(self):
        assert StringFigureTopology(16, 4, seed=0).num_spaces == 2
        assert StringFigureTopology(16, 8, seed=0).num_spaces == 4
        assert StringFigureTopology(16, 5, seed=0).num_spaces == 2

    def test_arbitrary_node_counts_supported(self):
        """A design goal: no power-of-two / perfect-square restriction."""
        for n in (9, 17, 61, 113, 130):
            topo = StringFigureTopology(n, 4, seed=1)
            topo.check_invariants()
            assert nx.is_connected(topo.graph())

    def test_deterministic_construction(self):
        a = StringFigureTopology(40, 4, seed=123)
        b = StringFigureTopology(40, 4, seed=123)
        assert set(a.physical_links()) == set(b.physical_links())

    def test_different_seeds_differ(self):
        a = StringFigureTopology(40, 4, seed=1)
        b = StringFigureTopology(40, 4, seed=2)
        assert set(a.physical_links()) != set(b.physical_links())

    def test_port_budget_respected(self, medium_topology):
        p = medium_topology.num_ports
        for v in range(medium_topology.num_nodes):
            assert medium_topology.base_degree(v) <= p

    def test_invariants_pass(self, small_topology, medium_topology):
        small_topology.check_invariants()
        medium_topology.check_invariants()

    def test_ring_links_present_per_space(self, medium_topology):
        """Every space's ring adjacency must exist as physical links."""
        coords = medium_topology.coords
        for space in range(medium_topology.num_spaces):
            ring = coords.ring(space)
            for i, node in enumerate(ring):
                succ = ring[(i + 1) % len(ring)]
                assert medium_topology.link_kind(node, succ) is not None

    def test_ring_spaces_recorded(self, medium_topology):
        coords = medium_topology.coords
        ring = coords.ring(0)
        node, succ = ring[0], ring[1]
        assert 0 in medium_topology.ring_spaces(node, succ)

    def test_pairing_fills_free_ports(self):
        """After pairing, at most one node may retain free ports."""
        topo = StringFigureTopology(50, 4, seed=9)
        free = [
            topo.num_ports - topo.base_degree(v) for v in range(topo.num_nodes)
        ]
        nodes_with_free = [v for v, f in enumerate(free) if f > 0]
        # Pairing stops only when no connectable pair remains: any two
        # remaining free-port nodes must already be adjacent.
        for i, u in enumerate(nodes_with_free):
            for v in nodes_with_free[i + 1 :]:
                assert topo.link_kind(u, v) is not None

    def test_graph_connected_across_scales(self):
        for n, p in ((16, 4), (61, 4), (113, 4), (200, 8)):
            topo = StringFigureTopology(n, p, seed=0)
            assert nx.is_connected(topo.graph()), (n, p)

    def test_neighbors_sorted_and_symmetric(self, medium_topology):
        for v in range(medium_topology.num_nodes):
            neighbors = medium_topology.neighbors(v)
            assert neighbors == sorted(neighbors)
            for w in neighbors:
                assert v in medium_topology.neighbors(w)

    def test_radix_constant(self, medium_topology):
        assert medium_topology.radix == medium_topology.num_ports

    def test_link_channels_unity(self, medium_topology):
        assert medium_topology.link_channels(0, 1) == 1


class TestShortcutsWiring:
    def test_shortcuts_dormant_by_default(self, medium_topology):
        assert medium_topology.active_shortcuts == set()
        for u, v in medium_topology.shortcut_wires:
            assert (u, v) not in medium_topology.active_links()

    def test_s2_has_no_shortcuts(self, s2_topology):
        assert s2_topology.shortcut_wires == []
        assert s2_topology.overlapping_shortcuts == []

    def test_activate_unknown_shortcut_raises(self, medium_topology):
        # A ring link is not a shortcut wire.
        ring = medium_topology.coords.ring(0)
        with pytest.raises(ValueError):
            medium_topology.activate_shortcut(ring[0], ring[1])

    def test_activate_deactivate_roundtrip(self, medium_topology):
        u, v = medium_topology.shortcut_wires[0]
        medium_topology.activate_shortcut(u, v)
        assert v in medium_topology.neighbors(u)
        medium_topology.deactivate_shortcut(u, v)
        assert v not in medium_topology.neighbors(u)

    def test_active_degree_counts_shortcuts(self, medium_topology):
        u, v = medium_topology.shortcut_wires[0]
        before = medium_topology.active_degree(u)
        medium_topology.activate_shortcut(u, v)
        assert medium_topology.active_degree(u) == before + 1
        medium_topology.deactivate_shortcut(u, v)


class TestActivationOverlay:
    def test_all_active_initially(self, medium_topology):
        assert medium_topology.active_nodes == list(range(61))

    def test_deactivation_hides_node(self, medium_topology):
        victim = 5
        neighbors = medium_topology.neighbors(victim)
        medium_topology.set_node_active(victim, False)
        assert victim not in medium_topology.active_nodes
        assert medium_topology.neighbors(victim) == []
        for w in neighbors:
            assert victim not in medium_topology.neighbors(w)
        medium_topology.set_node_active(victim, True)

    def test_graph_excludes_inactive(self, medium_topology):
        medium_topology.set_node_active(3, False)
        g = medium_topology.graph()
        assert 3 not in g.nodes()
        medium_topology.set_node_active(3, True)

    def test_physical_graph_includes_everything(self, medium_topology):
        medium_topology.set_node_active(3, False)
        g = medium_topology.physical_graph()
        assert 3 in g.nodes()
        assert g.number_of_edges() == len(medium_topology.physical_links())
        medium_topology.set_node_active(3, True)


class TestUnidirectional:
    def test_uni_graph_is_directed(self):
        topo = StringFigureTopology(30, 4, seed=2, direction="uni")
        assert topo.graph().is_directed()

    def test_uni_port_budget_split(self):
        topo = StringFigureTopology(30, 4, seed=2, direction="uni")
        topo.check_invariants()
        half = topo.num_ports // 2
        for v in range(30):
            out = len(topo.neighbors(v))
            inn = len(topo.in_neighbors(v))
            assert out <= half
            assert inn <= half

    def test_uni_strongly_connected(self):
        topo = StringFigureTopology(30, 4, seed=2, direction="uni")
        assert nx.is_strongly_connected(topo.graph())

    def test_uni_rings_clockwise(self):
        topo = StringFigureTopology(30, 4, seed=2, direction="uni")
        for space in range(topo.num_spaces):
            ring = topo.coords.ring(space)
            for i, node in enumerate(ring):
                succ = ring[(i + 1) % len(ring)]
                assert succ in topo.neighbors(node)


class TestS2Variant:
    def test_s2_not_reconfigurable(self):
        assert S2Topology.reconfigurable is False
        assert StringFigureTopology.reconfigurable is True

    def test_s2_base_topology_matches_sf(self):
        """S2 = SF minus shortcut wires (same rings + pairings)."""
        sf = StringFigureTopology(40, 4, seed=77)
        s2 = S2Topology(40, 4, seed=77)
        sf_base = {
            k
            for k in sf.physical_links((LinkKind.RING, LinkKind.PAIRING))
        }
        assert sf_base == set(s2.physical_links())


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=80),
    p=st.sampled_from([4, 6, 8]),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_random_construction_invariants(n, p, seed):
    """Property: any (N, p, seed) yields a valid, connected topology."""
    topo = StringFigureTopology(n, p, seed=seed)
    topo.check_invariants()
    assert nx.is_connected(topo.graph())
    # Shortcut origination bound (paper: at most two per node).
    origins: dict[int, int] = {}
    for u, _v in topo.shortcut_wires + topo.overlapping_shortcuts:
        origins[u] = origins.get(u, 0) + 1
    assert all(count <= 2 for count in origins.values())
