"""Routing-table contents, capacity bound, and hardware accounting."""

from __future__ import annotations

import pytest

from repro.core.routing_table import RoutingTable, TableEntry, entry_bits, table_bits
from repro.core.topology import StringFigureTopology


@pytest.fixture
def topo():
    return StringFigureTopology(30, 4, seed=11)


@pytest.fixture
def table(topo):
    return RoutingTable.build(topo, owner=0)


class TestBuild:
    def test_one_hop_matches_neighbors(self, topo, table):
        assert sorted(e.node for e in table.one_hop()) == topo.neighbors(0)

    def test_two_hop_are_neighbors_of_neighbors(self, topo, table):
        one_hop = set(topo.neighbors(0))
        for entry in table.two_hop():
            assert entry.node not in one_hop
            assert entry.node != 0
            assert any(entry.node in topo.neighbors(w) for w in entry.vias)

    def test_vias_are_one_hop(self, topo, table):
        one_hop = set(topo.neighbors(0))
        for entry in table.two_hop():
            assert entry.vias <= one_hop

    def test_one_hop_via_is_self(self, table):
        for entry in table.one_hop():
            assert entry.vias == {entry.node}

    def test_coords_match_topology(self, topo, table):
        for entry in table.entries():
            assert entry.coords == topo.coords.vector(entry.node)

    def test_capacity_bound_all_nodes(self, topo):
        """The p(p+1) bound holds at every router (paper §IV-B)."""
        for v in range(topo.num_nodes):
            t = RoutingTable.build(topo, v)
            t.check_capacity()

    def test_lookup_missing_returns_none(self, table):
        assert table.lookup(9999) is None

    def test_contains(self, topo, table):
        assert topo.neighbors(0)[0] in table
        assert 9999 not in table


class TestReconfigPrimitives:
    def test_block_unblock(self, table):
        node = table.one_hop()[0].node
        table.block(node)
        assert not table.lookup(node).usable
        assert node not in [e.node for e in table.one_hop()]
        table.unblock(node)
        assert table.lookup(node).usable

    def test_block_all(self, table):
        table.block_all()
        assert table.one_hop() == []
        assert table.two_hop() == []
        table.unblock_all()
        assert len(table.one_hop()) > 0

    def test_invalidate_validate(self, table):
        node = table.one_hop()[0].node
        table.invalidate(node)
        assert not table.lookup(node).usable
        table.validate(node)
        assert table.lookup(node).usable

    def test_hop_flip(self, table):
        entry = table.two_hop()[0]
        table.set_hop(entry.node, 1, vias={entry.node})
        assert table.lookup(entry.node).hop == 1

    def test_set_hop_missing_raises(self, table):
        with pytest.raises(KeyError):
            table.set_hop(9999, 1)

    def test_drop_via_invalidates_when_empty(self, table):
        entry = table.two_hop()[0]
        for via in list(entry.vias):
            table.drop_via(entry.node, via)
        assert not table.lookup(entry.node).valid

    def test_block_missing_is_noop(self, table):
        table.block(9999)  # must not raise


class TestHardwareAccounting:
    def test_entry_bits_formula(self):
        # 1296 nodes, 8 ports: 11 id + 3 flag + 2 space + 7 coord = 23.
        assert entry_bits(1296, 8) == 11 + 1 + 1 + 1 + 2 + 7

    def test_entry_bits_small(self):
        # 9 nodes, 4 ports: 4 id + 3 flags + 1 space + 7 coord = 15.
        assert entry_bits(9, 4) == 4 + 3 + 1 + 7

    def test_table_bits_sublinear_in_n(self):
        """Routing state grows only logarithmically with network size."""
        small = table_bits(128, 8)
        large = table_bits(1296, 8)
        assert large < small * 1.5

    def test_table_fits_on_chip(self):
        """Paper's working point: the full table is a few KB of SRAM."""
        bits = table_bits(1296, 8)
        assert bits / 8 / 1024 < 8  # under 8 KB

    def test_usable_property(self):
        entry = TableEntry(node=1, hop=1, coords=(0.5,))
        assert entry.usable
        entry.blocked = True
        assert not entry.usable
        entry.blocked = False
        entry.valid = False
        assert not entry.usable
