"""Greediest routing: delivery, progress, loop freedom, adaptivity."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.routing import AdaptiveGreediestRouting, GreediestRouting, RouteState
from repro.core.topology import StringFigureTopology


class TestDelivery:
    def test_all_pairs_small(self, small_routing):
        n = small_routing.topology.num_nodes
        for a in range(n):
            for b in range(n):
                if a == b:
                    continue
                result = small_routing.route(a, b)
                assert result.path[0] == a
                assert result.path[-1] == b

    def test_all_pairs_medium_no_fallback(self, medium_routing):
        n = medium_routing.topology.num_nodes
        for a in range(n):
            for b in range(n):
                if a == b:
                    continue
                result = medium_routing.route(a, b)
                assert result.path[-1] == b
                assert result.fallback_hops == 0

    def test_path_edges_exist(self, medium_routing):
        topo = medium_routing.topology
        result = medium_routing.route(0, topo.num_nodes - 1)
        for u, v in zip(result.path, result.path[1:]):
            assert v in topo.neighbors(u)

    def test_inactive_endpoint_rejected(self, medium_routing):
        medium_routing.topology.set_node_active(3, False)
        with pytest.raises(ValueError):
            medium_routing.route(3, 10)
        with pytest.raises(ValueError):
            medium_routing.route(10, 3)
        medium_routing.topology.set_node_active(3, True)

    def test_direct_neighbor_is_one_hop(self, medium_routing):
        topo = medium_routing.topology
        for v in topo.neighbors(0):
            assert medium_routing.route(0, v).hops == 1

    def test_loop_free_paths(self, medium_routing):
        """No node is ever visited twice on an intact network."""
        n = medium_routing.topology.num_nodes
        for a in range(0, n, 7):
            for b in range(n):
                if a == b:
                    continue
                path = medium_routing.route(a, b).path
                assert len(path) == len(set(path))


class TestProgress:
    def test_md_decreases_at_decision_points(self, medium_routing):
        """Strict MD progress across decision points (Lemma 2).

        A decision point is a node reached with no pending two-hop
        commit; the MD to the destination must strictly decrease from
        one decision point to the next, which is what makes greedy
        routes loop-free (Proposition 3).
        """
        r = medium_routing
        n = r.topology.num_nodes
        for a in range(0, n, 5):
            for b in range(0, n, 3):
                if a == b:
                    continue
                current, state = a, None
                decision_mds = [r.md(a, b)]
                hops = 0
                while current != b:
                    current, state = r.next_hop(current, b, state=state)
                    hops += 1
                    assert hops < 4 * n
                    if state.commit is None and current != b:
                        md = r.md(current, b)
                        assert md < decision_mds[-1]
                        decision_mds.append(md)

    def test_candidate_set_strictly_progressing(self, medium_routing):
        r = medium_routing
        for src in range(0, 61, 9):
            for dst in range(61):
                if src == dst:
                    continue
                my_md = r.md(src, dst)
                for score, via in r.candidate_set(src, dst):
                    assert score < my_md

    def test_candidates_are_neighbors(self, medium_routing):
        r = medium_routing
        topo = r.topology
        for dst in range(5, 61, 11):
            for _score, via in r.candidate_set(0, dst):
                assert via in topo.neighbors(0)


class TestTwoHopWindow:
    def test_two_hop_shortens_paths(self):
        """The paper's sensitivity result: 1+2-hop beats 1-hop-only."""
        topo = StringFigureTopology(128, 4, seed=5)
        two = GreediestRouting(topo, use_two_hop=True)
        one = GreediestRouting(topo, use_two_hop=False)
        total_two = total_one = 0
        for a in range(0, 128, 11):
            for b in range(0, 128, 7):
                if a == b:
                    continue
                total_two += two.route(a, b).hops
                total_one += one.route(a, b).hops
        assert total_two < total_one

    def test_commit_state_cleared_at_delivery(self, medium_routing):
        result = medium_routing.route(0, 42)
        assert result.path[-1] == 42  # route() only returns on delivery


class TestRouteState:
    def test_default_state(self):
        state = RouteState()
        assert state.commit is None
        assert not state.in_fallback

    def test_repr(self):
        assert "commit" in repr(RouteState(commit=3))

    def test_next_hop_returns_state(self, medium_routing):
        nxt, state = medium_routing.next_hop(0, 42)
        assert nxt in medium_routing.topology.neighbors(0)
        assert isinstance(state, RouteState)


class TestMaxHops:
    def test_max_hops_guard(self, medium_routing):
        with pytest.raises(RuntimeError):
            medium_routing.route(0, 42, max_hops=0)


class TestAdaptive:
    def test_threshold_validation(self, medium_topology):
        with pytest.raises(ValueError):
            AdaptiveGreediestRouting(medium_topology, congestion_threshold=0.0)
        with pytest.raises(ValueError):
            AdaptiveGreediestRouting(medium_topology, congestion_threshold=1.5)

    def test_uncongested_matches_greediest(self, adaptive_routing):
        """With empty queues the adaptive choice is the greediest one."""
        quiet = lambda u, v: 0.0
        for src in range(0, 61, 13):
            for dst in range(61):
                if src == dst:
                    continue
                greedy, _ = adaptive_routing.next_hop(src, dst)
                adaptive, _ = adaptive_routing.adaptive_next_hop(
                    src, dst, quiet, first_hop=True
                )
                assert adaptive == greedy

    def test_congestion_diverts_first_hop(self, adaptive_routing):
        """A saturated greediest port diverts to another candidate."""
        r = adaptive_routing
        diverted_any = False
        for src in range(61):
            for dst in range(61):
                if src == dst:
                    continue
                candidates = r.candidate_set(src, dst)
                if len(candidates) < 2:
                    continue
                best = candidates[0][1]
                load = lambda u, v, best=best: 1.0 if v == best else 0.0
                choice, _ = r.adaptive_next_hop(src, dst, load, first_hop=True)
                assert choice != best
                # The diverted choice still satisfies strict progress.
                assert choice in [w for _s, w in candidates]
                diverted_any = True
                break
            if diverted_any:
                break
        assert diverted_any

    def test_non_first_hop_never_diverts(self, adaptive_routing):
        r = adaptive_routing
        for src in range(0, 61, 17):
            for dst in range(61):
                if src == dst:
                    continue
                best = r.candidate_set(src, dst)
                if not best:
                    continue
                loaded = lambda u, v: 1.0
                choice, _ = r.adaptive_next_hop(src, dst, loaded, first_hop=False)
                greedy, _ = r.next_hop(src, dst)
                assert choice == greedy

    def test_adaptive_still_delivers(self, adaptive_routing):
        """Adaptive first hops preserve delivery (simulated walk)."""
        r = adaptive_routing
        loaded = lambda u, v: 1.0  # always divert if possible
        for a in range(0, 61, 7):
            for b in range(0, 61, 5):
                if a == b:
                    continue
                current, state, hops = a, None, 0
                first = True
                while current != b:
                    current, state = r.adaptive_next_hop(
                        current, b, loaded, first_hop=first, state=state
                    )
                    first = False
                    hops += 1
                    assert hops < 200


class TestUnidirectionalRouting:
    def test_uni_all_pairs_deliver(self):
        topo = StringFigureTopology(40, 4, seed=8, direction="uni")
        r = GreediestRouting(topo)
        for a in range(40):
            for b in range(40):
                if a == b:
                    continue
                assert r.route(a, b).path[-1] == b

    def test_uni_follows_out_edges(self):
        topo = StringFigureTopology(40, 4, seed=8, direction="uni")
        r = GreediestRouting(topo)
        path = r.route(0, 25).path
        for u, v in zip(path, path[1:]):
            assert v in topo.neighbors(u)


class TestQuantizedRouting:
    def test_seven_bit_coordinates_still_deliver(self):
        """Hardware-accurate 7-bit tables must still route correctly."""
        topo = StringFigureTopology(40, 4, seed=8, coord_bits=7)
        r = GreediestRouting(topo)
        delivered = 0
        for a in range(40):
            for b in range(40):
                if a == b:
                    continue
                result = r.route(a, b, max_hops=400)
                assert result.path[-1] == b
                delivered += 1
        assert delivered == 40 * 39


class TestVcSelection:
    def test_vc_in_range(self, medium_routing):
        for a in range(0, 61, 5):
            for b in range(61):
                if a == b:
                    continue
                assert medium_routing.select_vc(a, b) in (0, 1)

    def test_vc_opposite_directions_differ(self, medium_routing):
        coords = medium_routing.topology.coords
        a, b = 0, 1
        if coords.coordinate(a, 0) != coords.coordinate(b, 0):
            assert medium_routing.select_vc(a, b) != medium_routing.select_vc(b, a)


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=6, max_value=60),
    p=st.sampled_from([4, 6, 8]),
    seed=st.integers(min_value=0, max_value=5000),
)
def test_property_full_delivery_loop_free(n, p, seed):
    """Property: greediest routing delivers loop-free on any topology."""
    topo = StringFigureTopology(n, p, seed=seed)
    r = GreediestRouting(topo)
    rng_pairs = [(a, b) for a in range(0, n, 3) for b in range(0, n, 2) if a != b]
    for a, b in rng_pairs:
        result = r.route(a, b)
        assert result.path[-1] == b
        assert result.fallback_hops == 0
        assert len(result.path) == len(set(result.path))
