"""Discrete-event simulator mechanics."""

from __future__ import annotations

import pytest

from repro.core.routing import AdaptiveGreediestRouting
from repro.core.topology import StringFigureTopology
from repro.network.config import NetworkConfig
from repro.network.packet import Packet
from repro.network.policies import GreedyPolicy
from repro.network.simulator import NetworkSimulator, zero_load_latency
from repro.traffic.injection import BernoulliInjector, run_synthetic
from repro.traffic.patterns import make_pattern


@pytest.fixture
def system():
    topo = StringFigureTopology(32, 4, seed=3)
    routing = AdaptiveGreediestRouting(topo)
    policy = GreedyPolicy(routing)
    sim = NetworkSimulator(topo, policy)
    return topo, routing, policy, sim


class TestSinglePacket:
    def test_zero_load_latency_matches_analytic(self, system):
        topo, routing, _policy, sim = system
        src, dst = 0, 17
        hops = routing.route(src, dst).hops
        packet = Packet(src=src, dst=dst, size_flits=1)
        sim.send(packet, 0)
        sim.drain()
        assert packet.arrive_time is not None
        assert packet.latency == zero_load_latency(sim.config, hops)

    def test_hop_count_recorded(self, system):
        topo, routing, _policy, sim = system
        packet = Packet(src=0, dst=17)
        sim.send(packet, 0)
        sim.drain()
        assert packet.hops == routing.route(0, 17).hops

    def test_self_delivery_immediate(self, system):
        _topo, _routing, _policy, sim = system
        packet = Packet(src=5, dst=5)
        sim.send(packet, 10)
        sim.drain()
        assert packet.arrive_time == 10
        assert packet.hops == 0

    def test_serialization_adds_latency(self, system):
        topo, routing, _policy, sim = system
        big = Packet(src=0, dst=17, size_flits=4)
        sim.send(big, 0)
        sim.drain()
        hops = routing.route(0, 17).hops
        assert big.latency == zero_load_latency(sim.config, hops, size_flits=4)

    def test_energy_accounted(self, system):
        _topo, _routing, _policy, sim = system
        packet = Packet(src=0, dst=17, payload_bytes=64)
        sim.send(packet, 0)
        sim.drain()
        expected_bits = sim.config.packet_bits(64) * packet.hops
        assert sim.stats.bit_hops == expected_bits


class TestStatsCollection:
    def test_measured_flag_respected(self, system):
        _topo, _routing, _policy, sim = system
        sim.send(Packet(src=0, dst=9, measured=False), 0)
        sim.send(Packet(src=0, dst=9, measured=True), 5)
        sim.drain()
        assert sim.stats.delivered == 2
        assert sim.stats.measured_delivered == 1
        assert sim.stats.injected == 1  # only measured packets counted

    def test_latency_accumulator(self, system):
        _topo, _routing, _policy, sim = system
        for i in range(5):
            sim.send(Packet(src=i, dst=20 + i), i)
        sim.drain()
        assert sim.stats.latency.count == 5
        assert sim.stats.avg_latency > 0

    def test_on_delivery_hook(self, system):
        _topo, _routing, _policy, sim = system
        seen = []
        sim.on_delivery(lambda pkt, t: seen.append((pkt.pid, t)))
        packet = Packet(src=0, dst=12)
        sim.send(packet, 0)
        sim.drain()
        assert seen and seen[0][0] == packet.pid


class TestBackpressure:
    def test_credits_limit_inflight(self):
        """A two-node chain can hold only buffer+reserve packets."""
        topo = StringFigureTopology(8, 4, seed=1)
        policy = GreedyPolicy(AdaptiveGreediestRouting(topo))
        cfg = NetworkConfig(buffer_packets=2)
        sim = NetworkSimulator(topo, policy, cfg)
        dst = topo.neighbors(0)[0]
        for _ in range(50):
            sim.send(Packet(src=0, dst=dst, size_flits=8), 0)
        sim.drain()
        assert sim.stats.delivered == 50
        # With 8-flit serialization, delivery takes at least 50*8 cycles.
        assert sim.now >= 400

    def test_deadlock_recovery_fires_and_network_completes(self):
        """Small buffers under load trigger recovery; traffic finishes."""
        topo = StringFigureTopology(24, 4, seed=2)
        policy = GreedyPolicy(AdaptiveGreediestRouting(topo))
        cfg = NetworkConfig(buffer_packets=2, deadlock_timeout_cycles=16)
        pattern = make_pattern("uniform_random", topo.active_nodes)
        stats = run_synthetic(
            topo, policy, pattern, 0.4, config=cfg, warmup=100, measure=400
        )
        assert stats.deadlock_recoveries > 0
        assert stats.accepted_rate > 0.99

    def test_credits_conserved_after_drain(self):
        """Credit conservation: after a full drain every link is back
        to its nominal credit count and all reserve loans are repaid,
        even when recovery fired during the run."""
        topo = StringFigureTopology(24, 4, seed=2)
        policy = GreedyPolicy(AdaptiveGreediestRouting(topo))
        cfg = NetworkConfig(buffer_packets=2, deadlock_timeout_cycles=16)
        sim = NetworkSimulator(topo, policy, cfg)
        pattern = make_pattern("uniform_random", topo.active_nodes)
        injector = BernoulliInjector(sim, pattern, 0.5, warmup=50, measure=400)
        injector.start()
        sim.drain()
        assert sim.stats.deadlock_recoveries > 0
        for port in sim._ports.values():
            assert port.occupancy() == 0
            assert port.total_reserve_debt() == 0
            assert all(c == cfg.buffer_packets for c in port.credits)

    def test_multichannel_links_increase_throughput(self):
        from repro.topologies.mesh import MeshTopology, OptimizedMeshTopology

        pattern_name = "uniform_random"
        results = {}
        for topo in (MeshTopology(16), OptimizedMeshTopology(16, channels=4)):
            policy = topo.make_policy()
            pattern = make_pattern(pattern_name, topo.active_nodes)
            stats = run_synthetic(
                topo, policy, pattern, 0.7, warmup=100, measure=400, seed=5
            )
            results[type(topo).__name__] = stats.avg_latency
        assert results["OptimizedMeshTopology"] < results["MeshTopology"]


class TestInjector:
    def test_rate_statistics(self, system):
        topo, _routing, policy, _sim = system
        pattern = make_pattern("uniform_random", topo.active_nodes)
        stats = run_synthetic(topo, policy, pattern, 0.25, warmup=100, measure=1000)
        expected = 0.25 * 32 * 1000
        assert stats.injected == pytest.approx(expected, rel=0.15)

    def test_invalid_rate(self, system):
        topo, _routing, policy, sim = system
        pattern = make_pattern("uniform_random", topo.active_nodes)
        with pytest.raises(ValueError):
            BernoulliInjector(sim, pattern, rate=0.0)
        with pytest.raises(ValueError):
            BernoulliInjector(sim, pattern, rate=1.5)

    def test_injection_stops(self, system):
        topo, _routing, policy, sim = system
        pattern = make_pattern("uniform_random", topo.active_nodes)
        injector = BernoulliInjector(sim, pattern, 0.5, warmup=50, measure=100)
        injector.start()
        sim.drain()
        assert sim.now < 10_000  # injection ended, network drained

    def test_sources_restriction(self, system):
        topo, _routing, policy, sim = system
        pattern = make_pattern("uniform_random", topo.active_nodes)
        injector = BernoulliInjector(
            sim, pattern, 0.5, warmup=0, measure=200, sources=[0, 1]
        )
        injector.start()
        sim.drain()
        assert sim.stats.delivered > 0


class TestDeterminism:
    def test_same_seed_same_stats(self):
        topo = StringFigureTopology(24, 4, seed=4)
        pattern = make_pattern("uniform_random", topo.active_nodes)

        def run():
            policy = GreedyPolicy(AdaptiveGreediestRouting(topo))
            return run_synthetic(
                topo, policy, pattern, 0.3, warmup=100, measure=300, seed=9
            )

        a, b = run(), run()
        assert a.injected == b.injected
        assert a.avg_latency == b.avg_latency


class TestGuards:
    def test_event_limit(self, system):
        topo, _routing, policy, sim = system
        sim.max_events = 10
        pattern = make_pattern("uniform_random", topo.active_nodes)
        injector = BernoulliInjector(sim, pattern, 0.9, warmup=0, measure=5000)
        injector.start()
        with pytest.raises(RuntimeError):
            sim.drain()

    def test_run_until_bounds_time(self, system):
        topo, _routing, policy, sim = system
        pattern = make_pattern("uniform_random", topo.active_nodes)
        injector = BernoulliInjector(sim, pattern, 0.2, warmup=0, measure=500)
        injector.start()
        sim.run(until=100)
        assert sim.now <= 100 or sim.pending_events == 0
