"""Golden-stats grid: seed-fixed runs whose SimStats must never drift.

The fixture ``golden_simstats.json`` was recorded at the commit *before*
the simulator fast path landed, so the equivalence test proves the
optimized event loop produces bit-identical statistics to the original
implementation across a topology x policy grid (greedy adaptive, greedy
table, minimal, k-shortest-path, multi-channel links, deadlock
recovery).

Regenerate (only when simulation *semantics* intentionally change)::

    PYTHONPATH=src python tests/network/golden_grid.py --write
"""

from __future__ import annotations

import json
from pathlib import Path

FIXTURE = Path(__file__).parent / "golden_simstats.json"

WARMUP, MEASURE, DRAIN = 100, 300, 20_000

#: (design, nodes, pattern, rate, seed, config overrides)
GRID: list[tuple[str, int, str, float, int, dict]] = [
    ("SF", 64, "uniform_random", 0.10, 0, {}),
    ("SF", 64, "uniform_random", 0.10, 1, {}),
    ("SF", 64, "tornado", 0.30, 0, {}),
    # Small buffers under load: exercises stall timers, reserve loans
    # and the escape-buffer deadlock recovery.
    ("SF", 64, "uniform_random", 0.45, 0,
     {"buffer_packets": 2, "deadlock_timeout_cycles": 16}),
    ("SF", 96, "hotspot", 0.15, 2, {}),
    # 8-port / 4-space regime (the >=256-node Figure 8 configuration).
    ("SF", 256, "uniform_random", 0.05, 0, {}),
    ("S2", 64, "uniform_random", 0.20, 0, {}),
    ("DM", 36, "uniform_random", 0.15, 0, {}),
    ("DM", 64, "complement", 0.30, 1, {}),
    ("ODM", 36, "uniform_random", 0.30, 0, {}),  # multi-channel links
    ("FB", 64, "uniform_random", 0.20, 0, {}),
    ("Jellyfish", 64, "uniform_random", 0.20, 0, {}),
]


def entry_key(design: str, nodes: int, pattern: str, rate: float, seed: int) -> str:
    return f"{design}/N{nodes}/{pattern}/r{rate:g}/s{seed}"


def run_point(design: str, nodes: int, pattern_name: str, rate: float,
              seed: int, config_overrides: dict):
    """One seed-fixed synthetic run of the grid (fresh everything)."""
    from repro.network.config import NetworkConfig
    from repro.topologies.registry import make_policy, make_topology
    from repro.traffic.injection import run_synthetic
    from repro.traffic.patterns import make_pattern

    topo = make_topology(design, nodes, seed=0)
    policy = make_policy(topo)
    pattern = make_pattern(pattern_name, topo.active_nodes)
    config = NetworkConfig(**config_overrides) if config_overrides else None
    return run_synthetic(
        topo, policy, pattern, rate, config=config,
        warmup=WARMUP, measure=MEASURE, drain_limit=DRAIN, seed=seed,
    )


def stats_digest(stats) -> dict:
    """Every SimStats field that must stay bit-identical.

    Percentiles use ``numpy.percentile(..., method="nearest")`` so the
    digest is independent of this repo's own nearest-rank rounding.
    """
    import numpy as np

    def pct(acc, q):
        samples = sorted(acc.samples) if acc.samples else []
        if not samples:
            return 0.0
        return float(np.percentile(samples, q, method="nearest"))

    return {
        "sent": stats.sent,
        "injected": stats.injected,
        "delivered": stats.delivered,
        "measured_delivered": stats.measured_delivered,
        "fallback_hops": stats.fallback_hops,
        "total_hops": stats.total_hops,
        "deadlock_recoveries": stats.deadlock_recoveries,
        "emergency_loans": stats.emergency_loans,
        "flit_hops": stats.flit_hops,
        "flit_delivered": stats.flit_delivered,
        "bit_hops": stats.bit_hops,
        "queue_samples": stats.queue_samples,
        "queue_total": stats.queue_total,
        "latency_count": stats.latency.count,
        "latency_total": stats.latency.total,
        "latency_total_sq": stats.latency.total_sq,
        "latency_max": stats.latency.maximum,
        "latency_p50": pct(stats.latency, 50),
        "latency_p95": pct(stats.latency, 95),
        "latency_p99": pct(stats.latency, 99),
        "hops_count": stats.hops.count,
        "hops_total": stats.hops.total,
        "hops_max": stats.hops.maximum,
    }


def generate() -> dict:
    out = {}
    for design, nodes, pattern, rate, seed, cfg in GRID:
        key = entry_key(design, nodes, pattern, rate, seed)
        stats = run_point(design, nodes, pattern, rate, seed, cfg)
        out[key] = stats_digest(stats)
        print(f"{key}: delivered={stats.delivered} "
              f"lat={stats.avg_latency:.2f}")
    return out


if __name__ == "__main__":
    import sys

    if "--write" not in sys.argv:
        sys.exit("refusing to overwrite fixture without --write")
    FIXTURE.write_text(json.dumps(generate(), indent=2, sort_keys=True) + "\n")
    print(f"wrote {FIXTURE}")
