"""Statistics accumulators and energy accounting."""

from __future__ import annotations

import pytest

from repro.network.stats import LatencyAccumulator, SimStats


class TestLatencyAccumulator:
    def test_empty(self):
        acc = LatencyAccumulator()
        assert acc.mean == 0.0
        assert acc.std == 0.0
        assert acc.percentile(50) == 0.0

    def test_mean_and_max(self):
        acc = LatencyAccumulator()
        for v in (10, 20, 30):
            acc.add(v)
        assert acc.mean == 20
        assert acc.maximum == 30
        assert acc.count == 3

    def test_std(self):
        acc = LatencyAccumulator()
        for v in (10, 10, 10):
            acc.add(v)
        assert acc.std == 0.0
        acc.add(50)
        assert acc.std > 0

    def test_percentiles(self):
        acc = LatencyAccumulator()
        for v in range(101):
            acc.add(v)
        assert acc.percentile(0) == 0
        assert acc.percentile(50) == 50
        assert acc.percentile(100) == 100

    def test_without_samples(self):
        acc = LatencyAccumulator(keep_samples=False)
        acc.add(5)
        assert acc.samples == []
        assert acc.mean == 5


class TestSimStats:
    def test_accepted_rate(self):
        stats = SimStats()
        assert stats.accepted_rate == 1.0
        stats.injected = 10
        stats.measured_delivered = 5
        assert stats.accepted_rate == 0.5

    def test_energy_math(self):
        stats = SimStats()
        stats.bit_hops = 1000
        stats.dram_bits = 512
        assert stats.network_energy_pj(5.0) == 5000
        assert stats.dram_energy_pj(12.0) == 6144

    def test_throughput(self):
        stats = SimStats()
        stats.measure_cycles = 100
        stats.num_nodes = 10
        stats.flit_delivered = 500
        assert stats.throughput_flits_per_node_cycle == pytest.approx(0.5)

    def test_queue_occupancy(self):
        stats = SimStats()
        assert stats.avg_queue_occupancy == 0.0
        stats.queue_samples = 4
        stats.queue_total = 8.0
        assert stats.avg_queue_occupancy == 2.0

    def test_summary_keys(self):
        summary = SimStats().summary()
        for key in ("avg_latency", "avg_hops", "accepted_rate", "fallback_hops"):
            assert key in summary
