"""Lazy vs eager link-event cores must be observationally identical.

The lazy core (the default) elides LINK_FREE heap events on
uncongested channels, reserving their sequence numbers so every send,
retry and wake lands at the same ``(time, seq)`` point the eager core
would process it at.  These tests run both cores over the full golden
grid, a live-churn reconfiguration run, and a link-fault/retransmit
scenario, asserting bit-identical SimStats — and, under faults,
identical dropped/retransmit counters.  ``logical_events`` (processed
+ elided) must equal the eager core's processed-event count exactly
after a full drain, which is what keeps events/sec comparable across
the recorded perf trajectory.
"""

from __future__ import annotations

import pytest

from tests.network.golden_grid import DRAIN, GRID, MEASURE, WARMUP, entry_key, stats_digest


def _run_grid_point(design, nodes, pattern_name, rate, seed, cfg, eager):
    from repro.network.config import NetworkConfig
    from repro.topologies.registry import make_policy, make_topology
    from repro.traffic.injection import run_synthetic
    from repro.traffic.patterns import make_pattern

    topo = make_topology(design, nodes, seed=0)
    policy = make_policy(topo)
    pattern = make_pattern(pattern_name, topo.active_nodes)
    config = NetworkConfig(**cfg) if cfg else None
    return run_synthetic(
        topo, policy, pattern, rate, config=config,
        warmup=WARMUP, measure=MEASURE, drain_limit=DRAIN, seed=seed,
        eager_link_events=eager,
    )


@pytest.mark.slow
@pytest.mark.parametrize(
    "design,nodes,pattern,rate,seed,cfg",
    GRID,
    ids=[entry_key(*entry[:5]) for entry in GRID],
)
def test_lazy_matches_eager_on_golden_grid(
    design, nodes, pattern, rate, seed, cfg
):
    lazy = _run_grid_point(design, nodes, pattern, rate, seed, cfg, False)
    eager = _run_grid_point(design, nodes, pattern, rate, seed, cfg, True)
    assert stats_digest(lazy) == stats_digest(eager)


def _churn_run(eager: bool):
    """One deterministic churn run (gate-off + wake) under either core."""
    from repro.core.reconfig import ReconfigurationManager
    from repro.core.routing import AdaptiveGreediestRouting
    from repro.core.topology import StringFigureTopology
    from repro.energy.power_gating import PowerManager
    from repro.network.config import NetworkConfig
    from repro.network.elastic import LiveReconfigurator
    from repro.network.policies import GreedyPolicy
    from repro.network.simulator import NetworkSimulator
    from repro.traffic.patterns import make_pattern
    from repro.workloads.churn import ChurnInjector

    topo = StringFigureTopology(48, 4, seed=7)
    routing = AdaptiveGreediestRouting(topo)
    policy = GreedyPolicy(routing)
    config = NetworkConfig(emergency_stall_threshold=16)
    sim = NetworkSimulator(topo, policy, config, eager_link_events=eager)
    manager = ReconfigurationManager(topo, routing)
    power = PowerManager(manager, config=sim.config)
    live = LiveReconfigurator(sim, manager, policy, power=power)
    pattern = make_pattern("uniform_random", topo.active_nodes)
    injector = ChurnInjector(
        sim, pattern, 0.15, warmup=100, measure=1200, seed=7, reconfig=live
    )
    injector.start()
    live.gate_off(live.select_victims(fraction=0.25), at=400)

    def wake(now: int) -> None:
        gated = [n for ev in live.events for n in ev.nodes
                 if ev.kind == "gate_off"]
        if gated:
            live.gate_on(gated)

    sim.schedule(1000, wake)
    sim.run(until=1300)
    sim.drain(limit=200_000)
    return sim


def _fault_run(eager: bool):
    """Deterministic traffic with a mid-run link failure and repair."""
    from repro.faults.layer import FaultLayer
    from repro.network.simulator import NetworkSimulator
    from repro.topologies.registry import make_policy, make_topology
    from repro.traffic.injection import BernoulliInjector
    from repro.traffic.patterns import make_pattern

    topo = make_topology("SF", 64, seed=0)
    policy = make_policy(topo)
    sim = NetworkSimulator(topo, policy, eager_link_events=eager)
    layer = FaultLayer(sim, retransmit_timeout=32)
    src = topo.active_nodes[0]
    nbr = topo.neighbors(src)[0]
    injector = BernoulliInjector(
        sim, make_pattern("uniform_random", topo.active_nodes), 0.2,
        warmup=20, measure=200, seed=3,
    )
    injector.start()
    sim.schedule(60, lambda now: layer.fail_link_pair(src, nbr))
    sim.schedule(120, lambda now: layer.restore_link_pair(src, nbr))
    sim.run(until=250)
    sim.drain(limit=100_000)
    return sim, layer


def test_lazy_matches_eager_under_churn():
    lazy = _churn_run(False)
    eager = _churn_run(True)
    assert stats_digest(lazy.stats) == stats_digest(eager.stats)
    assert lazy.stats.dropped == eager.stats.dropped
    # The elided LINK_FREE traffic accounts for every event the eager
    # core had to process: logical work is mode-independent.
    assert eager.link_events_elided == 0
    assert lazy.logical_events == eager.logical_events
    assert lazy.link_events_elided > 0


def test_lazy_matches_eager_under_link_faults():
    lazy_sim, lazy_layer = _fault_run(False)
    eager_sim, eager_layer = _fault_run(True)
    assert stats_digest(lazy_sim.stats) == stats_digest(eager_sim.stats)
    assert lazy_sim.stats.dropped == eager_sim.stats.dropped
    assert dict(lazy_layer.drops) == dict(eager_layer.drops)
    assert lazy_layer.retransmits == eager_layer.retransmits
    assert lazy_sim.logical_events == eager_sim.logical_events
    # The fault scenario must actually exercise drop + retransmit.
    assert lazy_sim.stats.dropped >= 1
    assert lazy_layer.retransmits >= 1
