"""Injection-process details: cooldown, payloads, measurement flags."""

from __future__ import annotations

import pytest

from repro.core.routing import AdaptiveGreediestRouting
from repro.core.topology import StringFigureTopology
from repro.network.policies import GreedyPolicy
from repro.network.simulator import NetworkSimulator
from repro.traffic.injection import BernoulliInjector
from repro.traffic.patterns import make_pattern


@pytest.fixture
def system():
    topo = StringFigureTopology(16, 4, seed=1)
    policy = GreedyPolicy(AdaptiveGreediestRouting(topo))
    sim = NetworkSimulator(topo, policy)
    pattern = make_pattern("uniform_random", topo.active_nodes)
    return topo, sim, pattern


class TestWindows:
    def test_measured_only_inside_window(self, system):
        topo, sim, pattern = system
        measured_windows = []
        injector = BernoulliInjector(
            sim, pattern, 0.5, warmup=100, measure=200, cooldown=100
        )
        injector.start()

        original_send = sim.send

        def spy(packet, time=None):
            measured_windows.append((packet.inject_time or time, packet.measured))
            original_send(packet, time)

        sim.send = spy
        sim.drain()
        assert measured_windows
        for time, measured in measured_windows:
            if measured:
                assert 100 <= time < 300

    def test_cooldown_extends_injection(self, system):
        topo, sim, pattern = system
        injector = BernoulliInjector(
            sim, pattern, 0.5, warmup=50, measure=100, cooldown=300
        )
        injector.start()
        sim.drain()
        # Unmeasured cooldown traffic was injected past the window.
        assert sim.stats.delivered > sim.stats.measured_delivered

    def test_payload_bytes_respected(self, system):
        topo, sim, pattern = system
        seen_sizes = set()
        sim.on_delivery(lambda pkt, t: seen_sizes.add(pkt.size_flits))
        injector = BernoulliInjector(
            sim, pattern, 0.5, warmup=0, measure=100, payload_bytes=400
        )
        injector.start()
        sim.drain()
        assert seen_sizes == {sim.config.packet_flits(400)}

    def test_distinct_seeds_distinct_traffic(self, system):
        topo, _sim, pattern = system

        def run(seed):
            policy = GreedyPolicy(AdaptiveGreediestRouting(topo))
            sim = NetworkSimulator(topo, policy)
            injector = BernoulliInjector(
                sim, pattern, 0.3, warmup=0, measure=200, seed=seed
            )
            injector.start()
            sim.drain()
            return sim.stats.delivered

        assert run(1) != run(2) or True  # counts may coincide...
        # ...but the latency distributions almost surely differ:
        def latency(seed):
            policy = GreedyPolicy(AdaptiveGreediestRouting(topo))
            sim = NetworkSimulator(topo, policy)
            injector = BernoulliInjector(
                sim, pattern, 0.3, warmup=0, measure=200, seed=seed
            )
            injector.start()
            sim.drain()
            return sim.stats.latency.total

        assert latency(1) != latency(2)
