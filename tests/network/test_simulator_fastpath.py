"""Fast-path counter integrity: O(1) quiescence/in-flight bookkeeping.

The simulator replaced heap scans and an unbounded per-destination
dict with three per-node counter arrays.  These tests pin the counters
to reality:

* ``node_quiescent`` (counters) must agree with the retained reference
  scan implementation at every sampled instant of a live-churn run —
  the one workload that exercises parking, re-arrival, and mid-run
  link removal (``take_queued``);
* after a long multi-cycle churn run fully drains, every counter is
  exactly zero and ``sent == delivered`` (the leak the old dict-based
  ``_dst_inflight`` made unobservable);
* a double delivery (a buggy hook re-entering a packet it does not
  own) trips the non-negativity guard instead of silently corrupting
  drain decisions.
"""

from __future__ import annotations

import pytest

from repro.core.reconfig import ReconfigurationManager
from repro.core.routing import AdaptiveGreediestRouting
from repro.core.topology import StringFigureTopology
from repro.energy.power_gating import PowerManager
from repro.network.config import NetworkConfig
from repro.network.elastic import LiveReconfigurator
from repro.network.packet import Packet
from repro.network.policies import GreedyPolicy
from repro.network.simulator import NetworkSimulator
from repro.traffic.patterns import make_pattern
from repro.workloads.churn import ChurnInjector


def _churn_stack(num_nodes=48, ports=4, seed=7, rate=0.15,
                 warmup=100, measure=2000):
    topo = StringFigureTopology(num_nodes, ports, seed=seed)
    routing = AdaptiveGreediestRouting(topo)
    policy = GreedyPolicy(routing)
    config = NetworkConfig(emergency_stall_threshold=16)
    sim = NetworkSimulator(topo, policy, config)
    manager = ReconfigurationManager(topo, routing)
    power = PowerManager(manager, config=sim.config)
    live = LiveReconfigurator(sim, manager, policy, power=power)
    pattern = make_pattern("uniform_random", topo.active_nodes)
    injector = ChurnInjector(
        sim, pattern, rate, warmup=warmup, measure=measure, seed=seed,
        reconfig=live,
    )
    return topo, sim, live, injector


class TestNodeQuiescentDifferential:
    def test_counters_agree_with_scan_throughout_churn(self):
        """O(1) node_quiescent == reference scan at every sample point."""
        topo, sim, live, injector = _churn_stack(measure=1500)
        warmup, measure = 100, 1500
        mismatches: list[tuple[int, int, bool, bool]] = []

        def probe(now: int) -> None:
            for node in range(topo.num_nodes):
                fast = sim.node_quiescent(node)
                scan = sim._node_quiescent_scan(node)
                if fast != scan:
                    mismatches.append((now, node, fast, scan))
            if now < warmup + measure + 800:
                sim.schedule(now + 37, probe)

        injector.start()
        live.gate_off(live.select_victims(fraction=0.25), at=warmup + 300)

        def wake(now: int) -> None:
            # Wake whatever the gate-off actually took down.
            gated = [n for ev in live.events for n in ev.nodes
                     if ev.kind == "gate_off"]
            if gated:
                live.gate_on(gated)

        sim.schedule(warmup + 900, wake)
        sim.schedule(1, probe)
        sim.run(until=warmup + measure)
        sim.drain(limit=200_000)
        assert mismatches == []
        # The run exercised a real reconfiguration (parking/rerouting).
        assert any(ev.kind == "gate_off" for ev in live.events)
        assert any(ev.kind == "gate_on" for ev in live.events)


class TestLongChurnConservation:
    def test_counters_return_to_zero_after_multi_cycle_churn(self):
        """Three gate/wake rounds; after the drain every per-node
        counter is exactly zero and no packet was lost or duplicated.

        With the old dict-based ``_dst_inflight`` this leak was
        unobservable: entries stayed behind forever (the dict only
        ever grew) and there was no non-negativity check.
        """
        from repro.workloads.churn import ChurnSchedule, _ScheduleDriver

        topo, sim, live, injector = _churn_stack(
            num_nodes=48, seed=5, rate=0.1, measure=5200
        )
        injector.start()
        driver = _ScheduleDriver(live)
        driver.apply(ChurnSchedule.periodic(
            start=300, period=1600, duty=0.4, fraction=0.15, cycles=3
        ))
        sim.run(until=100 + 5200)
        sim.drain(limit=300_000)

        assert sim.pending_events == 0
        assert live.parked_now == 0
        assert sim.stats.sent == sim.stats.delivered
        assert len(live.events) >= 6  # 3 gate-offs + 3 wakes all ran
        # Every fast-path counter is back to exactly zero.
        assert set(sim._dst_inflight) == {0}
        assert set(sim._pending_arrive) == {0}
        assert set(sim._node_traffic) == {0}
        for port in sim._ports.values():
            assert port.count == 0
            assert sim._busy_channels(port) == 0

    def test_inflight_to_counts_destined_packets(self):
        topo = StringFigureTopology(16, 4, seed=1)
        sim = NetworkSimulator(
            topo, GreedyPolicy(AdaptiveGreediestRouting(topo))
        )
        dst = topo.neighbors(0)[0]
        for _ in range(5):
            sim.send(Packet(src=0, dst=dst), 0)
        assert sim.inflight_to(dst) == 5
        sim.drain()
        assert sim.inflight_to(dst) == 0


class TestNonNegativityGuard:
    def test_double_delivery_raises(self):
        """Re-entering an already-delivered packet trips the guard."""
        topo = StringFigureTopology(16, 4, seed=1)
        sim = NetworkSimulator(
            topo, GreedyPolicy(AdaptiveGreediestRouting(topo))
        )
        dst = topo.neighbors(0)[0]
        packet = Packet(src=0, dst=dst)
        sim.send(packet, 0)
        sim.drain()
        assert packet.arrive_time is not None
        # A rogue hook handing back a packet it no longer owns:
        sim.rearrive(dst, packet, None)
        with pytest.raises(RuntimeError, match="negative"):
            sim.drain()
