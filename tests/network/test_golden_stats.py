"""Fast-path equivalence: SimStats must match the pre-fast-path code.

``golden_simstats.json`` was recorded with the original (tuple-keyed,
heap-scanning, uncached-candidate) simulator implementation at the
commit before the fast path landed.  Every entry must reproduce
bit-identically — counters exactly, float accumulators to strict
tolerance — so the optimization can never silently change results.

The grid covers greedy adaptive (SF, both port regimes), greedy table
(S2), XY mesh + minimal adaptive (DM/ODM, multi-channel links),
flattened butterfly, Jellyfish k-shortest-path, congestion with
deadlock recovery, and three traffic patterns.
"""

from __future__ import annotations

import json

import pytest

from tests.network.golden_grid import FIXTURE, GRID, entry_key, run_point, stats_digest


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads(FIXTURE.read_text())


def test_fixture_covers_grid(golden):
    assert set(golden) == {
        entry_key(design, nodes, pattern, rate, seed)
        for design, nodes, pattern, rate, seed, _cfg in GRID
    }


@pytest.mark.slow
@pytest.mark.parametrize(
    "design,nodes,pattern,rate,seed,cfg",
    GRID,
    ids=[entry_key(*entry[:5]) for entry in GRID],
)
def test_simstats_match_golden(golden, design, nodes, pattern, rate, seed, cfg):
    stats = run_point(design, nodes, pattern, rate, seed, cfg)
    digest = stats_digest(stats)
    expected = golden[entry_key(design, nodes, pattern, rate, seed)]
    assert set(digest) == set(expected)
    for field, want in expected.items():
        got = digest[field]
        if isinstance(want, int):
            assert got == want, f"{field}: {got} != {want}"
        else:
            assert got == pytest.approx(want, rel=1e-12, abs=1e-12), field


@pytest.mark.parametrize(
    "design,nodes,pattern,rate,seed,cfg",
    [GRID[0], GRID[3]],
    ids=[entry_key(*GRID[0][:5]), entry_key(*GRID[3][:5])],
)
def test_sample_free_mode_matches_sampled(design, nodes, pattern, rate, seed, cfg):
    """The opt-in quantile-sketch mode changes memory use, not results."""
    from repro.network.config import NetworkConfig
    from repro.topologies.registry import make_policy, make_topology
    from repro.traffic.injection import run_synthetic
    from repro.traffic.patterns import make_pattern

    def run(sample_free: bool):
        topo = make_topology(design, nodes, seed=0)
        policy = make_policy(topo)
        pattern_obj = make_pattern(pattern, topo.active_nodes)
        config = NetworkConfig(**cfg) if cfg else None
        return run_synthetic(
            topo, policy, pattern_obj, rate, config=config,
            warmup=100, measure=300, drain_limit=20_000, seed=seed,
            sample_free=sample_free,
        )

    sampled, sketched = run(False), run(True)
    assert sketched.latency.samples == []
    # Percentile digest fields are sample-derived; compare everything
    # else exactly, then the percentiles through the accumulator API.
    digest_a, digest_b = stats_digest(sampled), stats_digest(sketched)
    for digest in (digest_a, digest_b):
        for field in list(digest):
            if "_p5" in field or "_p9" in field:
                del digest[field]
    assert digest_a == digest_b
    for q in (50, 90, 95, 99, 100):
        assert sketched.latency.percentile(q) == sampled.latency.percentile(q)
        assert sketched.hops.percentile(q) == sampled.hops.percentile(q)
