"""Traffic-class QoS: config validation, credit partitioning, arbitration.

The two load-bearing properties of the whole PR are pinned here:

* **Classless equivalence** — a QoS table with a single class changes
  nothing: every SimStats counter matches the classless run bit for
  bit (the golden grid and lazy-differential suites separately pin the
  classless path itself).
* **Isolation** — under the default three-class table, a saturating
  bulk-class load cannot drag the latency class's p99 with it, while
  the classless baseline collapses both together.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.virtual_channels import partition_credits
from repro.network.qos import (
    BULK_CLASS,
    LATENCY_CLASS,
    QoSConfig,
    TrafficClass,
    default_classes,
)
from repro.network.simulator import NetworkSimulator
from repro.topologies.registry import make_policy, make_topology
from repro.traffic.injection import BernoulliInjector
from repro.traffic.patterns import make_pattern
from repro.network.stats import percentile


class TestTrafficClass:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficClass(id=-1, name="x", priority=0)
        with pytest.raises(ValueError):
            TrafficClass(id=0, name="", priority=0)
        with pytest.raises(ValueError):
            TrafficClass(id=0, name="x", priority=-1)
        with pytest.raises(ValueError):
            TrafficClass(id=0, name="x", priority=0, weight=0)
        with pytest.raises(ValueError):
            TrafficClass(id=0, name="x", priority=0, credit_share=1.5)

    def test_default_table_convention(self):
        classes = default_classes()
        assert [c.id for c in classes] == [0, 1, 2]
        assert classes[LATENCY_CLASS].priority < classes[BULK_CLASS].priority


class TestQoSConfig:
    def test_ids_must_be_dense(self):
        with pytest.raises(ValueError):
            QoSConfig(classes=(
                TrafficClass(id=0, name="a", priority=0),
                TrafficClass(id=2, name="b", priority=1),
            ))

    def test_names_must_be_unique(self):
        with pytest.raises(ValueError):
            QoSConfig(classes=(
                TrafficClass(id=0, name="a", priority=0),
                TrafficClass(id=1, name="a", priority=1),
            ))

    def test_shares_capped_at_one(self):
        with pytest.raises(ValueError):
            QoSConfig(classes=(
                TrafficClass(id=0, name="a", priority=0, credit_share=0.7),
                TrafficClass(id=1, name="b", priority=1, credit_share=0.7),
            ))

    def test_bands_group_by_priority(self):
        cfg = QoSConfig(classes=(
            TrafficClass(id=0, name="a", priority=1),
            TrafficClass(id=1, name="b", priority=0),
            TrafficClass(id=2, name="c", priority=1),
        ))
        assert [list(band) for band in cfg.bands()] == [[1], [0, 2]]
        assert cfg.class_of(1).name == "b"

    def test_default_roundtrip(self):
        cfg = QoSConfig.default()
        assert cfg.num_classes == 3
        assert [list(band) for band in cfg.bands()] == [[0], [1], [2]]


class TestPartitionCredits:
    def test_reservations_plus_shared_conserve_total(self):
        for total in (1, 5, 8, 16, 33):
            reserved, shared = partition_credits(total, [0.5, 0.25, 0.0])
            assert sum(reserved) + shared == total
            assert shared >= 0 and all(r >= 0 for r in reserved)

    def test_deadlock_guard_keeps_shared_nonempty(self):
        # Shares that consume every credit would leave zero-reservation
        # classes permanently blocked; the guard reclaims one credit.
        reserved, shared = partition_credits(4, [1.0, 0.0])
        assert shared >= 1

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            partition_credits(-1, [0.5])


def _signature(stats):
    return (
        stats.sent, stats.delivered, stats.dropped, stats.flit_hops,
        stats.bit_hops, stats.total_hops, stats.deadlock_recoveries,
        stats.measured_delivered,
    )


def _two_tenant_run(design, nodes, bulk_rate, qos, seed=3,
                    fg_rate=0.05, measure=1500):
    """Foreground + bulk injectors; returns (sim, {tclass: [latency]})."""
    topo = make_topology(design, nodes, seed=1)
    policy = make_policy(topo, adaptive=True)
    sim = NetworkSimulator(topo, policy)
    if qos is not None:
        sim.install_qos(qos)
    samples: dict[int, list[int]] = {}
    sim.on_delivery(
        lambda p, now: samples.setdefault(p.tclass, []).append(p.latency)
        if p.measured else None
    )
    active = list(topo.active_nodes)
    warmup = 300
    BernoulliInjector(
        sim, make_pattern("uniform_random", active), fg_rate,
        warmup=warmup, measure=measure, seed=seed, tclass=LATENCY_CLASS,
    ).start()
    if bulk_rate:
        BernoulliInjector(
            sim, make_pattern("uniform_random", active), bulk_rate,
            warmup=warmup, measure=measure, seed=seed + 1000,
            tclass=BULK_CLASS,
        ).start()
    sim.run(until=warmup + measure)
    sim.run(until=warmup + measure + 250_000)
    assert sim.stats.in_flight == 0, "conservation violated"
    return sim, samples


class TestInstallPreconditions:
    def _sim(self):
        topo = make_topology("SF", 16, seed=1)
        return NetworkSimulator(topo, make_policy(topo, adaptive=True))

    def test_rejects_none_and_double_install(self):
        sim = self._sim()
        with pytest.raises(ValueError):
            sim.install_qos(None)
        sim.install_qos(QoSConfig.default())
        with pytest.raises(RuntimeError):
            sim.install_qos(QoSConfig.default())

    def test_rejects_install_after_traffic(self):
        sim = self._sim()
        BernoulliInjector(
            sim, make_pattern("uniform_random", list(sim.topology.active_nodes)),
            0.1, warmup=0, measure=50,
        ).start()
        sim.run(until=100)
        with pytest.raises(RuntimeError):
            sim.install_qos(QoSConfig.default())

    def test_credit_partition_invariant_on_armed_ports(self):
        # Run real two-class traffic to quiescence, then check the
        # conservation identity on every port the run touched.
        sim, _ = _two_tenant_run("SF", 16, 0.1, QoSConfig.default())
        assert sim._ports, "run created no ports"
        for port in sim._ports.values():
            vcs = sim._num_vcs
            for vc in range(vcs):
                pooled = port.shared_credits[vc] + sum(
                    port.cls_credits[c * vcs + vc]
                    for c in range(QoSConfig.default().num_classes)
                )
                assert port.credits[vc] == pooled


class TestClasslessEquivalence:
    @pytest.mark.parametrize("design", ["SF", "DM", "Jellyfish"])
    def test_single_class_table_is_bit_identical(self, design):
        """One class, full shared pool: the arbiter must reproduce the
        classless scheduler decision for decision."""
        single = QoSConfig(classes=(
            TrafficClass(id=0, name="only", priority=0, credit_share=0.0),
        ))
        base, base_samples = _two_tenant_run(design, 36, 0.0, None)
        qos, qos_samples = _two_tenant_run(design, 36, 0.0, single)
        assert _signature(base.stats) == _signature(qos.stats)
        assert base_samples.get(0) == qos_samples.get(0)


class TestIsolation:
    def test_bulk_saturation_cannot_invert_priorities(self):
        """The acceptance property at test scale: bulk load degrades
        bulk, not the latency class — while the classless run drags
        both down together."""
        cfg = QoSConfig.default()
        _, protected = _two_tenant_run("DM", 36, 0.8, cfg)
        _, exposed = _two_tenant_run("DM", 36, 0.8, None)
        fg_qos = percentile(protected[LATENCY_CLASS], 99)
        bulk_qos = percentile(protected[BULK_CLASS], 99)
        fg_raw = percentile(exposed[LATENCY_CLASS], 99)
        # Strict priority: the latency class must never trail bulk.
        assert fg_qos <= bulk_qos
        # And the table must actually protect: classless fg collapses.
        assert fg_qos * 2 <= fg_raw


@settings(
    max_examples=int(os.environ.get("HYPOTHESIS_PROFILE") == "ci") * 4 + 4,
    deadline=None,
)
@given(
    bulk_rate=st.floats(min_value=0.3, max_value=0.9),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_no_priority_inversion_under_saturating_bulk(bulk_rate, seed):
    """Property (satellite 3): for any saturating bulk load and seed,
    the high class's p99 stays bounded and never exceeds bulk's."""
    _, samples = _two_tenant_run(
        "SF", 16, bulk_rate, QoSConfig.default(), seed=seed, measure=800,
    )
    fg = samples.get(LATENCY_CLASS, [])
    bulk = samples.get(BULK_CLASS, [])
    assert fg and bulk
    fg_p99 = percentile(fg, 99)
    assert fg_p99 <= percentile(bulk, 99)
    # Absolute SLO bound: a 16-node SF fabric at 5% foreground load
    # delivers p99 ~ tens of cycles when isolated; saturating bulk
    # must not push it past a generous multiple of that.
    assert fg_p99 <= 300
