"""GreedyPolicy's exact decision cache."""

from __future__ import annotations

import pytest

from repro.core.reconfig import ReconfigurationManager
from repro.core.routing import AdaptiveGreediestRouting, GreediestRouting
from repro.core.topology import StringFigureTopology
from repro.network.packet import Packet
from repro.network.policies import GreedyPolicy

quiet = lambda u, v: 0.0


def _walk(policy, src, dst):
    packet = Packet(src=src, dst=dst)
    path = [src]
    current, first = src, True
    while current != dst:
        current = policy.forward(current, packet, quiet, first)
        first = False
        path.append(current)
        assert len(path) < 300
    return path


@pytest.fixture
def topo():
    return StringFigureTopology(40, 4, seed=9)


class TestCacheCorrectness:
    def test_cached_equals_uncached(self, topo):
        cached = GreedyPolicy(GreediestRouting(topo), cache=True)
        plain = GreedyPolicy(GreediestRouting(topo), cache=False)
        for src in range(0, 40, 3):
            for dst in range(40):
                if src == dst:
                    continue
                assert _walk(cached, src, dst) == _walk(plain, src, dst)

    def test_cache_populated(self, topo):
        policy = GreedyPolicy(GreediestRouting(topo), cache=True)
        _walk(policy, 0, 27)
        assert policy._cache

    def test_repeat_walk_uses_cache(self, topo):
        policy = GreedyPolicy(GreediestRouting(topo), cache=True)
        first = _walk(policy, 0, 27)
        size = len(policy._cache)
        second = _walk(policy, 0, 27)
        assert second == first
        assert len(policy._cache) == size  # no growth on the second walk


class TestCacheInvalidation:
    def test_reconfigure_clears_cache(self, topo):
        routing = AdaptiveGreediestRouting(topo)
        policy = GreedyPolicy(routing, cache=True)
        _walk(policy, 0, 27)
        assert policy._cache
        policy.on_reconfigure()
        assert not policy._cache

    def test_routes_correct_after_reconfig(self, topo):
        routing = AdaptiveGreediestRouting(topo)
        policy = GreedyPolicy(routing, cache=True)
        manager = ReconfigurationManager(topo, routing)
        # warm the cache on the full network
        for dst in range(1, 40, 5):
            _walk(policy, 0, dst)
        victim = manager.gate_candidates(1)[0]
        manager.power_gate(victim)
        policy.on_reconfigure()
        active = [v for v in topo.active_nodes if v != 0]
        for dst in active[::4]:
            path = _walk(policy, 0, dst)
            assert victim not in path
