"""GreedyPolicy's exact decision cache."""

from __future__ import annotations

import pytest

from repro.core.reconfig import ReconfigurationManager
from repro.core.routing import AdaptiveGreediestRouting, GreediestRouting
from repro.core.topology import StringFigureTopology
from repro.network.packet import Packet
from repro.network.policies import GreedyPolicy

quiet = lambda u, v: 0.0


def _walk(policy, src, dst):
    packet = Packet(src=src, dst=dst)
    path = [src]
    current, first = src, True
    while current != dst:
        current = policy.forward(current, packet, quiet, first)
        first = False
        path.append(current)
        assert len(path) < 300
    return path


@pytest.fixture
def topo():
    return StringFigureTopology(40, 4, seed=9)


class TestCacheCorrectness:
    def test_cached_equals_uncached(self, topo):
        cached = GreedyPolicy(GreediestRouting(topo), cache=True)
        plain = GreedyPolicy(GreediestRouting(topo), cache=False)
        for src in range(0, 40, 3):
            for dst in range(40):
                if src == dst:
                    continue
                assert _walk(cached, src, dst) == _walk(plain, src, dst)

    def test_cache_populated(self, topo):
        policy = GreedyPolicy(GreediestRouting(topo), cache=True)
        _walk(policy, 0, 27)
        assert policy._cache

    def test_repeat_walk_uses_cache(self, topo):
        policy = GreedyPolicy(GreediestRouting(topo), cache=True)
        first = _walk(policy, 0, 27)
        size = len(policy._cache)
        second = _walk(policy, 0, 27)
        assert second == first
        assert len(policy._cache) == size  # no growth on the second walk


class TestNoStateAliasing:
    """Cache hits must rebuild per-packet RouteState, never share one.

    The old cache stored the RouteState instance and assigned it to
    every hitting packet; RouteState is a mutable ``__slots__`` class,
    so one packet entering fallback (or consuming its commit) could
    rewrite the routing state of every other in-flight packet that hit
    the same entry.
    """

    def _committed_decision(self, policy, topo):
        """A (node, dst) whose greedy decision carries a two-hop commit."""
        for node in topo.active_nodes:
            for dst in topo.active_nodes:
                if node == dst:
                    continue
                probe = Packet(src=node, dst=dst)
                policy.forward(node, probe, quiet, False)
                if (
                    probe.route_state is not None
                    and probe.route_state.commit is not None
                ):
                    return node, dst
        pytest.fail("no two-hop committed decision found on this topology")

    def test_cache_hits_get_distinct_states(self, topo):
        policy = GreedyPolicy(GreediestRouting(topo), cache=True)
        node, dst = self._committed_decision(policy, topo)
        p1, p2 = Packet(src=node, dst=dst), Packet(src=node, dst=dst)
        n1 = policy.forward(node, p1, quiet, False)  # cache hit
        n2 = policy.forward(node, p2, quiet, False)  # same entry
        assert n1 == n2
        assert p1.route_state is not None and p2.route_state is not None
        assert p1.route_state is not p2.route_state
        assert p1.route_state.commit == p2.route_state.commit

    def test_one_packet_entering_fallback_leaves_the_other_alone(self, topo):
        policy = GreedyPolicy(GreediestRouting(topo), cache=True)
        node, dst = self._committed_decision(policy, topo)
        p1, p2 = Packet(src=node, dst=dst), Packet(src=node, dst=dst)
        policy.forward(node, p1, quiet, False)
        policy.forward(node, p2, quiet, False)
        # p1 hits a degraded region in flight and drops into ring
        # fallback; with a shared state this would instantly corrupt
        # p2's pending commit as well.
        p1.route_state.commit = None
        p1.route_state.fallback_md = 0.25
        assert p2.route_state.commit is not None
        assert not p2.route_state.in_fallback

    def test_cache_stores_primitives_not_states(self, topo):
        from repro.core.routing import RouteState

        policy = GreedyPolicy(GreediestRouting(topo), cache=True)
        _walk(policy, 0, 27)
        for value in policy._cache.values():
            nxt, commit = value
            assert isinstance(nxt, int)
            assert commit is None or isinstance(commit, int)
            assert not isinstance(value, RouteState)
            assert not any(isinstance(part, RouteState) for part in value)


class TestCacheInvalidation:
    def test_reconfigure_clears_cache(self, topo):
        routing = AdaptiveGreediestRouting(topo)
        policy = GreedyPolicy(routing, cache=True)
        _walk(policy, 0, 27)
        assert policy._cache
        policy.on_reconfigure()
        assert not policy._cache

    def test_routes_correct_after_reconfig(self, topo):
        routing = AdaptiveGreediestRouting(topo)
        policy = GreedyPolicy(routing, cache=True)
        manager = ReconfigurationManager(topo, routing)
        # warm the cache on the full network
        for dst in range(1, 40, 5):
            _walk(policy, 0, dst)
        victim = manager.gate_candidates(1)[0]
        manager.power_gate(victim)
        policy.on_reconfigure()
        active = [v for v in topo.active_nodes if v != 0]
        for dst in active[::4]:
            path = _walk(policy, 0, dst)
            assert victim not in path

    def test_offline_reconfig_invalidates_without_notification(self, topo):
        """Offline reconfiguration never calls ``on_reconfigure`` (the
        manager does not know the policy exists) — the routing
        generation counter must invalidate the caches on its own,
        otherwise stale entries route packets into the gated region."""
        routing = AdaptiveGreediestRouting(topo)
        policy = GreedyPolicy(routing, cache=True)
        manager = ReconfigurationManager(topo, routing)
        for dst in range(1, 40, 3):
            _walk(policy, 0, dst)
        assert policy._cache
        victim = manager.gate_candidates(1)[0]
        manager.power_gate(victim)  # note: no policy.on_reconfigure()
        active = [v for v in topo.active_nodes if v != 0]
        for dst in active[::4]:
            path = _walk(policy, 0, dst)
            assert victim not in path

    def test_adaptive_candidate_cache_cleared_on_reconfigure(self, topo):
        routing = AdaptiveGreediestRouting(topo)
        policy = GreedyPolicy(routing, cache=True)
        # A loaded primary port forces the candidate set to be built.
        busy = lambda u, v: 1.0
        packet = Packet(src=0, dst=27)
        policy.forward(0, packet, busy, True)
        assert policy._cand_cache
        policy.on_reconfigure()
        assert not policy._cand_cache
