"""Table I configuration constants and conversions."""

from __future__ import annotations

import pytest

from repro.network.config import DramTiming, NetworkConfig


class TestClock:
    def test_cycle_is_3_2_ns(self):
        assert NetworkConfig().cycle_ns == pytest.approx(3.2)

    def test_serdes_one_cycle(self):
        """3.2 ns SerDes per hop = exactly one network cycle."""
        cfg = NetworkConfig()
        assert cfg.serdes_cycles == 1
        assert cfg.cycles_from_ns(3.2) == 1

    def test_cycles_round_up(self):
        cfg = NetworkConfig()
        assert cfg.cycles_from_ns(3.3) == 2
        assert cfg.cycles_from_ns(6.4) == 2


class TestPacketSizing:
    def test_cacheline_fits_one_flit(self):
        """64 B + header fit in one 192 B HMC-width flit."""
        assert NetworkConfig().packet_flits(64) == 1

    def test_large_payloads_split(self):
        cfg = NetworkConfig()
        assert cfg.packet_flits(400) == 3  # 416 B over 192 B flits

    def test_minimum_one_flit(self):
        assert NetworkConfig().packet_flits(0) == 1

    def test_packet_bits_include_header(self):
        cfg = NetworkConfig()
        assert cfg.packet_bits(64) == 8 * (64 + 16)


class TestDramTiming:
    def test_table1_values(self):
        timing = DramTiming()
        assert timing.t_rcd == 12.0
        assert timing.t_cl == 6.0
        assert timing.t_rp == 14.0
        assert timing.t_ras == 33.0

    def test_latency_ordering(self):
        timing = DramTiming()
        assert timing.row_hit_ns() < timing.row_empty_ns() < timing.row_miss_ns()

    def test_dram_cycles(self):
        cfg = NetworkConfig()
        assert cfg.dram_access_cycles(row_hit=True) == cfg.cycles_from_ns(6.0)
        assert cfg.dram_access_cycles(row_hit=False) == cfg.cycles_from_ns(32.0)


class TestEnergyConstants:
    def test_table1_energy(self):
        cfg = NetworkConfig()
        assert cfg.network_pj_per_bit_hop == 5.0
        assert cfg.dram_pj_per_bit == 12.0


class TestFrozen:
    def test_config_immutable(self):
        cfg = NetworkConfig()
        with pytest.raises(AttributeError):
            cfg.buffer_packets = 99
