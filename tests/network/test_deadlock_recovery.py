"""Escape-buffer deadlock recovery under credit starvation.

Hotspot traffic at high load with single-packet buffers drives links
into sustained credit stalls, so the simulator's reserve-slot recovery
must fire.  The tests pin the three guarantees the mechanism makes:

* recoveries are counted in ``stats.deadlock_recoveries``;
* every loaned reserve slot is repaid (zero debt, credits restored to
  the full buffer capacity once the network drains);
* downstream buffering never exceeds ``buffer_packets + reserve_slots``
  packets per virtual channel at any point during the run.
"""

from __future__ import annotations

import pytest

from repro.core.routing import AdaptiveGreediestRouting
from repro.core.topology import StringFigureTopology
from repro.network.config import NetworkConfig
from repro.network.policies import GreedyPolicy
from repro.network.simulator import NetworkSimulator
from repro.traffic.injection import BernoulliInjector
from repro.traffic.patterns import make_pattern

CONFIG = NetworkConfig(
    buffer_packets=1, reserve_slots=2, deadlock_timeout_cycles=6
)
RUN_CYCLES = 400


@pytest.fixture
def starved_sim():
    """A simulator plus invariant samples from a credit-starved run."""
    topo = StringFigureTopology(32, 4, seed=3)
    sim = NetworkSimulator(
        topo, GreedyPolicy(AdaptiveGreediestRouting(topo)), CONFIG
    )
    pattern = make_pattern("hotspot", topo.active_nodes)
    injector = BernoulliInjector(
        sim, pattern, rate=0.5, warmup=0, measure=RUN_CYCLES, seed=1
    )
    violations: list[str] = []

    def check_invariants(now: int) -> None:
        for port in sim._ports.values():
            link = (port.u, port.v)
            credits = port.credits
            capacity = CONFIG.buffer_packets * port.channels
            debt = port.total_reserve_debt()
            if debt > CONFIG.reserve_slots:
                violations.append(f"t={now} {link}: debt {debt}")
            for vc, credit in enumerate(credits):
                if credit < 0:
                    violations.append(f"t={now} {link} vc{vc}: credit {credit}")
                # Packets buffered (or in flight toward) the downstream
                # router on this VC: transmits not yet released, minus
                # loans already active.
                outstanding = capacity - credit + port.reserve_debt[vc]
                if outstanding > capacity + CONFIG.reserve_slots:
                    violations.append(
                        f"t={now} {link} vc{vc}: {outstanding} buffered"
                    )
        if now < RUN_CYCLES:
            sim.schedule(now + 1, check_invariants)

    sim.schedule(1, check_invariants)
    injector.start()
    sim.run(until=RUN_CYCLES)
    sim.drain(limit=200_000)
    return sim, violations


def test_recoveries_fire_under_starvation(starved_sim):
    sim, _violations = starved_sim
    assert sim.stats.deadlock_recoveries > 0
    # The run actually completed: nothing stuck, nothing lost.
    assert sim.pending_events == 0
    assert sim.stats.delivered == sim.stats.injected


def test_reserve_debt_fully_repaid(starved_sim):
    sim, _violations = starved_sim
    for port in sim._ports.values():
        link = (port.u, port.v)
        assert port.total_reserve_debt() == 0, link
        capacity = CONFIG.buffer_packets * port.channels
        assert port.credits == [capacity] * len(port.credits), link


def test_buffering_stays_bounded(starved_sim):
    _sim, violations = starved_sim
    assert violations == []


def test_no_recovery_at_low_load():
    """Sanity: an unloaded network never needs the escape buffers."""
    topo = StringFigureTopology(32, 4, seed=3)
    sim = NetworkSimulator(
        topo, GreedyPolicy(AdaptiveGreediestRouting(topo)), CONFIG
    )
    pattern = make_pattern("uniform_random", topo.active_nodes)
    injector = BernoulliInjector(
        sim, pattern, rate=0.02, warmup=0, measure=RUN_CYCLES, seed=1
    )
    injector.start()
    sim.run(until=RUN_CYCLES)
    sim.drain(limit=200_000)
    assert sim.stats.deadlock_recoveries == 0
    assert sim.stats.delivered == sim.stats.injected
