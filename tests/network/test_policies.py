"""Routing-policy adapters."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.routing import AdaptiveGreediestRouting, GreediestRouting
from repro.core.topology import StringFigureTopology
from repro.network.packet import Packet
from repro.network.policies import GreedyPolicy, MinimalPolicy, TablePolicy

quiet = lambda u, v: 0.0
loaded = lambda u, v: 1.0


class TestGreedyPolicy:
    @pytest.fixture
    def topo(self):
        return StringFigureTopology(24, 4, seed=6)

    def test_forward_reaches_destination(self, topo):
        policy = GreedyPolicy(GreediestRouting(topo))
        packet = Packet(src=0, dst=13)
        current, first, hops = 0, True, 0
        while current != 13:
            current = policy.forward(current, packet, quiet, first)
            first = False
            hops += 1
            assert hops < 100
        assert current == 13

    def test_fallback_hops_tracked_on_packet(self, topo):
        policy = GreedyPolicy(GreediestRouting(topo))
        packet = Packet(src=0, dst=13)
        current, first = 0, True
        while current != 13:
            current = policy.forward(current, packet, quiet, first)
            first = False
        assert packet.fallback_hops == 0

    def test_vc_delegated(self, topo):
        routing = GreediestRouting(topo)
        policy = GreedyPolicy(routing)
        assert policy.select_vc(1, 2) == routing.select_vc(1, 2)

    def test_adaptive_detection(self, topo):
        assert GreedyPolicy(AdaptiveGreediestRouting(topo))._adaptive
        assert not GreedyPolicy(GreediestRouting(topo))._adaptive


class TestMinimalPolicy:
    @pytest.fixture
    def graph(self):
        return nx.cycle_graph(10)

    def test_distance_matches_networkx(self, graph):
        policy = MinimalPolicy(graph, adaptive=False)
        for src in graph.nodes():
            lengths = nx.single_source_shortest_path_length(graph, src)
            for dst in graph.nodes():
                if src != dst:
                    assert policy.distance(src, dst) == lengths[dst]

    def test_candidates_make_progress(self, graph):
        policy = MinimalPolicy(graph, adaptive=False)
        for src in graph.nodes():
            for dst in graph.nodes():
                if src == dst:
                    continue
                for w in policy.candidates(src, dst):
                    assert policy.distance(w, dst) == policy.distance(src, dst) - 1

    def test_disconnected_rejected(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        with pytest.raises(ValueError):
            MinimalPolicy(g)

    def test_adaptive_diverts_under_load(self):
        g = nx.complete_graph(6)
        policy = MinimalPolicy(g, adaptive=True)
        packet = Packet(src=0, dst=5)
        # Direct neighbor is the only minimal candidate in K6 — no divert.
        assert policy.forward(0, packet, loaded, True) == 5

    def test_adaptive_on_cycle(self):
        # On an even cycle, opposite node has two minimal first hops.
        g = nx.cycle_graph(8)
        policy = MinimalPolicy(g, adaptive=True)
        packet = Packet(src=0, dst=4)
        primary = policy.forward(0, packet, quiet, True)
        congested = lambda u, v: 1.0 if v == primary else 0.0
        diverted = policy.forward(0, packet, congested, True)
        assert diverted != primary

    def test_route_length_equals_distance(self, graph):
        policy = MinimalPolicy(graph, adaptive=False)
        assert policy.route_length(0, 5) == policy.distance(0, 5)

    def test_vc_split(self, graph):
        policy = MinimalPolicy(graph)
        assert policy.select_vc(1, 5) == 0
        assert policy.select_vc(5, 1) == 1


class TestTablePolicy:
    def test_forward_and_loops(self):
        tables = {
            0: {2: [1]},
            1: {2: [2]},
            2: {},
        }
        policy = TablePolicy(tables, adaptive=False)
        packet = Packet(src=0, dst=2)
        assert policy.forward(0, packet, quiet, True) == 1
        assert policy.route_length(0, 2) == 2

    def test_loop_detection(self):
        tables = {0: {2: [1]}, 1: {2: [0]}}
        policy = TablePolicy(tables, adaptive=False)
        with pytest.raises(RuntimeError):
            policy.route_length(0, 2)

    def test_adaptive_selection(self):
        tables = {0: {9: [1, 2]}}
        policy = TablePolicy(tables, adaptive=True)
        packet = Packet(src=0, dst=9)
        congested = lambda u, v: 1.0 if v == 1 else 0.0
        assert policy.forward(0, packet, congested, True) == 2

    def test_custom_vc(self):
        policy = TablePolicy({}, vc_of=lambda s, d: 1)
        assert policy.select_vc(0, 5) == 1
