"""Nearest-rank percentile semantics and the streaming quantile sketch.

The old ``percentile()`` rounded the virtual index with builtin
``round`` (banker's rounding: ``round(0.5) == 0``), so the median of
two samples silently returned the *lower* one.  The fixed version
rounds half up.  ``numpy.percentile(..., method="nearest")`` is the
cross-check oracle: off exact .5 ties both must agree; at ties numpy
keeps banker's rounding, so the properties assert our result is the
upper of the two nearest order statistics instead.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.network.stats import LatencyAccumulator, QuantileSketch, percentile

samples_strategy = st.lists(
    st.integers(min_value=0, max_value=5000), min_size=1, max_size=300
)
q_strategy = st.integers(min_value=0, max_value=100)


class TestRoundHalfUp:
    def test_median_of_two_is_upper(self):
        assert percentile([1.0, 2.0], 50) == 2.0

    def test_quartiles_of_two(self):
        assert percentile([1.0, 2.0], 49) == 1.0
        assert percentile([1.0, 2.0], 51) == 2.0

    def test_endpoints(self):
        data = [3.0, 1.0, 2.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 3.0

    def test_empty(self):
        assert percentile([], 50) == 0.0

    @given(samples_strategy, q_strategy)
    def test_matches_numpy_nearest_off_ties(self, samples, q):
        virtual = q / 100.0 * (len(samples) - 1)
        ours = percentile(samples, q)
        expected = float(np.percentile(samples, q, method="nearest"))
        if (virtual % 1.0) != 0.5:
            assert ours == expected
        else:
            # Exact tie: numpy rounds half-to-even, we round half up —
            # the result must be the upper of the two nearest order
            # statistics.
            data = sorted(samples)
            assert ours == float(data[int(virtual) + 1])

    @given(samples_strategy, q_strategy)
    def test_result_is_an_order_statistic_near_the_rank(self, samples, q):
        data = sorted(samples)
        virtual = q / 100.0 * (len(data) - 1)
        lo, hi = int(virtual), min(len(data) - 1, int(virtual) + 1)
        assert percentile(samples, q) in (float(data[lo]), float(data[hi]))


class TestQuantileSketch:
    @given(samples_strategy, q_strategy)
    def test_sketch_matches_sample_list(self, samples, q):
        sketch = QuantileSketch()
        for v in samples:
            sketch.add(v)
        assert sketch.percentile(q) == percentile(samples, q)

    def test_memory_scales_with_distinct_values(self):
        sketch = QuantileSketch()
        for i in range(100_000):
            sketch.add(i % 64)
        assert sketch.count == 100_000
        assert len(sketch.counts) == 64

    def test_empty(self):
        assert QuantileSketch().percentile(50) == 0.0


class TestSampleFreeAccumulator:
    @given(samples_strategy)
    def test_equivalent_to_sampled(self, samples):
        sampled = LatencyAccumulator()
        sketched = LatencyAccumulator.sample_free()
        for v in samples:
            sampled.add(v)
            sketched.add(v)
        assert sketched.samples == []
        assert sketched.count == sampled.count
        assert sketched.mean == sampled.mean
        assert sketched.std == sampled.std
        assert sketched.maximum == sampled.maximum
        for q in (0, 50, 95, 99, 100):
            assert sketched.percentile(q) == sampled.percentile(q)

    def test_keep_samples_false_without_sketch_still_counts(self):
        acc = LatencyAccumulator(keep_samples=False)
        acc.add(5)
        assert acc.samples == []
        assert acc.mean == 5
        assert acc.percentile(50) == 0.0  # no samples, no sketch


def test_simstats_summary_uses_fixed_percentile():
    from repro.network.stats import SimStats

    stats = SimStats()
    stats.latency.add(10)
    stats.latency.add(20)
    assert stats.summary()["p95_latency"] == 20.0
    assert stats.latency.percentile(50) == 20.0  # round half up


def test_percentile_accepts_floats():
    assert percentile([1.5, 2.5, 3.5], 50) == 2.5
    with pytest.raises(TypeError):
        percentile([1.0, "x"], 50)  # mixed types fail loudly at sort
