"""Live reconfiguration inside the event loop: invariants under load.

The headline guarantees of :mod:`repro.network.elastic`:

* conservation — across a mid-flight gate/wake (and unmount/mount)
  cycle, no packet is ever dropped: ``sent == delivered`` after drain
  and ``sent == delivered + in-flight`` at every instant;
* every *measured* packet is delivered (none lost out of the window);
* the gated node carries no traffic while it is down, and traffic
  returns to it after the wake;
* the event timeline is ordered and charges the power-gating sleep and
  wake latencies;
* the whole pipeline is bit-deterministic.
"""

from __future__ import annotations

import pytest

from repro.core.reconfig import ReconfigurationManager
from repro.core.routing import AdaptiveGreediestRouting
from repro.core.topology import StringFigureTopology
from repro.energy.power_gating import PowerManager
from repro.network.config import NetworkConfig
from repro.network.elastic import (
    LiveReconfigEvent,
    LiveReconfigurator,
    WindowedLatencyProbe,
    disturbance_metrics,
)
from repro.network.packet import Packet
from repro.network.policies import GreedyPolicy
from repro.network.simulator import NetworkSimulator
from repro.workloads.churn import ChurnAction, ChurnSchedule, run_churn

NODES = 48
CONFIG = NetworkConfig(emergency_stall_threshold=16)


def churn_cycle(
    rate=0.15, seed=0, gate_at=800, wake_at=1800, fraction=0.25, measure=3000, **kwargs
):
    topo = StringFigureTopology(NODES, 4, seed=7)
    schedule = ChurnSchedule.cycle(gate_at=gate_at, wake_at=wake_at, fraction=fraction)
    result = run_churn(
        topo,
        rate=rate,
        schedule=schedule,
        warmup=300,
        measure=measure,
        seed=seed,
        **kwargs,
    )
    return result, topo


class TestConservation:
    def test_no_packet_lost_across_gate_wake_cycle(self):
        result, _topo = churn_cycle()
        stats = result.stats
        assert len(result.events) == 2
        assert stats.sent == stats.delivered
        assert stats.in_flight == 0
        # Every measured packet was delivered inside the run.
        assert stats.measured_delivered == stats.injected

    def test_no_packet_lost_across_unmount_mount_cycle(self):
        topo = StringFigureTopology(NODES, 4, seed=7)
        schedule = ChurnSchedule(
            [
                ChurnAction(time=800, kind="unmount", fraction=0.2),
                ChurnAction(time=1800, kind="mount"),
            ]
        )
        result = run_churn(
            topo, rate=0.1, schedule=schedule, warmup=300, measure=3000, seed=2
        )
        kinds = [e.kind for e in result.events]
        assert kinds == ["unmount", "mount"]
        assert result.stats.sent == result.stats.delivered
        assert result.stats.measured_delivered == result.stats.injected
        assert result.final_active_nodes == NODES

    def test_conserved_at_every_instant_mid_run(self):
        """sent == delivered + in-flight holds while the network churns."""
        topo = StringFigureTopology(NODES, 4, seed=7)
        routing = AdaptiveGreediestRouting(topo)
        policy = GreedyPolicy(routing)
        sim = NetworkSimulator(topo, policy, CONFIG)
        manager = ReconfigurationManager(topo, routing)
        live = LiveReconfigurator(sim, manager, policy)

        from repro.traffic.patterns import make_pattern
        from repro.workloads.churn import ChurnInjector

        injector = ChurnInjector(
            sim,
            make_pattern("uniform_random", topo.active_nodes),
            0.15,
            warmup=100,
            measure=1500,
            seed=3,
            reconfig=live,
        )
        injector.start()
        live.gate_off(live.select_victims(fraction=0.25), at=500)

        samples: list[tuple[int, int, int]] = []

        def sample(now: int) -> None:
            samples.append((now, sim.stats.sent, sim.stats.delivered))
            if now < 1600:
                sim.schedule(now + 40, sample)

        sim.schedule(40, sample)
        sim.run(until=1600)
        sim.drain(limit=60_000)
        assert len(samples) > 30
        for _now, sent, delivered in samples:
            assert sent >= delivered
        assert sim.stats.sent == sim.stats.delivered

    def test_conservation_beyond_saturation(self):
        """Emergency escalation keeps delivery total even when the
        transition window drives the network past saturation."""
        result, _topo = churn_cycle(rate=0.35, measure=3000, drain_limit=80_000)
        stats = result.stats
        assert stats.sent == stats.delivered
        assert stats.in_flight == 0


class TestGatedNodeTraffic:
    def test_gated_node_dark_while_down_and_lit_after_wake(self):
        topo = StringFigureTopology(NODES, 4, seed=7)
        routing = AdaptiveGreediestRouting(topo)
        policy = GreedyPolicy(routing)
        sim = NetworkSimulator(topo, policy, CONFIG)
        manager = ReconfigurationManager(topo, routing)
        live = LiveReconfigurator(
            sim,
            manager,
            policy,
            power=PowerManager(manager, config=sim.config),
        )

        from repro.traffic.patterns import make_pattern
        from repro.workloads.churn import ChurnInjector

        injector = ChurnInjector(
            sim,
            make_pattern("uniform_random", topo.active_nodes),
            0.2,
            warmup=100,
            measure=6000,
            seed=4,
            reconfig=live,
        )
        injector.start()
        victims = live.select_victims(count=4)
        live.gate_off(victims, at=600)
        live.gate_on(victims, at=2500)

        deliveries: list[tuple[int, int]] = []
        sim.on_delivery(lambda packet, now: deliveries.append((now, packet.dst)))
        sim.run(until=6100)
        sim.drain(limit=60_000)

        gate_off = next(e for e in live.events if e.kind == "gate_off")
        gate_on = next(e for e in live.events if e.kind == "gate_on")
        down = [
            t
            for t, dst in deliveries
            if dst in victims and gate_off.t_switched < t < gate_on.t_switched
        ]
        after = [
            t for t, dst in deliveries if dst in victims and t > gate_on.t_unblocked
        ]
        assert down == []
        assert len(after) > 0

    def test_sources_pause_while_gated(self):
        result, _topo = churn_cycle(rate=0.2)
        # The gated sources' injection clocks kept ticking but skipped
        # their sends; the injector records every skip.
        gate_off = next(e for e in result.events if e.kind == "gate_off")
        assert gate_off.nodes  # victims existed
        assert result.min_active_nodes == NODES - len(gate_off.nodes)


class TestEventTimeline:
    def test_timeline_ordered_and_latencies_charged(self):
        result, _topo = churn_cycle()
        config = NetworkConfig()
        sleep_cycles = config.cycles_from_ns(680.0)
        wake_cycles = config.cycles_from_ns(5000.0)
        for event in result.events:
            assert event.t_request <= event.t_blocked
            assert event.t_blocked <= event.t_switched
            assert event.t_switched <= event.t_unblocked
            assert event.parked_packets >= 0
            assert event.park_cycle_sum >= 0
        gate_off = next(e for e in result.events if e.kind == "gate_off")
        gate_on = next(e for e in result.events if e.kind == "gate_on")
        # Sleep latency elapses between blocking and the wire switch;
        # wake latency elapses before the node rejoins.
        assert gate_off.t_switched - gate_off.t_blocked >= sleep_cycles
        assert gate_on.t_blocked - gate_on.t_request >= wake_cycles

    def test_nothing_left_parked_or_pending(self):
        topo = StringFigureTopology(NODES, 4, seed=7)
        routing = AdaptiveGreediestRouting(topo)
        policy = GreedyPolicy(routing)
        sim = NetworkSimulator(topo, policy, CONFIG)
        manager = ReconfigurationManager(topo, routing)
        live = LiveReconfigurator(sim, manager, policy)

        from repro.traffic.patterns import make_pattern
        from repro.workloads.churn import ChurnInjector

        injector = ChurnInjector(
            sim,
            make_pattern("uniform_random", topo.active_nodes),
            0.15,
            warmup=100,
            measure=1200,
            seed=5,
            reconfig=live,
        )
        injector.start()
        victims = live.select_victims(count=4)
        live.gate_off(victims, at=400)
        live.gate_on(victims, at=900)
        sim.run(until=1300)
        sim.drain(limit=60_000)
        assert live.parked_now == 0
        assert live.pending_operations == 0
        assert len(live.events) == 2
        assert sim.pending_events == 0

    def test_operations_serialize(self):
        """Two overlapping requests run one after the other."""
        result, _topo = churn_cycle(gate_at=800, wake_at=810)
        gate_off, gate_on = result.events
        assert gate_off.kind == "gate_off"
        assert gate_on.kind == "gate_on"
        assert gate_on.t_request >= gate_off.t_unblocked


class TestDeterminism:
    def test_identical_runs_bit_identical(self):
        a, _ = churn_cycle(rate=0.18, seed=11)
        b, _ = churn_cycle(rate=0.18, seed=11)
        assert a.payload() == b.payload()
        assert a.series == b.series

    @pytest.mark.slow
    def test_seed_changes_results(self):
        a, _ = churn_cycle(rate=0.18, seed=11)
        b, _ = churn_cycle(rate=0.18, seed=12)
        assert a.payload() != b.payload()


class TestDisturbanceMetrics:
    class _FakeSim:
        def __init__(self):
            self.callbacks = []

        def on_delivery(self, cb):
            self.callbacks.append(cb)

    def _probe_with(self, deliveries):
        sim = self._FakeSim()
        probe = WindowedLatencyProbe(sim, window_cycles=100)
        for now, latency in deliveries:
            packet = Packet(src=0, dst=1)
            packet.inject_time = now - latency
            packet.arrive_time = now
            probe._record(packet, now)
        return probe

    def test_peak_and_recovery(self):
        # Baseline latency 10, spike to 50 during the event, back to 11.
        deliveries = [(t, 10) for t in range(50, 1000, 10)]
        deliveries += [(t, 50) for t in range(1000, 1200, 10)]
        deliveries += [(t, 11) for t in range(1200, 2000, 10)]
        probe = self._probe_with(deliveries)
        event = LiveReconfigEvent(
            kind="gate_off",
            nodes=(1,),
            t_request=1000,
            t_blocked=1000,
            t_switched=1100,
            t_unblocked=1150,
        )
        metrics = disturbance_metrics(probe, event)
        assert metrics["baseline_latency"] == pytest.approx(10.0)
        assert metrics["peak_latency"] == pytest.approx(50.0)
        assert metrics["peak_ratio"] == pytest.approx(5.0)
        assert metrics["recovered"]
        assert metrics["recovery_cycles"] == 150  # end of the 1200 window

    def test_event_with_no_traffic_after_counts_recovered(self):
        deliveries = [(t, 10) for t in range(50, 900, 10)]
        probe = self._probe_with(deliveries)
        event = LiveReconfigEvent(
            kind="gate_on",
            nodes=(1,),
            t_request=1000,
            t_blocked=1000,
            t_switched=1000,
            t_unblocked=1050,
        )
        metrics = disturbance_metrics(probe, event)
        assert metrics["recovered"]
        assert metrics["recovery_cycles"] == 0

    def test_window_probe_series(self):
        probe = self._probe_with([(50, 10), (60, 20), (150, 30)])
        series = probe.series()
        assert series[0] == {"window_start": 0, "count": 2, "mean_latency": 15.0}
        assert series[1]["count"] == 1
        assert probe.mean_between(0, 100) == pytest.approx(15.0)


class TestGuards:
    def test_drain_timeout_raises_for_non_churn_traffic(self):
        """Plain injectors keep targeting the victim; drain must fail
        loudly instead of hanging forever."""
        from repro.traffic.injection import BernoulliInjector
        from repro.traffic.patterns import make_pattern

        topo = StringFigureTopology(32, 4, seed=7)
        routing = AdaptiveGreediestRouting(topo)
        policy = GreedyPolicy(routing)
        sim = NetworkSimulator(topo, policy, CONFIG)
        manager = ReconfigurationManager(topo, routing)
        live = LiveReconfigurator(sim, manager, policy, drain_timeout_cycles=500)
        injector = BernoulliInjector(
            sim,
            make_pattern("uniform_random", topo.active_nodes),
            0.3,
            warmup=0,
            measure=5000,
            seed=1,
        )
        injector.start()
        live.gate_off(live.select_victims(count=2), at=100)
        with pytest.raises(RuntimeError, match="could not drain"):
            sim.run(until=5000)

    def test_router_with_fully_blocked_neighborhood_survives(self):
        """A router whose every neighbor is a victim gets an *empty*
        usable window mid-reconfiguration; view construction and the
        parking probe must both cope (regression: reshape(0, -1))."""
        topo = StringFigureTopology(32, 4, seed=0)
        routing = AdaptiveGreediestRouting(topo)
        some_node = topo.active_nodes[0]
        for table in routing.tables.values():
            for neighbor in topo.neighbors(some_node):
                table.block(neighbor)
        routing.refresh_views()  # must not raise
        # The CLI-scale scenario that originally crashed: 32 nodes,
        # a quarter gated, live.
        topo = StringFigureTopology(32, 4, seed=0)
        schedule = ChurnSchedule.cycle(gate_at=500, wake_at=1000, fraction=0.25)
        result = run_churn(
            topo, rate=0.1, schedule=schedule, warmup=150, measure=2000, seed=0
        )
        assert result.stats.sent == result.stats.delivered

    def test_empty_request_is_noop(self):
        topo = StringFigureTopology(32, 4, seed=7)
        routing = AdaptiveGreediestRouting(topo)
        policy = GreedyPolicy(routing)
        sim = NetworkSimulator(topo, policy, CONFIG)
        manager = ReconfigurationManager(topo, routing)
        live = LiveReconfigurator(sim, manager, policy)
        live.gate_off([], at=10)
        sim.run(until=100)
        assert live.events == []
        assert live.pending_operations == 0
