"""Saturation-point search."""

from __future__ import annotations

import pytest

from repro.analysis.saturation import find_saturation
from repro.topologies.registry import make_policy, make_topology
from repro.traffic.patterns import make_pattern


@pytest.fixture(scope="module")
def sf16():
    topo = make_topology("SF", 16, seed=3)
    return topo, make_policy(topo)


class TestSearch:
    def test_uniform_random_saturation_in_range(self, sf16):
        topo, policy = sf16
        pattern = make_pattern("uniform_random", topo.active_nodes)
        rate = find_saturation(
            topo, policy, pattern, warmup=80, measure=200,
            drain_limit=4000, resolution=0.2,
        )
        assert 0.2 <= rate <= 1.0

    def test_hotspot_saturates_earlier(self, sf16):
        topo, policy = sf16
        uniform = find_saturation(
            topo, policy, make_pattern("uniform_random", topo.active_nodes),
            warmup=80, measure=200, drain_limit=4000, resolution=0.2,
        )
        hotspot = find_saturation(
            topo, policy, make_pattern("hotspot", topo.active_nodes),
            warmup=80, measure=200, drain_limit=4000, resolution=0.2,
        )
        assert hotspot <= uniform

    def test_deterministic(self, sf16):
        topo, policy = sf16
        pattern = make_pattern("tornado", topo.active_nodes)
        kwargs = dict(warmup=80, measure=200, drain_limit=4000, resolution=0.2)
        assert find_saturation(topo, policy, pattern, **kwargs) == (
            find_saturation(topo, policy, pattern, **kwargs)
        )
