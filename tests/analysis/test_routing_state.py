"""Routing-state scaling accounting."""

from __future__ import annotations

import pytest

from repro.analysis.routing_state import routing_state_bits, state_scaling_table
from repro.core.routing_table import table_bits


class TestSchemes:
    def test_sf_matches_table_bits(self):
        assert routing_state_bits("sf", 256, 8) == table_bits(256, 8)

    def test_minimal_linear(self):
        small = routing_state_bits("minimal", 128, 8)
        large = routing_state_bits("minimal", 1024, 8)
        assert large > 7 * small  # ~8x nodes, slightly wider ids

    def test_ksp_k_times_minimal(self):
        minimal = routing_state_bits("minimal", 256, 8)
        ksp = routing_state_bits("ksp", 256, 8, k=4)
        assert ksp == pytest.approx(4 * minimal)

    def test_sf_flat_in_n(self):
        a = routing_state_bits("sf", 128, 8)
        b = routing_state_bits("sf", 1296, 8)
        assert b < 1.5 * a

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            routing_state_bits("ecmp", 64, 8)

    def test_tiny_network_rejected(self):
        with pytest.raises(ValueError):
            routing_state_bits("sf", 1, 8)


class TestTable:
    def test_shapes(self):
        table = state_scaling_table([64, 256])
        assert set(table) == {"sf", "minimal", "ksp"}
        for row in table.values():
            assert set(row) == {64, 256}
            assert all(v > 0 for v in row.values())

    def test_ordering_at_scale(self):
        table = state_scaling_table([1024])
        assert table["sf"][1024] < table["minimal"][1024] < table["ksp"][1024]
