"""Empirical bisection bandwidth."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.analysis.bisection import empirical_bisection, matched_channels


class TestKnownGraphs:
    def test_cycle_bisection_bounds(self):
        """The empirical estimate upper-bounds the true bisection (2
        for a cycle) and cannot exceed the edge count."""
        g = nx.cycle_graph(16)
        value = empirical_bisection(g, partitions=30, seed=1)
        assert 2.0 <= value <= g.number_of_edges()
        # A contiguous split realizes the true minimum of 2.
        from repro.analysis.bisection import _partition_max_flow

        flow = _partition_max_flow(g, set(range(8)), set(range(8, 16)))
        assert flow == 2.0

    def test_complete_graph(self):
        value = empirical_bisection(nx.complete_graph(8), partitions=10, seed=1)
        assert value == 16.0  # 4x4 edges across any balanced split

    def test_too_small(self):
        with pytest.raises(ValueError):
            empirical_bisection(nx.Graph())

    def test_deterministic(self):
        g = nx.random_regular_graph(4, 20, seed=3)
        a = empirical_bisection(g, partitions=10, seed=5)
        b = empirical_bisection(g, partitions=10, seed=5)
        assert a == b


class TestMatching:
    def test_richer_reference_needs_channels(self):
        reference = nx.complete_graph(16)
        mesh = nx.grid_2d_graph(4, 4)
        mesh = nx.convert_node_labels_to_integers(mesh)
        channels = matched_channels(reference, mesh, partitions=10, seed=1)
        assert channels >= 2

    def test_equal_graphs_one_channel(self):
        g = nx.cycle_graph(12)
        assert matched_channels(g, g, partitions=10, seed=1) == 1
