"""Path-length statistics."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.analysis.paths import PathStats, greedy_path_stats, shortest_path_stats
from repro.core.routing import GreediestRouting
from repro.core.topology import StringFigureTopology


class TestPathStats:
    def test_from_lengths(self):
        stats = PathStats.from_lengths([1, 2, 3, 4, 5])
        assert stats.mean == 3.0
        assert stats.maximum == 5
        assert stats.samples == 5

    def test_percentiles(self):
        stats = PathStats.from_lengths(list(range(1, 101)))
        assert stats.p10 == pytest.approx(11, abs=1)
        assert stats.p90 == pytest.approx(90, abs=1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PathStats.from_lengths([])


class TestShortestPaths:
    def test_cycle_graph_exact(self):
        stats = shortest_path_stats(nx.cycle_graph(10), sample_sources=None)
        # Mean distance on C10: (1+1+2+2+3+3+4+4+5)/9 = 25/9.
        assert stats.mean == pytest.approx(25 / 9)

    def test_complete_graph(self):
        stats = shortest_path_stats(nx.complete_graph(8), sample_sources=None)
        assert stats.mean == 1.0
        assert stats.maximum == 1

    def test_sampling_close_to_exact(self):
        topo = StringFigureTopology(100, 4, seed=1)
        g = topo.graph()
        exact = shortest_path_stats(g, sample_sources=None)
        sampled = shortest_path_stats(g, sample_sources=40, seed=2)
        assert sampled.mean == pytest.approx(exact.mean, rel=0.1)


class TestGreedyPaths:
    def test_greedy_at_least_optimal(self):
        topo = StringFigureTopology(60, 4, seed=3)
        routing = GreediestRouting(topo)
        greedy = greedy_path_stats(routing, sample_pairs=1000, seed=1)
        optimal = shortest_path_stats(topo.graph(), sample_sources=None)
        assert greedy.mean >= optimal.mean

    def test_greedy_close_to_optimal(self):
        """Greediest paths stay within ~60% of true shortest paths."""
        topo = StringFigureTopology(60, 4, seed=3)
        routing = GreediestRouting(topo)
        greedy = greedy_path_stats(routing, sample_pairs=1000, seed=1)
        optimal = shortest_path_stats(topo.graph(), sample_sources=None)
        assert greedy.mean <= 1.6 * optimal.mean

    def test_exhaustive_small(self):
        topo = StringFigureTopology(10, 4, seed=3)
        routing = GreediestRouting(topo)
        stats = greedy_path_stats(routing, sample_pairs=10_000)
        assert stats.samples == 10 * 9
