"""2D grid placement and wire-length modeling."""

from __future__ import annotations

import pytest

from repro.analysis.placement import GridPlacement
from repro.core.topology import StringFigureTopology
from repro.network.config import NetworkConfig
from repro.topologies.mesh import MeshTopology


@pytest.fixture
def placement():
    return GridPlacement(StringFigureTopology(64, 4, seed=5))


class TestGeometry:
    def test_positions_unique(self, placement):
        positions = [placement.position(v) for v in range(64)]
        assert len(set(positions)) == 64

    def test_positions_in_grid(self, placement):
        for v in range(64):
            r, c = placement.position(v)
            assert 0 <= r < placement.rows
            assert 0 <= c < placement.cols

    def test_ring_successors_adjacent(self, placement):
        """Boustrophedon placement keeps most ring-0 successors at
        unit distance."""
        topo = placement.topology
        ring = topo.coords.ring(0)
        adjacent = sum(
            1
            for a, b in zip(ring, ring[1:])
            if placement.wire_length(a, b) == 1
        )
        assert adjacent / (len(ring) - 1) > 0.9

    def test_wire_length_symmetric(self, placement):
        assert placement.wire_length(3, 9) == placement.wire_length(9, 3)


class TestLatency:
    def test_short_wire_base_latency(self, placement):
        cfg = NetworkConfig()
        topo = placement.topology
        ring = topo.coords.ring(0)
        assert placement.link_latency(ring[0], ring[1]) == cfg.wire_cycles

    def test_long_wire_penalty(self, placement):
        cfg = NetworkConfig()
        # find the longest wire
        links = placement._links()
        u, v = max(links, key=lambda link: placement.wire_length(*link))
        if placement.wire_length(u, v) > cfg.long_wire_grid_units:
            assert placement.link_latency(u, v) > cfg.wire_cycles

    def test_latency_fn_usable_by_simulator(self, placement):
        fn = placement.latency_fn()
        assert fn(0, 1) >= 1


class TestStats:
    def test_wire_stats_keys(self, placement):
        stats = placement.wire_stats()
        assert set(stats) == {"mean", "max", "long_fraction"}
        assert stats["mean"] <= stats["max"]

    def test_mesh_wires_all_short(self):
        """A mesh placed in its own grid order has only unit wires."""
        placement = GridPlacement(MeshTopology(64))
        # mesh ids happen to be laid out row-major already
        stats = placement.wire_stats()
        assert stats["max"] <= 16  # bounded by grid dimensions

    def test_cluster_split(self, placement):
        split = placement.cluster_link_split()
        assert split["intra"] > 0
        assert split["intra"] + split["inter"] == len(placement._links())

    def test_cluster_of(self, placement):
        ring = placement.topology.coords.ring(0)
        assert placement.cluster_of(ring[0]) == 0
        assert placement.cluster_of(ring[-1]) == (64 - 1) // 16
