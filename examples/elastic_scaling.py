#!/usr/bin/env python3
"""Elastic network scale: power management and design reuse.

Demonstrates the paper's headline flexibility features (§III-C):

* **Online power gating under load** — gate 25% of the memory nodes
  *while traffic is flowing*: the reconfiguration runs inside the
  simulator's event loop (drain, block, sleep latency, wire switch,
  revalidate, unblock), no packet is lost, and the per-event latency
  disturbance and recovery time are measured.
* **Real data movement** — the same gate-off, but the victims' memory
  pages physically migrate to the survivors as rate-limited background
  traffic before the links power down (and stream back after the
  wake): bytes moved, migration makespan, and the foreground stalls
  and slowdown the instant-remap "teleport" baseline never sees.
* **Dynamic power gating (offline view)** — the same scale change
  between simulations: shortcuts patch the space-0 ring, routing keeps
  working, average paths get *shorter* on the smaller network.  Then
  wake everything back up.
* **Static design reuse** — deploy a 96-node board with only 64 nodes
  mounted, run, then "purchase" 16 more nodes and mount them without
  re-fabricating anything.

Run:  python examples/elastic_scaling.py
"""

from __future__ import annotations

from repro import ReconfigurationManager, StringFigureTopology
from repro.analysis.paths import greedy_path_stats
from repro.core.routing import AdaptiveGreediestRouting
from repro.energy.power_gating import PowerManager
from repro.network.policies import GreedyPolicy
from repro.traffic.injection import run_synthetic
from repro.traffic.patterns import make_pattern


def traffic_probe(topo, routing, label: str) -> None:
    policy = GreedyPolicy(routing)
    pattern = make_pattern("uniform_random", topo.active_nodes)
    stats = run_synthetic(topo, policy, pattern, rate=0.15,
                          warmup=150, measure=500)
    paths = greedy_path_stats(routing, sample_pairs=1500)
    print(f"  [{label}] nodes={len(topo.active_nodes):3d} "
          f"avg hops={paths.mean:.2f} "
          f"latency={stats.avg_latency:.1f} cyc "
          f"accepted={stats.accepted_rate:.1%} "
          f"fallback hops={stats.fallback_hops}")


def online_gate_off_under_load() -> None:
    """The paper's dynamic reconfiguration, live: packets keep flowing."""
    from repro.workloads.churn import ChurnSchedule, run_churn

    print("=== Online reconfiguration: gating 25% of 64 nodes under load ===")
    topo = StringFigureTopology(64, 4, seed=11)
    schedule = ChurnSchedule.cycle(gate_at=1000, wake_at=2400, fraction=0.25)
    result = run_churn(topo, rate=0.15, schedule=schedule,
                       warmup=300, measure=4000, seed=0)
    stats = result.stats
    print(f"  traffic: {stats.sent} packets sent, {stats.delivered} delivered "
          f"(conservation {'ok' if stats.sent == stats.delivered else 'BROKEN'})")
    for event, metrics in zip(result.events, result.disturbances):
        recovery = (f"recovered in {metrics['recovery_cycles']} cycles"
                    if metrics["recovered"] else "did not recover")
        print(f"  {event.kind:8s} {len(event.nodes):2d} nodes: "
              f"drained in {event.drain_cycles} cyc, "
              f"blocked window {event.block_cycles} cyc, "
              f"{event.parked_packets} packets parked, "
              f"peak latency {metrics['peak_ratio']:.2f}x baseline, {recovery}")
    print(f"  network dipped to {result.min_active_nodes} active nodes and "
          f"finished back at {result.final_active_nodes}")


def migration_under_load() -> None:
    """The same scale-down, but the data pays its way across the network."""
    from repro.workloads.migration import run_migration

    print("\n=== Data migration: gating 25% of 64 nodes moves real pages ===")
    results = {}
    for mode in ("teleport", "migrate"):
        topo = StringFigureTopology(64, 4, seed=11)
        results[mode] = run_migration(
            topo, rate=0.1, gate_fraction=0.25, footprint_pages=128,
            rate_limit=64.0, warmup=300, measure=6000, seed=0, mode=mode,
        )
    for mode, result in results.items():
        p = result.payload()
        print(f"  [{mode:8s}] {p['bytes_moved'] / 1024:5.0f} KiB moved, "
              f"makespan {p['migration_makespan']:5d} cyc, "
              f"{p['fg_stalled']:3d} stalled + {p['fg_forwarded']:2d} forwarded "
              f"requests, fg p99 {p['fg_p99_overall']:.0f} cyc "
              f"({p['fg_slowdown_p99']:.2f}x baseline during the move)")
        assert p['sent'] == p['delivered'] and p['fg_issued'] == p['fg_completed']
    for event in results["migrate"].events:
        record = event.migration
        print(f"  {event.kind:8s}: {record.pages_moved} pages "
              f"({record.bytes_moved / 1024:.0f} KiB) migrated "
              f"{'out of' if record.kind == 'out' else 'back into'} "
              f"{len(event.nodes)} nodes in {record.makespan_cycles} cycles")
    print("  conservation ok in both modes: every packet delivered, every "
          "foreground request answered, every page on exactly one node")


def dynamic_power_management() -> None:
    print("\n=== Dynamic reconfiguration: power gating 25% of 96 nodes ===")
    topo = StringFigureTopology(96, 4, seed=11)
    routing = AdaptiveGreediestRouting(topo)
    manager = PowerManager(ReconfigurationManager(topo, routing))

    traffic_probe(topo, routing, "full network ")
    plan = manager.gate_fraction(0.25, now_ns=0)
    print(f"  gated {len(plan.gated)} nodes "
          f"(sleep latency {plan.overhead_ns:.0f} ns); "
          f"shortcuts switched in: "
          f"{sum(len(e.shortcuts_activated) for e in plan.events)}")
    assert manager.manager.validate_connectivity()
    traffic_probe(topo, routing, "75% powered ")

    plan = manager.wake_all(now_ns=200_000)
    print(f"  woke {len(plan.woken)} nodes "
          f"(wake latency {plan.overhead_ns:.0f} ns)")
    traffic_probe(topo, routing, "restored     ")


def static_design_reuse() -> None:
    print("\n=== Static expansion: 96-node board, 64 mounted at launch ===")
    topo = StringFigureTopology(96, 4, seed=23)
    routing = AdaptiveGreediestRouting(topo)
    manager = ReconfigurationManager(topo, routing)

    # Unmount 32 reserved positions before deployment (offline).
    reserved = manager.gate_candidates(32, min_spacing=3)
    for node in reserved:
        manager.unmount(node)
    print(f"  deployed with {len(topo.active_nodes)} of 96 positions mounted")
    traffic_probe(topo, routing, "launch config")

    # Capacity upgrade: mount 16 of the reserved nodes — no redesign,
    # no re-fabrication, just link + table reconfiguration.
    for node in reserved[:16]:
        manager.mount(node)
    print(f"  upgraded to {len(topo.active_nodes)} nodes "
          "(same board, same routing logic)")
    traffic_probe(topo, routing, "after upgrade")


if __name__ == "__main__":
    online_gate_off_under_load()
    migration_under_load()
    dynamic_power_management()
    static_design_reuse()
