#!/usr/bin/env python3
"""Topology explorer: compare memory-network designs head to head.

For each evaluated topology (Figure 8's lineup) at a chosen scale,
report the structural metrics that drive the paper's analysis:

* router radix (ports needed — the hardware-cost axis of Table II),
* average / p90 shortest path length,
* empirical bisection bandwidth (max-flow over random bipartitions),
* routing-state bytes per router (String Figure's constant p(p+1)
  table versus Jellyfish's superlinear k-shortest-path state),
* saturation injection rate under uniform-random traffic.

Run:  python examples/topology_explorer.py [num_nodes]
"""

from __future__ import annotations

import sys

from repro import make_policy, make_topology
from repro.analysis.bisection import empirical_bisection
from repro.analysis.paths import shortest_path_stats
from repro.analysis.saturation import find_saturation
from repro.core.routing_table import table_bits
from repro.core.topology import StringFigureTopology
from repro.traffic.patterns import make_pattern

TOPOLOGIES = ("DM", "ODM", "FB", "AFB", "S2", "SF", "Jellyfish")


def routing_state_bytes(topo, num_nodes: int) -> float:
    """Per-router routing state estimate in bytes."""
    if isinstance(topo, StringFigureTopology):
        return table_bits(num_nodes, topo.num_ports) / 8
    if topo.name == "Jellyfish":
        # k-shortest-path forwarding state: ~k entries per destination.
        import math

        entry = math.ceil(math.log2(num_nodes)) + 3
        return 4 * (num_nodes - 1) * entry / 8
    # Minimal routing on regular structures: one entry per destination.
    import math

    return (num_nodes - 1) * (math.ceil(math.log2(num_nodes)) + 3) / 8


def main(num_nodes: int) -> None:
    print(f"Comparing topologies at N = {num_nodes} "
          "(radix excludes the terminal port)\n")
    print(f"{'design':<10}{'radix':>6}{'avg sp':>8}{'p90 sp':>8}"
          f"{'bisect':>8}{'state B':>9}{'sat rate':>9}")
    for name in TOPOLOGIES:
        try:
            topo = make_topology(name, num_nodes, seed=1)
        except ValueError as exc:
            print(f"{name:<10}  unsupported at this scale ({exc})")
            continue
        g = topo.graph()
        paths = shortest_path_stats(g, sample_sources=64)
        bisect_bw = empirical_bisection(g, partitions=10, seed=2)
        radix = topo.radix if not hasattr(topo, "num_ports") else topo.num_ports
        state = routing_state_bytes(topo, num_nodes)
        policy = make_policy(topo)
        pattern = make_pattern("uniform_random", topo.active_nodes)
        saturation = find_saturation(
            topo, policy, pattern, warmup=150, measure=350, resolution=0.1
        )
        print(f"{name:<10}{radix:>6}{paths.mean:>8.2f}{paths.p90:>8.0f}"
              f"{bisect_bw:>8.0f}{state:>9.0f}{saturation:>9.2f}")

    print("\nNotes: SF/S2 keep radix and routing state constant as N "
          "grows;\nFB's radix and the minimal-table state scale with N "
          "(Table II).")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    main(n)
