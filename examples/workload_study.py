#!/usr/bin/env python3
"""Real-workload study: in-memory computing on four memory networks.

Replays synthesized traces of the paper's Table IV workloads (Spark
wordcount/grep, PageRank, Redis, Memcached) on String Figure and the
DM / ODM / AFB baselines, with four CPU sockets attached to spread-out
memory nodes.  Prints per-workload runtime, read latency, throughput
normalized to DM (the paper's Figure 12a view), and dynamic energy
normalized to AFB (the Figure 12b view).

Run:  python examples/workload_study.py
"""

from __future__ import annotations

from repro import make_policy, make_topology
from repro.energy.model import EnergyModel
from repro.workloads.runner import run_workload
from repro.workloads.trace import collect_trace

WORKLOADS = ("wordcount", "grep", "pagerank", "redis", "memcached")
TOPOLOGIES = ("DM", "ODM", "AFB", "SF")
NUM_NODES = 64
TRACE_SIZE = 2500


def main() -> None:
    print(f"{NUM_NODES}-node memory pool, 4 sockets, MLP 8, "
          f"{TRACE_SIZE} memory ops per workload\n")
    model = EnergyModel()
    header = f"{'workload':<12}" + "".join(f"{t:>10}" for t in TOPOLOGIES)
    geomean: dict[str, float] = {t: 1.0 for t in TOPOLOGIES}
    geomean_e: dict[str, float] = {t: 1.0 for t in TOPOLOGIES}

    print("Throughput normalized to DM (higher is better):")
    print(header)
    energies: dict[str, dict[str, float]] = {}
    for workload in WORKLOADS:
        trace = collect_trace(workload, max_memory_accesses=TRACE_SIZE,
                              scale=0.02, seed=7)
        row = {}
        energy_row = {}
        for name in TOPOLOGIES:
            topo = make_topology(name, NUM_NODES, seed=3)
            result = run_workload(topo, make_policy(topo), trace)
            row[name] = result.throughput_ops_per_kcycle
            radix = getattr(topo, "radix", 8)
            energy_row[name] = model.from_stats(
                result.stats, radix=radix
            ).total_pj
        energies[workload] = energy_row
        base = row["DM"]
        cells = "".join(f"{row[t] / base:>10.2f}" for t in TOPOLOGIES)
        print(f"{workload:<12}{cells}")
        for t in TOPOLOGIES:
            geomean[t] *= row[t] / base
    n = len(WORKLOADS)
    print(f"{'geomean':<12}"
          + "".join(f"{geomean[t] ** (1 / n):>10.2f}" for t in TOPOLOGIES))

    print("\nDynamic energy normalized to AFB (lower is better):")
    print(header)
    for workload in WORKLOADS:
        base = energies[workload]["AFB"]
        cells = "".join(
            f"{energies[workload][t] / base:>10.2f}" for t in TOPOLOGIES
        )
        print(f"{workload:<12}{cells}")
        for t in TOPOLOGIES:
            geomean_e[t] *= energies[workload][t] / base
    print(f"{'geomean':<12}"
          + "".join(f"{geomean_e[t] ** (1 / n):>10.2f}" for t in TOPOLOGIES))


if __name__ == "__main__":
    main()
