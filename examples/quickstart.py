#!/usr/bin/env python3
"""Quickstart: build a String Figure memory network and route on it.

Walks through the paper's working pieces at a friendly scale:

1. generate a balanced random topology (9 nodes / 4-port routers —
   the paper's Figure 3 example scale, then 128 nodes);
2. inspect virtual spaces, coordinates, and shortcut wires;
3. route packets with the greediest protocol and look at a routing
   table;
4. run a short uniform-random traffic simulation and print latency,
   throughput, and energy.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    AdaptiveGreediestRouting,
    GreediestRouting,
    StringFigureTopology,
    make_policy,
)
from repro.analysis.paths import greedy_path_stats, shortest_path_stats
from repro.energy.model import EnergyModel
from repro.traffic.injection import run_synthetic
from repro.traffic.patterns import make_pattern


def tiny_example() -> None:
    print("=== 9 nodes, 4-port routers (paper Figure 3 scale) ===")
    topo = StringFigureTopology(num_nodes=9, num_ports=4, seed=42)
    print(f"virtual spaces (L = p/2): {topo.num_spaces}")
    for node in range(3):
        coords = ", ".join(f"{c:.2f}" for c in topo.coords.vector(node))
        print(f"  node {node}: coordinates <{coords}>, "
              f"neighbors {topo.neighbors(node)}")
    print(f"shortcut wires (dormant until reconfiguration): "
          f"{topo.shortcut_wires}")

    routing = GreediestRouting(topo)
    result = routing.route(src=7, dst=2)
    print(f"greediest route 7 -> 2: {' -> '.join(map(str, result.path))} "
          f"({result.hops} hops)")

    table = routing.table(7)
    print(f"node 7 routing table: {len(table)} entries "
          f"(hardware bound p(p+1) = {table.max_entries})")
    for entry in table.entries()[:4]:
        coords = ", ".join(f"{c:.2f}" for c in entry.coords)
        print(f"  -> node {entry.node}: hop={entry.hop} via={sorted(entry.vias)} "
              f"coords=<{coords}>")


def scale_example() -> None:
    print("\n=== 128 nodes, 4-port routers ===")
    topo = StringFigureTopology(num_nodes=128, num_ports=4, seed=1)
    routing = AdaptiveGreediestRouting(topo)

    optimal = shortest_path_stats(topo.graph(), sample_sources=None)
    greedy = greedy_path_stats(routing, sample_pairs=2000)
    print(f"shortest paths: mean {optimal.mean:.2f}, max {optimal.maximum}")
    print(f"greediest routing: mean {greedy.mean:.2f} hops "
          f"(p10={greedy.p10:.0f}, p90={greedy.p90:.0f}) — "
          "local tables only, no global state")

    policy = make_policy(topo)
    pattern = make_pattern("uniform_random", topo.active_nodes)
    stats = run_synthetic(topo, policy, pattern, rate=0.2,
                          warmup=200, measure=800)
    energy = EnergyModel().from_stats(stats)
    print(f"uniform random @ 20% injection: "
          f"avg latency {stats.avg_latency:.1f} cycles "
          f"({stats.avg_latency * 3.2:.0f} ns), "
          f"accepted {stats.accepted_rate:.1%}")
    print(f"dynamic energy: network {energy.network_pj / 1e6:.2f} uJ, "
          f"DRAM {energy.dram_pj / 1e6:.2f} uJ")


if __name__ == "__main__":
    tiny_example()
    scale_example()
