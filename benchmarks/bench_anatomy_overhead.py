"""Anatomy-overhead trajectory: events/sec bare vs probes vs anatomy.

Times the identical synthetic run three ways — no probes at all
(``bare``), `FabricProbes` without the latency anatomy (``probes``),
and probes with the anatomy installed (``anatomy``) — and appends the
three events/sec numbers as one labeled run to
``benchmarks/results/anatomy_overhead.json``, the tracked cost
trajectory of the delay-decomposition layer.  The simulated results
are bit-identical across the three modes (the probes never schedule
events), so every mode processes exactly the same event stream and
the ratio is a pure instrumentation cost.

Usage::

    python benchmarks/bench_anatomy_overhead.py              # measure
    python benchmarks/bench_anatomy_overhead.py --quick      # CI scale
    python benchmarks/bench_anatomy_overhead.py --assert-overhead 50

Methodology: repeats are interleaved round-robin across the modes and
the best repetition per mode wins — on a shared host the noise floor
between back-to-back runs easily exceeds the effect being measured,
and interleaving keeps a slow phase from landing entirely on one mode.
The canary (``repro.obs.canary``) is recorded with every run so the
trajectory comparison can separate code changes from host changes.

Current cost (recorded in the trajectory): the full per-packet
decomposition plus per-link exact sketches price out around 25% over
probes-only and around 35% over the bare simulator on the hot path —
the per-hop hooks are already call-fused and slot-cached, so the gate
below is a regression ratchet at the measured level plus CI noise
headroom, not an aspiration.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
DEFAULT_OUT = RESULTS_DIR / "anatomy_overhead.json"
QUICK_OUT = RESULTS_DIR / "anatomy_overhead_quick.json"

MODES = ("bare", "probes", "anatomy")

CONFIG = {
    "design": "SF",
    "nodes": 64,
    "pattern": "uniform_random",
    "rate": 0.15,
    "warmup": 100,
    "measure": 2000,
    "drain_limit": 50_000,
    "seed": 7,
}
QUICK_MEASURE = 800


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help=f"short measure window ({QUICK_MEASURE} cycles, CI smoke)",
    )
    parser.add_argument("--repeats", type=int, default=4,
                        help="interleaved timing repetitions (best wins)")
    parser.add_argument(
        "--assert-overhead", type=float, default=None, metavar="PCT",
        help="exit nonzero if anatomy-enabled overhead vs the bare "
             "simulator exceeds PCT percent (events/sec, best-of)",
    )
    parser.add_argument("--label", default=None,
                        help="run label in the trajectory (default: scale)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="trajectory JSON (default: anatomy_overhead"
                             ".json, or the _quick variant with --quick)")
    return parser


def run_once(mode: str, measure: int) -> float:
    """One timed run; returns events/sec (build outside the timed loop
    is pointless here — topology construction is part of no mode's
    marginal cost, but keeping it inside keeps the three modes
    symmetric)."""
    from repro.obs.probes import FabricProbes
    from repro.topologies.registry import make_policy, make_topology
    from repro.traffic.injection import run_synthetic
    from repro.traffic.patterns import make_pattern

    holder = {}

    def instrument(sim):
        holder["sim"] = sim
        if mode != "bare":
            probes = FabricProbes()
            probes.attach_sim(sim)
            if mode == "anatomy":
                probes.install_anatomy()

    topo = make_topology(
        CONFIG["design"], CONFIG["nodes"], seed=CONFIG["seed"],
    )
    policy = make_policy(topo)
    pattern = make_pattern(CONFIG["pattern"], topo.active_nodes)
    start = time.perf_counter()
    run_synthetic(
        topo, policy, pattern, CONFIG["rate"],
        warmup=CONFIG["warmup"], measure=measure,
        drain_limit=CONFIG["drain_limit"], seed=CONFIG["seed"],
        instrument=instrument,
    )
    wall = time.perf_counter() - start
    return holder["sim"]._events_processed / wall


def measure(repeats: int, measure_cycles: int) -> dict[str, float]:
    best = dict.fromkeys(MODES, 0.0)
    for rep in range(repeats):
        for mode in MODES:
            best[mode] = max(best[mode], run_once(mode, measure_cycles))
        print(f"  repeat {rep + 1}/{repeats}: " + "  ".join(
            f"{m} {best[m]:,.0f}" for m in MODES))
    return best


def overhead_pct(slow: float, fast: float) -> float:
    return 100.0 * (1.0 - slow / fast) if fast else 0.0


def load_trajectory(path: Path) -> dict:
    if not path.exists():
        return {"config": CONFIG, "runs": []}
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise SystemExit(
            f"{path} exists but is not valid JSON ({exc}); refusing to "
            "overwrite the recorded perf trajectory — fix or delete it first"
        )


def compare(previous: dict, current: dict) -> None:
    """Per-mode events/sec vs the previous recorded run, raw and
    canary-normalized (same convention as bench_sim_throughput)."""
    old_canary = previous.get("canary_kops")
    new_canary = current.get("canary_kops")
    lines = []
    for mode in MODES:
        old = previous.get("events_per_sec", {}).get(mode)
        new = current["events_per_sec"][mode]
        if not old:
            continue
        ratio = new / old
        if old_canary and new_canary:
            norm = f"{ratio * old_canary / new_canary:.2f}x"
        else:
            norm = "-"
        lines.append(
            f"  {mode:>8s} {old:>12,.0f} -> {new:>12,.0f} ev/s  "
            f"({ratio:.2f}x raw, {norm} canary-normalized)"
        )
    if lines:
        print("\nvs previous recorded run:")
        print("\n".join(lines))


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    out = Path(args.out) if args.out else (QUICK_OUT if args.quick else DEFAULT_OUT)
    measure_cycles = QUICK_MEASURE if args.quick else CONFIG["measure"]

    from repro.obs.canary import run_canary

    trajectory = load_trajectory(out)  # fail on corruption before measuring
    canary = run_canary()
    print(f"canary: {canary['kops']:,.0f} kops/s (machine-speed baseline)")
    print(f"interleaved best-of-{args.repeats}, measure={measure_cycles}:")
    start = time.perf_counter()
    best = measure(args.repeats, measure_cycles)
    elapsed = time.perf_counter() - start

    vs_bare = overhead_pct(best["anatomy"], best["bare"])
    vs_probes = overhead_pct(best["anatomy"], best["probes"])
    probes_vs_bare = overhead_pct(best["probes"], best["bare"])
    print(f"\n  probes  vs bare:   {probes_vs_bare:5.1f}% events/sec")
    print(f"  anatomy vs probes: {vs_probes:5.1f}% events/sec (marginal)")
    print(f"  anatomy vs bare:   {vs_bare:5.1f}% events/sec (full stack)")

    run_entry = {
        "label": args.label or ("quick" if args.quick else "full"),
        "scale": "quick" if args.quick else "full",
        "measure": measure_cycles,
        "repeats": args.repeats,
        "elapsed_s": round(elapsed, 1),
        "canary_kops": round(canary["kops"], 1),
        "events_per_sec": {m: round(v, 1) for m, v in best.items()},
        "overhead_pct": {
            "probes_vs_bare": round(probes_vs_bare, 1),
            "anatomy_vs_probes": round(vs_probes, 1),
            "anatomy_vs_bare": round(vs_bare, 1),
        },
    }
    if trajectory["runs"]:
        compare(trajectory["runs"][-1], run_entry)
    trajectory["runs"].append(run_entry)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(trajectory, indent=2, sort_keys=True) + "\n")
    print(f"\ntrajectory: {out} ({len(trajectory['runs'])} recorded runs, "
          f"this one took {elapsed:.1f}s)")

    if args.assert_overhead is not None and vs_bare > args.assert_overhead:
        print(f"FAIL: anatomy overhead {vs_bare:.1f}% vs bare exceeds the "
              f"{args.assert_overhead:.0f}% gate", file=sys.stderr)
        return 1
    if args.assert_overhead is not None:
        print(f"gate: anatomy overhead {vs_bare:.1f}% <= "
              f"{args.assert_overhead:.0f}% vs bare — ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
