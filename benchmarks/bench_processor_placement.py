"""Processor placement sensitivity (paper §IV-C and §VI).

"By tuning traffic patterns of our synthetic workloads, our evaluation
examines ways of injecting memory traffic from various locations, such
as corner memory nodes, subset of memory nodes, random memory nodes,
and all memory nodes."

For each attachment strategy the bench injects uniform-random traffic
from only the attached nodes and reports latency at a fixed per-source
rate.  Expected shape: String Figure's random topology is location-
oblivious — corner, spread-subset and random attachments see nearly the
same latency (no privileged positions), unlike grid topologies where
corner placement is the worst case.
"""

from __future__ import annotations

from conftest import print_table, scale

from repro.topologies.registry import make_policy, make_topology
from repro.traffic.injection import run_synthetic
from repro.traffic.patterns import make_pattern
from repro.traffic.sources import SOURCE_STRATEGIES, select_sources

NUM_NODES = scale(64, 256)
RATE = 0.3  # per attached source
SOCKETS = 4


def latency_for(topo_name: str, strategy: str) -> float:
    topo = make_topology(topo_name, NUM_NODES, seed=8)
    policy = make_policy(topo)
    sources = select_sources(topo, strategy, count=SOCKETS, seed=1)
    pattern = make_pattern("uniform_random", topo.active_nodes)
    stats = run_synthetic(
        topo,
        policy,
        pattern,
        RATE,
        warmup=scale(150, 250),
        measure=scale(500, 900),
        sources=sources,
        seed=3,
    )
    return stats.avg_latency


def reproduce_placement_study() -> dict[str, dict[str, float]]:
    return {
        name: {s: latency_for(name, s) for s in SOURCE_STRATEGIES}
        for name in ("SF", "DM")
    }


def test_processor_placement(benchmark, record_result):
    data = benchmark.pedantic(reproduce_placement_study, rounds=1, iterations=1)
    rows = [
        [name] + [f"{data[name][s]:.1f}" for s in SOURCE_STRATEGIES]
        for name in data
    ]
    print_table(
        f"Processor placement: avg latency (cycles) by attachment "
        f"strategy (N={NUM_NODES}, {SOCKETS} sockets @ {RATE:.0%})",
        ["design", *SOURCE_STRATEGIES],
        rows,
    )
    record_result("processor_placement", data)

    sf = data["SF"]
    # Location obliviousness: every 4-socket attachment within ~15% of
    # each other on SF.
    four_socket = [sf["corner"], sf["subset"], sf["random"]]
    assert max(four_socket) <= 1.15 * min(four_socket)
    # The mesh punishes corner placement relative to a spread subset.
    dm = data["DM"]
    assert dm["corner"] >= 0.95 * dm["subset"]
    # SF serves concentrated injection at least as well as the mesh.
    assert sf["corner"] <= dm["corner"] * 1.05
