"""Routing-state scaling (paper §III-B overhead claim).

Regenerates the storage-overhead argument that motivates the hybrid
compute+table design: per-router routing state for k-shortest-path
forwarding grows superlinearly in N (Jellyfish's drawback in a memory
network), destination-indexed minimal tables grow linearly, while
String Figure's p(p+1)-entry table is constant — a few hundred bytes
regardless of scale.
"""

from __future__ import annotations

from conftest import print_table, scale

from repro.analysis.routing_state import state_scaling_table

SIZES = scale([64, 128, 256, 512], [64, 128, 256, 512, 1024, 1296])


def test_routing_state_scaling(benchmark, record_result):
    table = benchmark.pedantic(
        state_scaling_table, args=(SIZES,), rounds=1, iterations=1
    )
    rows = [
        [n, f"{table['sf'][n]:.2f}", f"{table['minimal'][n]:.2f}",
         f"{table['ksp'][n]:.2f}"]
        for n in SIZES
    ]
    print_table(
        "Routing state per router (KB) vs network size (p=8, k=4)",
        ["N", "SF p(p+1) table", "minimal table", "k-shortest paths"],
        rows,
    )
    record_result(
        "routing_state",
        {s: {str(n): v for n, v in row.items()} for s, row in table.items()},
    )

    smallest, largest = SIZES[0], SIZES[-1]
    # SF state is constant in N (only the node-id width creeps up).
    assert table["sf"][largest] <= table["sf"][smallest] * 1.5
    # Table-based schemes grow at least linearly.
    growth = largest / smallest
    assert table["minimal"][largest] >= table["minimal"][smallest] * growth * 0.8
    assert table["ksp"][largest] >= table["ksp"][smallest] * growth * 0.8
    # The gap between k-shortest-path state and SF's table widens with
    # scale (constant versus O(N log N) per router).
    ratio_small = table["ksp"][smallest] / table["sf"][smallest]
    ratio_large = table["ksp"][largest] / table["sf"][largest]
    assert ratio_large > 4 * ratio_small
    assert table["ksp"][largest] > 4 * table["sf"][largest]
