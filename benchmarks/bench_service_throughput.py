"""Service-mode throughput: requests/sec and per-tenant p99 vs clients.

Boots the resident fabric daemon in-process (real asyncio sockets, the
exact ``repro serve`` stack) and drives it with increasing numbers of
concurrent closed-loop clients, recording for each point:

* wall-clock requests/sec sustained through the socket frontier;
* simulated-cycle latency (worst per-tenant p50/p99 — what a client
  observes end-to-end, queueing included);
* admission-control engagement (queued/shed counts) and the
  conservation verdict at drain.

Results append as one labeled run to
``benchmarks/results/service_throughput.json`` (or the ``_quick``
variant), mirroring the sim-throughput trajectory convention.

Usage::

    python benchmarks/bench_service_throughput.py            # full grid
    python benchmarks/bench_service_throughput.py --quick    # CI smoke

Scale also follows ``REPRO_BENCH_SCALE=quick|full`` when set.
Wall-clock fields are noisy by nature; the simulated-cycle fields are
deterministic per (seed, schedule) and double as a correctness check.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

RESULTS_DIR = Path(__file__).parent / "results"
DEFAULT_OUT = RESULTS_DIR / "service_throughput.json"
QUICK_OUT = RESULTS_DIR / "service_throughput_quick.json"

FULL_CLIENTS = (4, 8, 16, 32, 64)
QUICK_CLIENTS = (4, 16)

CONFIG = {
    "nodes": 144,
    "design": "SF",
    "requests_per_client": 32,
    "window": 4,
    "footprint_pages": 256,
    "quantum": 64,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help=f"small client counts only {QUICK_CLIENTS} (CI smoke)",
    )
    parser.add_argument(
        "--clients", default=None,
        help="comma-separated client counts (overrides the grid)",
    )
    parser.add_argument("--nodes", type=int, default=CONFIG["nodes"])
    parser.add_argument(
        "--requests", type=int, default=CONFIG["requests_per_client"],
        help="requests per client (closed loop)",
    )
    parser.add_argument("--label", default=None,
                        help="run label in the trajectory (default: scale)")
    parser.add_argument("--out", default=None, metavar="FILE")
    return parser


async def _measure_point(nodes: int, clients: int, requests: int) -> dict:
    from repro.service.core import FabricService
    from repro.service.daemon import FabricDaemon
    from repro.service.selftest import _client

    service = FabricService(
        nodes=nodes,
        footprint_pages=CONFIG["footprint_pages"],
        max_outstanding=max(8, clients * CONFIG["window"] // 6),
        node_watermark=4,
        queue_depth=clients * CONFIG["window"],
    )
    daemon = FabricDaemon(service, quantum=CONFIG["quantum"])
    host, port = await daemon.start()
    responses: list[dict] = []
    t0 = time.perf_counter()
    await asyncio.gather(*[
        _client(host, port, i, requests, CONFIG["window"],
                CONFIG["footprint_pages"], responses)
        for i in range(clients)
    ])
    wall_s = time.perf_counter() - t0
    drain_report = service.drain()
    await daemon.stop()
    snapshot = service.snapshot()
    # Worst per-tenant percentiles come from the drain report's
    # ``latency`` block (FabricService.latency_summary) — the single
    # sketch-backed path shared with the daemon and the report tables.
    latency = drain_report["latency"]
    total = len(responses)
    return {
        "clients": clients,
        "requests": total,
        "wall_s": round(wall_s, 4),
        "requests_per_sec": round(total / wall_s, 1) if wall_s else 0.0,
        "sim_cycles": snapshot["now"],
        "p50_max": latency["p50_max"],
        "p99_max": latency["p99_max"],
        "queued": snapshot["queued_total"],
        "shed": snapshot["shed"],
        "conserved": bool(drain_report["all_conserved"]),
    }


def measure(nodes: int, client_grid, requests: int) -> list[dict]:
    points = []
    header = (
        f"{'clients':>7}  {'req/s':>9}  {'p50_max':>8}  {'p99_max':>8}  "
        f"{'queued':>6}  {'shed':>5}  {'conserved':>9}"
    )
    print(header)
    for clients in client_grid:
        point = asyncio.run(_measure_point(nodes, clients, requests))
        points.append(point)
        print(
            f"{point['clients']:>7}  {point['requests_per_sec']:>9}  "
            f"{point['p50_max']:>8.1f}  {point['p99_max']:>8.1f}  "
            f"{point['queued']:>6}  {point['shed']:>5}  "
            f"{str(point['conserved']):>9}"
        )
    return points


def load_trajectory(path: Path) -> dict:
    if not path.exists():
        return {"config": CONFIG, "runs": []}
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise SystemExit(
            f"{path} exists but is not valid JSON ({exc}); refusing to "
            "overwrite the recorded trajectory — fix or delete it first"
        )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    quick = args.quick or (
        os.environ.get("REPRO_BENCH_SCALE", "").lower() == "quick"
    )
    if args.clients:
        grid = tuple(int(c) for c in args.clients.split(","))
    else:
        grid = QUICK_CLIENTS if quick else FULL_CLIENTS
    out = Path(args.out) if args.out else (QUICK_OUT if quick else DEFAULT_OUT)

    from repro.obs.canary import run_canary

    canary = run_canary()
    print(f"canary: {canary['kops']:,.0f} kops/s (machine-speed baseline)\n")
    points = measure(args.nodes, grid, args.requests)
    if not all(p["conserved"] for p in points):
        print("FAIL: conservation violated at drain", file=sys.stderr)
        return 1
    trajectory = load_trajectory(out)
    trajectory["runs"].append({
        "label": args.label or ("quick" if quick else "full"),
        "nodes": args.nodes,
        "requests_per_client": args.requests,
        "canary_kops": round(canary["kops"], 1),
        "points": points,
    })
    RESULTS_DIR.mkdir(exist_ok=True)
    out.write_text(json.dumps(trajectory, indent=2) + "\n")
    print(f"trajectory: {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
