"""Figure 12(a) — real-workload throughput, normalized to DM.

Trace-driven runs of the eight Table IV workloads on DM, ODM, AFB,
S2-ideal and SF with four CPU sockets.  Paper findings reproduced:

* SF achieves close to the best throughput across the workloads
  (the paper reports 1.3x over ODM on average);
* S2-ideal and SF are nearly indistinguishable;
* the mesh designs trail everywhere except the compute-bound matmul,
  whose sparse memory traffic flattens all networks together.
"""

from __future__ import annotations

from conftest import print_table


def test_figure12a_throughput(benchmark, record_result, workload_results):
    def collect():
        data = {}
        for workload in workload_results["workloads"]:
            runs = workload_results["results"][workload]
            base = runs["DM"]["throughput_ops_per_kcycle"]
            data[workload] = {
                name: runs[name]["throughput_ops_per_kcycle"] / base
                for name in workload_results["topologies"]
            }
        return data

    data = benchmark.pedantic(collect, rounds=1, iterations=1)
    topologies = workload_results["topologies"]
    rows = [
        [w] + [f"{data[w][t]:.2f}" for t in topologies]
        for w in workload_results["workloads"]
    ]
    geomean = {}
    n = len(workload_results["workloads"])
    for t in topologies:
        product = 1.0
        for w in workload_results["workloads"]:
            product *= data[w][t]
        geomean[t] = product ** (1 / n)
    rows.append(["geomean"] + [f"{geomean[t]:.2f}" for t in topologies])
    print_table(
        f"Figure 12a: workload throughput normalized to DM "
        f"(N={workload_results['num_nodes']}, higher is better)",
        ["workload", *topologies],
        rows,
    )
    record_result("fig12a_throughput", data)

    # SF beats the mesh baselines by a healthy factor on average
    # (paper: 1.3x over ODM).
    assert geomean["SF"] >= 1.2 * geomean["ODM"] / max(geomean["ODM"], 1.0)
    assert geomean["SF"] > 1.2
    # SF within a few percent of S2-ideal.
    assert abs(geomean["SF"] - geomean["S2"]) / geomean["S2"] < 0.10
    # SF close to the best design overall (paper: "close to the best").
    best = max(geomean.values())
    assert geomean["SF"] >= 0.80 * best
    benchmark.extra_info["geomean"] = geomean
