"""Bisection bandwidth methodology (paper §V, "Bisection bandwidth").

Reproduces the paper's fairness procedure: empirical minimum bisection
via max-flow over random balanced bipartitions (50 per topology in
full mode), averaged over independently generated random topologies,
and the derived ODM channel factor that bandwidth-matches the mesh to
String Figure.
"""

from __future__ import annotations

from conftest import print_table, scale

from repro.analysis.bisection import empirical_bisection, matched_channels
from repro.topologies.registry import make_topology

NUM_NODES = scale(64, 144)
PARTITIONS = scale(12, 50)
TOPOLOGY_SAMPLES = scale(3, 20)
DESIGNS = ("DM", "FB", "AFB", "S2", "SF", "Jellyfish")


def reproduce_bisection() -> dict[str, float]:
    values: dict[str, float] = {}
    for name in DESIGNS:
        total = 0.0
        for sample in range(TOPOLOGY_SAMPLES):
            topo = make_topology(name, NUM_NODES, seed=50 + sample)
            total += empirical_bisection(
                topo.graph(), partitions=PARTITIONS, seed=sample
            )
        values[name] = total / TOPOLOGY_SAMPLES
    return values


def test_bisection_bandwidth(benchmark, record_result):
    values = benchmark.pedantic(reproduce_bisection, rounds=1, iterations=1)
    sf = make_topology("SF", NUM_NODES, seed=50)
    dm = make_topology("DM", NUM_NODES, seed=50)
    channels = matched_channels(
        sf.graph(), dm.graph(), partitions=PARTITIONS, seed=0
    )
    rows = [[name, f"{values[name]:.1f}"] for name in DESIGNS]
    rows.append(["ODM channel factor", str(channels)])
    print_table(
        f"Empirical bisection bandwidth at N={NUM_NODES} "
        f"({PARTITIONS} partitions x {TOPOLOGY_SAMPLES} topologies)",
        ["design", "min max-flow"],
        rows,
    )
    record_result(
        "bisection", {"values": values, "odm_channels": channels}
    )

    # FB is the bandwidth king (it simply has many more links).
    assert values["FB"] == max(values.values())
    # SF and S2 are equivalent graphs at full scale.
    assert abs(values["SF"] - values["S2"]) / values["S2"] < 0.10
    # The mesh needs widening to match SF — the whole reason ODM exists.
    assert values["DM"] < values["SF"]
    assert channels >= 2
    # Random-graph designs land in the same bandwidth class.
    assert abs(values["SF"] - values["Jellyfish"]) / values["Jellyfish"] < 0.35
