"""Migration cost — what moving the data really adds to elasticity.

PR 2 measured online reconfiguration with data that teleports: the
address map rebalances instantly and no byte crosses the network.  This
bench prices the missing half of the paper's elasticity story: the
victims' pages must physically move before a gate-off (and move back
after the wake), as rate-limited background traffic competing with the
foreground load for links, credits, and DRAM banks.

Reproduced/verified claims:

* **Scaling down moves real bytes** — every migrated run moves exactly
  the gated nodes' share of the footprint (out and back in), while the
  teleport baseline moves zero.
* **Nothing is lost while data moves** — three conservation invariants
  hold across every rate limit, page size, and mode: packet
  (``sent == delivered``), foreground request
  (``issued == completed``), and page (every page resident on exactly
  one node or in flight).
* **The rate limit trades makespan against disturbance** — a tighter
  migration budget stretches the makespan; a generous one finishes
  quickly but stalls/forwards more foreground requests into the moving
  pages.
* **The teleport baseline undercounts disturbance** — migrated runs
  report the stalls, forwards and foreground-latency impact that the
  instant remap never sees.

The whole figure is one family of declarative ``migration`` sweeps
(rate limits x page sizes, plus the teleport baseline) run through the
parallel experiment engine with caching.
"""

from __future__ import annotations

from conftest import print_table, scale

from repro.experiments import ExperimentSpec

NODES = scale(32, 64)
MEASURE = scale(3000, 8000)
WARMUP = 200
RATE = 0.08
FOOTPRINT = scale(96, 256)
RATE_LIMITS = (16.0, 64.0)
PAGE_SIZES = scale((4096,), (2048, 4096))

BASE = ExperimentSpec(
    name="migration-cost",
    kind="migration",
    designs=("SF",),
    nodes=(NODES,),
    patterns=("uniform_random",),
    rates=(RATE,),
    seeds=(0,),
    topology_seed=3,
    sim_params={
        "warmup": WARMUP,
        "measure": MEASURE,
        "drain_limit": scale(60_000, 120_000),
        "gate_fraction": 0.25,
        "footprint_pages": FOOTPRINT,
    },
)

MIGRATE_SPECS = {
    (rate_limit, page_bytes): BASE.with_overrides(
        name=f"migration-cost-rl{rate_limit:g}-pb{page_bytes}",
        sim_params={
            "mode": "migrate",
            "rate_limit": rate_limit,
            "page_bytes": page_bytes,
        },
    )
    for rate_limit in RATE_LIMITS
    for page_bytes in PAGE_SIZES
}

TELEPORT_SPECS = {
    page_bytes: BASE.with_overrides(
        name=f"migration-teleport-pb{page_bytes}",
        sim_params={"mode": "teleport", "page_bytes": page_bytes},
    )
    for page_bytes in PAGE_SIZES
}


def _conserved(payload: dict) -> bool:
    return (
        payload["sent"] == payload["delivered"]
        and payload["fg_issued"] == payload["fg_completed"]
        and payload["page_conservation"]
    )


def test_migration_cost(benchmark, record_result, experiment_runner):
    def reproduce():
        data: dict[str, dict] = {"migrate": {}, "teleport": {}}
        for (rate_limit, page_bytes), spec in MIGRATE_SPECS.items():
            sweep = experiment_runner.run(spec)
            print(f"\n[engine] {spec.name}: {sweep.summary()}")
            for _task, payload in sweep:
                data["migrate"][f"rl={rate_limit:g} pb={page_bytes}"] = payload
        for page_bytes, spec in TELEPORT_SPECS.items():
            sweep = experiment_runner.run(spec)
            print(f"[engine] {spec.name}: {sweep.summary()}")
            for _task, payload in sweep:
                data["teleport"][f"pb={page_bytes}"] = payload
        return data

    data = benchmark.pedantic(reproduce, rounds=1, iterations=1)

    rows = []
    for mode, group in data.items():
        for label, p in group.items():
            rows.append(
                [
                    mode,
                    label,
                    p["pages_moved"],
                    f"{p['bytes_moved'] / 1024:.0f}",
                    p["migration_makespan"],
                    p["fg_stalled"],
                    p["fg_forwarded"],
                    f"{p['fg_p99_overall']:.0f}",
                    f"{p['fg_slowdown_p99']:.2f}",
                    "yes" if _conserved(p) else "NO",
                ]
            )
    print_table(
        "Migration cost — bytes, makespan, foreground disturbance",
        [
            "mode",
            "scenario",
            "pages",
            "KiB",
            "makespan",
            "stalled",
            "fwd",
            "fg_p99",
            "slow_p99",
            "conserved",
        ],
        rows,
    )
    record_result("migration_cost", data)

    # Conservation: packets, foreground requests, and pages, everywhere.
    for group in data.values():
        for label, payload in group.items():
            assert _conserved(payload), label
            assert payload["migrations_done"], label

    # Real data moved: the gated quarter's share, out and back in.
    for label, payload in data["migrate"].items():
        expected_pages = 2 * (FOOTPRINT // 4)
        assert payload["pages_moved"] == expected_pages, label
        assert payload["bytes_moved"] == (
            payload["pages_moved"] * payload["page_bytes"]
        ), label
        assert payload["migration_makespan"] > 0, label

    # The teleport baseline is free — and blind to migration stalls.
    for label, payload in data["teleport"].items():
        assert payload["bytes_moved"] == 0, label
        assert payload["migration_makespan"] == 0, label
        assert payload["fg_stalled"] == 0, label

    # Rate limit trades makespan for foreground pressure.
    for page_bytes in PAGE_SIZES:
        slow = data["migrate"][f"rl={RATE_LIMITS[0]:g} pb={page_bytes}"]
        fast = data["migrate"][f"rl={RATE_LIMITS[-1]:g} pb={page_bytes}"]
        assert slow["migration_makespan"] > fast["migration_makespan"]

    # Migrated elasticity reports disturbance the teleport never sees.
    for page_bytes in PAGE_SIZES:
        fast = data["migrate"][f"rl={RATE_LIMITS[-1]:g} pb={page_bytes}"]
        assert fast["fg_stalled"] + fast["fg_forwarded"] > 0
