"""Figure 10 — network saturation injection rate versus scale.

Paper findings reproduced:

* the mesh designs (DM, then ODM) saturate first, and their saturation
  point collapses as the network grows;
* at the very smallest scale ODM can edge out SF (the paper calls this
  out explicitly), but SF scales far better;
* SF stays close to the best of the other architectures across
  uniform random, hotspot and tornado traffic;
* hotspot traffic saturates everyone early (a single destination's
  ports bound throughput) — mesh tolerates it comparatively well.

The whole figure is one declarative ``saturation`` sweep: pattern x
design x scale grid points run (in parallel, cached) through the
experiment engine; node counts a design cannot realize come back as
unsupported points and print as ``-``.
"""

from __future__ import annotations

from conftest import print_table, scale

from repro.experiments import ExperimentSpec

SIZES = scale([16, 36, 64], [16, 36, 64, 128, 256])
DESIGNS = ("DM", "ODM", "S2", "SF")
PATTERNS = ("uniform_random", "tornado", "hotspot")

SPEC = ExperimentSpec(
    name="fig10-saturation",
    kind="saturation",
    designs=DESIGNS,
    nodes=SIZES,
    patterns=PATTERNS,
    seeds=(2,),
    topology_seed=4,
    sim_params={
        "warmup": scale(120, 200),
        "measure": scale(300, 500),
        "drain_limit": scale(8000, 20000),
        "resolution": scale(0.1, 0.05),
    },
)


def test_figure10_saturation(benchmark, record_result, experiment_runner):
    def reproduce():
        sweep = experiment_runner.run(SPEC)
        print(f"\n[engine] fig10: {sweep.summary()}")
        return {
            pattern: {
                name: {
                    n: sweep.value(
                        "saturation_rate",
                        design=name, nodes=n, pattern=pattern,
                    )
                    for n in SIZES
                }
                for name in DESIGNS
            }
            for pattern in PATTERNS
        }

    data = benchmark.pedantic(reproduce, rounds=1, iterations=1)
    for pattern in PATTERNS:
        rows = []
        for n in SIZES:
            row = [n]
            for name in DESIGNS:
                value = data[pattern][name][n]
                row.append("-" if value is None else f"{value:.2f}")
            rows.append(row)
        print_table(
            f"Figure 10 ({pattern}): saturation injection rate vs N",
            ["N", *DESIGNS],
            rows,
        )
    record_result("fig10_saturation", data)

    uniform = data["uniform_random"]
    largest = SIZES[-1]
    # Mesh saturates first at scale under uniform random traffic.
    assert uniform["SF"][largest] >= uniform["DM"][largest]
    # SF's saturation point degrades more slowly than the mesh's.
    dm_drop = uniform["DM"][16] - uniform["DM"][largest]
    sf_drop = uniform["SF"][16] - uniform["SF"][largest]
    assert sf_drop <= dm_drop + 0.10
    # SF tracks S2-ideal across patterns and scales.
    for pattern in PATTERNS:
        for n in SIZES:
            sf = data[pattern]["SF"][n]
            s2 = data[pattern]["S2"][n]
            assert abs(sf - s2) <= 0.25, (pattern, n, sf, s2)
    # Hotspot saturates dramatically earlier than uniform random.
    for name in DESIGNS:
        assert (
            data["hotspot"][name][largest]
            <= data["uniform_random"][name][largest]
        )
    benchmark.extra_info["uniform_at_largest"] = {
        name: uniform[name][largest] for name in DESIGNS
    }
