"""Figure 11 — average packet latency versus injection rate.

Latency-versus-offered-load curves per traffic pattern at a sub-
thousand-node scale, for ODM, AFB, S2-ideal and SF.  Reproduced
findings:

* every curve is flat near zero load and turns upward approaching
  saturation;
* S2/SF show almost no degradation until far higher injection rates
  than the mesh;
* on *nearest neighbor* traffic the mesh wins — its id-neighbors are
  physically one hop apart, SF's are not (the paper highlights this
  exception);
* SF tracks S2-ideal closely everywhere.

The figure is one declarative ``synthetic`` sweep (design x pattern x
rate grid) through the experiment engine; each topology is built once
per worker process rather than once per pattern.
"""

from __future__ import annotations

from conftest import print_table, scale

from repro.experiments import ExperimentSpec

NUM_NODES = scale(64, 256)
DESIGNS = ("ODM", "AFB", "S2", "SF")
PATTERNS = ("uniform_random", "tornado", "neighbor", "complement")
RATES = scale(
    (0.05, 0.15, 0.30, 0.45, 0.60),
    (0.05, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70),
)
SATURATED = float("inf")

SPEC = ExperimentSpec(
    name="fig11-latency",
    kind="synthetic",
    designs=DESIGNS,
    nodes=(NUM_NODES,),
    patterns=PATTERNS,
    rates=RATES,
    seeds=(6,),
    topology_seed=4,
    sim_params={
        "warmup": scale(150, 250),
        "measure": scale(400, 700),
        "drain_limit": scale(8000, 20000),
    },
)


def _curve_point(payload) -> float | None:
    if payload.get("unsupported"):
        return None
    if payload["accepted_rate"] < 0.95 or payload["measured_delivered"] == 0:
        return SATURATED
    return payload["avg_latency"]


def reproduce_figure11(sweep) -> dict[str, dict[str, dict[float, float]]]:
    return {
        pattern: {
            name: {
                rate: _curve_point(
                    sweep.get(design=name, pattern=pattern, rate=rate)
                )
                for rate in RATES
            }
            for name in DESIGNS
        }
        for pattern in PATTERNS
    }


def _fmt(value: float | None) -> str:
    if value is None:
        return "-"
    return "sat" if value == SATURATED else f"{value:.1f}"


def test_figure11_latency(benchmark, record_result, experiment_runner):
    def reproduce():
        sweep = experiment_runner.run(SPEC)
        print(f"\n[engine] fig11: {sweep.summary()}")
        return reproduce_figure11(sweep)

    data = benchmark.pedantic(reproduce, rounds=1, iterations=1)
    for pattern in PATTERNS:
        rows = [
            [f"{rate:.2f}"]
            + [_fmt(data[pattern][name][rate]) for name in DESIGNS]
            for rate in RATES
        ]
        print_table(
            f"Figure 11 ({pattern}, N={NUM_NODES}): avg latency (cycles) "
            "vs injection rate",
            ["rate", *DESIGNS],
            rows,
        )
    record_result(
        "fig11_latency",
        {
            p: {d: {str(r): v for r, v in c.items()} for d, c in row.items()}
            for p, row in data.items()
        },
    )

    low = RATES[0]
    for pattern in PATTERNS:
        for name in DESIGNS:
            curve = data[pattern][name]
            # Every design must be realizable at this figure's scale.
            assert curve[low] is not None, (pattern, name, "unsupported")
            # Zero-load region exists and is finite.
            assert curve[low] != SATURATED, (pattern, name)
            # Latency never *improves* materially with offered load;
            # designs that never congest (mesh under neighbor traffic)
            # may stay flat within noise.
            finite = [curve[r] for r in RATES if curve[r] != SATURATED]
            assert finite[-1] >= finite[0] - 2.0
    uniform = data["uniform_random"]
    # SF sustains higher load than the mesh before saturating.
    sf_sat = sum(1 for r in RATES if uniform["SF"][r] != SATURATED)
    odm_sat = sum(1 for r in RATES if uniform["ODM"][r] != SATURATED)
    assert sf_sat >= odm_sat
    # The paper's nearest-neighbor exception: mesh beats SF there.
    neighbor = data["neighbor"]
    assert neighbor["ODM"][low] <= neighbor["SF"][low]
    # SF tracks S2-ideal at low load.
    for pattern in PATTERNS:
        sf = data[pattern]["SF"][low]
        s2 = data[pattern]["S2"][low]
        assert abs(sf - s2) / s2 < 0.25, (pattern, sf, s2)
