"""Figure 11 — average packet latency versus injection rate.

Latency-versus-offered-load curves per traffic pattern at a sub-
thousand-node scale, for ODM, AFB, S2-ideal and SF.  Reproduced
findings:

* every curve is flat near zero load and turns upward approaching
  saturation;
* S2/SF show almost no degradation until far higher injection rates
  than the mesh;
* on *nearest neighbor* traffic the mesh wins — its id-neighbors are
  physically one hop apart, SF's are not (the paper highlights this
  exception);
* SF tracks S2-ideal closely everywhere.
"""

from __future__ import annotations

from conftest import print_table, scale

from repro.topologies.registry import make_policy, make_topology
from repro.traffic.injection import run_synthetic
from repro.traffic.patterns import make_pattern

NUM_NODES = scale(64, 256)
DESIGNS = ("ODM", "AFB", "S2", "SF")
PATTERNS = ("uniform_random", "tornado", "neighbor", "complement")
RATES = scale(
    (0.05, 0.15, 0.30, 0.45, 0.60),
    (0.05, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70),
)
SATURATED = float("inf")


def latency_curve(name: str, pattern_name: str) -> dict[float, float]:
    topo = make_topology(name, NUM_NODES, seed=4)
    policy = make_policy(topo)
    pattern = make_pattern(pattern_name, topo.active_nodes)
    curve: dict[float, float] = {}
    for rate in RATES:
        stats = run_synthetic(
            topo,
            policy,
            pattern,
            rate,
            warmup=scale(150, 250),
            measure=scale(400, 700),
            drain_limit=scale(8000, 20000),
            seed=6,
        )
        if stats.accepted_rate < 0.95 or stats.measured_delivered == 0:
            curve[rate] = SATURATED
        else:
            curve[rate] = stats.avg_latency
    return curve


def reproduce_figure11() -> dict[str, dict[str, dict[float, float]]]:
    return {
        pattern: {name: latency_curve(name, pattern) for name in DESIGNS}
        for pattern in PATTERNS
    }


def _fmt(value: float) -> str:
    return "sat" if value == SATURATED else f"{value:.1f}"


def test_figure11_latency(benchmark, record_result):
    data = benchmark.pedantic(reproduce_figure11, rounds=1, iterations=1)
    for pattern in PATTERNS:
        rows = [
            [f"{rate:.2f}"]
            + [_fmt(data[pattern][name][rate]) for name in DESIGNS]
            for rate in RATES
        ]
        print_table(
            f"Figure 11 ({pattern}, N={NUM_NODES}): avg latency (cycles) "
            "vs injection rate",
            ["rate", *DESIGNS],
            rows,
        )
    record_result(
        "fig11_latency",
        {
            p: {d: {str(r): v for r, v in c.items()} for d, c in row.items()}
            for p, row in data.items()
        },
    )

    low = RATES[0]
    for pattern in PATTERNS:
        for name in DESIGNS:
            curve = data[pattern][name]
            # Zero-load region exists and is finite.
            assert curve[low] != SATURATED, (pattern, name)
            # Latency never *improves* materially with offered load;
            # designs that never congest (mesh under neighbor traffic)
            # may stay flat within noise.
            finite = [curve[r] for r in RATES if curve[r] != SATURATED]
            assert finite[-1] >= finite[0] - 2.0
    uniform = data["uniform_random"]
    # SF sustains higher load than the mesh before saturating.
    sf_sat = sum(1 for r in RATES if uniform["SF"][r] != SATURATED)
    odm_sat = sum(1 for r in RATES if uniform["ODM"][r] != SATURATED)
    assert sf_sat >= odm_sat
    # The paper's nearest-neighbor exception: mesh beats SF there.
    neighbor = data["neighbor"]
    assert neighbor["ODM"][low] <= neighbor["SF"][low]
    # SF tracks S2-ideal at low load.
    for pattern in PATTERNS:
        sf = data[pattern]["SF"][low]
        s2 = data[pattern]["S2"][low]
        assert abs(sf - s2) / s2 < 0.25, (pattern, sf, s2)
