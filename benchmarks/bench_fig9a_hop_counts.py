"""Figure 9(a) — average hop count of each design as N grows.

Paper findings reproduced:

* DM/ODM hop count grows like the grid dimensions (2/3 * sqrt(N)) and
  dominates everything past ~128 nodes;
* FB stays the shortest (it pays with high-radix routers);
* S2-ideal, AFB and String Figure stay flat-ish in the 3-5 hop range;
* SF achieves ~4.75 / ~4.96 average protocol hops at 1024 / 1296 with
  8-port routers, and 4 / 5 hops at the 10th / 90th percentile
  (§VI "Path lengths") — checked in full mode.
"""

from __future__ import annotations

from conftest import print_table, scale

from repro.analysis.paths import greedy_path_stats, shortest_path_stats
from repro.core.routing import GreediestRouting
from repro.topologies.registry import make_topology

SIZES = scale([16, 64, 128, 256], [16, 64, 128, 256, 512, 1024, 1296])
DESIGNS = ("DM", "ODM", "FB", "AFB", "S2", "SF")


def hop_count(name: str, n: int) -> float | None:
    """Average hops the design's routing protocol achieves at scale n."""
    try:
        topo = make_topology(name, n, seed=5)
    except ValueError:
        return None  # unsupported scale (Figure 8's "N" entries)
    if name in ("S2", "SF"):
        routing = GreediestRouting(topo)
        return greedy_path_stats(
            routing, sample_pairs=scale(1200, 3000), seed=1
        ).mean
    # Baselines route minimally: protocol hops equal graph distance.
    return shortest_path_stats(
        topo.graph(), sample_sources=scale(48, 96), seed=1
    ).mean


def reproduce_figure9a() -> dict[str, dict[int, float | None]]:
    return {
        name: {n: hop_count(name, n) for n in SIZES} for name in DESIGNS
    }


def sf_percentiles(n: int) -> tuple[float, float, float]:
    topo = make_topology("SF", n, seed=5)
    routing = GreediestRouting(topo)
    stats = greedy_path_stats(routing, sample_pairs=scale(1500, 4000), seed=2)
    return stats.mean, stats.p10, stats.p90


def test_figure9a_hop_counts(benchmark, record_result):
    data = benchmark.pedantic(reproduce_figure9a, rounds=1, iterations=1)
    rows = []
    for n in SIZES:
        row = [n]
        for name in DESIGNS:
            value = data[name][n]
            row.append("-" if value is None else f"{value:.2f}")
        rows.append(row)
    print_table(
        "Figure 9a: average hop count vs number of memory nodes",
        ["N", *DESIGNS],
        rows,
    )
    record_result("fig9a_hop_counts", data)

    largest = SIZES[-1]
    # Mesh grows superlinearly with scale; SF stays flat.
    assert data["DM"][largest] > 2 * data["SF"][largest] * 0.8
    growth_dm = data["DM"][largest] / data["DM"][16]
    growth_sf = data["SF"][largest] / data["SF"][16]
    assert growth_dm > 2 * growth_sf
    # FB has the best path lengths wherever it exists (high radix).
    for n in SIZES:
        if data["FB"][n] is not None:
            others = [
                data[name][n]
                for name in DESIGNS
                if name != "FB" and data[name][n] is not None
            ]
            assert data["FB"][n] <= min(others) + 0.05
    # SF tracks S2-ideal within a small margin (shortcut wiring is
    # dormant at full scale, so the base graphs match).
    for n in SIZES:
        assert abs(data["SF"][n] - data["S2"][n]) < 0.5

    mean, p10, p90 = sf_percentiles(largest)
    print(f"\nSF @ N={largest}: mean={mean:.2f} p10={p10:.0f} p90={p90:.0f} "
          "(paper @1296: 4.96, 4, 5)")
    benchmark.extra_info["sf_mean_hops"] = mean
    if largest >= 1024:
        # Paper: 4.75 @ 1024 and 4.96 @ 1296 average, 4/5 hops at
        # 10%/90% percentile — allow our protocol a modest margin.
        assert mean < 6.0
        assert p90 <= 8
