"""Churn elasticity — reconfiguration cost under live traffic.

The paper's §III-C claims dynamic reconfiguration runs *while packets
keep flowing*; Figure 9(b) prices the resulting EDP.  This bench
measures the other half of that story: what one online gate-off/wake
cycle costs the traffic that is flowing through it.

Reproduced/verified claims:

* **No packet is ever lost to a reconfiguration** — every run checks
  the conservation invariant (``sent == delivered`` after drain) across
  every gate fraction, schedule and injection rate.
* **Disturbance scales with gate fraction** — gating more of the
  network produces at least as large a latency peak around the event.
* **The network recovers** — below saturation, windowed mean latency
  returns to within tolerance of its pre-event baseline, and the bench
  reports the per-event recovery time.
* The utilization-driven controller gates nodes on an underutilized
  network without breaking conservation.

The whole figure is one declarative ``churn`` sweep (gate fractions x
rates as separate spec variants) run through the parallel experiment
engine with caching, plus one closed-loop controller scenario.
"""

from __future__ import annotations

from conftest import print_table, scale

from repro.experiments import ExperimentSpec

NODES = scale(64, 96)
MEASURE = scale(4000, 8000)
WARMUP = 300
RATES = (0.1, 0.15)
FRACTIONS = (0.125, 0.25)

BASE = ExperimentSpec(
    name="churn-elasticity",
    kind="churn",
    designs=("SF",),
    nodes=(NODES,),
    patterns=("uniform_random",),
    rates=RATES,
    seeds=(0,),
    topology_seed=3,
    sim_params={
        "warmup": WARMUP,
        "measure": MEASURE,
        "drain_limit": scale(60_000, 120_000),
        "schedule": "cycle",
    },
)

SPECS = [
    BASE.with_overrides(
        name=f"churn-elasticity-f{fraction:g}",
        sim_params={"gate_fraction": fraction},
    )
    for fraction in FRACTIONS
]

CONTROLLER_SPEC = BASE.with_overrides(
    name="churn-utilization",
    rates=(0.02,),  # light load: the controller should gate nodes
    sim_params={
        "schedule": "utilization",
        "low_util": 0.05,
        "high_util": 0.5,
        "gate_step": 4,
        "interval": 1000,
    },
)


def test_churn_elasticity(benchmark, record_result, experiment_runner):
    def reproduce():
        data: dict[str, dict] = {"scripted": {}, "utilization": {}}
        for fraction, spec in zip(FRACTIONS, SPECS):
            sweep = experiment_runner.run(spec)
            print(f"\n[engine] {spec.name}: {sweep.summary()}")
            for task, payload in sweep:
                data["scripted"][f"f={fraction:g} rate={task.rate:g}"] = payload
        sweep = experiment_runner.run(CONTROLLER_SPEC)
        print(f"[engine] {CONTROLLER_SPEC.name}: {sweep.summary()}")
        for task, payload in sweep:
            data["utilization"][f"rate={task.rate:g}"] = payload
        return data

    data = benchmark.pedantic(reproduce, rounds=1, iterations=1)

    rows = []
    for label, payload in data["scripted"].items():
        for event in payload["events"]:
            rows.append(
                [
                    label,
                    event["kind"],
                    event["num_nodes"],
                    event["drain_cycles"],
                    event["block_cycles"],
                    event["parked_packets"],
                    f"{event['peak_ratio']:.2f}",
                    event["recovery_cycles"] if event["recovered"] else "-",
                    "yes" if payload["sent"] == payload["delivered"] else "NO",
                ]
            )
    print_table(
        "Churn elasticity — per-event disturbance and recovery",
        [
            "scenario",
            "event",
            "nodes",
            "drain",
            "blocked",
            "parked",
            "peak_x",
            "recov_cyc",
            "conserved",
        ],
        rows,
    )
    record_result("churn_elasticity", data)

    # Conservation: no packet is ever dropped across any live event.
    for group in data.values():
        for label, payload in group.items():
            assert payload["sent"] == payload["delivered"], label
            assert payload["in_flight"] == 0, label
            assert payload["measured_delivered"] == payload["injected"], label

    # Every scripted scenario actually reconfigured (one gate-off +
    # one wake), dipped to the expected floor, and fully restored.
    for fraction in FRACTIONS:
        for rate in RATES:
            payload = data["scripted"][f"f={fraction:g} rate={rate:g}"]
            assert payload["num_events"] == 2
            expected_gated = int(NODES * fraction)
            assert payload["min_active_nodes"] <= NODES - expected_gated + 2
            assert payload["final_active_nodes"] == NODES
            assert payload["all_recovered"], (fraction, rate)

    # Disturbance grows (weakly) with the gated fraction.
    for rate in RATES:
        small = data["scripted"][f"f={FRACTIONS[0]:g} rate={rate:g}"]
        large = data["scripted"][f"f={FRACTIONS[-1]:g} rate={rate:g}"]
        assert large["max_peak_ratio"] >= 0.9 * small["max_peak_ratio"]
        assert large["max_peak_ratio"] > 1.0

    # The closed-loop controller downsized the underutilized network.
    for payload in data["utilization"].values():
        assert payload["num_events"] >= 1
        assert payload["min_active_nodes"] < NODES
        assert payload["controller_decisions"] > 0
