"""Figure 8 (configuration table) — evaluated topologies per scale.

Regenerates the paper's configuration matrix: for each network scale,
which topologies are constructible and with how many router ports.
Prime node counts (17, 61, 113) are exactly the scales where the grid
topologies show "N" (unsupported) in the paper while SF/S2/Jellyfish
build fine — the *arbitrary network scale* design goal.
"""

from __future__ import annotations

from conftest import print_table, scale

from repro.topologies.registry import figure8_ports, make_topology

SIZES = scale([16, 17, 61, 64, 113, 128, 256], [16, 17, 32, 61, 64, 113, 128, 256, 512, 1024, 1296])
DESIGNS = ("DM", "ODM", "FB", "AFB", "S2", "SF")


def reproduce_figure8() -> dict[str, dict[int, int | None]]:
    table: dict[str, dict[int, int | None]] = {name: {} for name in DESIGNS}
    for name in DESIGNS:
        for n in SIZES:
            try:
                topo = make_topology(name, n, seed=1)
            except ValueError:
                table[name][n] = None
                continue
            table[name][n] = (
                topo.num_ports if hasattr(topo, "num_ports") else topo.radix
            )
    return table


def test_figure8_configurations(benchmark, record_result):
    table = benchmark.pedantic(reproduce_figure8, rounds=1, iterations=1)
    rows = []
    for name in DESIGNS:
        row = [name]
        for n in SIZES:
            p = table[name][n]
            row.append("N" if p is None else str(p))
        rows.append(row)
    print_table(
        "Figure 8: router ports per design per scale ('N' = unsupported)",
        ["design", *map(str, SIZES)],
        rows,
    )
    record_result("fig8_configs", table)

    # Arbitrary scale: SF and S2 build at every size, including primes.
    for n in SIZES:
        assert table["SF"][n] is not None
        assert table["S2"][n] is not None
        assert table["SF"][n] == figure8_ports(n)
    # Grid topologies cannot build prime scales (paper's "N" entries).
    for n in (17, 61, 113):
        if n in SIZES:
            assert table["DM"][n] is None
            assert table["FB"][n] is None
    # FB's radix grows with scale; SF's stays on the 4/8 schedule.
    supported_fb = [p for p in table["FB"].values() if p is not None]
    assert max(supported_fb) > min(supported_fb)
    assert set(table["SF"].values()) <= {4, 8}
