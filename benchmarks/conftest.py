"""Shared infrastructure for the per-figure benchmark harness.

Each ``bench_*.py`` module regenerates one table or figure of the
paper's evaluation and prints the reproduced rows/series; shape
assertions guard the qualitative conclusions (who wins, by roughly what
factor).  Run with::

    pytest benchmarks/ --benchmark-only -s

Scale control: set ``REPRO_BENCH_SCALE=full`` for paper-scale sweeps
(up to 1296 nodes — slow); the default ``quick`` mode keeps every
experiment's structure but trims node counts and sample sizes so the
whole harness finishes in minutes.  Results are also dumped as JSON
under ``benchmarks/results/`` for EXPERIMENTS.md bookkeeping.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

FULL = os.environ.get("REPRO_BENCH_SCALE", "quick").lower() == "full"


def scale(quick, full):
    """Pick the quick or full variant of an experiment parameter."""
    return full if FULL else quick


@pytest.fixture(scope="session")
def record_result():
    """Persist a figure's reproduced data as JSON for EXPERIMENTS.md."""

    def _record(name: str, data) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.json"
        with open(path, "w") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)

    return _record


@pytest.fixture(scope="session")
def workload_results():
    """Shared trace-driven runs used by Figure 12(a) and 12(b).

    Returns ``{workload: {topology: WorkloadResult}}`` plus the node
    count and radix map, computed once per session.
    """
    from repro.topologies.registry import make_policy, make_topology
    from repro.workloads.runner import run_workload
    from repro.workloads.trace import collect_trace

    num_nodes = scale(64, 256)
    trace_size = scale(2000, 8000)
    workloads = (
        "wordcount",
        "grep",
        "sort",
        "pagerank",
        "redis",
        "memcached",
        "matmul",
        "kmeans",
    )
    topologies = ("DM", "ODM", "AFB", "S2", "SF")
    results: dict[str, dict[str, object]] = {}
    radix: dict[str, int] = {}
    for workload in workloads:
        trace = collect_trace(
            workload,
            max_memory_accesses=trace_size,
            scale=0.02,
            seed=7,
            max_cpu_accesses=300_000,
        )
        results[workload] = {}
        for name in topologies:
            topo = make_topology(name, num_nodes, seed=3)
            radix[name] = (
                topo.num_ports if hasattr(topo, "num_ports") else topo.radix
            )
            results[workload][name] = run_workload(
                topo, make_policy(topo), trace
            )
    return {
        "results": results,
        "radix": radix,
        "num_nodes": num_nodes,
        "topologies": topologies,
        "workloads": workloads,
    }


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Render one reproduced figure/table to stdout."""
    print(f"\n### {title}")
    widths = [
        max(len(str(header[i])), max((len(f"{r[i]}") for r in rows), default=0))
        for i in range(len(header))
    ]
    print("  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(f"{c}".rjust(w) for c, w in zip(row, widths)))
