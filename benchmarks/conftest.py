"""Shared infrastructure for the per-figure benchmark harness.

Each ``bench_*.py`` module regenerates one table or figure of the
paper's evaluation and prints the reproduced rows/series; shape
assertions guard the qualitative conclusions (who wins, by roughly what
factor).  Run with::

    pytest benchmarks/ --benchmark-only -s

Scale control: set ``REPRO_BENCH_SCALE=full`` for paper-scale sweeps
(up to 1296 nodes — slow); the default ``quick`` mode keeps every
experiment's structure but trims node counts and sample sizes so the
whole harness finishes in minutes.  Results are also dumped as JSON
under ``benchmarks/results/`` for EXPERIMENTS.md bookkeeping.

The figure sweeps run through the parallel experiment engine
(:mod:`repro.experiments`): set ``REPRO_BENCH_WORKERS=N`` to simulate
grid points across N processes (results are identical at any worker
count), and delete ``benchmarks/results/cache/`` to force
re-simulation — by default previously simulated grid points are served
from the on-disk result cache.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"
CACHE_DIR = RESULTS_DIR / "cache"

FULL = os.environ.get("REPRO_BENCH_SCALE", "quick").lower() == "full"


def scale(quick, full):
    """Pick the quick or full variant of an experiment parameter."""
    return full if FULL else quick


@pytest.fixture(scope="session")
def experiment_runner():
    """Session-wide parallel experiment runner with the on-disk cache.

    ``REPRO_BENCH_WORKERS`` selects the process count (default 1 =
    in-process; 0 = one per CPU).  Setting ``REPRO_BENCH_NO_CACHE=1``
    disables the result cache for a from-scratch run.
    """
    from repro.experiments import ParallelRunner, ResultCache

    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "1") or 1)
    cache = (
        None
        if os.environ.get("REPRO_BENCH_NO_CACHE")
        else ResultCache(CACHE_DIR)
    )
    return ParallelRunner(workers=workers, cache=cache)


@pytest.fixture(scope="session")
def record_result():
    """Persist a figure's reproduced data as JSON for EXPERIMENTS.md."""
    from repro.experiments.report import write_result_json

    def _record(name: str, data) -> None:
        write_result_json(RESULTS_DIR / f"{name}.json", data)

    return _record


@pytest.fixture(scope="session")
def workload_results(experiment_runner):
    """Shared trace-driven runs used by Figure 12(a) and 12(b).

    Declares one ``workload``-kind sweep over the Table IV workloads x
    evaluated topologies and runs it through the experiment engine
    (traces are collected once per worker process and reused across
    topologies).  Returns ``{workload: {topology: payload dict}}`` plus
    the node count and radix map.
    """
    from repro.experiments import ExperimentSpec

    num_nodes = scale(64, 256)
    trace_size = scale(2000, 8000)
    workloads = (
        "wordcount",
        "grep",
        "sort",
        "pagerank",
        "redis",
        "memcached",
        "matmul",
        "kmeans",
    )
    topologies = ("DM", "ODM", "AFB", "S2", "SF")
    spec = ExperimentSpec(
        name="fig12-workloads",
        kind="workload",
        designs=topologies,
        nodes=(num_nodes,),
        workloads=workloads,
        seeds=(0,),
        topology_seed=3,
        sim_params={
            "trace_accesses": trace_size,
            "trace_scale": 0.02,
            "trace_seed": 7,
            "max_cpu_accesses": 300_000,
        },
    )
    sweep = experiment_runner.run(spec)
    print(f"\n[engine] fig12 workloads: {sweep.summary()}")
    results: dict[str, dict[str, dict]] = {w: {} for w in workloads}
    radix: dict[str, int] = {}
    for task, payload in sweep:
        results[task.workload][task.design] = payload
        radix[task.design] = payload["radix"]
    return {
        "results": results,
        "radix": radix,
        "num_nodes": num_nodes,
        "topologies": topologies,
        "workloads": workloads,
    }


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Render one reproduced figure/table to stdout."""
    from repro.experiments.report import render_table

    print(f"\n### {title}")
    print(render_table(header, rows))
