"""Table II — network design features and requirements.

Regenerates the qualitative feature matrix from the implementations
themselves (not hand-written constants): does the design need
high-radix routers, does the router port count scale with N, and does
it support reconfigurable (elastic) network scaling?

========  ===============  =============  =========================
design    high-radix?      port scaling?  reconfigurable scaling?
ODM       No               No             No
AFB       Yes              Yes            No
S2-ideal  No               No             No
SF        No               No             Yes
========  ===============  =============  =========================
"""

from __future__ import annotations

from conftest import print_table

from repro.topologies.registry import make_topology

HIGH_RADIX_THRESHOLD = 10  # ports; 4-8 is commodity for on-stack routers


def measured_radix(name: str, n: int) -> int:
    """Radix the design *requires* at scale n.

    SF/S2 accept any port budget at any scale (we hold the request at
    4 to probe whether scaling *forces* radix growth); grid designs
    have structurally determined radix.
    """
    if name in ("SF", "S2"):
        topo = make_topology(name, n, seed=1, ports=4)
        return topo.num_ports
    topo = make_topology(name, n, seed=1)
    return topo.radix


def reproduce_table2() -> dict[str, dict[str, object]]:
    sizes = (64, 256)
    table = {}
    for name in ("ODM", "AFB", "S2", "SF"):
        radixes = {n: measured_radix(name, n) for n in sizes}
        topo = make_topology(name, 64, seed=1)
        table[name] = {
            "high_radix": max(radixes.values()) > HIGH_RADIX_THRESHOLD,
            "port_scaling": radixes[256] > radixes[64] + 1,
            "reconfigurable": bool(getattr(topo, "reconfigurable", False)),
            "radix_at_64": radixes[64],
            "radix_at_256": radixes[256],
        }
    return table


def test_table2_features(benchmark, record_result):
    table = benchmark.pedantic(reproduce_table2, rounds=1, iterations=1)
    rows = [
        [
            name,
            "Yes" if row["high_radix"] else "No",
            "Yes" if row["port_scaling"] else "No",
            "Yes" if row["reconfigurable"] else "No",
            f"{row['radix_at_64']}/{row['radix_at_256']}",
        ]
        for name, row in table.items()
    ]
    print_table(
        "Table II: topology features (measured from implementations)",
        ["design", "high-radix?", "port scaling?", "reconfig?", "p@64/256"],
        rows,
    )
    record_result("table2_features", table)

    # The paper's Table II rows, verified structurally:
    assert not table["ODM"]["high_radix"]
    assert not table["ODM"]["port_scaling"]
    assert not table["ODM"]["reconfigurable"]
    assert table["AFB"]["high_radix"]
    assert table["AFB"]["port_scaling"]
    assert not table["AFB"]["reconfigurable"]
    assert not table["S2"]["high_radix"]
    assert not table["S2"]["port_scaling"]
    assert not table["S2"]["reconfigurable"]
    assert not table["SF"]["high_radix"]
    assert not table["SF"]["port_scaling"]
    assert table["SF"]["reconfigurable"]
