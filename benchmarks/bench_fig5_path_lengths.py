"""Figure 5 — average shortest path length: Jellyfish vs S2 vs SF.

The paper shows String Figure's topology is a sufficiently uniform
random graph (SURG): its average shortest path length tracks Jellyfish
(the SURG gold standard) and S2 across network scales, with the same
bounds.  Reproduced here over the paper's x-axis (100..1200 nodes),
averaging a few topology samples per point.
"""

from __future__ import annotations

from conftest import print_table, scale

from repro.analysis.paths import shortest_path_stats
from repro.topologies.registry import make_topology

SIZES = scale([100, 200, 400], [100, 200, 400, 800, 1200])
SAMPLES = scale(2, 3)
DESIGNS = ("Jellyfish", "S2", "SF")
#: Fixed 4-port routers across all sizes so the SURG comparison curve
#: is monotone in N (the paper's Figure 5 sweeps topology scale, not
#: router radix).
PORTS = 4


def reproduce_figure5() -> dict[str, dict[int, float]]:
    data: dict[str, dict[int, float]] = {name: {} for name in DESIGNS}
    for n in SIZES:
        for name in DESIGNS:
            total = 0.0
            for sample in range(SAMPLES):
                topo = make_topology(name, n, seed=100 + sample, ports=PORTS)
                stats = shortest_path_stats(
                    topo.graph(), sample_sources=scale(48, 96), seed=sample
                )
                total += stats.mean
            data[name][n] = total / SAMPLES
    return data


def test_figure5_path_lengths(benchmark, record_result):
    data = benchmark.pedantic(reproduce_figure5, rounds=1, iterations=1)
    rows = [
        [n] + [f"{data[name][n]:.2f}" for name in DESIGNS] for n in SIZES
    ]
    print_table(
        "Figure 5: average shortest path length vs network size",
        ["N", *DESIGNS],
        rows,
    )
    record_result("fig5_path_lengths", data)

    for n in SIZES:
        jellyfish = data["Jellyfish"][n]
        # SURG claim: SF and S2 track the uniform-random optimum closely.
        assert data["SF"][n] <= jellyfish * 1.30, (n, data["SF"][n], jellyfish)
        assert abs(data["SF"][n] - data["S2"][n]) <= 0.35
    # Path length grows logarithmically, not with sqrt(N): going from
    # 100 to 4x (or 12x) the nodes adds only ~log(scale) hops.
    assert data["SF"][SIZES[-1]] - data["SF"][SIZES[0]] < 2.5
    assert data["SF"][SIZES[-1]] > data["SF"][SIZES[0]]
    benchmark.extra_info["sf_at_max_n"] = data["SF"][SIZES[-1]]
