"""Multi-tenant isolation figure: per-class p99 vs offered interference.

Sweeps the offered interference load (noise / burst / incast tenants)
against a fixed latency-critical foreground on SF, DM and Jellyfish,
with the default QoS class table installed and again classless, and
appends the per-class p50/p99 curves as one labeled run to
``benchmarks/results/interference.json``.  The headline of the PR-9
acceptance criteria is read straight off the table: under QoS the
latency class's p99 stays near its zero-load level while bulk's p99
absorbs the interference; classless, both collapse together.

Usage::

    python benchmarks/bench_interference.py            # full grid
    python benchmarks/bench_interference.py --quick    # CI smoke scale

Runs serially with the result cache disabled, like every benchmark.
The simulated curves are machine-independent (any drift between runs
is a code change), but each run also records its wall time and the
machine-speed canary, and the trajectory comparison prints the
canary-normalized sweep-time delta — the same regression view the
sim/service throughput benches give.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
DEFAULT_OUT = RESULTS_DIR / "interference.json"
QUICK_OUT = RESULTS_DIR / "interference_quick.json"

DESIGNS = ("SF", "DM", "Jellyfish")
FULL = {
    "nodes": 144,
    "rates": (0.1, 0.2, 0.3, 0.4, 0.5),
    "modes": ("noise", "burst", "incast"),
    "measure": 2000,
}
QUICK = {
    "nodes": 36,
    "rates": (0.1, 0.4),
    "modes": ("incast",),
    "measure": 800,
}

CONFIG = {
    "fg_rate": 0.05,
    "warmup": 300,
    "drain_limit": 60_000,
    "seed": 0,
    "topology_seed": 1,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small grid (CI smoke): one mode, two loads, 36 nodes",
    )
    parser.add_argument(
        "--designs", default=",".join(DESIGNS),
        help="comma-separated topology names",
    )
    parser.add_argument("--label", default=None,
                        help="run label in the trajectory (default: scale)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="trajectory JSON (default: interference.json, "
                             "or interference_quick.json with --quick)")
    return parser


def measure(designs, grid):
    from repro.experiments import ExperimentSpec, ParallelRunner
    from repro.experiments.report import sweep_table

    points = []
    for mode in grid["modes"]:
        for qos in (True, False):
            spec = ExperimentSpec(
                name=f"bench-interference-{mode}-{'qos' if qos else 'raw'}",
                kind="interference",
                designs=tuple(designs),
                nodes=(grid["nodes"],),
                patterns=("uniform_random",),
                rates=grid["rates"],
                seeds=(CONFIG["seed"],),
                topology_seed=CONFIG["topology_seed"],
                sim_params={
                    "warmup": CONFIG["warmup"],
                    "measure": grid["measure"],
                    "drain_limit": CONFIG["drain_limit"],
                    "fg_rate": CONFIG["fg_rate"],
                    "mode": mode,
                    "qos": qos,
                },
            )
            result = ParallelRunner(workers=1, cache=None).run(spec)
            print(f"\n== {spec.name}")
            print(sweep_table(result))
            for task, payload in result:
                point = {
                    "design": task.design,
                    "nodes": task.nodes,
                    "mode": mode,
                    "qos": qos,
                    "rate": task.rate,
                }
                if payload.get("unsupported"):
                    point["unsupported"] = payload.get("error", True)
                else:
                    point.update({
                        "fg_p50": payload["fg_p50"],
                        "fg_p99": payload["fg_p99"],
                        "bulk_p50": payload["bulk_p50"],
                        "bulk_p99": payload["bulk_p99"],
                        "p99_ratio": round(payload["p99_ratio"], 2),
                        "conserved": payload["conserved"],
                    })
                points.append(point)
    return points


def isolation_summary(points) -> None:
    """Worst-case foreground p99 per design, QoS vs classless."""
    print("\nisolation summary (worst fg_p99 across the grid):")
    designs = sorted({p["design"] for p in points if "fg_p99" in p})
    for design in designs:
        rows = [p for p in points if p["design"] == design and "fg_p99" in p]
        qos = max((p["fg_p99"] for p in rows if p["qos"]), default=0.0)
        raw = max((p["fg_p99"] for p in rows if not p["qos"]), default=0.0)
        print(f"  {design:>9s}: qos fg_p99 {qos:7.0f} cyc | "
              f"classless fg_p99 {raw:7.0f} cyc")


def load_trajectory(path: Path, config: dict) -> dict:
    """Load the recorded trajectory, migrating the pre-trajectory flat
    schema ({config, results}) into a single prior run so history is
    kept and the comparison below still has a baseline."""
    if not path.exists():
        return {"config": config, "runs": []}
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise SystemExit(
            f"{path} exists but is not valid JSON ({exc}); refusing to "
            "overwrite the recorded trajectory — fix or delete it first"
        )
    if "runs" not in data:
        data = {
            "config": data.get("config", config),
            "runs": [{
                "label": "pre-trajectory",
                "results": data.get("results", []),
            }],
        }
    return data


def compare(previous: dict, current: dict) -> None:
    """Drift vs the previous recorded run.

    Simulated p99s must not move unless the code changed — any nonzero
    delta here is a behaviour change, never host noise.  Wall time is
    host-dependent, so its delta is printed canary-normalized (the
    convention of the sim/service throughput benches).
    """
    by_key = {
        (p["design"], p["nodes"], p["mode"], p["qos"], p["rate"]): p
        for p in previous.get("results", []) if "fg_p99" in p
    }
    drifted = 0
    matched = 0
    for point in current["results"]:
        if "fg_p99" not in point:
            continue
        old = by_key.get(
            (point["design"], point["nodes"], point["mode"],
             point["qos"], point["rate"]))
        if old is None:
            continue
        matched += 1
        if (old["fg_p99"], old["bulk_p99"]) != (
                point["fg_p99"], point["bulk_p99"]):
            drifted += 1
            print(f"  DRIFT {point['design']} N={point['nodes']} "
                  f"{point['mode']} qos={point['qos']} rate={point['rate']}: "
                  f"fg_p99 {old['fg_p99']} -> {point['fg_p99']}, "
                  f"bulk_p99 {old['bulk_p99']} -> {point['bulk_p99']}")
    if matched:
        print(f"\nvs previous recorded run: {matched} comparable points, "
              f"{drifted} drifted")
    old_wall = previous.get("elapsed_s")
    new_wall = current.get("elapsed_s")
    old_canary = previous.get("canary_kops")
    new_canary = current.get("canary_kops")
    if old_wall and new_wall:
        ratio = new_wall / old_wall
        if old_canary and new_canary:
            norm = f"{ratio * new_canary / old_canary:.2f}x"
        else:
            norm = "-"
        print(f"  sweep wall time {old_wall:.1f}s -> {new_wall:.1f}s "
              f"({ratio:.2f}x raw, {norm} canary-normalized)")


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    designs = [d.strip() for d in args.designs.split(",") if d.strip()]
    grid = QUICK if args.quick else FULL
    out = Path(args.out) if args.out else (QUICK_OUT if args.quick else DEFAULT_OUT)

    from repro.obs.canary import run_canary

    config = {**CONFIG, **grid}
    trajectory = load_trajectory(out, config)  # fail early on corruption
    canary = run_canary()
    print(f"canary: {canary['kops']:,.0f} kops/s (machine-speed baseline)")
    start = time.perf_counter()
    points = measure(designs, grid)
    elapsed = time.perf_counter() - start
    isolation_summary(points)
    run_entry = {
        "label": args.label or ("quick" if args.quick else "full"),
        "scale": "quick" if args.quick else "full",
        "elapsed_s": round(elapsed, 1),
        "canary_kops": round(canary["kops"], 1),
        "results": points,
    }
    if trajectory["runs"]:
        compare(trajectory["runs"][-1], run_entry)
    trajectory["runs"].append(run_entry)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(trajectory, indent=2, sort_keys=True) + "\n")
    print(f"\ntrajectory: {out} ({len(trajectory['runs'])} recorded runs, "
          f"this one took {elapsed:.1f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
