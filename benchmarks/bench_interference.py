"""Multi-tenant isolation figure: per-class p99 vs offered interference.

Sweeps the offered interference load (noise / burst / incast tenants)
against a fixed latency-critical foreground on SF, DM and Jellyfish,
with the default QoS class table installed and again classless, and
writes the per-class p50/p99 curves to
``benchmarks/results/interference.json``.  The headline of the PR-9
acceptance criteria is read straight off the table: under QoS the
latency class's p99 stays near its zero-load level while bulk's p99
absorbs the interference; classless, both collapse together.

Usage::

    python benchmarks/bench_interference.py            # full grid
    python benchmarks/bench_interference.py --quick    # CI smoke scale

Runs serially with the result cache disabled, like every benchmark —
the point is a reproducible figure, not a timing.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
DEFAULT_OUT = RESULTS_DIR / "interference.json"
QUICK_OUT = RESULTS_DIR / "interference_quick.json"

DESIGNS = ("SF", "DM", "Jellyfish")
FULL = {
    "nodes": 144,
    "rates": (0.1, 0.2, 0.3, 0.4, 0.5),
    "modes": ("noise", "burst", "incast"),
    "measure": 2000,
}
QUICK = {
    "nodes": 36,
    "rates": (0.1, 0.4),
    "modes": ("incast",),
    "measure": 800,
}

CONFIG = {
    "fg_rate": 0.05,
    "warmup": 300,
    "drain_limit": 60_000,
    "seed": 0,
    "topology_seed": 1,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small grid (CI smoke): one mode, two loads, 36 nodes",
    )
    parser.add_argument(
        "--designs", default=",".join(DESIGNS),
        help="comma-separated topology names",
    )
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="results JSON (default: interference.json, or "
                             "interference_quick.json with --quick)")
    return parser


def measure(designs, grid):
    from repro.experiments import ExperimentSpec, ParallelRunner
    from repro.experiments.report import sweep_table

    points = []
    for mode in grid["modes"]:
        for qos in (True, False):
            spec = ExperimentSpec(
                name=f"bench-interference-{mode}-{'qos' if qos else 'raw'}",
                kind="interference",
                designs=tuple(designs),
                nodes=(grid["nodes"],),
                patterns=("uniform_random",),
                rates=grid["rates"],
                seeds=(CONFIG["seed"],),
                topology_seed=CONFIG["topology_seed"],
                sim_params={
                    "warmup": CONFIG["warmup"],
                    "measure": grid["measure"],
                    "drain_limit": CONFIG["drain_limit"],
                    "fg_rate": CONFIG["fg_rate"],
                    "mode": mode,
                    "qos": qos,
                },
            )
            result = ParallelRunner(workers=1, cache=None).run(spec)
            print(f"\n== {spec.name}")
            print(sweep_table(result))
            for task, payload in result:
                point = {
                    "design": task.design,
                    "nodes": task.nodes,
                    "mode": mode,
                    "qos": qos,
                    "rate": task.rate,
                }
                if payload.get("unsupported"):
                    point["unsupported"] = payload.get("error", True)
                else:
                    point.update({
                        "fg_p50": payload["fg_p50"],
                        "fg_p99": payload["fg_p99"],
                        "bulk_p50": payload["bulk_p50"],
                        "bulk_p99": payload["bulk_p99"],
                        "p99_ratio": round(payload["p99_ratio"], 2),
                        "conserved": payload["conserved"],
                    })
                points.append(point)
    return points


def isolation_summary(points) -> None:
    """Worst-case foreground p99 per design, QoS vs classless."""
    print("\nisolation summary (worst fg_p99 across the grid):")
    designs = sorted({p["design"] for p in points if "fg_p99" in p})
    for design in designs:
        rows = [p for p in points if p["design"] == design and "fg_p99" in p]
        qos = max((p["fg_p99"] for p in rows if p["qos"]), default=0.0)
        raw = max((p["fg_p99"] for p in rows if not p["qos"]), default=0.0)
        print(f"  {design:>9s}: qos fg_p99 {qos:7.0f} cyc | "
              f"classless fg_p99 {raw:7.0f} cyc")


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    designs = [d.strip() for d in args.designs.split(",") if d.strip()]
    grid = QUICK if args.quick else FULL
    points = measure(designs, grid)
    isolation_summary(points)
    out = Path(args.out) if args.out else (QUICK_OUT if args.quick else DEFAULT_OUT)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(
        {"config": {**CONFIG, **grid}, "results": points},
        indent=2, sort_keys=True,
    ))
    print(f"\nresults: {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
