"""Simulator-throughput trajectory: events/sec across designs x scales.

Measures the event-loop throughput (events processed per wall-clock
second) and wall time of synthetic uniform-random runs on mesh (DM),
Jellyfish and String Figure at 64 -> 1296 nodes, through the ``perf``
experiment kind of the parallel engine, and appends the results as one
labeled run to ``benchmarks/results/sim_throughput.json`` — the repo's
tracked performance trajectory.  Each new run is compared point-by-point
against the previous recorded run of the same scale, so a simulator
change that regresses the hot path is visible immediately.

Usage::

    python benchmarks/bench_sim_throughput.py            # full, 64->1296
    python benchmarks/bench_sim_throughput.py --quick    # CI smoke scale

Methodology: per grid point the topology/policy are built outside the
timed region, the identical simulation runs ``--repeats`` times sharing
one policy (so decision caches warm up exactly like a long sweep), and
the best repetition is reported.  Runs always execute with the result
cache disabled — wall-clock numbers must never be served from cache —
and serially (``workers=1``), because concurrently timed points steal
each other's cycles.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
DEFAULT_OUT = RESULTS_DIR / "sim_throughput.json"
QUICK_OUT = RESULTS_DIR / "sim_throughput_quick.json"

DESIGNS = ("SF", "DM", "Jellyfish")
FULL_NODES = (64, 144, 324, 576, 1296)
QUICK_NODES = (64, 144)

CONFIG = {
    "pattern": "uniform_random",
    "rate": 0.05,
    "warmup": 100,
    "measure": 300,
    "drain_limit": 20_000,
    "seed": 0,
    "sample_free": True,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help=f"small scales only {QUICK_NODES} (CI smoke)",
    )
    parser.add_argument(
        "--designs", default=",".join(DESIGNS),
        help="comma-separated topology names",
    )
    parser.add_argument(
        "--nodes", default=None,
        help="comma-separated node counts (overrides --quick/full grid)",
    )
    parser.add_argument("--repeats", type=int, default=2,
                        help="timing repetitions per point (best wins)")
    parser.add_argument("--label", default=None,
                        help="run label in the trajectory (default: scale)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="trajectory JSON (default: sim_throughput.json, "
                             "or sim_throughput_quick.json with --quick)")
    return parser


def measure(designs, nodes, repeats):
    from repro.experiments import ExperimentSpec, ParallelRunner
    from repro.experiments.report import sweep_table

    spec = ExperimentSpec(
        name="sim-throughput",
        kind="perf",
        designs=tuple(designs),
        nodes=tuple(nodes),
        patterns=(CONFIG["pattern"],),
        rates=(CONFIG["rate"],),
        seeds=(CONFIG["seed"],),
        sim_params={
            "warmup": CONFIG["warmup"],
            "measure": CONFIG["measure"],
            "drain_limit": CONFIG["drain_limit"],
            "repeats": repeats,
            "sample_free": CONFIG["sample_free"],
        },
    )
    runner = ParallelRunner(workers=1, cache=None)
    result = runner.run(spec)
    print(sweep_table(result))
    points = []
    for task, payload in result:
        point = {"design": task.design, "nodes": task.nodes}
        if payload.get("unsupported"):
            point["unsupported"] = payload.get("error", True)
        else:
            point.update({
                "events": payload["events"],
                "wall_s": round(payload["wall_s"], 4),
                "events_per_sec": round(payload["events_per_sec"], 1),
                "delivered": payload["delivered"],
                "avg_latency": round(payload["avg_latency"], 3),
            })
        points.append(point)
    return points


def load_trajectory(path: Path) -> dict:
    if not path.exists():
        return {"config": CONFIG, "runs": []}
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        # Never silently replace the tracked history with a fresh file:
        # a truncated write or merge-conflict marker must be repaired
        # (or the file deliberately deleted), not papered over.
        raise SystemExit(
            f"{path} exists but is not valid JSON ({exc}); refusing to "
            "overwrite the recorded perf trajectory — fix or delete it first"
        )


def compare(previous: dict, current: dict) -> None:
    """Point-by-point comparison, raw and canary-normalized.

    The canary (``repro.obs.canary``) measures machine speed with a
    frozen workload; dividing the raw ev/s ratio by the canary ratio
    separates simulator changes from running on different hardware.
    Trajectory entries recorded before the canary existed show ``-``
    in the normalized column.
    """
    by_key = {
        (p["design"], p["nodes"]): p
        for p in previous.get("results", []) if "events_per_sec" in p
    }
    old_canary = previous.get("canary_kops")
    new_canary = current.get("canary_kops")
    lines = []
    for point in current["results"]:
        old = by_key.get((point["design"], point["nodes"]))
        if old is None or "events_per_sec" not in point:
            continue
        ratio = point["events_per_sec"] / old["events_per_sec"]
        if old_canary and new_canary:
            norm = f"{ratio * old_canary / new_canary:.2f}x"
        else:
            norm = "-"
        lines.append(
            f"  {point['design']:>9s} N={point['nodes']:<5d} "
            f"{old['events_per_sec']:>12,.0f} -> "
            f"{point['events_per_sec']:>12,.0f} ev/s  "
            f"({ratio:.2f}x raw, {norm} canary-normalized)"
        )
    if lines:
        print("\nvs previous recorded run:")
        print("\n".join(lines))


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    designs = [d.strip() for d in args.designs.split(",") if d.strip()]
    if args.nodes:
        nodes = [int(n) for n in args.nodes.split(",") if n.strip()]
    else:
        nodes = QUICK_NODES if args.quick else FULL_NODES
    out = Path(args.out) if args.out else (QUICK_OUT if args.quick else DEFAULT_OUT)

    from repro.obs.canary import run_canary

    trajectory = load_trajectory(out)  # fail on corruption before measuring
    canary = run_canary()
    print(f"canary: {canary['kops']:,.0f} kops/s (machine-speed baseline)\n")
    start = time.perf_counter()
    points = measure(designs, nodes, args.repeats)
    elapsed = time.perf_counter() - start
    run_entry = {
        "label": args.label or ("quick" if args.quick else "full"),
        "scale": "quick" if args.quick else "full",
        "repeats": args.repeats,
        "elapsed_s": round(elapsed, 1),
        "canary_kops": round(canary["kops"], 1),
        "results": points,
    }
    if trajectory["runs"]:
        compare(trajectory["runs"][-1], run_entry)
    trajectory["runs"].append(run_entry)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(trajectory, indent=2, sort_keys=True) + "\n")
    print(f"\ntrajectory: {out} ({len(trajectory['runs'])} recorded runs, "
          f"this one took {elapsed:.1f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
