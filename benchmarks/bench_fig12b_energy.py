"""Figure 12(b) — dynamic memory energy, normalized to AFB.

Same trace-driven runs as Figure 12(a); energy uses the radix-aware
per-hop model (link energy is radix-independent, router
crossbar/allocation energy grows with port count — see
``repro.energy.model.radix_energy_factor``), which is what penalizes
the high-radix AFB routers the way the paper's RTL numbers do.

Paper findings reproduced:

* String Figure has the lowest dynamic energy of all designs;
* S2-ideal is similarly low ("due to its energy reduction in
  routing");
* SF lands meaningfully below AFB (paper: -36% at 1024 nodes; the
  separation grows with scale as AFB's radix climbs).
"""

from __future__ import annotations

from conftest import print_table

from repro.energy.model import radix_energy_factor


def _radix_aware_pj(payload, radix: int) -> float:
    """Radix-scaled dynamic energy from an engine workload payload."""
    return radix_energy_factor(radix) * payload["network_pj"] + payload["dram_pj"]


def test_figure12b_energy(benchmark, record_result, workload_results):
    def collect():
        data = {}
        for workload in workload_results["workloads"]:
            runs = workload_results["results"][workload]
            energy = {
                name: _radix_aware_pj(
                    runs[name], workload_results["radix"][name]
                )
                for name in workload_results["topologies"]
            }
            base = energy["AFB"]
            data[workload] = {t: e / base for t, e in energy.items()}
        return data

    data = benchmark.pedantic(collect, rounds=1, iterations=1)
    topologies = workload_results["topologies"]
    rows = [
        [w] + [f"{data[w][t]:.2f}" for t in topologies]
        for w in workload_results["workloads"]
    ]
    geomean = {}
    n = len(workload_results["workloads"])
    for t in topologies:
        product = 1.0
        for w in workload_results["workloads"]:
            product *= data[w][t]
        geomean[t] = product ** (1 / n)
    rows.append(["geomean"] + [f"{geomean[t]:.2f}" for t in topologies])
    print_table(
        f"Figure 12b: dynamic energy normalized to AFB "
        f"(N={workload_results['num_nodes']}, lower is better)",
        ["workload", *topologies],
        rows,
    )
    record_result("fig12b_energy", data)

    # SF has the lowest energy of all evaluated designs.
    assert geomean["SF"] == min(geomean.values())
    # Meaningfully below AFB (paper: -36%; scale-dependent here).
    assert geomean["SF"] < 0.95
    # S2-ideal similarly low.
    assert geomean["S2"] <= 1.02 * geomean["SF"] / min(geomean["SF"], 1.0) or (
        abs(geomean["S2"] - geomean["SF"]) < 0.05
    )
    benchmark.extra_info["geomean"] = geomean
