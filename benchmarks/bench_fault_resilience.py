"""Fault resilience — unplanned failures, SF vs the baselines.

The paper's §V resilience argument is that String Figure's random
multi-way topology keeps near-optimal path diversity as nodes come and
go.  PR-2/PR-3 exercised only *planned* departures (drain first, then
switch); this bench prices the unplanned case: links die and nodes
crash mid-packet, detection lags by a timeout, and the network must
degrade gracefully rather than deadlock or lose data silently.

Reproduced/verified claims:

* **Nothing disappears silently** — ``sent == delivered + lost`` holds
  exactly at every grid point, with every loss attributed (mid-wire,
  in-crash, unreachable) and every retransmission accounted.
* **A mirrored crash loses zero pages** — with replicas, crash
  recovery reconstructs every page of the dead node onto survivors as
  real network traffic; without replicas, exactly the crashed node's
  resident pages are lost (the lost-page accounting).
* **Detection latency is the resilience knob** — a slower detector
  widens the damage window: more packets lost into the failure, more
  retransmissions, higher during-fault p99.
* **SF's repair is local** — String Figure repairs by table bit flips
  (block + via-prune) while DM/Jellyfish recompute global minimal
  routing; both converge, which is the comparison the table shows.

One family of declarative ``faults`` sweeps (designs x detection
timeouts, plus a mirrored-vs-unmirrored crash pair) through the
parallel experiment engine with caching.
"""

from __future__ import annotations

from conftest import print_table, scale

from repro.experiments import ExperimentSpec

NODES = scale(32, 64)
MEASURE = scale(2500, 6000)
WARMUP = 200
RATE = 0.08
FOOTPRINT = scale(64, 128)
DETECTION_TIMEOUTS = (100, 400)

BASE = ExperimentSpec(
    name="fault-resilience",
    kind="faults",
    designs=("SF", "DM", "Jellyfish"),
    nodes=(NODES,),
    patterns=("uniform_random",),
    rates=(RATE,),
    seeds=(0,),
    topology_seed=3,
    sim_params={
        "warmup": WARMUP,
        "measure": MEASURE,
        "drain_limit": scale(40_000, 80_000),
        "footprint_pages": FOOTPRINT,
        "fault_rate": 0.002,
    },
)

RANDOM_SPECS = {
    timeout: BASE.with_overrides(
        name=f"fault-resilience-dt{timeout}",
        sim_params={"schedule": "random", "detection_timeout": timeout},
    )
    for timeout in DETECTION_TIMEOUTS
}

CRASH_SPECS = {
    mirrored: BASE.with_overrides(
        name=f"fault-crash-{'mirrored' if mirrored else 'unmirrored'}",
        designs=("SF",),
        sim_params={
            "schedule": "crash",
            "detection_timeout": DETECTION_TIMEOUTS[0],
            "mirrored": mirrored,
        },
    )
    for mirrored in (True, False)
}


def _conserved(payload: dict) -> bool:
    return payload["all_conserved"]


def test_fault_resilience(benchmark, record_result, experiment_runner):
    def reproduce():
        data: dict[str, dict] = {"random": {}, "crash": {}}
        for timeout, spec in RANDOM_SPECS.items():
            sweep = experiment_runner.run(spec)
            print(f"\n[engine] {spec.name}: {sweep.summary()}")
            for task, payload in sweep:
                data["random"][f"{task.design} dt={timeout}"] = payload
        for mirrored, spec in CRASH_SPECS.items():
            sweep = experiment_runner.run(spec)
            print(f"[engine] {spec.name}: {sweep.summary()}")
            for task, payload in sweep:
                label = "mirrored" if mirrored else "unmirrored"
                data["crash"][label] = payload
        return data

    data = benchmark.pedantic(reproduce, rounds=1, iterations=1)

    rows = []
    for family, group in data.items():
        for label, p in group.items():
            rows.append([
                family,
                label,
                p["num_faults"],
                p["lost"],
                p["retransmits"],
                f"{p['fg_p99_baseline']:.0f}",
                f"{p['fg_p99_during']:.0f}",
                f"{p['fg_p99_after']:.0f}",
                p["unreachable_node_cycles"],
                p["pages_lost"],
                p["pages_recovered"],
                "yes" if _conserved(p) else "NO",
            ])
    print_table(
        "Fault resilience — loss, retransmits, phase p99, availability",
        ["family", "scenario", "faults", "lost", "retx", "p99_base",
         "p99_during", "p99_after", "unreach_cyc", "pg_lost", "pg_recov",
         "conserved"],
        rows,
    )
    record_result("fault_resilience", data)

    # Conservation everywhere: packets and pages, every grid point.
    for family, group in data.items():
        for label, payload in group.items():
            assert _conserved(payload), (family, label)

    # Every scheduled fault family actually fired faults and recovered.
    for label, payload in data["random"].items():
        assert payload["num_faults"] > 0, label
        assert payload["all_recovered"], label

    # Mirrored crash: zero pages lost, all reconstructed; unmirrored:
    # exactly the crashed node's residents lost, none reconstructed.
    mirrored = data["crash"]["mirrored"]
    unmirrored = data["crash"]["unmirrored"]
    assert mirrored["num_faults"] == 1 and unmirrored["num_faults"] == 1
    assert mirrored["pages_lost"] == 0
    assert mirrored["recoveries_done"]
    assert mirrored["pages_recovered"] > 0
    assert unmirrored["pages_lost"] > 0
    assert unmirrored["pages_recovered"] == 0

    # Slower detection = wider damage window (weak monotonicity: the
    # slow detector can never lose *fewer* packets than the fast one
    # summed across the design axis).
    fast = sum(
        p["lost"] for label, p in data["random"].items()
        if label.endswith(f"dt={DETECTION_TIMEOUTS[0]}")
    )
    slow = sum(
        p["lost"] for label, p in data["random"].items()
        if label.endswith(f"dt={DETECTION_TIMEOUTS[-1]}")
    )
    assert slow >= fast, (fast, slow)
