"""Sensitivity studies and ablations (paper §IV-C, §VI and DESIGN.md).

One bench per design choice the paper (or our DESIGN.md) calls out:

* **uni- vs bi-directional links** — the paper picks uni-directional
  after finding the gap small and shrinking with N;
* **1-hop vs 1+2-hop routing tables** — the paper routes on the
  two-hop window "based on our sensitivity studies";
* **coordinate precision** — hardware stores 7-bit coordinates;
* **balanced vs plain-uniform coordinates** — the balance criterion of
  BalancedCoordinateGen (Figure 4b);
* **shortcut ablation on a down-scaled network** — shortcuts are the
  mechanism that keeps reconfigured networks fast (and S2 lacks them).
"""

from __future__ import annotations

from conftest import print_table, scale

from repro.analysis.paths import greedy_path_stats
from repro.core.reconfig import ReconfigurationManager
from repro.core.routing import GreediestRouting
from repro.core.topology import StringFigureTopology

SIZES = scale([32, 64, 128], [32, 64, 128, 256, 512])
PAIRS = scale(800, 2500)


def mean_hops(topology, use_two_hop=True, seed=1) -> float:
    routing = GreediestRouting(topology, use_two_hop=use_two_hop)
    return greedy_path_stats(routing, sample_pairs=PAIRS, seed=seed).mean


def test_unidirectional_vs_bidirectional(benchmark, record_result):
    def run():
        data = {}
        for n in SIZES:
            bi = StringFigureTopology(n, 4, seed=2, direction="bi")
            uni = StringFigureTopology(n, 4, seed=2, direction="uni")
            data[n] = {"bi": mean_hops(bi), "uni": mean_hops(uni)}
        return data

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [n, f"{data[n]['bi']:.2f}", f"{data[n]['uni']:.2f}",
         f"{data[n]['uni'] / data[n]['bi']:.2f}"]
        for n in SIZES
    ]
    print_table(
        "Sensitivity: uni- vs bi-directional links (greediest hops)",
        ["N", "bi", "uni", "ratio"],
        rows,
    )
    record_result("sensitivity_direction", data)
    ratios = [data[n]["uni"] / data[n]["bi"] for n in SIZES]
    # Uni-directional routing pays a bounded hop penalty (clockwise-only
    # progress per space).  Note: the paper's near-parity claim is about
    # end-to-end performance with the *wire budget* held constant (a
    # bi-directional wire carries half the per-direction bandwidth);
    # our simulator models full-duplex links, so the fair structural
    # comparison here is hops-per-wire — uni uses half the wires.
    assert all(r < 2.2 for r in ratios)
    assert all(r > 1.0 for r in ratios)


def test_one_hop_vs_two_hop_tables(benchmark, record_result):
    def run():
        data = {}
        for n in SIZES:
            topo = StringFigureTopology(n, 4, seed=3)
            data[n] = {
                "two_hop": mean_hops(topo, use_two_hop=True),
                "one_hop": mean_hops(topo, use_two_hop=False),
            }
        return data

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [n, f"{data[n]['one_hop']:.2f}", f"{data[n]['two_hop']:.2f}"]
        for n in SIZES
    ]
    print_table(
        "Sensitivity: routing-table depth (greediest hops)",
        ["N", "1-hop only", "1+2-hop"],
        rows,
    )
    record_result("sensitivity_table_depth", data)
    for n in SIZES:
        assert data[n]["two_hop"] < data[n]["one_hop"]
    # The two-hop window buys a substantial chunk at scale.
    big = SIZES[-1]
    assert data[big]["two_hop"] < 0.8 * data[big]["one_hop"]


def test_coordinate_precision(benchmark, record_result):
    """Quantized (hardware) coordinates versus full precision.

    Meaningful quantization requires 2^bits >= N (distinct grid points
    per node — the construction deduplicates on the grid); each bit
    width is therefore evaluated at the largest scale it supports:
    5 bits at N=24, 7 bits (the paper's table entry width) at N=96.
    """

    def run():
        data = {}
        for bits, n in ((5, 24), (7, 96), (10, 96), (None, 96)):
            topo = StringFigureTopology(n, 4, seed=4, coord_bits=bits)
            reference = StringFigureTopology(n, 4, seed=4, coord_bits=None)
            data[str(bits)] = {
                "n": n,
                "hops": mean_hops(topo),
                "reference": mean_hops(reference),
            }
        return data

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [bits, row["n"], f"{row['hops']:.2f}", f"{row['reference']:.2f}"]
        for bits, row in data.items()
    ]
    print_table(
        "Sensitivity: coordinate quantization (greediest hops)",
        ["coord bits", "N", "hops", "full-precision"],
        rows,
    )
    record_result("sensitivity_coord_bits", data)
    # Hardware-width coordinates cost little over full precision.
    assert data["7"]["hops"] <= data["7"]["reference"] * 1.25
    assert data["5"]["hops"] <= data["5"]["reference"] * 1.25
    assert data["10"]["hops"] <= data["10"]["reference"] * 1.10


def test_balanced_coordinate_generation(benchmark, record_result):
    def run():
        data = {}
        for candidates in (1, 4, 8, 16):
            topo = StringFigureTopology(128, 4, seed=5, candidates=candidates)
            balance = min(
                topo.coords.balance_score(s) for s in range(topo.num_spaces)
            )
            data[candidates] = {
                "balance": balance,
                "hops": mean_hops(topo),
            }
        return data

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [c, f"{v['balance']:.3f}", f"{v['hops']:.2f}"]
        for c, v in data.items()
    ]
    print_table(
        "Sensitivity: BalancedCoordinateGen best-of-k (N=128)",
        ["candidates", "min gap / mean gap", "hops"],
        rows,
    )
    record_result(
        "sensitivity_balance", {str(k): v for k, v in data.items()}
    )
    # The balance criterion demonstrably evens out the rings.
    assert data[8]["balance"] > data[1]["balance"]
    assert data[16]["balance"] >= data[4]["balance"] * 0.8


def test_shortcut_ablation_downscaled(benchmark, record_result):
    """Shortcuts are what keeps a down-scaled network fast."""

    def run():
        results = {}
        n = scale(96, 192)
        # With shortcuts: gate 20% and let the manager patch + fill ports.
        topo = StringFigureTopology(n, 4, seed=6, with_shortcuts=True)
        routing = GreediestRouting(topo)
        manager = ReconfigurationManager(topo, routing)
        victims = manager.gate_candidates(n // 5, min_spacing=2)
        for victim in victims:
            manager.power_gate(victim)
        with_shortcuts = greedy_path_stats(
            routing, sample_pairs=PAIRS, seed=3
        )
        results["with_shortcuts"] = with_shortcuts.mean
        # Ablation: keep only the ring patches (needed for delivery),
        # dropping the opportunistic port-filling shortcuts.
        for u, v in list(topo.active_shortcuts):
            cu, cv = manager._shortcut_span(u, v)
            if not manager._span_is_gated(cu, cv):
                topo.deactivate_shortcut(u, v)
        routing.rebuild()
        without = greedy_path_stats(routing, sample_pairs=PAIRS, seed=3)
        results["without_shortcuts"] = without.mean
        results["gated"] = len(victims)
        return results

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Ablation: shortcuts on a 20%-gated network ({data['gated']} gated)",
        ["variant", "greediest hops"],
        [
            ["with shortcuts", f"{data['with_shortcuts']:.2f}"],
            ["without shortcuts", f"{data['without_shortcuts']:.2f}"],
        ],
    )
    record_result("sensitivity_shortcut_ablation", data)
    assert data["with_shortcuts"] < data["without_shortcuts"]
