"""Sensitivity studies and ablations (paper §IV-C, §VI and DESIGN.md).

One bench per design choice the paper (or our DESIGN.md) calls out:

* **uni- vs bi-directional links** — the paper picks uni-directional
  after finding the gap small and shrinking with N;
* **1-hop vs 1+2-hop routing tables** — the paper routes on the
  two-hop window "based on our sensitivity studies";
* **coordinate precision** — hardware stores 7-bit coordinates;
* **balanced vs plain-uniform coordinates** — the balance criterion of
  BalancedCoordinateGen (Figure 4b);
* **shortcut ablation on a down-scaled network** — shortcuts are the
  mechanism that keeps reconfigured networks fast (and S2 lacks them).

Each study is a family of declarative ``path_stats`` specs (one per
knob setting) run through the experiment engine; variant specs derive
from a shared base via :meth:`ExperimentSpec.with_overrides`, and
shared grid points (e.g. the full-precision reference topology) are
simulated once.  The shortcut ablation stays hand-rolled: it mutates a
topology mid-experiment, which pure cacheable tasks must not do.
"""

from __future__ import annotations

from conftest import print_table, scale

from repro.analysis.paths import greedy_path_stats
from repro.core.reconfig import ReconfigurationManager
from repro.core.routing import GreediestRouting
from repro.core.topology import StringFigureTopology
from repro.experiments import ExperimentSpec

SIZES = scale([32, 64, 128], [32, 64, 128, 256, 512])
PAIRS = scale(800, 2500)

BASE = ExperimentSpec(
    name="sensitivity",
    kind="path_stats",
    designs=("SF",),
    nodes=SIZES,
    seeds=(1,),
    topology_params={"ports": 4},
    sim_params={"sample_pairs": PAIRS},
)


def test_unidirectional_vs_bidirectional(
    benchmark, record_result, experiment_runner
):
    specs = {
        direction: BASE.with_overrides(
            name=f"sensitivity-direction-{direction}",
            topology_seed=2,
            topology_params={"direction": direction},
        )
        for direction in ("bi", "uni")
    }

    def run():
        sweep = experiment_runner.run(list(specs.values()))
        print(f"\n[engine] direction: {sweep.summary()}")
        return {
            n: {
                d: sweep.value(
                    "mean_hops", nodes=n,
                    topology_params=specs[d].tasks()[0].topology_params,
                )
                for d in specs
            }
            for n in SIZES
        }

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [n, f"{data[n]['bi']:.2f}", f"{data[n]['uni']:.2f}",
         f"{data[n]['uni'] / data[n]['bi']:.2f}"]
        for n in SIZES
    ]
    print_table(
        "Sensitivity: uni- vs bi-directional links (greediest hops)",
        ["N", "bi", "uni", "ratio"],
        rows,
    )
    record_result("sensitivity_direction", data)
    ratios = [data[n]["uni"] / data[n]["bi"] for n in SIZES]
    # Uni-directional routing pays a bounded hop penalty (clockwise-only
    # progress per space).  Note: the paper's near-parity claim is about
    # end-to-end performance with the *wire budget* held constant (a
    # bi-directional wire carries half the per-direction bandwidth);
    # our simulator models full-duplex links, so the fair structural
    # comparison here is hops-per-wire — uni uses half the wires.
    assert all(r < 2.2 for r in ratios)
    assert all(r > 1.0 for r in ratios)


def test_one_hop_vs_two_hop_tables(
    benchmark, record_result, experiment_runner
):
    specs = {
        label: BASE.with_overrides(
            name=f"sensitivity-tables-{label}",
            topology_seed=3,
            sim_params={"use_two_hop": use_two_hop},
        )
        for label, use_two_hop in (("two_hop", True), ("one_hop", False))
    }

    def run():
        sweep = experiment_runner.run(list(specs.values()))
        print(f"\n[engine] table depth: {sweep.summary()}")
        return {
            n: {
                label: sweep.value(
                    "mean_hops", nodes=n,
                    sim_params=specs[label].tasks()[0].sim_params,
                )
                for label in specs
            }
            for n in SIZES
        }

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [n, f"{data[n]['one_hop']:.2f}", f"{data[n]['two_hop']:.2f}"]
        for n in SIZES
    ]
    print_table(
        "Sensitivity: routing-table depth (greediest hops)",
        ["N", "1-hop only", "1+2-hop"],
        rows,
    )
    record_result("sensitivity_table_depth", data)
    for n in SIZES:
        assert data[n]["two_hop"] < data[n]["one_hop"]
    # The two-hop window buys a substantial chunk at scale.
    big = SIZES[-1]
    assert data[big]["two_hop"] < 0.8 * data[big]["one_hop"]


def test_coordinate_precision(benchmark, record_result, experiment_runner):
    """Quantized (hardware) coordinates versus full precision.

    Meaningful quantization requires 2^bits >= N (distinct grid points
    per node — the construction deduplicates on the grid); each bit
    width is therefore evaluated at the largest scale it supports:
    5 bits at N=24, 7 bits (the paper's table entry width) at N=96.
    The full-precision reference at each N is one shared grid point —
    the engine deduplicates it across variants.
    """
    cases = ((5, 24), (7, 96), (10, 96), (None, 96))

    def spec_for(bits, n):
        return BASE.with_overrides(
            name=f"sensitivity-coord-{bits}-{n}",
            nodes=[n],
            topology_seed=4,
            topology_params={"coord_bits": bits},
        )

    def run():
        specs = [spec_for(bits, n) for bits, n in cases]
        specs += [spec_for(None, n) for _bits, n in cases]
        sweep = experiment_runner.run(specs)
        print(f"\n[engine] coord precision: {sweep.summary()}")

        def hops(bits, n):
            return sweep.value(
                "mean_hops", nodes=n,
                topology_params=spec_for(bits, n).tasks()[0].topology_params,
            )

        return {
            str(bits): {
                "n": n,
                "hops": hops(bits, n),
                "reference": hops(None, n),
            }
            for bits, n in cases
        }

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [bits, row["n"], f"{row['hops']:.2f}", f"{row['reference']:.2f}"]
        for bits, row in data.items()
    ]
    print_table(
        "Sensitivity: coordinate quantization (greediest hops)",
        ["coord bits", "N", "hops", "full-precision"],
        rows,
    )
    record_result("sensitivity_coord_bits", data)
    # Hardware-width coordinates cost little over full precision.
    assert data["7"]["hops"] <= data["7"]["reference"] * 1.25
    assert data["5"]["hops"] <= data["5"]["reference"] * 1.25
    assert data["10"]["hops"] <= data["10"]["reference"] * 1.10


def test_balanced_coordinate_generation(
    benchmark, record_result, experiment_runner
):
    candidate_counts = (1, 4, 8, 16)
    specs = {
        k: BASE.with_overrides(
            name=f"sensitivity-balance-{k}",
            nodes=[128],
            topology_seed=5,
            topology_params={"candidates": k},
        )
        for k in candidate_counts
    }

    def run():
        sweep = experiment_runner.run(list(specs.values()))
        print(f"\n[engine] balance: {sweep.summary()}")
        data = {}
        for k in candidate_counts:
            payload = sweep.get(
                topology_params=specs[k].tasks()[0].topology_params
            )
            data[k] = {
                "balance": payload["min_balance"],
                "hops": payload["mean_hops"],
            }
        return data

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [c, f"{v['balance']:.3f}", f"{v['hops']:.2f}"]
        for c, v in data.items()
    ]
    print_table(
        "Sensitivity: BalancedCoordinateGen best-of-k (N=128)",
        ["candidates", "min gap / mean gap", "hops"],
        rows,
    )
    record_result(
        "sensitivity_balance", {str(k): v for k, v in data.items()}
    )
    # The balance criterion demonstrably evens out the rings.
    assert data[8]["balance"] > data[1]["balance"]
    assert data[16]["balance"] >= data[4]["balance"] * 0.8


def test_shortcut_ablation_downscaled(benchmark, record_result):
    """Shortcuts are what keeps a down-scaled network fast.

    Stays outside the experiment engine: the ablation mutates one
    topology in place (gating + shortcut deactivation), so its two
    measurements are not independent cacheable tasks.
    """

    def run():
        results = {}
        n = scale(96, 192)
        # With shortcuts: gate 20% and let the manager patch + fill ports.
        topo = StringFigureTopology(n, 4, seed=6, with_shortcuts=True)
        routing = GreediestRouting(topo)
        manager = ReconfigurationManager(topo, routing)
        victims = manager.gate_candidates(n // 5, min_spacing=2)
        for victim in victims:
            manager.power_gate(victim)
        with_shortcuts = greedy_path_stats(
            routing, sample_pairs=PAIRS, seed=3
        )
        results["with_shortcuts"] = with_shortcuts.mean
        # Ablation: keep only the ring patches (needed for delivery),
        # dropping the opportunistic port-filling shortcuts.
        for u, v in list(topo.active_shortcuts):
            cu, cv = manager._shortcut_span(u, v)
            if not manager._span_is_gated(cu, cv):
                topo.deactivate_shortcut(u, v)
        routing.rebuild()
        without = greedy_path_stats(routing, sample_pairs=PAIRS, seed=3)
        results["without_shortcuts"] = without.mean
        results["gated"] = len(victims)
        return results

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Ablation: shortcuts on a 20%-gated network ({data['gated']} gated)",
        ["variant", "greediest hops"],
        [
            ["with shortcuts", f"{data['with_shortcuts']:.2f}"],
            ["without shortcuts", f"{data['without_shortcuts']:.2f}"],
        ],
    )
    record_result("sensitivity_shortcut_ablation", data)
    assert data["with_shortcuts"] < data["without_shortcuts"]
