"""Figure 9(b) — normalized EDP versus fraction of nodes power-gated.

The paper powers off growing portions of the 1296-node network and
shows the energy-delay product improving (dropping), because the saved
per-node background energy outweighs the modest performance cost of
running the workloads on a down-scaled network (sleep 680 ns / wake
5 µs overheads included, 100 µs reconfiguration granularity).

Reproduced at bench scale with the trace-driven runner: for each gate
fraction, the reconfiguration manager selects cleanly-gateable victims,
the address space rebalances onto the remaining nodes, and EDP =
(traffic energy + background energy) x runtime, normalized to the
ungated network.
"""

from __future__ import annotations

from conftest import print_table, scale

from repro.core.reconfig import ReconfigurationManager
from repro.core.routing import AdaptiveGreediestRouting
from repro.energy.model import EnergyModel
from repro.energy.power_gating import PowerManager
from repro.network.policies import GreedyPolicy
from repro.topologies.registry import make_topology
from repro.workloads.runner import run_workload
from repro.workloads.trace import collect_trace

NUM_NODES = scale(96, 324)
FRACTIONS = (0.0, 0.1, 0.2, 0.3, 0.4)
WORKLOADS = scale(
    ("wordcount", "redis", "kmeans"),
    ("wordcount", "grep", "sort", "pagerank", "redis", "memcached", "kmeans"),
)
TRACE_SIZE = scale(1500, 5000)


def run_at_fraction(trace, fraction: float) -> tuple[float, int]:
    """(EDP pJ*ns, active nodes) for one gate fraction.

    Uses 8-port routers — the paper's Figure 9(b) runs on the
    1296-node working example, whose Figure 8 configuration is p=8;
    that redundancy is what keeps the down-scaled network's paths
    short.
    """
    topo = make_topology("SF", NUM_NODES, seed=9, ports=8)
    routing = AdaptiveGreediestRouting(topo)
    manager = PowerManager(ReconfigurationManager(topo, routing))
    plan = manager.gate_fraction(fraction)
    policy = GreedyPolicy(routing)
    result = run_workload(topo, policy, trace)
    model = EnergyModel()
    # The one-time sleep latency amortizes over the reconfiguration
    # granularity (100 us >> this scaled trace), not over the trace.
    amortized = 1.0 + plan.overhead_ns / manager.granularity_ns
    runtime = result.runtime_cycles * amortized
    energy = model.total_with_background_pj(
        result.stats, len(topo.active_nodes), runtime
    )
    edp = energy * runtime * model.config.cycle_ns
    return edp, len(topo.active_nodes)


def reproduce_figure9b() -> dict[str, dict[float, float]]:
    data: dict[str, dict[float, float]] = {}
    for workload in WORKLOADS:
        trace = collect_trace(
            workload,
            max_memory_accesses=TRACE_SIZE,
            scale=0.02,
            seed=3,
            max_cpu_accesses=250_000,
        )
        base_edp, _ = run_at_fraction(trace, 0.0)
        data[workload] = {}
        for fraction in FRACTIONS:
            edp, _active = run_at_fraction(trace, fraction)
            data[workload][fraction] = edp / base_edp
    return data


def test_figure9b_power_gating_edp(benchmark, record_result):
    data = benchmark.pedantic(reproduce_figure9b, rounds=1, iterations=1)
    rows = [
        [workload]
        + [f"{data[workload][f]:.3f}" for f in FRACTIONS]
        for workload in WORKLOADS
    ]
    print_table(
        f"Figure 9b: normalized EDP vs gated fraction (N={NUM_NODES}, "
        "lower is better)",
        ["workload", *[f"{f:.0%}" for f in FRACTIONS]],
        rows,
    )
    record_result("fig9b_power_gating_edp", data)

    for workload in WORKLOADS:
        series = data[workload]
        # Paper shape: gating improves energy efficiency — the best
        # EDP on the gated curve is meaningfully below the full
        # network's, and deep gating still beats no gating.
        assert min(series.values()) < 0.95 * series[0.0], (workload, series)
        assert series[FRACTIONS[-1]] < 1.05 * series[0.0], (workload, series)
    benchmark.extra_info["edp_at_max_gating"] = {
        w: data[w][FRACTIONS[-1]] for w in WORKLOADS
    }
