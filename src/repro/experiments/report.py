"""Rendering sweep results as text tables and JSON files.

Shared by the ``repro sweep`` CLI and the benchmark harness so every
consumer prints the same shapes.  Columns are chosen per task kind;
unsupported grid points render as ``-``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.experiments.runner import SweepResult
from repro.experiments.spec import ExperimentTask

__all__ = ["render_table", "sweep_table", "write_result_json"]


def render_table(header: list[str], rows: list[list[Any]]) -> str:
    """Right-aligned fixed-width text table."""
    widths = [
        max(len(str(header[i])), max((len(f"{r[i]}") for r in rows), default=0))
        for i in range(len(header))
    ]
    lines = ["  ".join(str(h).rjust(w) for h, w in zip(header, widths))]
    for row in rows:
        lines.append("  ".join(f"{c}".rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: Any, spec: str = ".2f") -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return format(value, spec)
    return str(value)


def _row(
    task: ExperimentTask, payload: dict[str, Any],
    extra: tuple[str, ...] = (),
) -> list[str]:
    row = _kind_row(task, payload)
    row.extend(_fmt(payload.get(key)) for key in extra)
    return row


def _kind_row(task: ExperimentTask, payload: dict[str, Any]) -> list[str]:
    unsupported = payload.get("unsupported")
    if task.kind == "synthetic":
        return [
            task.design, task.nodes, task.pattern, f"{task.rate:g}", task.seed,
            _fmt(None if unsupported else payload.get("avg_latency"), ".1f"),
            _fmt(None if unsupported else payload.get("p95_latency"), ".1f"),
            _fmt(None if unsupported else payload.get("avg_hops")),
            _fmt(None if unsupported else payload.get("accepted_rate"), ".3f"),
        ]
    if task.kind == "saturation":
        return [
            task.design, task.nodes, task.pattern, task.seed,
            _fmt(None if unsupported else payload.get("saturation_rate")),
        ]
    if task.kind == "workload":
        return [
            task.workload, task.design, task.nodes, task.seed,
            _fmt(None if unsupported else payload.get("throughput_ops_per_kcycle"), ".1f"),
            _fmt(None if unsupported else payload.get("avg_read_latency"), ".1f"),
            _fmt(None if unsupported else payload.get("runtime_cycles")),
        ]
    if task.kind == "churn":
        return [
            task.design, task.nodes, task.pattern, f"{task.rate:g}", task.seed,
            _fmt(None if unsupported else payload.get("num_events")),
            _fmt(None if unsupported else payload.get("avg_latency"), ".1f"),
            _fmt(None if unsupported else payload.get("max_peak_ratio")),
            _fmt(None if unsupported else payload.get("max_recovery_cycles")),
            _fmt(None if unsupported else payload.get("parked_total")),
            _fmt(
                None if unsupported
                else (payload.get("sent") == payload.get("delivered"))
            ),
        ]
    if task.kind == "migration":
        return [
            task.design, task.nodes, f"{task.rate:g}", task.seed,
            _fmt(None if unsupported else payload.get("mode")),
            _fmt(None if unsupported else payload.get("pages_moved")),
            _fmt(
                None if unsupported
                else payload.get("bytes_moved", 0) / 1024, ".0f"
            ),
            _fmt(None if unsupported else payload.get("migration_makespan")),
            _fmt(None if unsupported else payload.get("fg_p99_overall"), ".1f"),
            _fmt(None if unsupported else payload.get("fg_slowdown_p99")),
            _fmt(None if unsupported else payload.get("fg_stalled")),
            _fmt(
                None if unsupported
                else (
                    payload.get("sent") == payload.get("delivered")
                    and payload.get("fg_issued") == payload.get("fg_completed")
                    and bool(payload.get("page_conservation"))
                )
            ),
        ]
    if task.kind == "faults":
        return [
            task.design, task.nodes, f"{task.rate:g}", task.seed,
            _fmt(None if unsupported else payload.get("num_faults")),
            _fmt(None if unsupported else payload.get("lost")),
            _fmt(None if unsupported else payload.get("retransmits")),
            _fmt(None if unsupported else payload.get("fg_p50_during"), ".0f"),
            _fmt(None if unsupported else payload.get("fg_p99_during"), ".0f"),
            _fmt(None if unsupported else payload.get("fg_slowdown_p99")),
            _fmt(None if unsupported else payload.get("unreachable_node_cycles")),
            _fmt(None if unsupported else payload.get("pages_lost")),
            _fmt(None if unsupported else payload.get("all_conserved")),
        ]
    if task.kind == "service":
        return [
            task.design, task.nodes, f"{task.rate:g}", task.seed,
            _fmt(None if unsupported else payload.get("submitted")),
            _fmt(None if unsupported else payload.get("completed")),
            _fmt(None if unsupported else payload.get("shed")),
            _fmt(None if unsupported else payload.get("queued_total")),
            _fmt(
                None if unsupported
                else payload.get("requests_per_kcycle"), ".1f"
            ),
            _fmt(None if unsupported else payload.get("p50"), ".0f"),
            _fmt(None if unsupported else payload.get("p99"), ".0f"),
            _fmt(None if unsupported else payload.get("p99_max"), ".0f"),
            _fmt(None if unsupported else payload.get("pages_lost")),
            _fmt(None if unsupported else payload.get("conserved")),
        ]
    if task.kind == "interference":
        return [
            task.design, task.nodes, f"{task.rate:g}", task.seed,
            _fmt(None if unsupported else payload.get("mode")),
            _fmt(None if unsupported else payload.get("qos")),
            _fmt(None if unsupported else payload.get("fg_p50"), ".0f"),
            _fmt(None if unsupported else payload.get("fg_p99"), ".0f"),
            _fmt(None if unsupported else payload.get("bulk_p50"), ".0f"),
            _fmt(None if unsupported else payload.get("bulk_p99"), ".0f"),
            _fmt(None if unsupported else payload.get("p99_ratio"), ".1f"),
            _fmt(None if unsupported else payload.get("deadlock_recoveries")),
            _fmt(
                None if unsupported
                else (
                    bool(payload.get("conserved"))
                    and bool(payload.get("drained"))
                )
            ),
        ]
    if task.kind == "anatomy":
        # The per-component fractions / hot links / interference cells
        # ride in as ``obs_``-prefixed auto-columns.
        return [
            task.design, task.nodes, f"{task.rate:g}", task.seed,
            _fmt(None if unsupported else payload.get("mode")),
            _fmt(None if unsupported else payload.get("qos")),
            _fmt(None if unsupported else payload.get("fg_p99"), ".0f"),
            _fmt(None if unsupported else payload.get("bulk_p99"), ".0f"),
            _fmt(None if unsupported else payload.get("p99_ratio"), ".1f"),
            _fmt(
                None if unsupported
                else (
                    bool(payload.get("conserved"))
                    and bool(payload.get("drained"))
                )
            ),
        ]
    if task.kind == "perf":
        return [
            task.design, task.nodes, task.pattern, f"{task.rate:g}", task.seed,
            _fmt(None if unsupported else payload.get("events")),
            _fmt(None if unsupported else payload.get("wall_s"), ".3f"),
            _fmt(
                None if unsupported
                else payload.get("events_per_sec"), ",.0f"
            ),
            _fmt(None if unsupported else payload.get("delivered")),
            _fmt(None if unsupported else payload.get("avg_latency"), ".1f"),
        ]
    return [  # path_stats
        task.design, task.nodes, task.seed,
        _fmt(None if unsupported else payload.get("mean_hops")),
        _fmt(None if unsupported else payload.get("p90_hops"), ".1f"),
        _fmt(None if unsupported else payload.get("max_hops")),
    ]


_HEADERS = {
    "synthetic": ["design", "N", "pattern", "rate", "seed",
                  "avg_lat", "p95_lat", "hops", "accepted"],
    "saturation": ["design", "N", "pattern", "seed", "sat_rate"],
    "workload": ["workload", "design", "N", "seed",
                 "ops/kcycle", "read_lat", "runtime"],
    "path_stats": ["design", "N", "seed", "mean_hops", "p90", "max"],
    "churn": ["design", "N", "pattern", "rate", "seed", "events",
              "avg_lat", "peak_ratio", "recov_cyc", "parked", "conserved"],
    "migration": ["design", "N", "rate", "seed", "mode", "pages", "KiB",
                  "makespan", "fg_p99", "slow_p99", "stalled", "conserved"],
    "faults": ["design", "N", "rate", "seed", "faults", "lost", "retx",
               "p50_dur", "p99_dur", "slow_p99", "unreach_cyc", "pg_lost",
               "conserved"],
    "perf": ["design", "N", "pattern", "rate", "seed", "events",
             "wall_s", "events/s", "delivered", "avg_lat"],
    "service": ["design", "N", "rate", "seed", "submitted", "done", "shed",
                "queued", "req/kcyc", "p50", "p99", "p99_max", "pg_lost",
                "conserved"],
    "interference": ["design", "N", "rate", "seed", "mode", "qos",
                     "fg_p50", "fg_p99", "bulk_p50", "bulk_p99",
                     "p99_ratio", "recov", "conserved"],
    "anatomy": ["design", "N", "rate", "seed", "mode", "qos",
                "fg_p99", "bulk_p99", "p99_ratio", "conserved"],
}


def sweep_table(result: SweepResult) -> str:
    """Render a whole sweep, one table section per task kind.

    Payload keys prefixed ``obs_`` (added by instrumented runs — the
    ``repro trace`` CLI and the benchmark harness) become extra columns
    appended after the kind's standard set, so observability fields
    ride along without a per-kind schema change.
    """
    sections: list[str] = []
    for kind in _HEADERS:
        pairs = [(t, p) for t, p in result if t.kind == kind]
        if not pairs:
            continue
        extra = tuple(sorted(
            {key for _, p in pairs for key in p if key.startswith("obs_")}
        ))
        header = _HEADERS[kind] + [key[len("obs_"):] for key in extra]
        rows = [_row(task, payload, extra) for task, payload in pairs]
        sections.append(render_table(header, rows))
    return "\n\n".join(sections)


def write_result_json(path: str | Path, data: Any) -> Path:
    """Persist figure data as pretty JSON (benchmark bookkeeping)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
    return path
