"""On-disk result cache for experiment tasks.

One JSON file per task under the cache directory, named by the task's
stable content hash (:meth:`ExperimentTask.key`).  Because tasks are
pure functions of their fields *and the simulator code*, entries live
in a per-code-generation subdirectory keyed by a fingerprint of the
``repro`` package sources: editing any simulator code automatically
invalidates the cache (stale generations are simply ignored), so a
cached figure can never silently reproduce pre-change numbers.  Within
one generation, re-running a sweep with one new rate only simulates
the new point.

Layout (default root ``benchmarks/results/cache/``)::

    cache/
      <12-hex code fingerprint>/
        <24-hex task hash>.json   # {"task": {...}, "payload": {...}}

Files carry the originating task dict for debuggability; only the
filename hash is used for lookup.  Writes go through a temp file +
rename so a crashed run never leaves a truncated entry behind, and
corrupt entries read as misses.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any

from repro.experiments.spec import ExperimentTask

__all__ = ["ResultCache", "code_fingerprint"]

_FINGERPRINT: str | None = None


def code_fingerprint() -> str:
    """Content hash of the ``repro`` package sources (once per process).

    Any change to the simulator invalidates cached results — a
    docstring edit costs a re-simulation, which is the safe direction.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        import repro

        package_dir = Path(repro.__file__).parent
        digest = hashlib.sha256()
        for path in sorted(package_dir.rglob("*.py")):
            digest.update(str(path.relative_to(package_dir)).encode())
            digest.update(path.read_bytes())
        _FINGERPRINT = digest.hexdigest()[:12]
    return _FINGERPRINT


class ResultCache:
    """Directory-backed task-result store.

    Parameters
    ----------
    directory:
        Cache root; entries land in a per-code-generation
        subdirectory.
    fingerprint:
        Override the code fingerprint (tests); ``""`` disables the
        generation subdirectory entirely.
    """

    def __init__(
        self, directory: str | Path, fingerprint: str | None = None
    ) -> None:
        self.root = Path(directory)
        self.fingerprint = (
            code_fingerprint() if fingerprint is None else fingerprint
        )
        self.directory = (
            self.root / self.fingerprint if self.fingerprint else self.root
        )
        self.directory.mkdir(parents=True, exist_ok=True)
        self._prune_stale_generations()

    def _prune_stale_generations(self) -> None:
        """Delete sibling generation directories from older code.

        Their entries can never be served again (the fingerprint is a
        content hash), so keeping them only grows the cache without
        bound as sources are edited.
        """
        import shutil

        if not self.fingerprint:
            return
        for sibling in self.root.iterdir():
            if (
                sibling.is_dir()
                and sibling.name != self.fingerprint
                and len(sibling.name) == 12
                and all(c in "0123456789abcdef" for c in sibling.name)
            ):
                shutil.rmtree(sibling, ignore_errors=True)

    def path_for(self, task: ExperimentTask) -> Path:
        """On-disk location of *task*'s cached payload."""
        return self.directory / f"{task.key()}.json"

    def get(self, task: ExperimentTask) -> dict[str, Any] | None:
        """Cached payload for *task*, or ``None`` on a miss."""
        path = self.path_for(task)
        try:
            with open(path) as fh:
                entry = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        payload = entry.get("payload")
        return payload if isinstance(payload, dict) else None

    def put(self, task: ExperimentTask, payload: dict[str, Any]) -> None:
        """Store *payload* for *task* (atomic replace).

        The temp name is writer-unique so concurrent sweeps sharing a
        cache directory cannot clobber each other's in-progress writes;
        last replace wins with a complete entry either way.
        """
        path = self.path_for(task)
        tmp = path.with_name(f"{path.stem}.{os.getpid()}.tmp")
        with open(tmp, "w") as fh:
            json.dump({"task": task.to_dict(), "payload": payload}, fh,
                      indent=2, sort_keys=True)
        os.replace(tmp, path)

    def __len__(self) -> int:
        """Entries in the current code generation."""
        return sum(1 for _ in self.directory.glob("*.json"))

    def clear(self) -> int:
        """Delete the current generation's entries; returns the count."""
        removed = 0
        for path in self.directory.glob("*.json"):
            path.unlink()
            removed += 1
        return removed
