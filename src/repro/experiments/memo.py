"""Per-process memoization of expensive experiment inputs.

Topology construction (coordinate generation, shortcut search) and
routing-table builds dominate sweep setup cost: a 5-design x 8-rate x
4-pattern grid would otherwise rebuild each topology 32 times.  These
module-level caches live once per worker process — under
``multiprocessing`` each pool worker fills its own copy — so every
distinct (design, scale, seed, parameters) combination is built once
per process and shared across all tasks that use it.

Reuse is sound for determinism because everything cached is either
immutable after construction (topologies, routing tables, traces) or
an *exact* memo of a pure function (``GreedyPolicy``'s route cache
stores deterministic decisions only), so a task computes the same
result whether its inputs are fresh or reused.  Tasks that would
mutate a topology (reconfiguration, power gating) must not go through
these caches.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "clear_memo",
    "memo_policy",
    "memo_routing",
    "memo_topology",
    "memo_trace",
    "memo_sizes",
]

_Frozen = tuple[tuple[str, Any], ...]

_TOPOLOGIES: dict[tuple, Any] = {}
_POLICIES: dict[tuple, Any] = {}
_ROUTINGS: dict[tuple, Any] = {}
_TRACES: dict[tuple, Any] = {}


def clear_memo() -> None:
    """Drop every memoized object (tests; long-lived processes)."""
    _TOPOLOGIES.clear()
    _POLICIES.clear()
    _ROUTINGS.clear()
    _TRACES.clear()


def memo_sizes() -> dict[str, int]:
    """Current entry counts per memo table (observability/tests)."""
    return {
        "topologies": len(_TOPOLOGIES),
        "policies": len(_POLICIES),
        "routings": len(_ROUTINGS),
        "traces": len(_TRACES),
    }


def _topology_key(
    design: str, nodes: int, seed: int, params: _Frozen
) -> tuple:
    return (design.strip().upper(), nodes, seed, params)


def memo_topology(
    design: str, nodes: int, seed: int, params: _Frozen = ()
):
    """Build (or reuse) a named topology.

    ``params`` are extra :func:`repro.topologies.registry.make_topology`
    keyword arguments in frozen form; ``ports`` is recognized and
    forwarded to the registry's port override.
    """
    from repro.topologies.registry import make_topology

    key = _topology_key(design, nodes, seed, params)
    topo = _TOPOLOGIES.get(key)
    if topo is None:
        kwargs = dict(params)
        ports = kwargs.pop("ports", None)
        topo = make_topology(design, nodes, seed=seed, ports=ports, **kwargs)
        _TOPOLOGIES[key] = topo
    return topo


def memo_policy(
    design: str, nodes: int, seed: int, params: _Frozen = ()
):
    """Build (or reuse) a topology plus its paper routing policy."""
    from repro.topologies.registry import make_policy

    key = _topology_key(design, nodes, seed, params)
    pair = _POLICIES.get(key)
    if pair is None:
        topo = memo_topology(design, nodes, seed, params)
        pair = (topo, make_policy(topo))
        _POLICIES[key] = pair
    return pair


def memo_routing(
    design: str,
    nodes: int,
    seed: int,
    params: _Frozen = (),
    use_two_hop: bool = True,
):
    """Build (or reuse) a :class:`GreediestRouting` for path analyses.

    Only meaningful for the coordinate-routed designs (SF/S2); raises
    ``ValueError`` for table-routed baselines — the same category as
    an unrealizable scale, so callers treat both as unsupported points
    (a genuinely wrong argument, e.g. a typo'd topology kwarg, still
    raises TypeError and propagates).
    """
    from repro.core.routing import GreediestRouting
    from repro.core.topology import StringFigureTopology

    key = (*_topology_key(design, nodes, seed, params), bool(use_two_hop))
    pair = _ROUTINGS.get(key)
    if pair is None:
        topo = memo_topology(design, nodes, seed, params)
        if not isinstance(topo, StringFigureTopology):
            raise ValueError(
                f"path_stats tasks need a coordinate-routed design, "
                f"got {type(topo).__name__} for {design!r}"
            )
        pair = (topo, GreediestRouting(topo, use_two_hop=use_two_hop))
        _ROUTINGS[key] = pair
    return pair


def memo_trace(
    workload: str,
    max_memory_accesses: int,
    scale: float,
    seed: int,
    max_cpu_accesses: int | None = None,
    cpi: float = 1.0,
):
    """Collect (or reuse) one workload memory trace."""
    from repro.workloads.trace import collect_trace

    key = (workload, max_memory_accesses, scale, seed, max_cpu_accesses, cpi)
    trace = _TRACES.get(key)
    if trace is None:
        trace = collect_trace(
            workload,
            max_memory_accesses=max_memory_accesses,
            scale=scale,
            seed=seed,
            cpi=cpi,
            max_cpu_accesses=max_cpu_accesses,
        )
        _TRACES[key] = trace
    return trace
