"""Parallel sweep execution with caching.

:class:`ParallelRunner` takes a spec (or several specs, or an explicit
task list), serves what it can from the :class:`ResultCache`, and
executes the remaining tasks — across a ``multiprocessing`` pool when
``workers > 1``, in-process otherwise.  Execution is deterministic by
construction: every task carries its own seeds and is a pure function
of its fields, so worker count and scheduling order cannot change any
payload (a regression test pins serial == 4-worker results).

Fallback behavior: if the platform cannot create a process pool (some
sandboxes lack ``sem_open``), the runner silently degrades to serial
execution — same results, one core.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.experiments.cache import ResultCache
from repro.experiments.spec import ExperimentSpec, ExperimentTask
from repro.experiments.worker import execute_task

__all__ = ["ParallelRunner", "SweepResult"]


def _pin_worker(core_queue) -> None:
    """Pool initializer: pin this worker process to one dedicated core.

    Each worker pops a distinct core id from *core_queue* and binds its
    affinity mask to it, so perf sweeps time each point on a core no
    sibling worker is scheduled onto.  Platforms without
    ``sched_setaffinity`` (or with a queue raced empty) degrade to an
    unpinned worker — timing interference returns, correctness does
    not.
    """
    import os
    import queue

    try:
        core = core_queue.get_nowait()
    except queue.Empty:
        return
    try:
        os.sched_setaffinity(0, {core})
    except (AttributeError, OSError):
        pass


@dataclass
class SweepResult:
    """Outcome of one sweep: ordered tasks plus their payloads."""

    tasks: list[ExperimentTask]
    payloads: dict[str, dict[str, Any]]
    cache_hits: int = 0
    cache_misses: int = 0
    elapsed_s: float = 0.0
    workers: int = 1

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[tuple[ExperimentTask, dict[str, Any]]]:
        for task in self.tasks:
            yield task, self.payloads[task.key()]

    def payload(self, task: ExperimentTask) -> dict[str, Any]:
        """Result payload recorded for *task*."""
        return self.payloads[task.key()]

    def select(
        self, **filters: Any
    ) -> list[tuple[ExperimentTask, dict[str, Any]]]:
        """All (task, payload) pairs whose task fields match *filters*."""
        return [
            (task, payload)
            for task, payload in self
            if all(getattr(task, k) == v for k, v in filters.items())
        ]

    def get(self, **filters: Any) -> dict[str, Any]:
        """Payload of the unique task matching *filters*."""
        matches = self.select(**filters)
        if len(matches) != 1:
            raise KeyError(
                f"{len(matches)} tasks match {filters!r} (expected 1)"
            )
        return matches[0][1]

    def value(self, metric: str, default: Any = None, **filters: Any) -> Any:
        """One metric of the unique task matching *filters*."""
        return self.get(**filters).get(metric, default)

    def summary(self) -> str:
        """One-line human summary: task count, cache hits, wall time."""
        return (
            f"{len(self.tasks)} tasks: {self.cache_hits} cache hits, "
            f"{self.cache_misses} simulated "
            f"({self.workers} worker{'s' if self.workers != 1 else ''}, "
            f"{self.elapsed_s:.1f}s)"
        )


@dataclass
class ParallelRunner:
    """Execute experiment sweeps with caching and optional parallelism.

    Parameters
    ----------
    workers:
        Process count; ``1`` (default) runs in-process, ``0`` means one
        per CPU.  Results are identical for every value.
    cache:
        Optional :class:`ResultCache`; hits skip simulation entirely.
    keep_memo:
        Keep the per-process construction memos warm after a sweep
        finishes.  Off by default so a long session's memory stays
        bounded by one sweep's working set (memoization within a sweep
        — the part that matters — is unaffected, and reuse is exact
        either way).
    isolate:
        Pin one pool worker to each available core (and cap the pool
        at the core count), so concurrently timed points never share a
        core.  Tasks inside each worker still run serially, which is
        what makes wall-clock perf measurements trustworthy at many
        points.  Payloads are unaffected — isolation only removes
        timing interference.
    """

    workers: int = 1
    cache: ResultCache | None = None
    keep_memo: bool = False
    isolate: bool = False
    _pool_broken: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.workers == 0:
            import os

            self.workers = os.cpu_count() or 1
        if self.isolate:
            self.workers = min(self.workers, len(self._cores()))
        if self.workers < 1:
            raise ValueError(f"workers must be >= 0, got {self.workers}")

    def run(
        self,
        spec: ExperimentSpec | Sequence[ExperimentSpec] | Sequence[ExperimentTask],
    ) -> SweepResult:
        """Run a spec, a sequence of specs, or an explicit task list."""
        if isinstance(spec, ExperimentSpec):
            tasks = spec.tasks()
        else:
            items = list(spec)
            if items and isinstance(items[0], ExperimentSpec):
                tasks = [t for s in items for t in s.tasks()]
            else:
                tasks = items
        return self.run_tasks(tasks)

    def run_tasks(self, tasks: Sequence[ExperimentTask]) -> SweepResult:
        """Execute *tasks* (deduplicated, cache-aware) and collect results."""
        start = time.perf_counter()
        # Duplicate grid points (e.g. overlapping specs) simulate once.
        ordered: list[ExperimentTask] = []
        seen: set[str] = set()
        for task in tasks:
            if task.key() not in seen:
                seen.add(task.key())
                ordered.append(task)

        payloads: dict[str, dict[str, Any]] = {}
        pending: list[ExperimentTask] = []
        hits = 0
        for task in ordered:
            # perf payloads carry wall-clock timings: never serve them
            # from (or store them in) the cache — a replayed timing is
            # a bogus measurement that looks fresh.
            cached = (
                self.cache.get(task)
                if self.cache is not None and task.kind != "perf"
                else None
            )
            if cached is not None:
                payloads[task.key()] = cached
                hits += 1
            else:
                pending.append(task)

        try:
            for task, payload in self._execute(pending):
                payloads[task.key()] = payload
                if self.cache is not None and task.kind != "perf":
                    self.cache.put(task, payload)
        finally:
            if pending and not self.keep_memo:
                from repro.experiments.memo import clear_memo

                clear_memo()

        return SweepResult(
            tasks=ordered,
            payloads=payloads,
            cache_hits=hits,
            cache_misses=len(pending),
            elapsed_s=time.perf_counter() - start,
            # Report what actually ran, not what was requested.
            workers=1 if self._pool_broken else self.workers,
        )

    # -- execution ---------------------------------------------------------

    def _execute(
        self, pending: list[ExperimentTask]
    ) -> list[tuple[ExperimentTask, dict[str, Any]]]:
        if not pending:
            return []
        if self.workers > 1 and len(pending) > 1 and not self._pool_broken:
            results = self._execute_pool(pending)
            if results is not None:
                return results
        return [(task, execute_task(task)) for task in pending]

    @staticmethod
    def _cores() -> list[int]:
        """Core ids this process may schedule onto."""
        import os

        try:
            return sorted(os.sched_getaffinity(0))
        except AttributeError:
            return list(range(os.cpu_count() or 1))

    def _execute_pool(
        self, pending: list[ExperimentTask]
    ) -> list[tuple[ExperimentTask, dict[str, Any]]] | None:
        import multiprocessing

        processes = min(self.workers, len(pending))
        pool_kwargs: dict[str, Any] = {}
        if self.isolate:
            context = multiprocessing.get_context()
            core_queue = context.Queue()
            for core in self._cores()[:processes]:
                core_queue.put(core)
            pool_kwargs = {
                "initializer": _pin_worker, "initargs": (core_queue,),
            }
        try:
            pool = multiprocessing.get_context().Pool(processes, **pool_kwargs)
        except (OSError, ImportError) as exc:
            # No pool on this platform; degrade to serial permanently.
            # Only Pool *creation* is guarded — a task error during
            # execution is a real failure and must propagate, not
            # silently re-run the whole sweep serially.
            import warnings

            warnings.warn(
                f"multiprocessing unavailable ({exc}); running sweeps "
                "on one core",
                RuntimeWarning,
                stacklevel=2,
            )
            self._pool_broken = True
            return None
        with pool:
            # chunksize=1: tasks vary wildly in cost (a 16-node probe
            # vs a 1296-node saturation search), so fine chunks keep
            # the pool balanced.
            computed = pool.map(execute_task, pending, chunksize=1)
        return list(zip(pending, computed))
