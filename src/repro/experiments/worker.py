"""Task execution: one :class:`ExperimentTask` -> one payload dict.

:func:`execute_task` is the single entry point used by both the serial
path and the multiprocessing pool (it must stay a module-level function
so it pickles by reference).  Payloads are flat JSON-safe dicts of raw
metrics — consumers apply their own thresholds/normalization — so the
same cached result serves every figure that needs the point.

Tasks whose topology cannot be built at the requested scale (e.g. a
mesh at a non-square node count) return ``{"unsupported": True}``
instead of raising: an unsupported grid point is data, not an error,
and the paper's figures show exactly such holes.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.memo import (
    memo_policy,
    memo_routing,
    memo_trace,
)
from repro.experiments.spec import ExperimentTask

__all__ = ["execute_task"]


def _radix_of(topology) -> int:
    return (
        topology.num_ports
        if hasattr(topology, "num_ports")
        else topology.radix
    )


def _stats_payload(stats) -> dict[str, Any]:
    """Flatten a :class:`SimStats` into JSON-safe raw metrics."""
    return {
        "injected": stats.injected,
        "delivered": stats.delivered,
        "measured_delivered": stats.measured_delivered,
        "avg_latency": stats.avg_latency,
        "p95_latency": stats.latency.percentile(95),
        "max_latency": stats.latency.maximum,
        "avg_hops": stats.avg_hops,
        "accepted_rate": stats.accepted_rate,
        "fallback_hops": stats.fallback_hops,
        "deadlock_recoveries": stats.deadlock_recoveries,
        "bit_hops": stats.bit_hops,
        "flit_hops": stats.flit_hops,
        "flit_delivered": stats.flit_delivered,
        "measure_cycles": stats.measure_cycles,
        "num_nodes": stats.num_nodes,
        "throughput": stats.throughput_flits_per_node_cycle,
        "avg_queue": stats.avg_queue_occupancy,
    }


def execute_task(task: ExperimentTask, instrument=None) -> dict[str, Any]:
    """Run one task to completion and return its payload.

    ``instrument`` (optional) is forwarded to runners that build a
    simulator or service: it is called with the freshly built object
    before traffic starts, which is how ``repro trace`` attaches
    observability probes.  Kinds without a single instrumentable run
    (``saturation``, ``workload``, ``path_stats``) ignore it.
    """
    runner = _RUNNERS.get(task.kind)
    if runner is None:
        raise ValueError(f"unknown task kind {task.kind!r}")
    return runner(task, instrument)


def _build_policy(task: ExperimentTask):
    return memo_policy(
        task.design, task.nodes, task.topology_seed, task.topology_params
    )


def _run_synthetic(task: ExperimentTask, instrument=None) -> dict[str, Any]:
    from repro.traffic.injection import run_synthetic
    from repro.traffic.patterns import make_pattern

    try:
        topo, policy = _build_policy(task)
    except ValueError as exc:
        return {"unsupported": True, "error": str(exc)}
    pattern = make_pattern(task.pattern, topo.active_nodes)
    stats = run_synthetic(
        topo,
        policy,
        pattern,
        task.rate,
        warmup=task.sim("warmup", 300),
        measure=task.sim("measure", 1000),
        drain_limit=task.sim("drain_limit", 40_000),
        payload_bytes=task.sim("payload_bytes", 64),
        seed=task.seed,
        instrument=instrument,
    )
    payload = _stats_payload(stats)
    payload["radix"] = _radix_of(topo)
    return payload


def _run_saturation(task: ExperimentTask, instrument=None) -> dict[str, Any]:
    from repro.analysis.saturation import find_saturation
    from repro.traffic.patterns import make_pattern

    try:
        topo, policy = _build_policy(task)
    except ValueError as exc:
        return {"unsupported": True, "error": str(exc)}
    pattern = make_pattern(task.pattern, topo.active_nodes)
    rate = find_saturation(
        topo,
        policy,
        pattern,
        low_rate=task.sim("low_rate", 0.02),
        latency_factor=task.sim("latency_factor", 3.0),
        accept_threshold=task.sim("accept_threshold", 0.95),
        warmup=task.sim("warmup", 200),
        measure=task.sim("measure", 500),
        drain_limit=task.sim("drain_limit", 20_000),
        resolution=task.sim("resolution", 0.05),
        seed=task.seed,
    )
    return {"saturation_rate": rate}


def _run_workload(task: ExperimentTask, instrument=None) -> dict[str, Any]:
    from repro.workloads.runner import run_workload

    try:
        topo, policy = _build_policy(task)
    except ValueError as exc:
        return {"unsupported": True, "error": str(exc)}
    # Trace collection is the only stochastic input of a replay, so the
    # task's seed axis drives it unless the spec pins an explicit
    # trace_seed — this is what makes `seeds=(0, 1, 2)` produce real
    # replicates rather than three identical runs.
    trace = memo_trace(
        task.workload,
        max_memory_accesses=task.sim("trace_accesses", 2000),
        scale=task.sim("trace_scale", 0.02),
        seed=task.sim("trace_seed", task.seed),
        max_cpu_accesses=task.sim("max_cpu_accesses"),
        cpi=task.sim("cpi", 1.0),
    )
    result = run_workload(
        topo,
        policy,
        trace,
        sockets=task.sim("sockets", 4),
        mlp=task.sim("mlp", 8),
    )
    return {
        "workload": result.workload,
        "topology": result.topology,
        "radix": _radix_of(topo),
        "runtime_cycles": result.runtime_cycles,
        "operations": result.operations,
        "throughput_ops_per_kcycle": result.throughput_ops_per_kcycle,
        "avg_read_latency": result.avg_read_latency,
        "ipc": result.ipc,
        "instructions": result.instructions,
        # Flat (radix-independent) energy components; consumers apply
        # repro.energy.model.radix_energy_factor(radix) when they want
        # the radix-aware Figure 12(b) accounting.
        "network_pj": result.energy.network_pj,
        "dram_pj": result.energy.dram_pj,
        "bit_hops": result.stats.bit_hops,
        "dram_bits": result.stats.dram_bits,
        "fallback_hops": result.stats.fallback_hops,
        "deadlock_recoveries": result.stats.deadlock_recoveries,
    }


def _run_churn(task: ExperimentTask, instrument=None) -> dict[str, Any]:
    """One live-reconfiguration scenario under synthetic traffic.

    Reconfiguration mutates topology and routing tables, so this runner
    builds everything *fresh* (never through the per-process memos —
    see the :mod:`repro.experiments.memo` reuse contract).  The run is
    still a pure function of the task fields, so caching stays sound.
    """
    from repro.core.topology import StringFigureTopology
    from repro.topologies.registry import make_topology
    from repro.workloads.churn import ChurnSchedule, run_churn

    kwargs = dict(task.topology_params)
    ports = kwargs.pop("ports", None)
    try:
        topo = make_topology(
            task.design, task.nodes, seed=task.topology_seed, ports=ports,
            **kwargs,
        )
    except ValueError as exc:
        return {"unsupported": True, "error": str(exc)}
    if not (
        isinstance(topo, StringFigureTopology) and topo.with_shortcuts
    ):
        return {
            "unsupported": True,
            "error": f"churn requires shortcut wires; {task.design} has none",
        }

    warmup = task.sim("warmup", 300)
    measure = task.sim("measure", 4000)
    fraction = task.sim("gate_fraction", 0.25)
    kind = task.sim("schedule", "cycle")
    schedule = None
    controller_params = None
    if kind == "cycle":
        schedule = ChurnSchedule.cycle(
            gate_at=task.sim("gate_at", warmup + measure // 4),
            wake_at=task.sim("wake_at", warmup + measure // 2),
            fraction=fraction,
        )
    elif kind == "periodic":
        schedule = ChurnSchedule.periodic(
            start=task.sim("start", warmup),
            period=task.sim("period", measure // 2),
            duty=task.sim("duty", 0.5),
            fraction=fraction,
            cycles=task.sim("cycles", 2),
        )
    elif kind == "utilization":
        controller_params = {
            "interval": task.sim("interval", 1000),
            "low_util": task.sim("low_util", 0.01),
            "high_util": task.sim("high_util", 0.05),
            "gate_step": task.sim("gate_step", 2),
            "min_active_fraction": task.sim("min_active_fraction", 0.5),
        }
    else:
        raise ValueError(f"unknown churn schedule kind {kind!r}")

    result = run_churn(
        topo,
        pattern=task.pattern,
        rate=task.rate,
        schedule=schedule,
        controller_params=controller_params,
        warmup=warmup,
        measure=measure,
        drain_limit=task.sim("drain_limit", 60_000),
        seed=task.seed,
        payload_bytes=task.sim("payload_bytes", 64),
        window_cycles=task.sim("window", 200),
        granularity_ns=task.sim("granularity_ns"),
        instrument=instrument,
    )
    payload = result.payload()
    payload["radix"] = _radix_of(topo)
    return payload


def _run_migration(task: ExperimentTask, instrument=None) -> dict[str, Any]:
    """One gate-off/wake cycle with real (or teleported) data movement.

    Like ``churn``, the scenario mutates topology and routing tables,
    so everything is built fresh per task; the run stays a pure
    function of the task fields and caching stays sound.
    """
    from repro.core.topology import StringFigureTopology
    from repro.topologies.registry import make_topology
    from repro.workloads.migration import run_migration

    kwargs = dict(task.topology_params)
    ports = kwargs.pop("ports", None)
    try:
        topo = make_topology(
            task.design, task.nodes, seed=task.topology_seed, ports=ports,
            **kwargs,
        )
    except ValueError as exc:
        return {"unsupported": True, "error": str(exc)}
    if not (
        isinstance(topo, StringFigureTopology) and topo.with_shortcuts
    ):
        return {
            "unsupported": True,
            "error": f"migration requires shortcut wires; {task.design} has none",
        }

    warmup = task.sim("warmup", 300)
    measure = task.sim("measure", 6000)
    result = run_migration(
        topo,
        rate=task.rate,
        gate_fraction=task.sim("gate_fraction", 0.25),
        gate_at=task.sim("gate_at"),
        wake_at=task.sim("wake_at"),
        footprint_pages=task.sim("footprint_pages", 128),
        page_bytes=task.sim("page_bytes", 4096),
        rate_limit=task.sim("rate_limit", 32.0),
        max_inflight_pages=task.sim("max_inflight_pages", 4),
        chunk_bytes=task.sim("chunk_bytes", 512),
        mode=task.sim("mode", "migrate"),
        warmup=warmup,
        measure=measure,
        drain_limit=task.sim("drain_limit", 80_000),
        seed=task.seed,
        instrument=instrument,
    )
    payload = result.payload()
    payload["radix"] = _radix_of(topo)
    return payload


def _run_faults(task: ExperimentTask, instrument=None) -> dict[str, Any]:
    """One unplanned-failure scenario under synthetic traffic.

    Faults mutate the topology (crash excision), routing tables, and —
    with a page layer — the data placement, so everything is built
    *fresh* per task (never through the per-process memos).  The run is
    a pure function of the task fields: fault times, victims, detection
    actions, and recovery transfers all derive from the task seeds, so
    caching and parallel execution stay sound.

    Unlike ``churn``/``migration``, the designs axis spans the
    baselines: DM and Jellyfish repair by global routing recompute, the
    paper's comparison point for String Figure's local table repair.
    """
    from repro.core.topology import StringFigureTopology
    from repro.topologies.registry import make_topology
    from repro.workloads.faults import run_faults

    kwargs = dict(task.topology_params)
    ports = kwargs.pop("ports", None)
    try:
        topo = make_topology(
            task.design, task.nodes, seed=task.topology_seed, ports=ports,
            **kwargs,
        )
    except ValueError as exc:
        return {"unsupported": True, "error": str(exc)}
    if isinstance(topo, StringFigureTopology) and not topo.with_shortcuts:
        return {
            "unsupported": True,
            "error": (
                f"fault recovery requires shortcut wires; "
                f"{task.design} has none"
            ),
        }

    warmup = task.sim("warmup", 300)
    measure = task.sim("measure", 4000)
    kinds = task.sim("kinds")
    result = run_faults(
        topo,
        pattern=task.pattern,
        rate=task.rate,
        schedule=task.sim("schedule", "random"),
        fault_rate=task.sim("fault_rate", 0.001),
        kinds=tuple(kinds) if kinds else ("link_down", "link_flap",
                                          "node_crash", "node_hang"),
        flap_cycles=task.sim("flap_cycles", 300),
        hang_cycles=task.sim("hang_cycles", 500),
        max_crashes=task.sim("max_crashes", 1),
        crash_at=task.sim("crash_at"),
        detection_timeout=task.sim("detection_timeout", 200),
        retransmit_timeout=task.sim("retransmit_timeout", 64),
        max_retries=task.sim("max_retries", 8),
        footprint_pages=task.sim("footprint_pages", 0),
        page_bytes=task.sim("page_bytes", 4096),
        mirrored=bool(task.sim("mirrored", True)),
        mig_rate_limit=task.sim("mig_rate_limit", 64.0),
        warmup=warmup,
        measure=measure,
        drain_limit=task.sim("drain_limit", 60_000),
        seed=task.seed,
        payload_bytes=task.sim("payload_bytes", 64),
        window_cycles=task.sim("window", 200),
        instrument=instrument,
    )
    payload = result.payload()
    payload["radix"] = _radix_of(topo)
    return payload


def _run_perf(task: ExperimentTask, instrument=None) -> dict[str, Any]:
    """One simulator-throughput measurement (the perf trajectory).

    Times the event loop of a synthetic run — topology and policy are
    built *fresh* and outside the timed region, so the measurement is
    cold-cache and covers exactly the simulation hot path.  ``repeats``
    (default 2) re-runs the identical simulation and reports the best
    timing (the run reusing the warmed policy caches, as a long sweep
    would); traffic statistics are deterministic across repeats and
    double as a correctness cross-check.  Timing fields are wall-clock:
    run perf sweeps with the result cache disabled.
    """
    import time

    from repro.network.simulator import NetworkSimulator
    from repro.topologies.registry import make_policy, make_topology
    from repro.traffic.injection import BernoulliInjector
    from repro.traffic.patterns import make_pattern

    kwargs = dict(task.topology_params)
    ports = kwargs.pop("ports", None)
    try:
        topo = make_topology(
            task.design, task.nodes, seed=task.topology_seed, ports=ports,
            **kwargs,
        )
    except ValueError as exc:
        return {"unsupported": True, "error": str(exc)}
    policy = make_policy(topo)
    pattern = make_pattern(task.pattern, topo.active_nodes)
    warmup = task.sim("warmup", 100)
    measure = task.sim("measure", 300)
    drain_limit = task.sim("drain_limit", 20_000)
    repeats = task.sim("repeats", 2)
    sample_free = bool(task.sim("sample_free", True))
    eager = bool(task.sim("eager_link_events", False))

    best: dict[str, Any] | None = None
    for _ in range(max(1, repeats)):
        sim = NetworkSimulator(
            topo, policy, sample_free=sample_free, eager_link_events=eager,
        )
        if instrument is not None:
            instrument(sim)
        injector = BernoulliInjector(
            sim, pattern, task.rate,
            warmup=warmup, measure=measure,
            payload_bytes=task.sim("payload_bytes", 64), seed=task.seed,
        )
        injector.start()
        t0 = time.perf_counter()
        sim.run(until=warmup + measure)
        sim.run(until=warmup + measure + drain_limit)
        wall = time.perf_counter() - t0
        sim.stats.measure_cycles = measure
        # Logical events (processed + elided LINK_FREEs) measure the
        # simulated work independently of the lazy/eager core choice,
        # keeping events/sec comparable across the perf trajectory.
        events = sim.logical_events
        sample = {
            "events": events,
            "events_processed": sim._events_processed,
            "link_events_elided": sim.link_events_elided,
            "wall_s": wall,
            "events_per_sec": events / wall if wall > 0 else 0.0,
            "sent": sim.stats.sent,
            "delivered": sim.stats.delivered,
            "avg_latency": sim.stats.avg_latency,
            "p99_latency": sim.stats.latency.percentile(99),
            "avg_hops": sim.stats.avg_hops,
            "accepted_rate": sim.stats.accepted_rate,
        }
        if best is None or sample["events_per_sec"] > best["events_per_sec"]:
            best = sample
    best["radix"] = _radix_of(topo)
    best["repeats"] = max(1, repeats)
    return best


def _run_path_stats(task: ExperimentTask, instrument=None) -> dict[str, Any]:
    from repro.analysis.paths import greedy_path_stats
    from repro.core.topology import StringFigureTopology

    try:
        topo, routing = memo_routing(
            task.design,
            task.nodes,
            task.topology_seed,
            task.topology_params,
            use_two_hop=task.sim("use_two_hop", True),
        )
    except ValueError as exc:
        # Unrealizable scale or a table-routed baseline (no greediest
        # protocol) — an unsupported point either way.
        return {"unsupported": True, "error": str(exc)}
    stats = greedy_path_stats(
        routing,
        sample_pairs=task.sim("sample_pairs", 2000),
        seed=task.seed,
    )
    payload: dict[str, Any] = {
        "mean_hops": stats.mean,
        "p10_hops": stats.p10,
        "p90_hops": stats.p90,
        "max_hops": stats.maximum,
        "samples": stats.samples,
    }
    if isinstance(topo, StringFigureTopology):
        payload["min_balance"] = min(
            topo.coords.balance_score(s) for s in range(topo.num_spaces)
        )
    return payload


def _run_service(task: ExperimentTask, instrument=None) -> dict[str, Any]:
    """One multi-tenant fabric-service load point (offline, no sockets).

    Builds the full resident-service stack fresh (the control verbs
    mutate topology and placement, exactly like ``churn``/``faults``)
    and drives a seeded synthetic client schedule through the same
    ingestion path the daemon and the replay engine use, so a sweep
    point is a repeatable, cacheable stand-in for live load.  The task
    ``rate`` is per-tenant requests/cycle; service knobs ride in
    ``sim_params``.
    """
    from repro.workloads.service import run_service

    kwargs = dict(task.topology_params)
    ports = kwargs.pop("ports", None)
    try:
        result = run_service(
            nodes=task.nodes,
            design=task.design,
            ports=ports,
            topology_seed=task.topology_seed,
            seed=task.seed,
            tenants=task.sim("tenants", 8),
            requests_per_tenant=task.sim("requests_per_tenant", 64),
            rate=task.rate,
            footprint_pages=task.sim("footprint_pages", 512),
            read_fraction=task.sim("read_fraction", 0.7),
            size=task.sim("size", 64),
            max_outstanding=task.sim("max_outstanding", 256),
            queue_depth=task.sim("queue_depth", 512),
            node_watermark=task.sim("node_watermark", 32),
            scale_at=task.sim("scale_at"),
            scale_count=task.sim("scale_count", 0),
            scale_back_after=task.sim("scale_back_after"),
            fault_at=task.sim("fault_at"),
            fault_kind=task.sim("fault_kind", "node_crash"),
            fault_node=task.sim("fault_node"),
            instrument=instrument,
        )
    except ValueError as exc:
        return {"unsupported": True, "error": str(exc)}
    return result.payload()


def _run_interference(
    task: ExperimentTask, instrument=None, anatomy: bool = False,
) -> dict[str, Any]:
    """One multi-tenant interference point: foreground vs interferer.

    The task ``rate`` is the *interference* offered load (the swept
    axis of the per-class p99 comparison); the latency-critical
    foreground rate, the interference shape (``mode``), and the
    classless-baseline switch (``qos``) ride in ``sim_params``.  Built
    fresh per task like ``faults`` — the QoS table rewires the
    simulator's port state, so memoized topologies must not be shared.
    """
    from repro.topologies.registry import make_topology
    from repro.workloads.interference import run_interference

    kwargs = dict(task.topology_params)
    ports = kwargs.pop("ports", None)
    try:
        topo = make_topology(
            task.design, task.nodes, seed=task.topology_seed, ports=ports,
            **kwargs,
        )
    except ValueError as exc:
        return {"unsupported": True, "error": str(exc)}
    result = run_interference(
        topo,
        mode=task.sim("mode", "noise"),
        rate=task.rate,
        fg_rate=task.sim("fg_rate", 0.05),
        pattern=task.pattern,
        qos=bool(task.sim("qos", True)),
        warmup=task.sim("warmup", 300),
        measure=task.sim("measure", 2000),
        drain_limit=task.sim("drain_limit", 60_000),
        seed=task.seed,
        payload_bytes=task.sim("payload_bytes", 64),
        noise_fraction=task.sim("noise_fraction", 0.5),
        hotspot_count=task.sim("hotspot_count", 4),
        burst_period=task.sim("burst_period", 256),
        burst_duty=task.sim("burst_duty", 0.25),
        incast_degree=task.sim("incast_degree", 16),
        incast_period=task.sim("incast_period", 64),
        instrument=instrument,
        anatomy=anatomy,
    )
    payload = result.payload()
    payload["radix"] = _radix_of(topo)
    return payload


def _run_anatomy(task: ExperimentTask, instrument=None) -> dict[str, Any]:
    """One interference point with the latency anatomy installed.

    Identical grid/knobs to ``interference``; the payload additionally
    carries the ``obs_``-prefixed delay-decomposition fractions, the
    hottest contended links, and the class-on-class interference cells
    (all from :meth:`repro.obs.anatomy.LatencyAnatomy.payload`).  The
    anatomy hooks make the run slightly slower but the simulated
    results — and therefore the cache identity — are bit-identical to
    the uninstrumented point.
    """
    return _run_interference(task, instrument, anatomy=True)


_RUNNERS = {
    "synthetic": _run_synthetic,
    "saturation": _run_saturation,
    "workload": _run_workload,
    "path_stats": _run_path_stats,
    "churn": _run_churn,
    "migration": _run_migration,
    "faults": _run_faults,
    "perf": _run_perf,
    "service": _run_service,
    "interference": _run_interference,
    "anatomy": _run_anatomy,
}
