"""Declarative experiment specifications (the sweep grid language).

An :class:`ExperimentSpec` names a *grid* of independent simulation
points — designs x node counts x traffic patterns x injection rates x
seeds for synthetic traffic, or workloads x designs x node counts for
trace-driven replay — plus the fixed simulation parameters every point
shares.  :meth:`ExperimentSpec.tasks` expands the grid into frozen
:class:`ExperimentTask` values, each of which is a pure function of its
fields: the same task always produces the same result payload, which is
what makes parallel execution and on-disk caching sound.

Four task kinds cover the benchmark harness:

``synthetic``
    One :func:`repro.traffic.injection.run_synthetic` run at a fixed
    injection rate (Figure 11 points).
``saturation``
    One :func:`repro.analysis.saturation.find_saturation` search
    (Figure 10 points).
``workload``
    One :func:`repro.workloads.runner.run_workload` trace replay
    (Figure 12 points); the trace parameters ride in ``sim_params``.
``path_stats``
    Structural greediest-protocol hop statistics via
    :func:`repro.analysis.paths.greedy_path_stats` (sensitivity
    studies); routing options like ``use_two_hop`` ride in
    ``sim_params`` and topology options in ``topology_params``.
``churn``
    One :func:`repro.workloads.churn.run_churn` live-reconfiguration
    scenario (synthetic traffic with mid-flight gate/wake events);
    the churn schedule parameters (``gate_fraction``, ``schedule``,
    ``period`` ...) ride in ``sim_params``.  The grid axes match the
    ``synthetic`` kind: designs x nodes x patterns x rates x seeds.
``migration``
    One :func:`repro.workloads.migration.run_migration` gate-off/wake
    cycle with real data migration (or the ``teleport`` baseline);
    migration knobs (``rate_limit``, ``page_bytes``, ``mode``,
    ``footprint_pages`` ...) ride in ``sim_params``.  Grid axes match
    ``churn`` (the ``patterns`` axis is accepted but unused — the
    foreground address stream is uniform over the page footprint).
``faults``
    One :func:`repro.workloads.faults.run_faults` unplanned-failure
    scenario (link flaps/failures, node hangs/crashes with
    timeout-based detection, emergency reroute, and crash recovery);
    fault knobs (``fault_rate``, ``detection_timeout``, ``schedule``,
    ``mirrored``, ``footprint_pages`` ...) ride in ``sim_params``.
    Grid axes match ``synthetic`` — and unlike ``churn``/``migration``
    the designs axis spans the baselines too (SF vs DM vs Jellyfish is
    the paper's resilience comparison).
``service``
    One :func:`repro.workloads.service.run_service` multi-tenant load
    point against a resident fabric-service stack: seeded closed-form
    client schedules drive read/write page requests through admission
    control, with optional mid-run scale/fault verbs.  Service knobs
    (``tenants``, ``requests_per_tenant``, ``max_outstanding``,
    ``node_watermark``, ``scale_at`` ...) ride in ``sim_params``; the
    ``rates`` axis is per-tenant requests/cycle.  Grid axes match
    ``synthetic`` (the ``patterns`` axis is accepted but unused — the
    page stream is uniform over the footprint).
``anatomy``
    One interference point run with the
    :class:`repro.obs.anatomy.LatencyAnatomy` delay decomposition
    installed: the payload adds per-component latency fractions, the
    hottest contended links, and the class-on-class interference
    cells (all ``obs_``-prefixed, so sweep reports pick them up
    automatically).  Same grid axes and ``sim_params`` as
    ``interference``; the conservation law is checked on every
    delivered packet and surfaced as ``obs_anatomy_conserved``.
``perf``
    One simulator-throughput measurement: a synthetic run whose
    payload reports events processed, wall-clock seconds and
    events/sec alongside the (deterministic) traffic statistics.  Grid
    axes match ``synthetic``; ``repeats`` in ``sim_params`` picks the
    best of N timing repetitions.  Timing fields are wall-clock and
    therefore *not* deterministic — run perf sweeps with caching
    disabled.

Specs round-trip through JSON (:meth:`to_json` / :meth:`from_json` /
:meth:`from_file`) so sweeps can be versioned as files and replayed
from the ``repro sweep`` CLI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

__all__ = ["TASK_KINDS", "ExperimentSpec", "ExperimentTask", "freeze_params"]

TASK_KINDS = (
    "synthetic", "saturation", "workload", "path_stats", "churn", "migration",
    "faults", "perf", "service", "interference", "anatomy",
)

#: Bump when task semantics change so stale cache entries are ignored.
#: (The ResultCache's source-code fingerprint already invalidates on any
#: repro/ edit; this version is belt-and-braces for semantic changes —
#: v2: percentile() switched from banker's rounding to round-half-up.)
ENGINE_VERSION = 2

_Frozen = tuple[tuple[str, Any], ...]


def freeze_params(params: Mapping[str, Any] | _Frozen | None) -> _Frozen:
    """Canonicalize a parameter mapping into a sorted, hashable tuple."""
    if params is None:
        return ()
    items = params.items() if isinstance(params, Mapping) else params
    out = []
    for key, value in sorted(items):
        if isinstance(value, (list, tuple)):
            value = tuple(value)
        out.append((str(key), value))
    return tuple(out)


@dataclass(frozen=True)
class ExperimentTask:
    """One independent simulation point of a sweep.

    Every field is hashable and JSON-representable; tasks pickle
    cheaply across process boundaries and hash stably for the result
    cache.  ``seed`` feeds the simulation/measurement RNG while
    ``topology_seed`` feeds topology construction, so grids can vary
    either independently.
    """

    kind: str
    design: str
    nodes: int
    topology_seed: int = 0
    seed: int = 0
    pattern: str | None = None
    rate: float | None = None
    workload: str | None = None
    sim_params: _Frozen = ()
    topology_params: _Frozen = ()

    def __post_init__(self) -> None:
        # Canonicalize alias spellings ("sf", "string-figure") so
        # hand-built tasks share cache/filter identity with spec-built
        # ones.  Unpickling restores state directly and skips this,
        # which is fine: pickled tasks are already canonical.
        from repro.topologies.registry import canonical_name

        object.__setattr__(self, "design", canonical_name(self.design))

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe mapping of every task field."""
        return {
            "kind": self.kind,
            "design": self.design,
            "nodes": self.nodes,
            "topology_seed": self.topology_seed,
            "seed": self.seed,
            "pattern": self.pattern,
            "rate": self.rate,
            "workload": self.workload,
            "sim_params": dict(self.sim_params),
            "topology_params": dict(self.topology_params),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentTask":
        """Rebuild a task from :meth:`to_dict` output."""
        return cls(
            kind=data["kind"],
            design=data["design"],
            nodes=int(data["nodes"]),
            topology_seed=int(data.get("topology_seed", 0)),
            seed=int(data.get("seed", 0)),
            pattern=data.get("pattern"),
            rate=data.get("rate"),
            workload=data.get("workload"),
            sim_params=freeze_params(data.get("sim_params")),
            topology_params=freeze_params(data.get("topology_params")),
        )

    def key(self) -> str:
        """Stable content hash of the task (cache key).

        Memoized on the instance — result lookups hash each task many
        times and the fields are frozen, so one computation suffices.
        """
        cached = self.__dict__.get("_key")
        if cached is None:
            import hashlib

            blob = json.dumps(
                {"v": ENGINE_VERSION, **self.to_dict()},
                sort_keys=True,
                separators=(",", ":"),
            )
            cached = hashlib.sha256(blob.encode()).hexdigest()[:24]
            object.__setattr__(self, "_key", cached)
        return cached

    def sim(self, name: str, default: Any = None) -> Any:
        """Look up one entry of ``sim_params``."""
        for key, value in self.sim_params:
            if key == name:
                return value
        return default

    def label(self) -> str:
        """Human-readable one-line identity (tables, progress, errors)."""
        bits = [self.kind, self.design, f"N={self.nodes}"]
        if self.workload is not None:
            bits.insert(1, self.workload)
        if self.pattern is not None:
            bits.append(self.pattern)
        if self.rate is not None:
            bits.append(f"rate={self.rate:g}")
        bits.append(f"seed={self.seed}")
        return " ".join(bits)


@dataclass
class ExperimentSpec:
    """A declarative sweep: a task grid plus shared parameters.

    Grid axes that do not apply to a kind are ignored during expansion
    (e.g. ``rates`` for ``saturation``; ``patterns`` for ``workload``),
    so one spec type serves every benchmark family.
    """

    name: str
    kind: str = "synthetic"
    designs: Sequence[str] = ("SF",)
    nodes: Sequence[int] = (64,)
    patterns: Sequence[str] = ("uniform_random",)
    rates: Sequence[float] = (0.2,)
    seeds: Sequence[int] = (0,)
    workloads: Sequence[str] = ()
    topology_seed: int = 0
    sim_params: Mapping[str, Any] = field(default_factory=dict)
    topology_params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in TASK_KINDS:
            raise ValueError(
                f"unknown experiment kind {self.kind!r}; "
                f"choose from {TASK_KINDS}"
            )
        if self.kind == "workload" and not self.workloads:
            raise ValueError("workload specs need at least one workload")
        if (
            self.kind in (
                "synthetic", "churn", "migration", "faults", "perf",
                "service", "interference", "anatomy",
            )
            and not self.rates
        ):
            raise ValueError(f"{self.kind} specs need at least one rate")
        for axis in ("designs", "nodes", "seeds"):
            if not getattr(self, axis):
                raise ValueError(f"spec {self.name!r} has an empty {axis} axis")
        if (
            self.kind in (
                "synthetic", "saturation", "churn", "migration", "faults",
                "perf", "service", "interference", "anatomy",
            )
            and not self.patterns
        ):
            raise ValueError(f"spec {self.name!r} has an empty patterns axis")
        # Canonicalize design names at declaration time: typos fail
        # here (instead of masquerading as unsupported-scale points),
        # and alias spellings ("sf", "string-figure") collapse to one
        # task/cache identity.
        from repro.topologies.registry import canonical_name

        self.designs = tuple(canonical_name(d) for d in self.designs)

    # -- expansion ---------------------------------------------------------

    def tasks(self) -> list[ExperimentTask]:
        """Expand the grid into independent tasks, in deterministic order."""
        sim = freeze_params(self.sim_params)
        topo = freeze_params(self.topology_params)
        base = dict(
            kind=self.kind,
            topology_seed=self.topology_seed,
            sim_params=sim,
            topology_params=topo,
        )
        out: list[ExperimentTask] = []
        if self.kind in (
            "synthetic", "churn", "migration", "faults", "perf", "service",
            "interference", "anatomy",
        ):
            for design in self.designs:
                for n in self.nodes:
                    for pattern in self.patterns:
                        for rate in self.rates:
                            for seed in self.seeds:
                                out.append(ExperimentTask(
                                    design=design, nodes=n, pattern=pattern,
                                    rate=float(rate), seed=seed, **base,
                                ))
        elif self.kind == "saturation":
            for design in self.designs:
                for n in self.nodes:
                    for pattern in self.patterns:
                        for seed in self.seeds:
                            out.append(ExperimentTask(
                                design=design, nodes=n, pattern=pattern,
                                seed=seed, **base,
                            ))
        elif self.kind == "workload":
            for workload in self.workloads:
                for design in self.designs:
                    for n in self.nodes:
                        for seed in self.seeds:
                            out.append(ExperimentTask(
                                design=design, nodes=n, workload=workload,
                                seed=seed, **base,
                            ))
        else:  # path_stats
            for design in self.designs:
                for n in self.nodes:
                    for seed in self.seeds:
                        out.append(ExperimentTask(
                            design=design, nodes=n, seed=seed, **base,
                        ))
        return out

    def with_overrides(self, **overrides: Any) -> "ExperimentSpec":
        """A copy of this spec with the given fields replaced.

        Mapping fields (``sim_params``/``topology_params``) are merged
        key-by-key rather than replaced, which is what sensitivity
        variants want (same study, one knob turned).
        """
        data = self.to_dict()
        for key, value in overrides.items():
            if key in ("sim_params", "topology_params"):
                merged = dict(data[key])
                merged.update(value)
                data[key] = merged
            else:
                data[key] = value
        return ExperimentSpec.from_dict(data)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe mapping of every spec field (grid axes as lists)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "designs": list(self.designs),
            "nodes": list(self.nodes),
            "patterns": list(self.patterns),
            "rates": list(self.rates),
            "seeds": list(self.seeds),
            "workloads": list(self.workloads),
            "topology_seed": self.topology_seed,
            "sim_params": dict(freeze_params(self.sim_params)),
            "topology_params": dict(freeze_params(self.topology_params)),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output; rejects unknown keys."""
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown spec fields: {sorted(unknown)}")
        return cls(**data)

    def to_json(self, indent: int | None = 2) -> str:
        """Serialize the spec to JSON (the ``--spec`` file format)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        """Parse a spec from its JSON serialization."""
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: str | Path) -> "ExperimentSpec":
        """Load a spec from a JSON file (``repro sweep --spec``)."""
        return cls.from_json(Path(path).read_text())

    def spec_hash(self) -> str:
        """Stable content hash of the whole spec."""
        import hashlib

        blob = json.dumps(
            {"v": ENGINE_VERSION, **self.to_dict()},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(blob.encode()).hexdigest()[:24]
