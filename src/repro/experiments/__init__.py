"""Unified parallel experiment engine.

Declarative sweep specifications (:class:`ExperimentSpec`) expand into
independent, pure :class:`ExperimentTask` points; a
:class:`ParallelRunner` executes them across a multiprocessing pool (or
serially — identical results either way), served through an on-disk
:class:`ResultCache` and per-process memoization of topology
construction, routing tables and workload traces.

Typical use::

    from repro.experiments import ExperimentSpec, ParallelRunner, ResultCache

    spec = ExperimentSpec(
        name="latency-vs-load",
        kind="synthetic",
        designs=("SF", "ODM"),
        nodes=(64,),
        patterns=("uniform_random",),
        rates=(0.05, 0.2, 0.4),
        seeds=(6,),
    )
    runner = ParallelRunner(workers=4, cache=ResultCache("results/cache"))
    result = runner.run(spec)
    latency = result.value("avg_latency", design="SF", rate=0.2)
"""

from repro.experiments.cache import ResultCache
from repro.experiments.memo import clear_memo, memo_sizes
from repro.experiments.runner import ParallelRunner, SweepResult
from repro.experiments.spec import ExperimentSpec, ExperimentTask, TASK_KINDS
from repro.experiments.worker import execute_task

__all__ = [
    "TASK_KINDS",
    "ExperimentSpec",
    "ExperimentTask",
    "ParallelRunner",
    "ResultCache",
    "SweepResult",
    "clear_memo",
    "execute_task",
    "memo_sizes",
]
