"""Closed-loop trace-driven workload simulation (paper §V–VI).

Four CPU sockets attach to four spread-out memory nodes (the paper
attaches processors to edge nodes; any subset is allowed).  Each socket
replays its share of the workload trace with a bounded number of
outstanding memory requests (its memory-level parallelism window) — a
request issues when both its trace timestamp has arrived and a window
slot is free, so network latency feeds back into runtime exactly the
way it throttles a real core cluster.

Reads travel as one-flit requests and return a cache line; writes
carry a cache line to the destination and complete at DRAM service.
Per-run outputs: runtime, average read latency, delivered operation
throughput (the paper's Figure 12a metric, normalized to DM), and
dynamic energy split into network and DRAM parts (Figure 12b).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.model import EnergyBreakdown, EnergyModel
from repro.memory.address import AddressMapper
from repro.memory.node import MemoryNode
from repro.network.config import NetworkConfig
from repro.network.packet import Packet, PacketKind
from repro.network.simulator import NetworkSimulator
from repro.network.stats import SimStats
from repro.workloads.trace import WorkloadTrace

__all__ = ["WorkloadResult", "run_workload", "pick_socket_nodes"]


@dataclass
class WorkloadResult:
    """Outcome of one trace-driven run."""

    workload: str
    topology: str
    runtime_cycles: int = 0
    operations: int = 0
    read_latency_sum: float = 0.0
    reads_completed: int = 0
    energy: EnergyBreakdown | None = None
    stats: SimStats | None = None
    instructions: float = 0.0

    @property
    def throughput_ops_per_kcycle(self) -> float:
        """Completed memory operations per thousand cycles."""
        if not self.runtime_cycles:
            return 0.0
        return 1000.0 * self.operations / self.runtime_cycles

    @property
    def ipc(self) -> float:
        """Instructions per network cycle (relative-throughput proxy)."""
        if not self.runtime_cycles:
            return 0.0
        return self.instructions / self.runtime_cycles

    @property
    def avg_read_latency(self) -> float:
        if not self.reads_completed:
            return 0.0
        return self.read_latency_sum / self.reads_completed

    def edp(self, config: NetworkConfig | None = None) -> float:
        """Energy-delay product in pJ*ns (Figure 9b metric)."""
        cfg = config or NetworkConfig()
        if self.energy is None:
            raise ValueError("run has no energy accounting")
        return self.energy.edp(self.runtime_cycles, cfg.cycle_ns)


def pick_socket_nodes(active_nodes: list[int], sockets: int = 4) -> list[int]:
    """Spread socket attachment points evenly over the active nodes."""
    n = len(active_nodes)
    if n < sockets:
        return list(active_nodes)
    return [active_nodes[(i * n) // sockets] for i in range(sockets)]


class _SocketReplayer:
    """Replays one socket's trace slice with an MLP window."""

    def __init__(
        self,
        runner: "_RunContext",
        socket_node: int,
        entries: list,
        mlp: int,
    ) -> None:
        self.runner = runner
        self.node = socket_node
        self.entries = entries
        self.next_index = 0
        self.outstanding = 0
        self.mlp = mlp

    def try_issue(self, now: int) -> None:
        """Issue trace entries whose time has come while slots remain."""
        runner = self.runner
        sim = runner.sim
        while (
            self.outstanding < self.mlp and self.next_index < len(self.entries)
        ):
            access = self.entries[self.next_index]
            if access.cycle > now:
                sim.schedule(access.cycle, lambda t, s=self: s.try_issue(t))
                return
            self.next_index += 1
            dst = runner.mapper.node_of(access.addr)
            if dst == self.node:
                # Local access: served by the attached node, no network.
                runner.complete_local(self, access, now)
                continue
            self.outstanding += 1
            kind = PacketKind.WRITE_REQ if access.is_write else PacketKind.READ_REQ
            payload = (
                runner.config.cacheline_bytes if access.is_write else 16
            )
            packet = Packet(
                src=self.node,
                dst=dst,
                size_flits=runner.config.packet_flits(payload),
                payload_bytes=payload,
                kind=kind,
                context=(self, access, now),
            )
            sim.send(packet, now)

    def complete(self, issue_time: int, now: int, was_read: bool) -> None:
        self.outstanding -= 1
        self.runner.record_completion(issue_time, now, was_read)
        self.try_issue(now)


class _RunContext:
    """Shared state of one workload run."""

    def __init__(self, sim, mapper, config, result):
        self.sim = sim
        self.mapper = mapper
        self.config = config
        self.result = result
        self.memory_nodes: dict[int, MemoryNode] = {}

    def memory_node(self, node_id: int) -> MemoryNode:
        node = self.memory_nodes.get(node_id)
        if node is None:
            node = MemoryNode(node_id, self.sim, self.config)
            self.memory_nodes[node_id] = node
        return node

    def record_completion(self, issue_time: int, now: int, was_read: bool) -> None:
        self.result.operations += 1
        if was_read:
            self.result.read_latency_sum += now - issue_time
            self.result.reads_completed += 1
        self.result.runtime_cycles = max(self.result.runtime_cycles, now)

    def complete_local(self, socket, access, now: int) -> None:
        """Socket-local access: DRAM service only."""
        node = self.memory_node(socket.node)
        done = node.service(
            Packet(
                src=socket.node,
                dst=socket.node,
                kind=PacketKind.WRITE_REQ if access.is_write else PacketKind.READ_REQ,
            ),
            now,
            self.mapper.local_offset(access.addr),
            respond=False,
        )
        self.record_completion(now, done, not access.is_write)


def run_workload(
    topology,
    policy,
    trace: WorkloadTrace,
    config: NetworkConfig | None = None,
    sockets: int = 4,
    mlp: int = 8,
    link_latency=None,
    max_cycles: int = 20_000_000,
) -> WorkloadResult:
    """Replay *trace* on (topology, policy); returns the run's metrics."""
    cfg = config or NetworkConfig()
    sim = NetworkSimulator(topology, policy, cfg, link_latency=link_latency)
    active = list(topology.active_nodes)
    mapper = AddressMapper(active)
    result = WorkloadResult(
        workload=trace.workload,
        topology=getattr(topology, "name", type(topology).__name__),
        instructions=trace.instructions,
    )
    ctx = _RunContext(sim, mapper, cfg, result)
    socket_nodes = pick_socket_nodes(active, sockets)

    # Round-robin the trace across sockets, preserving timestamps.
    slices: list[list] = [[] for _ in socket_nodes]
    for i, access in enumerate(trace.accesses):
        slices[i % len(socket_nodes)].append(access)
    replayers = [
        _SocketReplayer(ctx, node, entries, mlp)
        for node, entries in zip(socket_nodes, slices)
    ]

    def on_delivery(packet: Packet, now: int) -> None:
        if packet.kind in (PacketKind.READ_REQ, PacketKind.WRITE_REQ):
            socket, access, issue_time = packet.context
            node = ctx.memory_node(packet.dst)
            done = node.service(packet, now, mapper.local_offset(access.addr))
            if packet.kind is PacketKind.WRITE_REQ:
                # Posted write completes at DRAM service time.
                sim.schedule(
                    done,
                    lambda t, s=socket, it=issue_time: s.complete(it, t, False),
                )
        elif packet.kind is PacketKind.READ_RESP:
            socket, access, issue_time = packet.context
            socket.complete(issue_time, now, True)

    sim.on_delivery(on_delivery)
    for replayer in replayers:
        sim.schedule(0, lambda t, s=replayer: s.try_issue(t))
    sim.run(until=max_cycles)
    remaining = sum(len(r.entries) - r.next_index for r in replayers)
    outstanding = sum(r.outstanding for r in replayers)
    if remaining or outstanding:
        raise RuntimeError(
            f"workload run did not complete: {remaining} unissued, "
            f"{outstanding} outstanding after {max_cycles} cycles"
        )
    sim.stats.measure_cycles = max(1, result.runtime_cycles)
    result.stats = sim.stats
    result.energy = EnergyModel(cfg).from_stats(sim.stats)
    return result
