"""Synthetic address-stream generators for the Table IV workloads.

Each generator yields ``(op_count, address, is_write)`` CPU accesses
whose spatial pattern and read/write mix match the workload class the
paper traces:

==============  ====================================================
wordcount       streaming scan + zipfian hash-table updates
grep            near-pure streaming scan, rare result-buffer writes
sort            multi-phase sequential runs (read input, write runs,
                merge with interleaved streams)
pagerank        power-law vertex access + sequential edge bursts
                (11M-vertex-Twitter-like skew)
redis           zipfian key-value get/set, multi-line values
memcached       zipfian get/set with ratio 0.8, small values
matmul          blocked dense matrix multiply, strided reuse
kmeans          repeated streaming over points, hot centroid block
==============  ====================================================

Footprints default to hundreds of MB so the streams genuinely miss the
32 MB L3; benches scale them with the ``scale`` parameter.
"""

from __future__ import annotations

import random
from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro.utils.rng import stable_hash

__all__ = ["Workload", "WORKLOADS", "make_workload"]

LINE = 64

Access = tuple[int, bool]  # (byte address, is_write)


@dataclass(frozen=True)
class Workload:
    """A named workload: metadata plus an access-stream factory."""

    name: str
    description: str
    footprint_bytes: int
    read_fraction: float  # nominal, for documentation/tests
    generator: "callable"

    def stream(self, seed: int = 0, scale: float = 1.0) -> Iterator[Access]:
        """Infinite iterator of CPU accesses."""
        return self.generator(
            int(self.footprint_bytes * scale), random.Random(stable_hash(self.name, seed))
        )


class _Zipf:
    """Bounded Zipf sampler over ``n`` items with exponent *alpha*."""

    def __init__(self, n: int, alpha: float, rng: random.Random) -> None:
        self.n = n
        ranks = np.arange(1, n + 1, dtype=np.float64)
        weights = ranks**-alpha
        self._cdf = np.cumsum(weights / weights.sum())
        self._rng = rng
        # Random permutation so hot items are scattered across memory.
        self._perm = np.random.RandomState(rng.randrange(2**31)).permutation(n)

    def sample(self) -> int:
        u = self._rng.random()
        return int(self._perm[int(np.searchsorted(self._cdf, u))])


def _stream_wordcount(footprint: int, rng: random.Random) -> Iterator[Access]:
    """Sequential input scan + zipfian hash-table read-modify-writes."""
    input_bytes = footprint * 3 // 4
    table_entries = max(1024, footprint // 4 // LINE)
    table_base = input_bytes
    zipf = _Zipf(table_entries, 0.98, rng)
    pos = 0
    while True:
        yield (pos % input_bytes, False)  # read a chunk of input text
        pos += LINE
        if rng.random() < 0.5:  # word boundary -> hash table update
            entry = zipf.sample()
            addr = table_base + entry * LINE
            yield (addr, False)
            yield (addr, True)


def _stream_grep(footprint: int, rng: random.Random) -> Iterator[Access]:
    """Streaming text scan; matches write to a small result buffer."""
    input_bytes = footprint
    result_base = footprint
    result_lines = 4096
    pos = 0
    hits = 0
    while True:
        yield (pos % input_bytes, False)
        pos += LINE
        if rng.random() < 0.02:  # a match
            yield (result_base + (hits % result_lines) * LINE, True)
            hits += 1


def _stream_sort(footprint: int, rng: random.Random) -> Iterator[Access]:
    """External-sort phases: run generation then multi-way merge."""
    half = footprint // 2
    run_bytes = half // 8
    while True:
        # Phase 1: read input runs sequentially, write sorted runs.
        for run in range(8):
            base_in = run * run_bytes
            base_out = half + run * run_bytes
            for off in range(0, run_bytes, LINE):
                yield (base_in + off, False)
                yield (base_out + off, True)
        # Phase 2: merge the 8 runs back (interleaved stream reads).
        cursors = [half + run * run_bytes for run in range(8)]
        out = 0
        for _ in range(run_bytes // LINE * 8):
            run = rng.randrange(8)
            yield (cursors[run], False)
            cursors[run] += LINE
            if cursors[run] >= half + (run + 1) * run_bytes:
                cursors[run] = half + run * run_bytes
            yield (out % half, True)
            out += LINE


def _stream_pagerank(footprint: int, rng: random.Random) -> Iterator[Access]:
    """Power-law graph traversal: ranks + offsets + edge bursts."""
    num_vertices = max(4096, footprint // 3 // 8)
    rank_base = 0
    edge_base = num_vertices * 16
    edge_bytes = footprint - edge_base if footprint > edge_base else footprint // 2
    zipf = _Zipf(num_vertices, 1.1, rng)
    while True:
        v = zipf.sample()
        yield (rank_base + v * 8, False)  # read rank
        # Edge list burst: power-law out-degree (1..64 lines).
        degree = min(64, max(1, int(rng.paretovariate(1.3))))
        edge_pos = (stable_hash("edges", v) % max(1, edge_bytes // LINE)) * LINE
        for i in range(degree):
            yield (edge_base + (edge_pos + i * LINE) % edge_bytes, False)
        yield (rank_base + v * 8, True)  # write new rank


def _kv_stream(
    footprint: int,
    rng: random.Random,
    get_fraction: float,
    value_lines: int,
    alpha: float,
) -> Iterator[Access]:
    """Zipfian key-value store accesses (shared by redis/memcached)."""
    num_keys = max(4096, footprint // (value_lines * LINE + LINE))
    index_base = 0
    value_base = num_keys * LINE
    zipf = _Zipf(num_keys, alpha, rng)
    while True:
        key = zipf.sample()
        yield (index_base + key * LINE, False)  # hash-index lookup
        value_addr = value_base + key * value_lines * LINE
        is_set = rng.random() >= get_fraction
        for i in range(value_lines):
            yield (value_addr + i * LINE, is_set)


def _stream_redis(footprint: int, rng: random.Random) -> Iterator[Access]:
    """Redis benchmark: 50 clients / 100k queries; ~70% GET, 256 B values."""
    return _kv_stream(footprint, rng, get_fraction=0.7, value_lines=4, alpha=0.99)


def _stream_memcached(footprint: int, rng: random.Random) -> Iterator[Access]:
    """CloudSuite data caching: get/set ratio 0.8, small values."""
    return _kv_stream(footprint, rng, get_fraction=0.8, value_lines=2, alpha=1.01)


def _stream_matmul(footprint: int, rng: random.Random) -> Iterator[Access]:
    """Blocked dense C = A x B with 64x64 double blocks."""
    matrix_bytes = footprint // 3
    n = max(256, int((matrix_bytes / 8) ** 0.5) // 64 * 64)
    block = 64
    a_base, b_base, c_base = 0, matrix_bytes, 2 * matrix_bytes
    blocks = n // block
    while True:
        for bi in range(blocks):
            for bj in range(blocks):
                for bk in range(blocks):
                    # Read A(bi,bk) and B(bk,bj) blocks, update C(bi,bj).
                    for row in range(0, block, 8):  # 8 doubles per line
                        yield (a_base + ((bi * block + row) * n + bk * block) * 8, False)
                        yield (b_base + ((bk * block + row) * n + bj * block) * 8, False)
                    for row in range(0, block, 8):
                        addr = c_base + ((bi * block + row) * n + bj * block) * 8
                        yield (addr, False)
                        yield (addr, True)


def _stream_kmeans(footprint: int, rng: random.Random) -> Iterator[Access]:
    """K-means: stream all points each iteration; centroids stay hot."""
    k = 64
    point_bytes = footprint - k * LINE
    centroid_base = point_bytes
    while True:
        for pos in range(0, point_bytes, LINE):
            yield (pos, False)  # read point
            c = rng.randrange(k)
            yield (centroid_base + c * LINE, False)  # nearest centroid
            if rng.random() < 0.1:
                yield (centroid_base + c * LINE, True)  # accumulator update


_MB = 1 << 20

WORKLOADS: dict[str, Workload] = {
    w.name: w
    for w in (
        Workload(
            "wordcount",
            "Spark wordcount over the Wikipedia data set (BigDataBench)",
            512 * _MB,
            0.80,
            _stream_wordcount,
        ),
        Workload(
            "grep",
            "Spark grep over the Wikipedia data set (BigDataBench)",
            512 * _MB,
            0.98,
            _stream_grep,
        ),
        Workload(
            "sort",
            "Spark sort-by-key over the Wikipedia data set (BigDataBench)",
            512 * _MB,
            0.50,
            _stream_sort,
        ),
        Workload(
            "pagerank",
            "Twitter-influence PageRank (CloudSuite graph analytics)",
            768 * _MB,
            0.90,
            _stream_pagerank,
        ),
        Workload(
            "redis",
            "Redis benchmark, 50 clients, 100k queries",
            512 * _MB,
            0.76,
            _stream_redis,
        ),
        Workload(
            "memcached",
            "CloudSuite Twitter caching server, get/set ratio 0.8",
            512 * _MB,
            0.87,
            _stream_memcached,
        ),
        Workload(
            "matmul",
            "Large dense matrix multiply held in memory",
            384 * _MB,
            0.83,
            _stream_matmul,
        ),
        Workload(
            "kmeans",
            "K-means clustering over n observations",
            512 * _MB,
            0.95,
            _stream_kmeans,
        ),
    )
}


def make_workload(name: str) -> Workload:
    """Look up a Table IV workload by name."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        ) from None
