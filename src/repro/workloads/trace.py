"""Trace collection: CPU streams -> cache hierarchy -> memory accesses.

Traces can be saved to and loaded from JSON-lines files
(:meth:`WorkloadTrace.save` / :meth:`WorkloadTrace.load`), so expensive
collection runs are reusable across experiments — the same way the
paper's Pin traces were collected once and replayed.

Mirrors the paper's Pin-based flow: run a workload's access stream
through the cache hierarchy, keep only the accesses that reach memory,
and stamp each with a network-cycle timestamp derived from its
instruction id and an average CPI ("we can multiply the instruction
IDs by an average CPI number and generate a timestamp for each memory
access", §V).  CPU clock is 2 GHz versus the 312.5 MHz network clock,
a ratio of 6.4 CPU cycles per network cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workloads.cache import CacheHierarchy
from repro.workloads.generators import make_workload

__all__ = ["MemoryAccess", "WorkloadTrace", "collect_trace"]

CPU_GHZ = 2.0
NETWORK_GHZ = 0.3125
CLOCK_RATIO = CPU_GHZ / NETWORK_GHZ  # 6.4 CPU cycles per network cycle
#: CPU instructions represented by one generator access (loads/stores
#: are roughly one in three instructions in these workloads).
INSTRUCTIONS_PER_ACCESS = 3.0


@dataclass(frozen=True)
class MemoryAccess:
    """One post-cache memory access, timestamped in network cycles."""

    cycle: int
    addr: int
    is_write: bool
    instruction_id: int


@dataclass
class WorkloadTrace:
    """A collected memory trace plus its provenance statistics."""

    workload: str
    accesses: list[MemoryAccess] = field(default_factory=list)
    cpu_accesses: int = 0
    instructions: float = 0.0
    miss_rates: dict[str, float] = field(default_factory=dict)
    cpi: float = 1.0

    @property
    def num_accesses(self) -> int:
        return len(self.accesses)

    @property
    def write_fraction(self) -> float:
        if not self.accesses:
            return 0.0
        return sum(a.is_write for a in self.accesses) / len(self.accesses)

    @property
    def span_cycles(self) -> int:
        """Network cycles between first and last trace timestamps."""
        if not self.accesses:
            return 0
        return self.accesses[-1].cycle - self.accesses[0].cycle

    @property
    def mpki(self) -> float:
        """Memory accesses per thousand instructions."""
        if not self.instructions:
            return 0.0
        return 1000.0 * len(self.accesses) / self.instructions

    def save(self, path) -> None:
        """Write the trace as JSON lines (header line + one per access)."""
        import json

        with open(path, "w") as fh:
            header = {
                "workload": self.workload,
                "cpu_accesses": self.cpu_accesses,
                "instructions": self.instructions,
                "miss_rates": self.miss_rates,
                "cpi": self.cpi,
            }
            fh.write(json.dumps(header) + "\n")
            for a in self.accesses:
                fh.write(
                    f"{a.cycle} {a.addr} {int(a.is_write)} {a.instruction_id}\n"
                )

    @classmethod
    def load(cls, path) -> "WorkloadTrace":
        """Read a trace written by :meth:`save`."""
        import json

        with open(path) as fh:
            header = json.loads(fh.readline())
            trace = cls(
                workload=header["workload"],
                cpu_accesses=header["cpu_accesses"],
                instructions=header["instructions"],
                miss_rates=header["miss_rates"],
                cpi=header["cpi"],
            )
            for line in fh:
                cycle, addr, is_write, iid = line.split()
                trace.accesses.append(
                    MemoryAccess(
                        cycle=int(cycle),
                        addr=int(addr),
                        is_write=bool(int(is_write)),
                        instruction_id=int(iid),
                    )
                )
        return trace


def collect_trace(
    workload_name: str,
    max_memory_accesses: int = 20_000,
    seed: int = 0,
    scale: float = 1.0,
    cpi: float = 1.0,
    max_cpu_accesses: int | None = None,
    warmup: bool = True,
) -> WorkloadTrace:
    """Generate a memory trace for one Table IV workload.

    Streams CPU accesses through the cache hierarchy until
    *max_memory_accesses* post-L3 accesses have been collected (or
    *max_cpu_accesses* CPU accesses processed).  ``scale`` shrinks the
    workload footprint *and* the cache hierarchy proportionally —
    useful for fast test runs; at 1.0 the footprints exceed the L3 by
    an order of magnitude as in the paper ("we scale the input data
    size of each real workload benchmark to fill the memory capacity").

    With ``warmup`` (the paper collects "after workload
    initialization") the hierarchy is first warmed with roughly two L3
    capacities of the stream, so the collected trace reflects steady
    state — including write-back traffic — rather than cold misses.
    """
    workload = make_workload(workload_name)
    hierarchy = CacheHierarchy(scale=scale)
    trace = WorkloadTrace(workload=workload_name, cpi=cpi)
    if max_cpu_accesses is None:
        max_cpu_accesses = 400 * max_memory_accesses
    stream = workload.stream(seed=seed, scale=scale)
    if warmup:
        warm_target = 2 * hierarchy.l3.size_bytes // hierarchy.line_bytes
        for _count, (addr, is_write) in zip(range(warm_target), stream):
            hierarchy.access(addr, is_write)
    cpu_count = 0
    for cpu_count, (addr, is_write) in enumerate(stream, start=1):
        instruction_id = cpu_count * INSTRUCTIONS_PER_ACCESS
        cycle = int(instruction_id * cpi / CLOCK_RATIO)
        for mem_addr, mem_write in hierarchy.access(addr, is_write):
            trace.accesses.append(
                MemoryAccess(
                    cycle=cycle,
                    addr=mem_addr,
                    is_write=mem_write,
                    instruction_id=int(instruction_id),
                )
            )
        if len(trace.accesses) >= max_memory_accesses:
            break
        if cpu_count >= max_cpu_accesses:
            break
    trace.cpu_accesses = cpu_count
    trace.instructions = cpu_count * INSTRUCTIONS_PER_ACCESS
    trace.miss_rates = hierarchy.miss_rates()
    del trace.accesses[max_memory_accesses:]
    return trace
