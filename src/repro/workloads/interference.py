"""Interference scenarios: multi-tenant traffic classes under contention.

An *interference run* puts a latency-critical foreground tenant (the
``latency`` class, low fixed rate, uniform random) on a fabric together
with an interfering tenant whose offered load is the swept axis, and
reports per-class p50/p99 latency.  With a QoS table installed
(:class:`~repro.network.qos.QoSConfig`) the foreground rides the
reserved credit partition and strict-priority arbitration; without one
(``qos=False``) the same tagged traffic shares FIFO queues and the
classes degrade together — the differential the PR-9 acceptance
criteria compare.

Three interference shapes, escalating in adversarialness:

* ``noise`` — steady bulk-class Bernoulli traffic from a fraction of
  the nodes (noisy-neighbour tenants).
* ``burst`` — ON/OFF-modulated bulk traffic aimed at a small hotspot
  set: quiet most of the period, then a burst at ``rate / duty`` peak
  (bursty hotspot tenants; same *average* offered load as ``noise``).
* ``incast`` — synchronized fan-in: every period, many sources fire a
  wave of packets at a single victim node (adversarial incast).

All interference traffic is tagged :data:`~repro.network.qos.BULK_CLASS`
even in classless runs — the tag is carried but never consulted without
an installed table, so classless runs stay bit-identical to untagged
ones while still reporting per-class latency splits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.network.config import NetworkConfig
from repro.network.packet import Packet, PacketKind
from repro.network.qos import BULK_CLASS, LATENCY_CLASS, QoSConfig
from repro.network.simulator import NetworkSimulator
from repro.network.stats import SimStats, percentile
from repro.topologies.registry import make_policy
from repro.traffic.injection import BernoulliInjector
from repro.traffic.patterns import make_pattern
from repro.utils.rng import derive_rng

__all__ = [
    "INTERFERENCE_MODES",
    "BurstyInjector",
    "IncastScheduler",
    "InterferenceRunResult",
    "run_interference",
]

INTERFERENCE_MODES = ("noise", "burst", "incast")

#: Payload column prefix per traffic-class id (default table convention).
_CLASS_PREFIX = {0: "fg", 1: "bulk", 2: "bg"}


class BurstyInjector(BernoulliInjector):
    """ON/OFF-modulated Bernoulli injection toward hotspot destinations.

    The inter-arrival process is the parent's geometric stream, but a
    fire lands a packet only inside the ON window of each ``period``
    (the first ``duty`` fraction); destinations are drawn from the
    ``hotspots`` set instead of a traffic pattern.  Pass the *peak*
    rate (``average / duty``) to offer the same mean load as a steady
    injector.
    """

    def __init__(
        self,
        *args,
        period: int = 256,
        duty: float = 0.25,
        hotspots=(),
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        if not 0.0 < duty <= 1.0:
            raise ValueError(f"duty must be in (0, 1], got {duty}")
        if not hotspots:
            raise ValueError("burst mode needs a non-empty hotspot set")
        self.period = period
        self.on_cycles = max(1, int(period * duty))
        self.hotspots = list(hotspots)

    def _schedule_next(self, node: int, rng, now: int) -> None:
        t = now + self._gap(rng)
        if t >= self._stop:
            return

        def fire(current_time: int, node=node, rng=rng) -> None:
            if current_time % self.period < self.on_cycles:
                choices = [h for h in self.hotspots if h != node]
                if choices:
                    dst = choices[rng.randrange(len(choices))]
                    measured = (
                        self.warmup <= current_time < self.warmup + self.measure
                    )
                    packet = Packet(
                        src=node,
                        dst=dst,
                        size_flits=self._size_flits,
                        payload_bytes=self.payload_bytes,
                        kind=PacketKind.DATA,
                        tclass=self.tclass,
                        measured=measured,
                    )
                    self.sim.send(packet, current_time)
            self._schedule_next(node, rng, current_time)

        self.sim.schedule(t, fire)


class IncastScheduler:
    """Synchronized fan-in: every period, all sources fire at one victim.

    Unlike the Bernoulli injectors there is no randomness — the waves
    are the worst case by construction, and ``packets_per_wave`` sets
    the per-source offered load (``packets_per_wave / period``).
    """

    def __init__(
        self,
        sim: NetworkSimulator,
        sources,
        victim: int,
        period: int = 64,
        packets_per_wave: int = 1,
        warmup: int = 300,
        measure: int = 1000,
        payload_bytes: int = 64,
        tclass: int = BULK_CLASS,
    ) -> None:
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        self.sim = sim
        self.sources = [s for s in sources if s != victim]
        self.victim = victim
        self.period = period
        self.packets_per_wave = max(1, packets_per_wave)
        self.warmup = warmup
        self.measure = measure
        self.payload_bytes = payload_bytes
        self.tclass = tclass
        self._size_flits = sim.config.packet_flits(payload_bytes)
        self._stop = warmup + measure

    def start(self) -> None:
        self.sim.schedule(self.period, self._fire)

    def _fire(self, now: int) -> None:
        measured = self.warmup <= now < self.warmup + self.measure
        for src in self.sources:
            for _ in range(self.packets_per_wave):
                packet = Packet(
                    src=src,
                    dst=self.victim,
                    size_flits=self._size_flits,
                    payload_bytes=self.payload_bytes,
                    kind=PacketKind.DATA,
                    tclass=self.tclass,
                    measured=measured,
                )
                self.sim.send(packet, now)
        nxt = now + self.period
        if nxt < self._stop:
            self.sim.schedule(nxt, self._fire)


@dataclass
class InterferenceRunResult:
    """Everything one interference scenario produced."""

    stats: SimStats
    mode: str
    rate: float
    fg_rate: float
    qos: bool
    num_nodes: int
    run_end: int
    drained: bool
    samples: dict[int, list[int]]
    #: Installed :class:`~repro.obs.anatomy.LatencyAnatomy` when the run
    #: was launched with ``anatomy=True`` (None otherwise).
    anatomy: Any = None

    def class_latency(self) -> dict[int, dict[str, float]]:
        """Per-class ``{count, p50, p99, mean}`` over measured packets."""
        out: dict[int, dict[str, float]] = {}
        for cls, values in sorted(self.samples.items()):
            if values:
                out[cls] = {
                    "count": float(len(values)),
                    "p50": float(percentile(values, 50)),
                    "p99": float(percentile(values, 99)),
                    "mean": sum(values) / len(values),
                }
            else:
                out[cls] = {"count": 0.0, "p50": 0.0, "p99": 0.0, "mean": 0.0}
        return out

    def payload(self) -> dict[str, Any]:
        """Flat JSON-safe summary (one sweep-report row)."""
        s = self.stats
        out: dict[str, Any] = {
            "mode": self.mode,
            "qos": bool(self.qos),
            "fg_rate": self.fg_rate,
            "interference_rate": self.rate,
            "sent": s.sent,
            "delivered": s.delivered,
            "dropped": s.dropped,
            "conserved": s.in_flight == 0,
            "drained": bool(self.drained),
            "deadlock_recoveries": s.deadlock_recoveries,
            "run_end": self.run_end,
        }
        latencies = self.class_latency()
        for cls in range(3):
            prefix = _CLASS_PREFIX[cls]
            row = latencies.get(
                cls, {"count": 0.0, "p50": 0.0, "p99": 0.0, "mean": 0.0}
            )
            out[f"{prefix}_count"] = int(row["count"])
            out[f"{prefix}_p50"] = row["p50"]
            out[f"{prefix}_p99"] = row["p99"]
            out[f"{prefix}_mean"] = row["mean"]
        for cls, row in latencies.items():
            if cls not in _CLASS_PREFIX:
                out[f"cls{cls}_count"] = int(row["count"])
                out[f"cls{cls}_p99"] = row["p99"]
        fg_p99 = out["fg_p99"]
        out["p99_ratio"] = out["bulk_p99"] / fg_p99 if fg_p99 else 0.0
        if self.anatomy is not None:
            out.update(self.anatomy.payload())
        return out


def run_interference(
    topology,
    mode: str = "noise",
    rate: float = 0.2,
    fg_rate: float = 0.05,
    pattern: str = "uniform_random",
    qos: bool = True,
    classes: QoSConfig | None = None,
    config: NetworkConfig | None = None,
    warmup: int = 300,
    measure: int = 2000,
    drain_limit: int = 60_000,
    seed: int | None = 0,
    payload_bytes: int = 64,
    noise_fraction: float = 0.5,
    hotspot_count: int = 4,
    burst_period: int = 256,
    burst_duty: float = 0.25,
    incast_degree: int = 16,
    incast_period: int = 64,
    instrument=None,
    anatomy: bool = False,
) -> InterferenceRunResult:
    """One interference scenario, start to drain.

    ``rate`` is the average *per-interfering-node* offered load in all
    three modes (burst peaks at ``rate / burst_duty`` inside its ON
    window; incast converts it to packets per wave), so a sweep over
    ``rate`` compares the shapes at equal mean pressure.  ``qos=False``
    runs the identical tagged traffic without an installed class table
    — the classless baseline where foreground and bulk collapse
    together.  ``instrument`` (if given) sees the freshly built
    simulator before any traffic or the QoS table, matching the other
    workload runners.  ``anatomy=True`` installs a
    :class:`~repro.obs.anatomy.LatencyAnatomy` (into the probes the
    instrument installed, or fresh ones) and attaches it to the result
    — the ``anatomy`` experiment kind and ``repro hotspots`` ride this.
    """
    if mode not in INTERFERENCE_MODES:
        raise ValueError(
            f"unknown interference mode {mode!r}; expected one of "
            f"{INTERFERENCE_MODES}"
        )
    policy = make_policy(topology, adaptive=True)
    sim = NetworkSimulator(topology, policy, config)
    if instrument is not None:
        instrument(sim)
    anatomy_obj = None
    if anatomy:
        probes = sim._probes
        if probes is None:
            from repro.obs.probes import FabricProbes

            probes = FabricProbes().attach_sim(sim)
        anatomy_obj = probes.install_anatomy()
    if qos:
        sim.install_qos(classes if classes is not None else QoSConfig.default())

    active = sorted(topology.active_nodes)
    pick = derive_rng(seed, "interference")
    interference_seed = pick.randrange(2**32)

    foreground = BernoulliInjector(
        sim,
        make_pattern(pattern, active),
        fg_rate,
        warmup=warmup,
        measure=measure,
        payload_bytes=payload_bytes,
        seed=seed,
        tclass=LATENCY_CLASS,
    )

    if mode == "noise":
        k = max(1, int(len(active) * noise_fraction))
        sources = sorted(pick.sample(active, k))
        interferer = BernoulliInjector(
            sim,
            make_pattern("uniform_random", active),
            min(1.0, rate),
            warmup=warmup,
            measure=measure,
            payload_bytes=payload_bytes,
            seed=interference_seed,
            sources=sources,
            tclass=BULK_CLASS,
        )
    elif mode == "burst":
        k = max(1, int(len(active) * noise_fraction))
        sources = sorted(pick.sample(active, k))
        hotspots = sorted(pick.sample(active, min(hotspot_count, len(active))))
        interferer = BurstyInjector(
            sim,
            make_pattern("uniform_random", active),
            min(1.0, rate / burst_duty),
            warmup=warmup,
            measure=measure,
            payload_bytes=payload_bytes,
            seed=interference_seed,
            sources=sources,
            tclass=BULK_CLASS,
            period=burst_period,
            duty=burst_duty,
            hotspots=hotspots,
        )
    else:  # incast
        victim = pick.choice(active)
        degree = min(incast_degree, len(active) - 1)
        candidates = [n for n in active if n != victim]
        sources = sorted(pick.sample(candidates, degree))
        interferer = IncastScheduler(
            sim,
            sources,
            victim,
            period=incast_period,
            packets_per_wave=max(1, round(rate * incast_period)),
            warmup=warmup,
            measure=measure,
            payload_bytes=payload_bytes,
            tclass=BULK_CLASS,
        )

    samples: dict[int, list[int]] = {}

    def on_delivery(packet, now: int) -> None:
        if packet.measured and packet.kind is PacketKind.DATA:
            samples.setdefault(packet.tclass, []).append(
                now - packet.inject_time
            )

    sim.on_delivery(on_delivery)
    foreground.start()
    interferer.start()

    stop = warmup + measure
    sim.run(until=stop)
    sim.run(until=stop + drain_limit)
    sim.stats.measure_cycles = measure

    return InterferenceRunResult(
        stats=sim.stats,
        mode=mode,
        rate=rate,
        fg_rate=fg_rate,
        qos=qos,
        num_nodes=topology.num_nodes,
        run_end=sim.now,
        drained=sim.stats.in_flight == 0,
        samples=samples,
        anatomy=anatomy_obj,
    )
