"""Migration scenarios: elastic scaling that pays for data movement.

A *migration scenario* runs address-driven foreground memory traffic on
a String Figure network while a gate-off/wake cycle executes through
the online reconfiguration pipeline — with the victims' pages moving as
real network traffic (:mod:`repro.memory.migration`) instead of the
instant remap of plain churn scenarios.  The foreground load is what
makes the cost measurable: every request resolves its destination
through the page directory, so requests race the pages they target —
some are served before the page moves, some are forwarded after it
left, some stall at the destination waiting for it to land.

Foreground traffic is read-only (migration of a page concurrently
written by third parties needs a coherence protocol the paper does not
model); each request is a ``READ_REQ`` to the page's current location,
serviced by that node's banked DRAM controller, answered with a
``READ_RESP`` carrying one cache line.  Request latency is recorded
request-by-request and split into *baseline / during / after* phases
around the reconfiguration disturbance, which is what
``bench_migration_cost.py`` compares against the ``teleport`` baseline.

:func:`run_migration` assembles the whole stack and returns a
:class:`MigrationRunResult` whose :meth:`~MigrationRunResult.payload`
is flat and JSON-safe — the experiment engine's ``migration`` task kind
wraps it, making migration sweeps parallel and cacheable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from repro.core.reconfig import ReconfigurationManager
from repro.core.routing import AdaptiveGreediestRouting
from repro.core.topology import StringFigureTopology
from repro.energy.power_gating import PowerManager
from repro.memory.address import AddressMapper
from repro.memory.migration import MigrationEngine, MigrationRecord, PageDirectory
from repro.memory.node import MemoryNode
from repro.network.config import NetworkConfig
from repro.network.elastic import (
    DEFAULT_REVALIDATE_CYCLES,
    LiveReconfigEvent,
    LiveReconfigurator,
)
from repro.network.packet import Packet, PacketKind
from repro.network.policies import GreedyPolicy
from repro.network.simulator import NetworkSimulator
from repro.network.stats import SimStats, percentile
from repro.utils.rng import derive_rng

__all__ = ["ForegroundMemoryTraffic", "MigrationRunResult", "run_migration"]

#: Foreground read requests carry address + tag (16 B header).
_REQUEST_BYTES = 16


class ForegroundMemoryTraffic:
    """Per-node Bernoulli read-request load over the page footprint.

    Every active node issues reads to uniformly drawn pages; the
    destination comes from the page directory at issue time, so the
    load follows the data as it migrates.  Request completions are
    recorded as ``(issue, latency)`` pairs for post-hoc phase analysis.

    Requests racing a migration are handled by the directory's arrival
    ruling: *serve* (page is here), *forward* (page left — one more
    network trip to its current location), or *stall* (page is inbound
    here — wait for it to land, then serve).  No request is ever
    dropped; ``issued == completed`` after drain is the scenario's
    conservation invariant alongside ``sent == delivered``.
    """

    def __init__(
        self,
        sim: NetworkSimulator,
        directory: PageDirectory,
        mapper: AddressMapper,
        memory_node,
        rate: float,
        footprint_pages: int,
        warmup: int = 300,
        measure: int = 4000,
        seed: int | None = 0,
        sources: list[int] | None = None,
        reconfig: LiveReconfigurator | None = None,
    ) -> None:
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"rate must be in (0, 1], got {rate}")
        self.sim = sim
        self.reconfig = reconfig
        self.directory = directory
        self.mapper = mapper  # local offsets are home-based: any generation works
        self.memory_node = memory_node
        self.rate = rate
        self.footprint_pages = footprint_pages
        self.page_bytes = mapper.interleave_bytes
        self.warmup = warmup
        self.measure = measure
        self.seed = seed
        self.sources = (
            list(sim.topology.active_nodes) if sources is None else list(sources)
        )
        self._line = sim.config.cacheline_bytes
        self._req_flits = sim.config.packet_flits(_REQUEST_BYTES)
        self._stop = warmup + measure
        self.issued = 0
        self.completed = 0
        self.skipped_sources = 0
        self.local_ops = 0
        self.forwarded_requests = 0
        self.stalled_requests = 0
        self.stall_cycle_sum = 0
        #: (issue_time, latency) of every completed non-local request.
        self.samples: list[tuple[int, int]] = []
        sim.on_delivery(self._on_delivery)

    # -- injection ----------------------------------------------------------

    def start(self) -> None:
        for node in self.sources:
            rng = derive_rng(self.seed, "mig-fg", node)
            self._schedule_next(node, rng, 0)

    def _schedule_next(self, node: int, rng, now: int) -> None:
        u = rng.random()
        if self.rate >= 1.0:
            gap = 1
        else:
            gap = max(1, math.ceil(math.log(1.0 - u) / math.log(1.0 - self.rate)))
        t = now + gap
        if t >= self._stop:
            return

        def fire(current_time: int, node=node, rng=rng) -> None:
            self._issue(node, rng, current_time)
            self._schedule_next(node, rng, current_time)

        self.sim.schedule(t, fire)

    def _issue(self, node: int, rng, now: int) -> None:
        if self.reconfig is not None and not self.reconfig.usable(node):
            # The node is gated (or draining/revalidating): its cores
            # are asleep too, so it skips this injection slot.
            self.skipped_sources += 1
            return
        page = rng.randrange(self.footprint_pages)
        offset = rng.randrange(self.page_bytes // self._line) * self._line
        addr = page * self.page_bytes + offset
        dst = self.directory.resolve(page)
        self.issued += 1
        if dst == node:
            # Local page: DRAM service only, no network trip.  If the
            # page is inbound (this node is an in-flight destination),
            # the local access stalls for the landing like any other.
            ruling, _target = self.directory.arrival_ruling(node, page)
            if ruling == "stall":
                self.stalled_requests += 1
                self.directory.when_landed(
                    page,
                    lambda t, n=node, a=addr, i=now: self._serve_local(n, a, i, t),
                )
            else:
                self._serve_local(node, addr, now, now)
            return
        self._send_request(node, dst, page, addr, now, now)

    def _serve_local(self, node: int, addr: int, issued: int, now: int) -> None:
        done = self.memory_node(node).service_bulk(
            now, self.mapper.local_offset(addr), self._line
        )
        self.local_ops += 1
        self.completed += 1
        self.stall_cycle_sum += now - issued
        self.samples.append((issued, done - issued))

    def _send_request(
        self, src: int, dst: int, page: int, addr: int, issued: int, now: int
    ) -> None:
        packet = Packet(
            src=src,
            dst=dst,
            size_flits=self._req_flits,
            payload_bytes=_REQUEST_BYTES,
            kind=PacketKind.READ_REQ,
            measured=False,
            context=("fg", src, page, addr, issued),
        )
        self.sim.send(packet, now)

    # -- delivery -----------------------------------------------------------

    def _on_delivery(self, packet: Packet, now: int) -> None:
        context = packet.context
        if not (isinstance(context, tuple) and context and context[0] == "fg"):
            return
        _tag, origin, page, addr, issued = context
        if packet.kind is PacketKind.READ_RESP:
            self.completed += 1
            self.samples.append((issued, now - issued))
            return
        if packet.kind is not PacketKind.READ_REQ:
            return
        node = packet.dst
        ruling, target = self.directory.arrival_ruling(node, page)
        if ruling == "serve":
            self._serve(node, origin, page, addr, issued, now)
        elif ruling == "stall":
            self.stalled_requests += 1
            arrived = now

            def landed(t: int, n=node, o=origin, p=page, a=addr, i=issued) -> None:
                self.stall_cycle_sum += t - arrived
                self._serve(n, o, p, a, i, t)

            self.directory.when_landed(page, landed)
        else:  # forward: the page moved on — chase it
            self.forwarded_requests += 1
            self._send_request(node, target, page, addr, issued, now)

    def _serve(
        self, node: int, origin: int, page: int, addr: int, issued: int, now: int
    ) -> None:
        done = self.memory_node(node).service_bulk(
            now, self.mapper.local_offset(addr), self._line
        )
        if origin == node:
            # A forwarded request can come home (page moved back while
            # the request chased it): complete locally, no response.
            self.completed += 1
            self.samples.append((issued, done - issued))
            return
        response = Packet(
            src=node,
            dst=origin,
            size_flits=self.sim.config.packet_flits(self._line),
            payload_bytes=self._line,
            kind=PacketKind.READ_RESP,
            measured=False,
            context=("fg", origin, page, addr, issued),
        )
        self.sim.send(response, done)

    # -- analysis -----------------------------------------------------------

    def phase_stats(
        self, disturb_start: int, disturb_end: int
    ) -> dict[str, Any]:
        """p50/p99 foreground latency before/during/after the window."""
        phases: dict[str, list[int]] = {"baseline": [], "during": [], "after": []}
        for issued, latency in self.samples:
            if issued < self.warmup:
                continue
            if issued < disturb_start:
                phases["baseline"].append(latency)
            elif issued < disturb_end:
                phases["during"].append(latency)
            else:
                phases["after"].append(latency)
        out: dict[str, Any] = {}
        overall = [lat for issued, lat in self.samples if issued >= self.warmup]
        out["fg_requests"] = len(overall)
        out["fg_p50_overall"] = percentile(overall, 50)
        out["fg_p99_overall"] = percentile(overall, 99)
        out["fg_mean_overall"] = (
            sum(overall) / len(overall) if overall else 0.0
        )
        for name, samples in phases.items():
            out[f"fg_{name}_requests"] = len(samples)
            out[f"fg_p50_{name}"] = percentile(samples, 50)
            out[f"fg_p99_{name}"] = percentile(samples, 99)
        base_p50 = out["fg_p50_baseline"]
        base_p99 = out["fg_p99_baseline"]
        out["fg_slowdown_p50"] = (
            out["fg_p50_during"] / base_p50 if base_p50 else 0.0
        )
        out["fg_slowdown_p99"] = (
            out["fg_p99_during"] / base_p99 if base_p99 else 0.0
        )
        return out


@dataclass
class MigrationRunResult:
    """Everything one migration scenario produced."""

    stats: SimStats
    events: list[LiveReconfigEvent]
    records: list[MigrationRecord]
    foreground: ForegroundMemoryTraffic
    directory: PageDirectory
    mode: str
    num_nodes: int
    footprint_pages: int
    page_bytes: int
    disturb_start: int = 0
    disturb_end: int = 0
    phase: dict[str, Any] = field(default_factory=dict)

    def payload(self) -> dict[str, Any]:
        """Flat JSON-safe metrics (experiment-engine task payload)."""
        stats = self.stats
        fg = self.foreground
        return {
            "mode": self.mode,
            "sent": stats.sent,
            "delivered": stats.delivered,
            "in_flight": stats.in_flight,
            "num_nodes": self.num_nodes,
            "footprint_pages": self.footprint_pages,
            "page_bytes": self.page_bytes,
            "fg_issued": fg.issued,
            "fg_completed": fg.completed,
            "fg_skipped_sources": fg.skipped_sources,
            "fg_local_ops": fg.local_ops,
            "fg_forwarded": fg.forwarded_requests,
            "fg_stalled": fg.stalled_requests,
            "pages_moved": sum(r.pages_moved for r in self.records),
            "bytes_moved": sum(r.bytes_moved for r in self.records),
            "chunks_sent": sum(r.chunks_sent for r in self.records),
            "migration_makespan": sum(r.makespan_cycles for r in self.records),
            "max_makespan": max(
                (r.makespan_cycles for r in self.records), default=0
            ),
            "migrations_done": all(r.done for r in self.records),
            "num_events": len(self.events),
            "disturb_start": self.disturb_start,
            "disturb_end": self.disturb_end,
            "records": [r.to_dict() for r in self.records],
            "events": [e.to_dict() for e in self.events],
            "page_conservation": self.directory.check_conservation(),
            "deadlock_recoveries": stats.deadlock_recoveries,
            "emergency_loans": stats.emergency_loans,
            **self.phase,
        }


def run_migration(
    topology: StringFigureTopology,
    rate: float = 0.1,
    gate_fraction: float = 0.25,
    gate_at: int | None = None,
    wake_at: int | None = None,
    footprint_pages: int = 128,
    page_bytes: int = 4096,
    rate_limit: float = 32.0,
    max_inflight_pages: int = 4,
    chunk_bytes: int = 512,
    mode: str = "migrate",
    config: NetworkConfig | None = None,
    warmup: int = 300,
    measure: int = 6000,
    drain_limit: int = 80_000,
    seed: int | None = 0,
    revalidate_cycles: int = DEFAULT_REVALIDATE_CYCLES,
    instrument=None,
) -> MigrationRunResult:
    """One gate-off/wake cycle with real data migration, start to drain.

    Reconfiguration mutates the topology and routing tables, so callers
    must pass a *fresh* topology (never a memoized instance).  With
    ``mode="teleport"`` the identical scenario runs with the PR-2
    instant remap — the baseline the migration numbers are measured
    against.  Injection stops at ``warmup + measure``; the run then
    drains fully so both conservation invariants (``sent == delivered``
    and ``issued == completed``) are checkable at the end.
    """
    if config is None:
        config = NetworkConfig(emergency_stall_threshold=16)
    if page_bytes < config.cacheline_bytes:
        raise ValueError(
            f"page_bytes ({page_bytes}) must be at least one cache line "
            f"({config.cacheline_bytes})"
        )
    if footprint_pages < 1:
        raise ValueError(f"footprint_pages must be >= 1, got {footprint_pages}")
    if gate_at is None:
        gate_at = warmup + measure // 4
    if wake_at is None:
        wake_at = warmup + measure // 2
    if not gate_at < wake_at:
        raise ValueError(f"gate_at ({gate_at}) must precede wake_at ({wake_at})")

    routing = AdaptiveGreediestRouting(topology)
    policy = GreedyPolicy(routing)
    sim = NetworkSimulator(topology, policy, config)
    if instrument is not None:
        instrument(sim)
    manager = ReconfigurationManager(topology, routing)
    power = PowerManager(manager, config=sim.config)

    active = list(topology.active_nodes)
    mapper = AddressMapper(active, interleave_bytes=page_bytes)
    directory = PageDirectory()
    directory.populate(mapper, footprint_pages)
    memory_nodes: dict[int, MemoryNode] = {}

    def memory_node(node_id: int) -> MemoryNode:
        node = memory_nodes.get(node_id)
        if node is None:
            node = MemoryNode(node_id, sim, config)
            memory_nodes[node_id] = node
        return node

    engine = MigrationEngine(
        sim,
        mapper,
        directory,
        memory_node,
        rate_limit_bytes_per_cycle=rate_limit,
        max_inflight_pages=max_inflight_pages,
        chunk_bytes=chunk_bytes,
        mode=mode,
    )
    live = LiveReconfigurator(
        sim,
        manager,
        policy,
        power=power,
        revalidate_cycles=revalidate_cycles,
        migrator=engine,
    )
    foreground = ForegroundMemoryTraffic(
        sim,
        directory,
        mapper,
        memory_node,
        rate,
        footprint_pages,
        warmup=warmup,
        measure=measure,
        seed=seed,
        reconfig=live,
    )
    foreground.start()

    gated: list[int] = []

    def do_gate(now: int) -> None:
        victims = live.select_victims(fraction=gate_fraction)
        if victims:
            gated.extend(victims)
            live.gate_off(victims)

    def do_wake(now: int) -> None:
        if gated:
            live.gate_on(list(gated))

    sim.schedule(gate_at, do_gate)
    sim.schedule(wake_at, do_wake)

    sim.run(until=warmup + measure)
    sim.run(until=warmup + measure + drain_limit)
    if sim.pending_events:
        # Slow rate limits can push the wake-side migrate-in past the
        # drain budget; finish it so conservation is checkable.  The
        # foreground has stopped injecting, so the heap must empty.
        sim.drain()
    sim.stats.measure_cycles = measure

    # Disturbance window: from the first reconfiguration request to the
    # last cycle any part of the pipeline (including migration) ran.
    starts = [e.t_request for e in live.events]
    ends = [e.t_unblocked for e in live.events]
    for record in engine.records:
        starts.append(record.t_start)
        if record.t_end is not None:
            ends.append(record.t_end)
    disturb_start = min(starts, default=gate_at)
    disturb_end = max(ends, default=wake_at)
    result = MigrationRunResult(
        stats=sim.stats,
        events=live.events,
        records=engine.records,
        foreground=foreground,
        directory=directory,
        mode=mode,
        num_nodes=topology.num_nodes,
        footprint_pages=footprint_pages,
        page_bytes=page_bytes,
        disturb_start=disturb_start,
        disturb_end=disturb_end,
    )
    result.phase = foreground.phase_stats(disturb_start, disturb_end)
    return result
