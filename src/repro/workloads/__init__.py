"""Real-workload substrate (paper Table IV).

The paper drives its RTL simulator with Pin-collected traces of Spark,
CloudSuite, Redis and kernel workloads run on a PowerEdge server.
Without those binaries, this package synthesizes the equivalent:
per-workload address-stream generators with each workload's
characteristic locality and read/write mix, filtered through the
paper's exact cache hierarchy (32 KB L1 / 2 MB L2 / 32 MB L3, assoc
4/8/16, 64 B lines), timestamped with an average-CPI model — the same
post-L3 miss streams the paper's traces reduce to at the memory
network's boundary.
"""

from repro.workloads.cache import CacheHierarchy, CacheLevel
from repro.workloads.churn import (
    ChurnAction,
    ChurnInjector,
    ChurnResult,
    ChurnSchedule,
    UtilizationController,
    run_churn,
)
from repro.workloads.generators import WORKLOADS, make_workload
from repro.workloads.migration import (
    ForegroundMemoryTraffic,
    MigrationRunResult,
    run_migration,
)
from repro.workloads.runner import WorkloadResult, run_workload
from repro.workloads.trace import MemoryAccess, WorkloadTrace, collect_trace

__all__ = [
    "CacheHierarchy",
    "CacheLevel",
    "ChurnAction",
    "ChurnInjector",
    "ChurnResult",
    "ChurnSchedule",
    "ForegroundMemoryTraffic",
    "MemoryAccess",
    "MigrationRunResult",
    "UtilizationController",
    "WORKLOADS",
    "WorkloadResult",
    "WorkloadTrace",
    "collect_trace",
    "make_workload",
    "run_churn",
    "run_migration",
    "run_workload",
]
