"""Synthetic multi-tenant load for the fabric service (offline driver).

Generates a deterministic multi-client request schedule — per-tenant
Bernoulli arrivals over seeded RNG streams, optionally spiked with
mid-run scale/fault control verbs — and pushes it through
:func:`repro.service.log.drive`, the *same* ingestion path the asyncio
daemon and the replay engine use.  This is the repeatable load point
behind the ``service`` experiment kind and the throughput benchmark:
no sockets, no wall clock, bit-identical across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.utils.rng import derive_rng

__all__ = ["synthetic_schedule", "run_service", "ServiceRunResult"]


def synthetic_schedule(
    tenants: int = 8,
    requests_per_tenant: int = 64,
    rate: float = 0.05,
    footprint_pages: int = 512,
    read_fraction: float = 0.7,
    size: int = 64,
    seed: int = 0,
    scale_at: int | None = None,
    scale_count: int = 0,
    scale_back_after: int | None = None,
    fault_at: int | None = None,
    fault_kind: str = "node_crash",
    fault_node: int | None = None,
) -> list[dict[str, Any]]:
    """Build a deterministic request-log entry list for *tenants* streams.

    Each tenant is an independent seeded stream issuing
    *requests_per_tenant* requests with geometric inter-arrival gaps of
    mean ``1/rate`` cycles (*rate* is per-tenant requests/cycle), a
    *read_fraction* read/write mix, and uniformly random pages over the
    footprint.  Optional ``scale_at``/``fault_at`` interleave control
    verbs at fixed cycles.  The merged schedule is ordered by
    ``(cycle, tenant, index)`` — a total order, so identical inputs
    always produce the identical entry list.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    keyed: list[tuple[int, int, int, dict[str, Any]]] = []
    for tenant_idx in range(tenants):
        rng = derive_rng(seed, "service-load", tenant_idx)
        name = f"client-{tenant_idx}"
        t = 0
        for i in range(requests_per_tenant):
            # Geometric gap with mean 1/rate (at least 1 cycle).
            gap = 1
            while rng.random() >= rate:
                gap += 1
            t += gap
            op = "read" if rng.random() < read_fraction else "write"
            keyed.append((t, tenant_idx, i, {
                "kind": "request", "t": t, "tenant": name, "op": op,
                "page": rng.randrange(footprint_pages), "offset": 0,
                "size": size, "req_id": f"{name}/{i}",
            }))
    controls: list[tuple[int, int, int, dict[str, Any]]] = []
    if scale_at is not None and scale_count > 0:
        controls.append((scale_at, -1, 0, {
            "kind": "control", "t": scale_at, "verb": "scale_down",
            "count": scale_count,
        }))
        if scale_back_after is not None:
            back = scale_at + scale_back_after
            controls.append((back, -1, 1, {
                "kind": "control", "t": back, "verb": "scale_up",
            }))
    if fault_at is not None:
        controls.append((fault_at, -1, 2, {
            "kind": "control", "t": fault_at, "verb": "fault",
            "fault_kind": fault_kind, "node": fault_node, "link": None,
            "duration": 0,
        }))
    keyed.extend(controls)
    keyed.sort(key=lambda item: item[:3])
    return [entry for _, _, _, entry in keyed]


@dataclass
class ServiceRunResult:
    """Outcome of one offline service run (drained and conserved-checked)."""

    digest: dict[str, Any]
    drain_report: dict[str, Any]
    snapshot: dict[str, Any]
    service: Any = field(default=None, repr=False)

    def payload(self) -> dict[str, Any]:
        """Flat JSON-safe summary row (experiment worker / benchmarks).

        Latency percentiles come from the drain report's ``latency``
        block — :meth:`FabricService.latency_summary`, the single
        sketch-backed path shared with the daemon — so the offline
        table and a live ``drain``/``metrics`` scrape can never drift.
        """
        snap = self.snapshot
        completed = snap["completed"]
        latency = self.drain_report["latency"]
        duration = max(1, snap["now"])
        return {
            "submitted": snap["submitted"],
            "completed": completed,
            "shed": snap["shed"],
            "queued_total": snap["queued_total"],
            "timeouts": snap["timeouts"],
            "forwarded": snap["forwarded"],
            "duration_cycles": snap["now"],
            "requests_per_kcycle": 1000.0 * completed / duration,
            "p50": latency["p50"],
            "p99": latency["p99"],
            "p50_max": latency["p50_max"],
            "p99_max": latency["p99_max"],
            "sent": snap["sent"],
            "delivered": snap["delivered"],
            "dropped": snap["dropped"],
            "pages_lost": snap["pages_lost"],
            "migrations": snap["migrations"],
            "conserved": self.drain_report["all_conserved"],
            "completions_digest": self.digest["completions"],
        }


def run_service(
    nodes: int = 144,
    design: str = "SF",
    ports: int | None = None,
    topology_seed: int = 0,
    seed: int = 0,
    tenants: int = 8,
    requests_per_tenant: int = 64,
    rate: float = 0.05,
    footprint_pages: int = 512,
    read_fraction: float = 0.7,
    size: int = 64,
    max_outstanding: int = 256,
    queue_depth: int = 512,
    node_watermark: int = 32,
    scale_at: int | None = None,
    scale_count: int = 0,
    scale_back_after: int | None = None,
    fault_at: int | None = None,
    fault_kind: str = "node_crash",
    fault_node: int | None = None,
    keep_service: bool = False,
    instrument=None,
) -> ServiceRunResult:
    """Run one deterministic multi-tenant load point against a fresh fabric.

    Builds the full service stack, drives the synthetic schedule
    through the shared ingestion path, drains to quiescence, and
    returns digest + conservation report + stats snapshot.
    ``instrument`` (if given) is called with the freshly built service
    before any request is driven — the observability layer calls
    ``service.install_probes`` here.
    """
    from repro.service.core import FabricService
    from repro.service.log import drive

    service = FabricService(
        nodes=nodes, design=design, ports=ports,
        topology_seed=topology_seed, seed=seed,
        footprint_pages=footprint_pages,
        max_outstanding=max_outstanding, queue_depth=queue_depth,
        node_watermark=node_watermark,
    )
    if instrument is not None:
        instrument(service)
    entries = synthetic_schedule(
        tenants=tenants, requests_per_tenant=requests_per_tenant,
        rate=rate, footprint_pages=footprint_pages,
        read_fraction=read_fraction, size=size, seed=seed,
        scale_at=scale_at, scale_count=scale_count,
        scale_back_after=scale_back_after,
        fault_at=fault_at, fault_kind=fault_kind, fault_node=fault_node,
    )
    drive(service, entries)
    drain_report = service.drain()
    return ServiceRunResult(
        digest=service.digest(),
        drain_report=drain_report,
        snapshot=service.snapshot(),
        service=service if keep_service else None,
    )
