"""Churn scenarios: elastic reconfiguration under live traffic.

A *churn scenario* runs synthetic traffic on a String Figure network
while nodes power off and on mid-flight through the online
reconfiguration pipeline (:mod:`repro.network.elastic`).  Two ways to
drive the churn:

* **Scripted schedules** (:class:`ChurnSchedule`) — gate/wake actions
  at fixed times, e.g. one gate-off/wake cycle or a periodic duty
  cycle.  Victim counts can be given as fractions; victims are selected
  when the action fires, from the then-current network.
* **Utilization-driven** (:class:`UtilizationController`) — a periodic
  controller samples delivered throughput per active node and gates a
  step of nodes when the network is underutilized (waking them back
  when utilization climbs), under the power manager's reconfiguration
  granularity.  This is the paper's §III-C power-management story run
  closed-loop.

Traffic comes from :class:`ChurnInjector`, a churn-aware Bernoulli
injector: sources stop injecting while they are gated and re-draw
destinations that are currently unusable, so traffic tracks the elastic
network exactly the way processors tracking memory hotplug would.

:func:`run_churn` assembles the whole stack and returns a
:class:`ChurnResult` whose :meth:`~ChurnResult.payload` is flat and
JSON-safe — the experiment engine's ``churn`` task kind is a thin
wrapper around it, which is what makes churn sweeps parallel and
cacheable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.reconfig import ReconfigurationManager
from repro.core.routing import AdaptiveGreediestRouting
from repro.core.topology import StringFigureTopology
from repro.energy.power_gating import PowerManager
from repro.network.config import NetworkConfig
from repro.network.elastic import (
    DEFAULT_REVALIDATE_CYCLES,
    LiveReconfigEvent,
    LiveReconfigurator,
    WindowedLatencyProbe,
    disturbance_metrics,
)
from repro.network.policies import GreedyPolicy
from repro.network.simulator import NetworkSimulator
from repro.network.stats import SimStats
from repro.traffic.injection import BernoulliInjector
from repro.traffic.patterns import make_pattern

__all__ = [
    "ChurnAction",
    "ChurnSchedule",
    "ChurnInjector",
    "UtilizationController",
    "ChurnResult",
    "run_churn",
]


@dataclass(frozen=True)
class ChurnAction:
    """One scheduled churn step.

    ``kind`` is ``gate_off``/``gate_on``/``unmount``/``mount``.  For
    power-downs give either explicit ``nodes``, a victim ``count``, or
    a ``fraction`` of the then-active network; a power-up with no
    explicit nodes wakes everything the schedule gated so far.
    """

    time: int
    kind: str
    fraction: float | None = None
    count: int | None = None
    nodes: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("gate_off", "gate_on", "unmount", "mount"):
            raise ValueError(f"unknown churn action kind {self.kind!r}")


@dataclass
class ChurnSchedule:
    """A time-ordered list of churn actions."""

    actions: list[ChurnAction] = field(default_factory=list)

    @classmethod
    def cycle(cls, gate_at: int, wake_at: int, fraction: float) -> "ChurnSchedule":
        """One gate-off of *fraction* of the nodes, then one full wake."""
        if wake_at <= gate_at:
            raise ValueError("wake_at must come after gate_at")
        return cls(
            [
                ChurnAction(time=gate_at, kind="gate_off", fraction=fraction),
                ChurnAction(time=wake_at, kind="gate_on"),
            ]
        )

    @classmethod
    def periodic(
        cls,
        start: int,
        period: int,
        duty: float,
        fraction: float,
        cycles: int,
    ) -> "ChurnSchedule":
        """*cycles* gate/wake rounds: gated for ``duty`` of each period."""
        if not 0.0 < duty < 1.0:
            raise ValueError(f"duty must be in (0, 1), got {duty}")
        actions: list[ChurnAction] = []
        for i in range(cycles):
            t0 = start + i * period
            actions.append(ChurnAction(time=t0, kind="gate_off", fraction=fraction))
            actions.append(ChurnAction(time=t0 + int(duty * period), kind="gate_on"))
        return cls(actions)


class ChurnInjector(BernoulliInjector):
    """Bernoulli injection that tracks the elastic network.

    Every source keeps its injection clock running, but a gated (or
    draining/revalidating) source skips its injections, and drawn
    destinations that are currently unusable are re-drawn — so no
    packet is ever addressed to a node whose links are about to power
    down.  All redraws come from the same per-node RNG stream, keeping
    runs bit-deterministic.
    """

    def __init__(
        self,
        *args,
        reconfig: LiveReconfigurator | None,
        max_redraws: int = 64,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.reconfig = reconfig
        self.max_redraws = max_redraws
        self.skipped_sources = 0
        self.redraws = 0

    # Availability predicates — subclasses override these to track a
    # different notion of "usable" (e.g. the fault subsystem's
    # physical-vs-detected knowledge) without re-implementing the
    # injection loop.

    def _usable_source(self, node: int) -> bool:
        return self.reconfig is None or self.reconfig.usable(node)

    def _usable_dest(self, node: int) -> bool:
        return self.reconfig is None or self.reconfig.usable(node)

    def _draw_destination(self, node: int, rng) -> int | None:
        for _ in range(self.max_redraws):
            dst = self.pattern.destination(node, rng)
            if dst != node and self._usable_dest(dst):
                return dst
            self.redraws += 1
        return None

    def _schedule_next(self, node: int, rng, now: int) -> None:
        t = now + self._gap(rng)
        if t >= self._stop:
            return

        def fire(current_time: int, node=node, rng=rng) -> None:
            if self._usable_source(node):
                dst = self._draw_destination(node, rng)
                if dst is not None:
                    from repro.network.packet import Packet, PacketKind

                    measured = self.warmup <= current_time < self.warmup + self.measure
                    self.sim.send(
                        Packet(
                            src=node,
                            dst=dst,
                            size_flits=self._size_flits,
                            payload_bytes=self.payload_bytes,
                            kind=PacketKind.DATA,
                            measured=measured,
                        ),
                        current_time,
                    )
            else:
                self.skipped_sources += 1
            self._schedule_next(node, rng, current_time)

        self.sim.schedule(t, fire)


class _ScheduleDriver:
    """Fires a :class:`ChurnSchedule` against a live reconfigurator."""

    def __init__(self, live: LiveReconfigurator) -> None:
        self.live = live
        self.gated_batches: list[tuple[int, ...]] = []

    def apply(self, schedule: ChurnSchedule) -> None:
        for action in schedule.actions:
            self.live.sim.schedule(action.time, lambda t, a=action: self._fire(t, a))

    def _fire(self, now: int, action: ChurnAction) -> None:
        if action.kind in ("gate_off", "unmount"):
            nodes = list(action.nodes) or self.live.select_victims(
                fraction=action.fraction, count=action.count
            )
            if not nodes:
                return
            if action.kind == "gate_off":
                self.live.gate_off(nodes)
            else:
                self.live.unmount(nodes)
            self.gated_batches.append(tuple(nodes))
        else:
            nodes = list(action.nodes)
            if not nodes:
                while self.gated_batches:
                    nodes.extend(self.gated_batches.pop())
            if not nodes:
                return
            if action.kind == "gate_on":
                self.live.gate_on(nodes)
            else:
                self.live.mount(nodes)


class UtilizationController:
    """Closed-loop power management driven by delivered throughput.

    Every ``interval`` cycles the controller computes utilization as
    delivered packets per active node per cycle over the last interval.
    Below ``low_util`` it gates ``gate_step`` well-spaced victims (never
    dropping under ``min_active_fraction`` of the full network); above
    ``high_util`` it wakes the most recently gated batch.  Actions
    respect the power manager's reconfiguration granularity and never
    overlap a reconfiguration already in flight.
    """

    def __init__(
        self,
        live: LiveReconfigurator,
        interval: int = 2000,
        low_util: float = 0.01,
        high_util: float = 0.05,
        gate_step: int = 2,
        min_active_fraction: float = 0.5,
        stop_at: int | None = None,
    ) -> None:
        self.live = live
        self.interval = interval
        self.low_util = low_util
        self.high_util = high_util
        self.gate_step = gate_step
        self.min_active_fraction = min_active_fraction
        self.stop_at = stop_at
        self.decisions: list[dict[str, Any]] = []
        self._gated: list[tuple[int, ...]] = []
        self._last_delivered = 0

    def start(self) -> None:
        self.live.sim.schedule(self.interval, self._tick)

    def _tick(self, now: int) -> None:
        sim = self.live.sim
        if self.stop_at is not None and now >= self.stop_at:
            return
        delivered = sim.stats.delivered
        delta = delivered - self._last_delivered
        self._last_delivered = delivered
        topo = self.live.manager.topology
        active = len(topo.active_nodes)
        util = delta / (active * self.interval) if active else 0.0
        action = self._decide(now, util, active, topo.num_nodes)
        self.decisions.append(
            {"time": now, "utilization": util, "active": active, "action": action}
        )
        sim.schedule(now + self.interval, self._tick)

    def _decide(self, now: int, util: float, active: int, total: int) -> str:
        if self.live.pending_operations:
            return "busy"
        power = self.live.power
        if power is not None and not power.can_reconfigure(now * self.live.sim.config.cycle_ns):
            return "granularity"
        if util < self.low_util:
            floor = int(total * self.min_active_fraction)
            room = active - floor
            if room <= 0:
                return "at_floor"
            victims = self.live.select_victims(count=min(self.gate_step, room))
            if not victims:
                return "no_candidates"
            self.live.gate_off(victims)
            self._gated.append(tuple(victims))
            return f"gate_off:{len(victims)}"
        if util > self.high_util and self._gated:
            batch = self._gated.pop()
            self.live.gate_on(batch)
            return f"gate_on:{len(batch)}"
        return "hold"


@dataclass
class ChurnResult:
    """Everything one churn run produced."""

    stats: SimStats
    events: list[LiveReconfigEvent]
    disturbances: list[dict[str, Any]]
    series: list[dict[str, Any]]
    controller_log: list[dict[str, Any]]
    num_nodes: int
    min_active_nodes: int
    final_active_nodes: int

    def payload(self) -> dict[str, Any]:
        """Flat JSON-safe metrics (experiment-engine task payload)."""
        stats = self.stats
        recoveries = [d["recovery_cycles"] for d in self.disturbances if d["recovered"]]
        return {
            "sent": stats.sent,
            "delivered": stats.delivered,
            "in_flight": stats.in_flight,
            "injected": stats.injected,
            "measured_delivered": stats.measured_delivered,
            "avg_latency": stats.avg_latency,
            "p95_latency": stats.latency.percentile(95),
            "avg_hops": stats.avg_hops,
            "accepted_rate": stats.accepted_rate,
            "fallback_hops": stats.fallback_hops,
            "deadlock_recoveries": stats.deadlock_recoveries,
            "emergency_loans": stats.emergency_loans,
            "num_events": len(self.events),
            "parked_total": sum(e.parked_packets for e in self.events),
            "park_cycle_sum": sum(e.park_cycle_sum for e in self.events),
            "rerouted_total": sum(e.rerouted_packets for e in self.events),
            "events": self.disturbances,
            "num_nodes": self.num_nodes,
            "min_active_nodes": self.min_active_nodes,
            "final_active_nodes": self.final_active_nodes,
            "all_recovered": (
                all(d["recovered"] for d in self.disturbances) if self.disturbances else True
            ),
            "max_peak_ratio": max((d["peak_ratio"] for d in self.disturbances), default=0.0),
            "max_recovery_cycles": max(recoveries, default=0),
            "mean_recovery_cycles": (sum(recoveries) / len(recoveries) if recoveries else 0.0),
            "controller_decisions": len(self.controller_log),
        }


def run_churn(
    topology: StringFigureTopology,
    pattern: str = "uniform_random",
    rate: float = 0.2,
    schedule: ChurnSchedule | None = None,
    controller_params: dict[str, Any] | None = None,
    config: NetworkConfig | None = None,
    warmup: int = 300,
    measure: int = 2000,
    drain_limit: int = 40_000,
    seed: int | None = 0,
    payload_bytes: int = 64,
    window_cycles: int = 200,
    revalidate_cycles: int = DEFAULT_REVALIDATE_CYCLES,
    enforce_granularity: bool = False,
    granularity_ns: float | None = None,
    routing: AdaptiveGreediestRouting | None = None,
    instrument=None,
) -> ChurnResult:
    """One churn scenario, start to full drain.

    Reconfiguration mutates the topology and routing tables, so callers
    must pass a *fresh* topology (never one of the experiment engine's
    memoized instances).  Injection stops at ``warmup + measure``;
    the drain phase then lets every in-flight packet deliver, which is
    what makes the conservation invariant (``sent == delivered``)
    checkable at the end of every run.

    Unless an explicit ``config`` says otherwise, churn runs enable the
    simulator's emergency stall escalation: the reconfiguration
    transient can leave a saturated network in a cyclic credit stall
    the bounded reserve slots cannot break, and the delivery guarantee
    ("no packet is ever dropped") outranks the hard buffering bound
    during churn.
    """
    if config is None:
        config = NetworkConfig(emergency_stall_threshold=16)
    if routing is None:
        routing = AdaptiveGreediestRouting(topology)
    policy = GreedyPolicy(routing)
    sim = NetworkSimulator(topology, policy, config)
    if instrument is not None:
        instrument(sim)
    manager = ReconfigurationManager(topology, routing)
    power_kwargs = {} if granularity_ns is None else {"granularity_ns": granularity_ns}
    power = PowerManager(manager, config=sim.config, **power_kwargs)
    live = LiveReconfigurator(
        sim,
        manager,
        policy,
        power=power,
        revalidate_cycles=revalidate_cycles,
        enforce_granularity=enforce_granularity,
    )
    probe = WindowedLatencyProbe(sim, window_cycles=window_cycles)
    traffic = make_pattern(pattern, topology.active_nodes)
    injector = ChurnInjector(
        sim,
        traffic,
        rate,
        warmup=warmup,
        measure=measure,
        payload_bytes=payload_bytes,
        seed=seed,
        reconfig=live,
    )
    injector.start()

    driver = _ScheduleDriver(live)
    if schedule is not None:
        driver.apply(schedule)
    controller = None
    if controller_params is not None:
        params = dict(controller_params)
        params.setdefault("stop_at", warmup + measure)
        controller = UtilizationController(live, **params)
        controller.start()

    initial_active = len(topology.active_nodes)
    sim.run(until=warmup + measure)
    sim.run(until=warmup + measure + drain_limit)
    sim.stats.measure_cycles = measure

    active = initial_active
    min_active = initial_active
    for event in live.events:
        if event.kind in ("gate_off", "unmount"):
            active -= len(event.nodes)
        else:
            active += len(event.nodes)
        min_active = min(min_active, active)
    disturbances = [disturbance_metrics(probe, event) for event in live.events]
    return ChurnResult(
        stats=sim.stats,
        events=live.events,
        disturbances=disturbances,
        series=probe.series(),
        controller_log=controller.decisions if controller else [],
        num_nodes=topology.num_nodes,
        min_active_nodes=min_active,
        final_active_nodes=len(topology.active_nodes),
    )
