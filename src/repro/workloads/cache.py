"""The trace generator's cache hierarchy (paper §V).

"Our trace generator models a cache hierarchy with 32KB L1, 2MB L2,
and 32MB L3 with associativities of 4, 8, and 16, respectively."

The model is an inclusive, write-back, write-allocate hierarchy with
LRU replacement and 64 B lines.  Only accesses that miss all three
levels (plus dirty L3 evictions) reach the memory network — these are
the trace events the network simulation consumes.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["CacheLevel", "CacheHierarchy"]


class CacheLevel:
    """One set-associative, write-back, LRU cache level."""

    def __init__(self, name: str, size_bytes: int, assoc: int, line_bytes: int = 64):
        if size_bytes % (assoc * line_bytes):
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by assoc*line "
                f"({assoc}*{line_bytes})"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.num_sets = size_bytes // (assoc * line_bytes)
        # each set: OrderedDict line_addr -> dirty flag (LRU order)
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0

    def _set_of(self, line_addr: int) -> OrderedDict[int, bool]:
        return self._sets[line_addr % self.num_sets]

    def lookup(self, line_addr: int, is_write: bool) -> bool:
        """Probe for a line; on hit, update LRU and dirty state."""
        cache_set = self._set_of(line_addr)
        if line_addr in cache_set:
            cache_set.move_to_end(line_addr)
            if is_write:
                cache_set[line_addr] = True
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, line_addr: int, dirty: bool) -> tuple[int, bool] | None:
        """Insert a line; returns the evicted ``(line, dirty)`` if any."""
        cache_set = self._set_of(line_addr)
        victim = None
        if line_addr not in cache_set and len(cache_set) >= self.assoc:
            victim = cache_set.popitem(last=False)
        cache_set[line_addr] = dirty or cache_set.get(line_addr, False)
        cache_set.move_to_end(line_addr)
        return victim

    def invalidate(self, line_addr: int) -> bool:
        """Drop a line (inclusion enforcement); returns its dirty bit."""
        cache_set = self._set_of(line_addr)
        return bool(cache_set.pop(line_addr, False))

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CacheHierarchy:
    """The paper's three-level hierarchy in front of the memory network.

    ``scale`` shrinks every level proportionally (down to one set per
    level) for scaled-down workload runs, keeping miss and writeback
    behaviour representative when footprints are scaled the same way.
    """

    def __init__(self, line_bytes: int = 64, scale: float = 1.0) -> None:
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.line_bytes = line_bytes
        self.scale = scale

        def size(base: int, assoc: int) -> int:
            want = int(base * scale)
            unit = assoc * line_bytes
            return max(unit, (want // unit) * unit)

        self.l1 = CacheLevel("L1", size(32 << 10, 4), 4, line_bytes)
        self.l2 = CacheLevel("L2", size(2 << 20, 8), 8, line_bytes)
        self.l3 = CacheLevel("L3", size(32 << 20, 16), 16, line_bytes)
        self.levels = (self.l1, self.l2, self.l3)

    def access(self, addr: int, is_write: bool) -> list[tuple[int, bool]]:
        """Run one CPU access through the hierarchy.

        Returns the memory-network accesses it generates as
        ``(byte_address, is_write)`` pairs: a read for the demand fill
        on an all-levels miss, plus a write per dirty line evicted from
        the L3.  An empty list means the access was absorbed by cache.
        """
        line = addr // self.line_bytes
        for i, level in enumerate(self.levels):
            if level.lookup(line, is_write):
                # Fill upward so inner levels learn the line (inclusive).
                self._fill_upward(line, i, is_write)
                return []
        # Miss everywhere: demand read from memory, then fill all levels.
        memory_ops = [(line * self.line_bytes, False)]
        memory_ops.extend(self._fill_all(line, is_write))
        return memory_ops

    def _fill_upward(self, line: int, hit_level: int, is_write: bool) -> None:
        for j in range(hit_level):
            victim = self.levels[j].fill(line, dirty=is_write and j == 0)
            if victim is not None:
                v_line, v_dirty = victim
                # Write-back into the next level down.
                self.levels[j + 1].fill(v_line, v_dirty)

    def _fill_all(self, line: int, is_write: bool) -> list[tuple[int, bool]]:
        memory_ops: list[tuple[int, bool]] = []
        for j, level in enumerate(self.levels):
            victim = level.fill(line, dirty=is_write and j == 0)
            if victim is None:
                continue
            v_line, v_dirty = victim
            if j + 1 < len(self.levels):
                self.levels[j + 1].fill(v_line, v_dirty)
            elif v_dirty:
                memory_ops.append((v_line * self.line_bytes, True))
        return memory_ops

    def miss_rates(self) -> dict[str, float]:
        """Per-level miss rates (for trace sanity checks)."""
        return {
            level.name: 1.0 - level.hit_rate for level in self.levels
        }
