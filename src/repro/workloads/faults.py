"""Fault scenarios: unplanned failures under live traffic.

A *fault scenario* runs synthetic foreground traffic on a network while
a :class:`~repro.faults.injector.FaultPlan` fires link flaps, link
failures, node hangs, and node crashes into the event loop — no drain,
no warning — and the detection/repair/recovery stack races to contain
the damage.  It is the unplanned counterpart of the churn scenario
(PR-2) and the migration scenario (PR-3): where those measure the cost
of *scaling*, this measures the cost of *surviving*, which is the
paper's §V resilience argument put under load.

What a run reports:

* **Conservation** — every packet handed to the simulator ends exactly
  one way: ``sent == delivered + lost`` (lost = dropped mid-wire, in a
  crashed router, or as unreachable), with retransmissions accounted
  as fresh sends.  Nothing silently disappears.
* **Phase-tagged latency** — end-to-end request latency (including
  retransmit delays) split into *baseline / during / after* around the
  fault window, p50/p99 each, plus per-fault peak/recovery against the
  windowed probe.
* **Availability** — unreachable-node-cycles across crash and hang
  windows, lost/recovered page counts, retransmit and abandonment
  counters.
* **Data safety** — with a page layer attached, every page is resident
  on a live node, in flight, or explicitly lost
  (``PageDirectory`` conservation); a mirrored single-node crash loses
  zero pages.

Supported designs: String Figure (local table repair + ring-patching
excision through the reconfiguration pipeline) and the DM/Jellyfish
baselines (global minimal-routing recompute) — the paper's resilience
comparison, now under unplanned loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.reconfig import ReconfigurationManager
from repro.core.routing import AdaptiveGreediestRouting
from repro.core.topology import StringFigureTopology
from repro.faults.detector import FaultDetector, GraphRepair, TableRepair
from repro.faults.injector import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultRecord,
)
from repro.faults.layer import FaultLayer
from repro.faults.recovery import RecoveryOrchestrator
from repro.memory.address import AddressMapper
from repro.memory.migration import MigrationEngine, PageDirectory
from repro.memory.node import MemoryNode
from repro.network.config import NetworkConfig
from repro.network.elastic import LiveReconfigurator, WindowedLatencyProbe
from repro.network.packet import PacketKind
from repro.network.policies import GreedyPolicy
from repro.network.simulator import NetworkSimulator
from repro.network.stats import SimStats, percentile
from repro.traffic.patterns import make_pattern
from repro.workloads.churn import ChurnInjector

__all__ = ["FaultAwareInjector", "FaultRunResult", "run_faults"]


class FaultAwareInjector(ChurnInjector):
    """Bernoulli injection that reacts to failures the way hosts do.

    The injection loop is :class:`ChurnInjector`'s; only the
    availability predicates differ.  A node whose router crashed or
    hung stops injecting instantly (its cores died or stalled with it:
    physical self-knowledge); remote failures only stop being
    *targeted* once the detector announces them, so the pre-detection
    window sends real traffic into the failure and pays for it.
    Redraws reuse the per-node RNG stream, keeping runs
    bit-deterministic — and with no faults scheduled the stream (hence
    the whole simulation) is bit-identical to a plain
    :class:`~repro.traffic.injection.BernoulliInjector` run.
    """

    def __init__(self, *args, layer: FaultLayer, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.layer = layer

    def _usable_source(self, node: int) -> bool:
        return self.layer.usable_source(node) and (
            self.reconfig is None or self.reconfig.usable(node)
        )

    def _usable_dest(self, node: int) -> bool:
        return self.layer.usable_dest(node) and (
            self.reconfig is None or self.reconfig.usable(node)
        )


def _fault_disturbance(
    probe: WindowedLatencyProbe,
    record: FaultRecord,
    run_end: int,
    baseline_windows: int = 5,
    horizon_cycles: int = 10_000,
    tolerance: float = 1.25,
) -> dict[str, Any]:
    """Peak/recovery metrics of one fault against the windowed probe."""
    w = probe.window_cycles
    t0 = record.t_fault
    cleared = record.cleared_at(run_end)
    baseline = probe.mean_between(t0 - baseline_windows * w, t0)
    peak = 0.0
    recovered = False
    recovery_cycles: int | None = None
    saw_post_window = False
    horizon_end = cleared + horizon_cycles
    for entry in probe.series():
        start = entry["window_start"]
        if start + w <= t0 or start >= horizon_end:
            continue
        peak = max(peak, entry["mean_latency"])
        if start >= cleared:
            saw_post_window = True
        if (
            not recovered
            and baseline > 0.0
            and start >= cleared
            and entry["mean_latency"] <= tolerance * baseline
        ):
            recovered = True
            recovery_cycles = start + w - cleared
    if not saw_post_window:
        recovered = True
        recovery_cycles = 0
    return {
        "kind": record.kind,
        "t_fault": t0,
        "cleared_at": cleared,
        "baseline_latency": baseline,
        "peak_latency": peak,
        "peak_ratio": (peak / baseline) if baseline > 0 else 0.0,
        "recovered": recovered,
        "recovery_cycles": recovery_cycles,
    }


@dataclass
class FaultRunResult:
    """Everything one fault scenario produced."""

    stats: SimStats
    records: list[FaultRecord]
    disturbances: list[dict[str, Any]]
    layer: FaultLayer
    injector: FaultAwareInjector
    fault_injector: FaultInjector
    detector: FaultDetector
    recovery: RecoveryOrchestrator | None
    directory: PageDirectory | None
    num_nodes: int
    footprint_pages: int
    mirrored: bool
    run_end: int
    flushed: int
    samples: list[tuple[int, int]] = field(default_factory=list)
    phase: dict[str, Any] = field(default_factory=dict)

    def payload(self) -> dict[str, Any]:
        """Flat JSON-safe metrics (experiment-engine task payload)."""
        stats = self.stats
        layer = self.layer
        records = self.records
        by_kind: dict[str, int] = {}
        for record in records:
            by_kind[record.kind] = by_kind.get(record.kind, 0) + 1
        unreachable = sum(
            r.unreachable_node_cycles(self.run_end) for r in records
        )
        recoveries = [
            d["recovery_cycles"] for d in self.disturbances if d["recovered"]
        ]
        out: dict[str, Any] = {
            "sent": stats.sent,
            "delivered": stats.delivered,
            "lost": stats.dropped,
            "in_flight": stats.in_flight,
            "conserved": stats.sent == stats.delivered + stats.dropped,
            "injected": stats.injected,
            "measured_delivered": stats.measured_delivered,
            "avg_latency": stats.avg_latency,
            "p95_latency": stats.latency.percentile(95),
            "accepted_rate": stats.accepted_rate,
            "fallback_hops": stats.fallback_hops,
            "deadlock_recoveries": stats.deadlock_recoveries,
            "emergency_loans": stats.emergency_loans,
            "num_nodes": self.num_nodes,
            "num_faults": len(records),
            "faults_by_kind": by_kind,
            "detections": self.detector.detections,
            "absorbed_flaps": self.detector.absorbed_flaps,
            "skipped_fault_events": self.fault_injector.skipped_events,
            "unreachable_node_cycles": unreachable,
            "flushed": self.flushed,
            "fg_skipped_sources": self.injector.skipped_sources,
            "fg_redraws": self.injector.redraws,
            "all_recovered": (
                all(d["recovered"] for d in self.disturbances)
                if self.disturbances
                else True
            ),
            "max_peak_ratio": max(
                (d["peak_ratio"] for d in self.disturbances), default=0.0
            ),
            "max_recovery_cycles": max(recoveries, default=0),
            "events": [
                {**record.to_dict(), **disturbance}
                for record, disturbance in zip(records, self.disturbances)
            ],
            **layer.counters(),
        }
        out["footprint_pages"] = self.footprint_pages
        out["mirrored"] = self.mirrored
        if self.directory is not None:
            directory = self.directory
            recovery = self.recovery
            out["pages_lost"] = len(directory.lost)
            out["pages_recovered"] = (
                recovery.pages_recovered if recovery is not None else 0
            )
            out["pages_rehomed"] = (
                recovery.pages_rehomed if recovery is not None else 0
            )
            out["page_conservation"] = directory.check_conservation()
            # "Alive" excludes detected-dead nodes too: a node stranded
            # by a partition still physically holds its pages, but they
            # are unreachable — residency must not paper over that.
            alive = {
                n for n in range(self.num_nodes)
                if n not in layer.crashed and n not in layer.dead
            }
            out["page_residency_ok"] = all(
                directory.state_of(p).value == "resident"
                and directory.owner_of(p) in alive
                for p in directory.pages
            )
            out["recoveries_done"] = all(
                r.t_recovered is not None
                for r in records
                if r.kind == "node_crash"
            )
        else:
            out["pages_lost"] = 0
            out["pages_recovered"] = 0
            out["pages_rehomed"] = 0
            out["page_conservation"] = True
            out["page_residency_ok"] = True
            out["recoveries_done"] = all(
                r.t_recovered is not None or r.t_repaired is not None
                for r in records
                if r.kind == "node_crash"
            )
        # The one compound invariant every consumer (report table, CLI
        # detail, bench assertions) checks — computed here once.
        out["all_conserved"] = bool(
            out["conserved"]
            and out["page_conservation"]
            and out["page_residency_ok"]
        )
        out.update(self.phase)
        return out


def _phase_stats(
    samples: list[tuple[int, int]],
    records: list[FaultRecord],
    warmup: int,
    run_end: int,
) -> dict[str, Any]:
    """p50/p99 end-to-end latency before/during/after the fault window."""
    if records:
        first_fault = min(r.t_fault for r in records)
        last_clear = max(r.cleared_at(run_end) for r in records)
    else:
        first_fault = last_clear = run_end
    phases: dict[str, list[int]] = {"baseline": [], "during": [], "after": []}
    for issued, latency in samples:
        if issued < warmup:
            continue
        if issued < first_fault:
            phases["baseline"].append(latency)
        elif issued < last_clear:
            phases["during"].append(latency)
        else:
            phases["after"].append(latency)
    overall = [lat for issued, lat in samples if issued >= warmup]
    out: dict[str, Any] = {
        "fault_window": [first_fault, last_clear],
        "fg_requests": len(overall),
        "fg_p50_overall": percentile(overall, 50),
        "fg_p99_overall": percentile(overall, 99),
    }
    for name, values in phases.items():
        out[f"fg_{name}_requests"] = len(values)
        out[f"fg_p50_{name}"] = percentile(values, 50)
        out[f"fg_p99_{name}"] = percentile(values, 99)
    base = out["fg_p99_baseline"]
    out["fg_slowdown_p99"] = out["fg_p99_during"] / base if base else 0.0
    return out


def run_faults(
    topology,
    pattern: str = "uniform_random",
    rate: float = 0.1,
    plan: FaultPlan | None = None,
    schedule: str = "random",
    fault_rate: float = 0.001,
    kinds: tuple[str, ...] = FAULT_KINDS,
    flap_cycles: int = 300,
    hang_cycles: int = 500,
    max_crashes: int = 1,
    crash_at: int | None = None,
    detection_timeout: int = 200,
    retransmit_timeout: int = 64,
    max_retries: int = 8,
    footprint_pages: int = 0,
    page_bytes: int = 4096,
    mirrored: bool = True,
    mig_rate_limit: float = 64.0,
    config: NetworkConfig | None = None,
    warmup: int = 300,
    measure: int = 4000,
    drain_limit: int = 60_000,
    seed: int | None = 0,
    payload_bytes: int = 64,
    window_cycles: int = 200,
    instrument=None,
) -> FaultRunResult:
    """One fault scenario, start to full drain.

    Faults mutate the topology, routing tables, and (on crashes) the
    page placement, so callers must pass a *fresh* topology — never a
    memoized instance.  With ``plan=None`` a schedule is generated:
    ``schedule="random"`` draws faults at *fault_rate* per cycle over
    the middle of the measurement window; ``schedule="crash"`` fires a
    single node crash (at *crash_at*, default one quarter into the
    measurement) — the canonical recovery benchmark.  Injection stops
    at ``warmup + measure`` and the run drains fully, which is what
    makes every conservation law checkable at the end:
    ``sent == delivered + lost``, retransmits accounted, and — with a
    page layer (``footprint_pages > 0``) — every page resident on a
    live node or explicitly lost.
    """
    if config is None:
        config = NetworkConfig(emergency_stall_threshold=16)
    is_sf = isinstance(topology, StringFigureTopology)
    if is_sf and not topology.with_shortcuts:
        raise ValueError(
            "fault recovery on String Figure requires shortcut wires "
            "(crash excision patches the space-0 ring)"
        )

    live = None
    manager = None
    if is_sf:
        routing = AdaptiveGreediestRouting(topology)
        policy = GreedyPolicy(routing)
        sim = NetworkSimulator(topology, policy, config)
        manager = ReconfigurationManager(topology, routing)
        live = LiveReconfigurator(sim, manager, policy)
        repair = TableRepair(routing, policy)
    else:
        policy = topology.make_policy(adaptive=True)
        sim = NetworkSimulator(topology, policy, config)
    if instrument is not None:
        instrument(sim)

    layer = FaultLayer(
        sim, retransmit_timeout=retransmit_timeout, max_retries=max_retries
    )
    if not is_sf:
        repair = GraphRepair(sim, topology, layer)

    directory = None
    engine = None
    recovery = None
    if footprint_pages > 0:
        active = list(topology.active_nodes)
        mapper = AddressMapper(active, interleave_bytes=page_bytes)
        directory = PageDirectory()
        directory.populate(mapper, footprint_pages)
        memory_nodes: dict[int, MemoryNode] = {}

        def memory_node(node_id: int) -> MemoryNode:
            node = memory_nodes.get(node_id)
            if node is None:
                node = MemoryNode(node_id, sim, config)
                memory_nodes[node_id] = node
            return node

        engine = MigrationEngine(
            sim,
            mapper,
            directory,
            memory_node,
            rate_limit_bytes_per_cycle=mig_rate_limit,
        )
    recovery = RecoveryOrchestrator(
        sim,
        layer,
        live=live,
        graph_repair=None if is_sf else repair,
        engine=engine,
        directory=directory,
        mirrored=mirrored,
    )
    detector = FaultDetector(
        sim, layer, repair, recovery=recovery, live=live,
        detection_timeout=detection_timeout,
    )
    injector = FaultInjector(
        sim, layer, detector, topology, manager=manager, seed=seed
    )
    if plan is None:
        if schedule == "crash":
            at = crash_at if crash_at is not None else warmup + measure // 4
            plan = FaultPlan.single_crash(at)
        elif schedule == "random":
            plan = FaultPlan.random(
                fault_rate,
                start=warmup + measure // 8,
                stop=warmup + (3 * measure) // 4,
                seed=seed,
                kinds=kinds,
                flap_cycles=flap_cycles,
                hang_cycles=hang_cycles,
                max_crashes=max_crashes,
            )
        else:
            raise ValueError(f"unknown fault schedule kind {schedule!r}")
    injector.apply(plan)

    probe = WindowedLatencyProbe(sim, window_cycles=window_cycles)
    traffic = make_pattern(pattern, topology.active_nodes)
    foreground = FaultAwareInjector(
        sim,
        traffic,
        rate,
        warmup=warmup,
        measure=measure,
        payload_bytes=payload_bytes,
        seed=seed,
        layer=layer,
        reconfig=live,
    )

    samples: list[tuple[int, int]] = []
    stop = warmup + measure

    def on_delivery(packet, now) -> None:
        if packet.kind is not PacketKind.DATA:
            return
        meta = layer.take_meta(packet.pid)
        if meta is not None:
            first, _attempts = meta
            if warmup <= first < stop:
                samples.append((first, now - first))
        elif packet.measured:
            samples.append((packet.inject_time, now - packet.inject_time))

    sim.on_delivery(on_delivery)
    foreground.start()

    sim.run(until=stop)
    sim.run(until=stop + drain_limit)
    if sim.pending_events:
        # Recovery transfers and late retransmits may outlive the drain
        # budget; injection has stopped, so the heap must empty.
        sim.drain()
    # Flushing a stuck packet releases its inbound credit, which can
    # pop a credit-blocked upstream packet back into the event loop —
    # so flush and drain alternate until both are quiet, or the
    # conservation law would be checked against an unfinished network.
    flushed = 0
    while True:
        freed = layer.flush_stuck()
        flushed += freed
        if sim.pending_events:
            sim.drain()
        elif freed == 0:
            break
    sim.stats.measure_cycles = measure
    run_end = sim.now

    disturbances = [
        _fault_disturbance(probe, record, run_end)
        for record in injector.records
    ]
    result = FaultRunResult(
        stats=sim.stats,
        records=injector.records,
        disturbances=disturbances,
        layer=layer,
        injector=foreground,
        fault_injector=injector,
        detector=detector,
        recovery=recovery,
        directory=directory,
        num_nodes=topology.num_nodes,
        footprint_pages=footprint_pages,
        mirrored=mirrored,
        run_end=run_end,
        flushed=flushed,
        samples=samples,
    )
    result.phase = _phase_stats(samples, injector.records, warmup, run_end)
    return result
