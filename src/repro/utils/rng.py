"""Deterministic random number generation helpers.

Every stochastic component in the library (topology generation, traffic
injection, workload synthesis) takes an explicit seed so experiments are
reproducible bit-for-bit.  These helpers centralize the conventions:

* ``make_rng(seed)`` builds a ``random.Random`` from an int seed.
* ``derive_rng(seed, *labels)`` builds an independent stream for a
  sub-component, so e.g. the space-0 coordinates and the space-1
  coordinates of a topology do not share a stream (adding a space never
  perturbs earlier spaces).
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["make_rng", "derive_rng", "stable_hash"]


def make_rng(seed: int | None) -> random.Random:
    """Return a ``random.Random`` seeded with *seed* (or OS entropy if None)."""
    return random.Random(seed)


def stable_hash(*parts: object) -> int:
    """Hash *parts* into a 64-bit int, stable across processes and runs.

    Python's builtin ``hash`` is salted per-process for strings, so it
    cannot be used to derive reproducible seeds.
    """
    text = "\x1f".join(repr(p) for p in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def derive_rng(seed: int | None, *labels: object) -> random.Random:
    """Return an independent RNG stream derived from *seed* and *labels*."""
    if seed is None:
        return random.Random()
    return random.Random(stable_hash(seed, *labels))
