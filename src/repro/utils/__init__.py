"""Shared utilities: deterministic RNG helpers and small data structures."""

from repro.utils.rng import derive_rng, make_rng

__all__ = ["derive_rng", "make_rng"]
