"""Live (online) elastic reconfiguration inside the event loop.

The offline :class:`~repro.core.reconfig.ReconfigurationManager` flips a
network between scales instantaneously, between simulations.  This
module performs the paper's §III-C dynamic reconfiguration *while
packets keep flowing*, as simulator events, so the cost of elasticity
under real traffic is measurable (the Figure 9b EDP story).

One power-down operation runs as a timed pipeline:

1. **Drain** — victims are marked unstable; churn-aware traffic sources
   stop targeting them and the operation waits (polling) until each
   victim is quiescent: nothing destined to it, nothing queued on its
   ports, nothing mid-wire around it.
2. **Block** — the routing-table entries that will change (every entry
   referencing a victim) get their blocking bit set; packets route
   around the blocked links through the greediest protocol's usual
   adaptive/fallback machinery.  A packet that genuinely cannot make
   progress during this window (the ring patch is not switched in yet)
   is *parked* at its router — it keeps holding its inbound-link
   credit, so backpressure stays exact — and re-enters the network when
   the window closes.
3. **Switch** — after the sleep latency from
   :mod:`repro.energy.power_gating` elapses, the physical
   reconfiguration happens (links off, shortcut wires in, tables
   rebuilt).  Packets still queued on a link that just disappeared are
   re-routed from their current router with fresh routing state.
4. **Revalidate + unblock** — routers whose tables were rewritten hold
   arriving packets for the short revalidation window, then every
   parked packet re-enters and the network is fully open again.

Power-on is the mirror image: the wake latency is paid before the
switch, and the revalidation window doubles as the block window (the
new node is invisible to routing until its neighbors' tables are
rebuilt, so there is nothing to block beforehand).

Operations are serialized: a requested reconfiguration waits until the
one in progress completes, and (optionally) until the power manager's
reconfiguration granularity allows another.  Every operation leaves a
:class:`LiveReconfigEvent` record with its full timeline and parking
statistics, which :func:`disturbance_metrics` turns into the
latency-disturbance and recovery-time numbers the churn benchmarks
report.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.core.reconfig import ReconfigEvent, ReconfigurationManager
from repro.energy.power_gating import PowerManager
from repro.network.packet import Packet
from repro.network.simulator import NetworkSimulator

__all__ = [
    "LiveReconfigEvent",
    "LiveReconfigurator",
    "WindowedLatencyProbe",
    "disturbance_metrics",
]

#: Cycles a router needs to rewrite + revalidate its table entries
#: (step 3 of the paper's sequence is bit flips — a handful of cycles).
DEFAULT_REVALIDATE_CYCLES = 8


@dataclass
class LiveReconfigEvent:
    """Timeline and cost record of one online reconfiguration."""

    kind: str  # "gate_off", "gate_on", "unmount", "mount"
    nodes: tuple[int, ...]
    t_request: int = 0
    t_blocked: int = 0
    t_switched: int = 0
    t_unblocked: int = 0
    parked_packets: int = 0
    park_cycle_sum: int = 0
    rerouted_packets: int = 0
    offline_events: list[ReconfigEvent] = field(default_factory=list)
    #: Data-migration cost record (a MigrationRecord) when the
    #: reconfigurator runs with a migration engine; None otherwise.
    migration: Any = None

    @property
    def drain_cycles(self) -> int:
        """Cycles spent waiting for the victims to quiesce."""
        return self.t_blocked - self.t_request

    @property
    def block_cycles(self) -> int:
        """Length of the blocked window (sleep/wake + revalidation)."""
        return self.t_unblocked - self.t_blocked

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe summary (experiment payloads, benchmark output)."""
        return {
            "kind": self.kind,
            "nodes": list(self.nodes),
            "t_request": self.t_request,
            "t_blocked": self.t_blocked,
            "t_switched": self.t_switched,
            "t_unblocked": self.t_unblocked,
            "drain_cycles": self.drain_cycles,
            "block_cycles": self.block_cycles,
            "parked_packets": self.parked_packets,
            "park_cycle_sum": self.park_cycle_sum,
            "rerouted_packets": self.rerouted_packets,
            "migration": (
                self.migration.to_dict() if self.migration is not None else None
            ),
        }


class LiveReconfigurator:
    """Schedules and executes reconfigurations as simulator events.

    Parameters
    ----------
    sim:
        The running :class:`NetworkSimulator`.  The reconfigurator
        installs itself as the simulator's arrival hook.
    manager:
        The offline :class:`ReconfigurationManager` that owns the
        topology/table mechanics (this class adds the online timing).
    policy:
        The simulator's routing policy; its ``on_reconfigure`` is
        called whenever tables or blocking bits change.
    power:
        Optional :class:`PowerManager` supplying sleep/wake latencies
        and (with ``enforce_granularity``) the minimum interval between
        reconfigurations.  Without it the module defaults from
        :mod:`repro.energy.power_gating` apply and granularity is not
        enforced.
    migrator:
        Optional :class:`~repro.memory.migration.MigrationEngine`.
        When present, the data on a victim no longer teleports: a
        power-down becomes *migrate-out -> drain -> block -> switch ->
        unblock* (the victims' pages stream to the survivors as real
        traffic before the drain wait begins — data traffic to a victim
        can only cease once its pages have left, so evacuation must
        precede quiescence), and a power-up triggers a wake-side
        migrate-in right after unblock, repatriating pages as
        background traffic under resumed foreground load.
    """

    def __init__(
        self,
        sim: NetworkSimulator,
        manager: ReconfigurationManager,
        policy,
        power: PowerManager | None = None,
        revalidate_cycles: int = DEFAULT_REVALIDATE_CYCLES,
        drain_poll_cycles: int = 16,
        drain_timeout_cycles: int = 500_000,
        enforce_granularity: bool = False,
        migrator=None,
    ) -> None:
        self.sim = sim
        self.manager = manager
        self.routing = manager.routing
        self.policy = policy
        self.power = power
        config = sim.config
        sleep_ns = power.sleep_ns if power is not None else None
        wake_ns = power.wake_ns if power is not None else None
        if sleep_ns is None:
            from repro.energy.power_gating import SLEEP_LATENCY_NS

            sleep_ns = SLEEP_LATENCY_NS
        if wake_ns is None:
            from repro.energy.power_gating import WAKE_LATENCY_NS

            wake_ns = WAKE_LATENCY_NS
        self.sleep_cycles = config.cycles_from_ns(sleep_ns)
        self.wake_cycles = config.cycles_from_ns(wake_ns)
        self.revalidate_cycles = revalidate_cycles
        self.drain_poll_cycles = drain_poll_cycles
        self.drain_timeout_cycles = drain_timeout_cycles
        self.enforce_granularity = enforce_granularity
        self.migrator = migrator

        self.events: list[LiveReconfigEvent] = []
        #: Callbacks run (with the completed LiveReconfigEvent) at the
        #: end of every operation — e.g. fault recovery chaining a page
        #: reconstruction after an emergency unmount.
        self.on_complete: list = []
        self._queue: deque[tuple[str, tuple[int, ...]]] = deque()
        self._busy = False
        self._unstable: set[int] = set()
        self._blocked_dsts: set[int] = set()
        self._probe_routers: set[int] = set()
        self._hold_routers: set[int] = set()
        self._blocked_pairs: list[tuple[int, int]] = []
        # from_link entries are the simulator's opaque inbound-link
        # tokens (always None for parked packets — their credit was
        # released at park time).
        self._parked: list[tuple[int, int, Packet, Any, bool]] = []
        self._window_active = False
        sim.set_arrival_hook(self._on_arrival)

    # -- public API --------------------------------------------------------

    def usable(self, node: int) -> bool:
        """Whether traffic may currently target (or originate at) *node*.

        Churn-aware traffic sources consult this so packets stop
        flowing to a victim before its links power down, and only start
        flowing to a woken node once its neighborhood revalidated.
        """
        return self.manager.topology.is_active(node) and node not in self._unstable

    def select_victims(
        self,
        fraction: float | None = None,
        count: int | None = None,
        min_spacing: int = 2,
    ) -> list[int]:
        """Well-spaced cleanly-gateable victims (see ``gate_candidates``)."""
        if count is None:
            if fraction is None:
                raise ValueError("give either fraction or count")
            count = int(len(self.manager.topology.active_nodes) * fraction)
        return self.manager.gate_candidates(count, min_spacing=min_spacing)

    def gate_off(self, nodes, at: int | None = None) -> None:
        """Schedule an online power-down of *nodes* (one batch)."""
        self._schedule_op("gate_off", nodes, at)

    def gate_on(self, nodes, at: int | None = None) -> None:
        """Schedule an online power-up of previously gated *nodes*."""
        self._schedule_op("gate_on", nodes, at)

    def unmount(self, nodes, at: int | None = None) -> None:
        """Schedule an online unmount (no sleep latency) of *nodes*."""
        self._schedule_op("unmount", nodes, at)

    def mount(self, nodes, at: int | None = None) -> None:
        """Schedule an online mount (no wake latency) of *nodes*."""
        self._schedule_op("mount", nodes, at)

    @property
    def parked_now(self) -> int:
        """Packets currently parked (0 outside reconfiguration windows)."""
        return len(self._parked)

    @property
    def pending_operations(self) -> int:
        """Operations queued or in progress."""
        return len(self._queue) + int(self._busy)

    # -- operation pipeline ------------------------------------------------

    def _schedule_op(self, kind: str, nodes, at: int | None) -> None:
        nodes = tuple(int(n) for n in nodes)
        if not nodes:
            return

        def enqueue(now: int) -> None:
            self._queue.append((kind, nodes))
            self._start_next(now)

        self.sim.schedule(self.sim.now if at is None else at, enqueue)

    def _start_next(self, now: int) -> None:
        if self._busy or not self._queue:
            return
        self._busy = True
        if self.enforce_granularity and self.power is not None:
            now_ns = now * self.sim.config.cycle_ns
            if not self.power.can_reconfigure(now_ns):
                wait_ns = self.power.granularity_ns - (
                    now_ns - (self.power.last_reconfig_ns or 0.0)
                )
                wait = self.sim.config.cycles_from_ns(max(wait_ns, 1.0))
                self._busy = False
                self.sim.schedule(now + wait, self._start_next)
                return
        kind, nodes = self._queue.popleft()
        event = LiveReconfigEvent(kind=kind, nodes=nodes, t_request=now)
        self._unstable.update(nodes)
        if kind in ("gate_off", "unmount"):
            if self.migrator is not None:
                # Evacuate the victims' data first: foreground requests
                # keep flowing to a victim while its pages are still
                # resident there, so the quiescence wait below can only
                # succeed once migration has emptied it.
                event.migration = self.migrator.migrate_out(
                    nodes,
                    on_done=lambda t: self._await_drain(t, kind, nodes, event, since=t),
                )
            else:
                self._await_drain(now, kind, nodes, event)
        else:
            delay = self.wake_cycles if kind == "gate_on" else 0
            self.sim.schedule(now + delay, lambda t: self._switch_on(t, kind, nodes, event))

    def _await_drain(
        self,
        now: int,
        kind: str,
        nodes: tuple[int, ...],
        event: LiveReconfigEvent,
        since: int | None = None,
    ) -> None:
        """Wait until no packet *destined* to a victim remains in flight.

        Transit traffic may still stream through the victims at this
        point — the block phase cuts that off, and the switch phase
        waits for the remaining transit to clear.  ``since`` anchors the
        timeout clock (migration may legitimately spend many cycles
        before the drain wait even starts).
        """
        if since is None:
            since = event.t_request
        if all(self.sim.inflight_to(n) == 0 for n in nodes):
            self._block_phase(now, kind, nodes, event)
            return
        if now - since > self.drain_timeout_cycles:
            raise RuntimeError(
                f"{kind} of {nodes} could not drain within "
                f"{self.drain_timeout_cycles} cycles — are traffic sources "
                "churn-aware (checking usable())?"
            )
        self.sim.schedule(
            now + self.drain_poll_cycles,
            lambda t: self._await_drain(t, kind, nodes, event, since),
        )

    def _block_phase(
        self, now: int, kind: str, nodes: tuple[int, ...], event: LiveReconfigEvent
    ) -> None:
        """Step 1 (online): set blocking bits; open the parking window."""
        event.t_blocked = now
        victims = set(nodes)
        for router, table in self.routing.tables.items():
            touched = False
            for victim in victims:
                if victim in table:
                    table.block(victim)
                    self._blocked_pairs.append((router, victim))
                    touched = True
            if touched:
                self._probe_routers.add(router)
        self._blocked_dsts |= victims
        self.policy.on_reconfigure()
        self._window_active = True
        delay = self.sleep_cycles if kind == "gate_off" else 0
        self.sim.schedule(now + delay, lambda t: self._switch_off(t, kind, nodes, event))

    def _switch_off(
        self, now: int, kind: str, nodes: tuple[int, ...], event: LiveReconfigEvent
    ) -> None:
        """Step 2+3 (online): links off, shortcuts in, tables rebuilt.

        Blocked entries stopped new transit into the victims when the
        window opened, so their queues drain monotonically during the
        sleep latency; if stragglers remain (heavy load), the physical
        switch is deferred until the victims are completely quiescent.
        """
        if not all(self.sim.node_quiescent(n) for n in nodes):
            if now - event.t_blocked > self.drain_timeout_cycles:
                raise RuntimeError(
                    f"{kind} of {nodes}: victims still carried transit "
                    f"traffic {self.drain_timeout_cycles} cycles after "
                    "blocking — network saturated beyond recovery"
                )
            self.sim.schedule(
                now + self.drain_poll_cycles,
                lambda t: self._switch_off(t, kind, nodes, event),
            )
            return
        for node in nodes:
            offline = (
                self.manager.power_gate(node)
                if kind == "gate_off"
                else self.manager.unmount(node)
            )
            event.offline_events.append(offline)
        event.t_switched = now
        self._after_switch(now, event)

    def _switch_on(
        self, now: int, kind: str, nodes: tuple[int, ...], event: LiveReconfigEvent
    ) -> None:
        """Power-on path: wake latency already paid; switch + revalidate."""
        event.t_blocked = now
        self._window_active = True
        for node in reversed(nodes):
            offline = (
                self.manager.power_on(node)
                if kind == "gate_on"
                else self.manager.mount(node)
            )
            event.offline_events.append(offline)
        event.t_switched = now
        self._after_switch(now, event)

    def _after_switch(self, now: int, event: LiveReconfigEvent) -> None:
        event.rerouted_packets = self._reroute_disabled(event.offline_events)
        self.policy.on_reconfigure()
        tables = self.routing.tables
        self._hold_routers = {
            router
            for offline in event.offline_events
            for router in offline.tables_updated
            if router in tables
        }
        self.sim.schedule(now + self.revalidate_cycles, lambda t: self._finish(t, event))

    def _reroute_disabled(self, offline_events: list[ReconfigEvent]) -> int:
        """Step 2 cleanup: re-route packets queued on disappeared links.

        Queued packets have not consumed the dead link's credit, so
        pulling them back to their router and re-running the (fresh)
        forwarding decision is exact.  Packets already on the wire
        finish their arrival normally — the switch waits out in-flight
        flits.
        """
        pairs: set[tuple[int, int]] = set()
        for offline in offline_events:
            for u, v in offline.links_disabled:
                pairs.add((u, v))
                pairs.add((v, u))
            for u, v in offline.shortcuts_deactivated:
                pairs.add((u, v))
                pairs.add((v, u))
        rerouted = 0
        for u, v in sorted(pairs):
            for packet, from_link in self.sim.take_queued(u, v):
                packet.route_state = None
                self.sim.rearrive(u, packet, from_link)
                rerouted += 1
        return rerouted

    def _finish(self, now: int, event: LiveReconfigEvent) -> None:
        """Step 4 (online): unblock, release parked traffic, close out."""
        tables = self.routing.tables
        for router, victim in self._blocked_pairs:
            table = tables.get(router)
            if table is not None:
                table.unblock(victim)
        if self._blocked_pairs:
            self.policy.on_reconfigure()
        self._blocked_pairs.clear()
        self._probe_routers.clear()
        self._hold_routers.clear()
        self._blocked_dsts.clear()
        self._window_active = False
        self._unstable.difference_update(event.nodes)
        event.t_unblocked = now
        event.parked_packets = len(self._parked)
        for t_park, node, packet, from_link, first_hop in self._parked:
            event.park_cycle_sum += now - t_park
            packet.route_state = None
            self.sim.rearrive(node, packet, from_link, first_hop)
        self._parked.clear()
        if self.power is not None:
            self.power.note_reconfiguration(now * self.sim.config.cycle_ns)
        if self.migrator is not None and event.kind in ("gate_on", "mount"):
            # Wake-side migrate-in: the node is reachable again, so its
            # homed pages stream back as background traffic competing
            # with the resumed foreground load (no pipeline stage waits
            # on this — repatriation is pure background work).
            event.migration = self.migrator.migrate_in(event.nodes)
        self.events.append(event)
        for callback in self.on_complete:
            callback(event)
        self._busy = False
        self._start_next(now)

    # -- the arrival hook --------------------------------------------------

    def _on_arrival(
        self,
        node: int,
        packet: Packet,
        from_link: Any,
        first_hop: bool,
    ) -> bool:
        if not self._window_active:
            return False
        if (
            node in self._hold_routers
            or packet.dst in self._blocked_dsts
            or (node in self._probe_routers and self._forward_would_fail(node, packet, first_hop))
        ):
            # The hold buffer absorbs the packet, so its inbound-link
            # credit returns upstream immediately — parking must not
            # drain credits out of circulation (a full blocked window
            # of held credits is enough to wedge saturated networks).
            if from_link is not None:
                self.sim.release_inbound(from_link, packet.vc, packet.tclass)
            self._parked.append((self.sim.now, node, packet, None, first_hop))
            return True
        return False

    def _forward_would_fail(self, node: int, packet: Packet, first_hop: bool) -> bool:
        """Probe whether forwarding is possible with blocked entries.

        The forwarding decision is re-run for real afterwards, so the
        packet's routing state is snapshotted and restored — the probe
        is observationally free.
        """
        saved_state = packet.route_state
        saved_fallback = packet.fallback_hops
        try:
            self.policy.forward(node, packet, self.sim.port_load, first_hop)
            return False
        except (RuntimeError, KeyError, IndexError):
            return True
        finally:
            packet.route_state = saved_state
            packet.fallback_hops = saved_fallback


class WindowedLatencyProbe:
    """Bins delivered-packet latency by delivery time.

    The churn benchmarks read the resulting series to quantify how much
    a reconfiguration event disturbs latency and how long the network
    takes to recover (:func:`disturbance_metrics`).
    """

    def __init__(
        self,
        sim: NetworkSimulator,
        window_cycles: int = 200,
        measured_only: bool = True,
    ) -> None:
        if window_cycles <= 0:
            raise ValueError(f"window_cycles must be positive, got {window_cycles}")
        self.window_cycles = window_cycles
        self.measured_only = measured_only
        self._bins: dict[int, list[float]] = {}
        sim.on_delivery(self._record)

    def _record(self, packet: Packet, now: int) -> None:
        if self.measured_only and not packet.measured:
            return
        acc = self._bins.setdefault(now // self.window_cycles, [0, 0.0])
        acc[0] += 1
        acc[1] += packet.latency

    def series(self) -> list[dict[str, float]]:
        """Per-window delivery count and mean latency, time-ordered."""
        return [
            {
                "window_start": b * self.window_cycles,
                "count": int(acc[0]),
                "mean_latency": acc[1] / acc[0],
            }
            for b, acc in sorted(self._bins.items())
        ]

    def mean_between(self, t0: int, t1: int) -> float:
        """Mean latency of deliveries in windows fully inside [t0, t1)."""
        count, total = 0, 0.0
        for b, acc in self._bins.items():
            start = b * self.window_cycles
            if start >= t0 and start + self.window_cycles <= t1:
                count += acc[0]
                total += acc[1]
        return total / count if count else 0.0


def disturbance_metrics(
    probe: WindowedLatencyProbe,
    event: LiveReconfigEvent,
    baseline_windows: int = 5,
    horizon_cycles: int = 10_000,
    tolerance: float = 1.25,
) -> dict[str, Any]:
    """Latency disturbance and recovery time around one reconfiguration.

    ``baseline`` is the mean latency over the windows just before the
    event; ``peak`` the worst window mean between the event start and
    ``horizon_cycles`` past unblock; ``recovery_cycles`` measures from
    unblock to the end of the first non-empty window whose mean is back
    within ``tolerance`` x baseline (``recovered`` is False when that
    never happens inside the horizon).
    """
    w = probe.window_cycles
    baseline = probe.mean_between(event.t_request - baseline_windows * w, event.t_request)
    peak = 0.0
    recovery_cycles: int | None = None
    recovered = False
    saw_post_window = False
    horizon_end = event.t_unblocked + horizon_cycles
    for entry in probe.series():
        start = entry["window_start"]
        if start + w <= event.t_request or start >= horizon_end:
            continue
        peak = max(peak, entry["mean_latency"])
        if start >= event.t_unblocked:
            saw_post_window = True
        if (
            not recovered
            and baseline > 0.0
            and start >= event.t_unblocked
            and entry["mean_latency"] <= tolerance * baseline
        ):
            recovered = True
            recovery_cycles = start + w - event.t_unblocked
    if not saw_post_window:
        # Nothing was delivered after the window closed (e.g. the event
        # completed during the drain phase): there was no disturbed
        # traffic left to recover, so the event counts as recovered.
        recovered = True
        recovery_cycles = 0
    return {
        "kind": event.kind,
        "num_nodes": len(event.nodes),
        "t_request": event.t_request,
        "drain_cycles": event.drain_cycles,
        "block_cycles": event.block_cycles,
        "parked_packets": event.parked_packets,
        "rerouted_packets": event.rerouted_packets,
        "baseline_latency": baseline,
        "peak_latency": peak,
        "peak_ratio": (peak / baseline) if baseline > 0 else 0.0,
        "recovered": recovered,
        "recovery_cycles": recovery_cycles,
    }
