"""Routing-policy interface between topologies and the simulator.

The simulator is topology-agnostic: it asks a :class:`RoutingPolicy`
for each packet's next hop and virtual channel.  Policies receive a
``port_load(node, neighbor) -> [0, 1]`` probe so adaptive schemes can
divert around congested output ports (the hardware equivalent is the
per-port packet counter of paper §IV-B).

* :class:`GreedyPolicy` adapts the String Figure / S2 greediest
  protocol (with its per-packet commit/fallback state).
* :class:`TablePolicy` serves the baselines: it precomputes per-node
  candidate tables (minimal next hops toward each destination) and
  optionally picks adaptively among them.  This mirrors how mesh
  (dimension-order + adaptive), flattened butterfly (minimal +
  adaptive) and Jellyfish (k-shortest-path look-up) route.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections.abc import Callable, Mapping, Sequence

from repro.core.routing import AdaptiveGreediestRouting, GreediestRouting, RouteState
from repro.network.packet import Packet

__all__ = ["RoutingPolicy", "GreedyPolicy", "TablePolicy", "MinimalPolicy"]

PortLoad = Callable[[int, int], float]


class RoutingPolicy(ABC):
    """Per-packet forwarding decisions for the simulator."""

    num_vcs: int = 2

    @abstractmethod
    def forward(
        self, current: int, packet: Packet, port_load: PortLoad, first_hop: bool
    ) -> int:
        """Return the neighbor to forward *packet* to from *current*.

        Implementations may read and update ``packet.route_state``.
        """

    @abstractmethod
    def select_vc(self, src: int, dst: int) -> int:
        """Virtual channel assignment for a new packet."""

    def on_reconfigure(self) -> None:
        """Invalidate any caches after a topology reconfiguration."""


class GreedyPolicy(RoutingPolicy):
    """String Figure / S2 greediest (optionally adaptive) routing.

    ``cache=True`` memoizes pure-greedy forwarding decisions *and*
    adaptive candidate sets per ``(current, dst)`` — both are
    deterministic functions of the local tables, so the caches are
    exact.  Cached decision entries store only primitives
    ``(next_hop, commit)`` and rebuild a fresh :class:`RouteState` per
    packet: :class:`RouteState` is mutable, so handing one stored
    instance to every hitting packet would alias routing state across
    in-flight packets.  Packets carrying commit/fallback state always
    take the freshly computed path.  Both caches are dropped on
    reconfiguration.
    """

    def __init__(self, routing: GreediestRouting, cache: bool = True) -> None:
        self.routing = routing
        self.num_vcs = routing.num_vcs
        self._adaptive = isinstance(routing, AdaptiveGreediestRouting)
        self._cache_enabled = cache
        #: packed ``current * n + dst`` -> (next_hop, commit) for plain
        #: greedy hops (int keys hash cheaper than tuples on this path).
        self._cache: dict[int, tuple[int, int | None]] = {}
        #: packed key -> ranked ((score, via), ...) adaptive candidates.
        self._cand_cache: dict[int, tuple] = {}
        self._key_n = routing.topology.num_nodes
        #: Routing generation the caches were filled against; a table
        #: rebuild anywhere (including *offline* reconfiguration, which
        #: never calls on_reconfigure) bumps ``routing.version`` and
        #: invalidates them on the next forward.
        self._cache_version = routing.version
        # Integer load probes for the adaptive quick-reject (filled by
        # attach_simulator); keyed on the simulator's stable port_load
        # identity so any other probe falls back to the generic scan.
        self._sim = None
        self._probe_cb = None
        self._class_cbs: tuple = ()
        self._probes: dict[int, list] = {}

    def attach_simulator(self, sim) -> None:
        """Bind the quick-reject scan to *sim*'s port objects.

        The adaptive first-hop check — "is any output port of this
        router loaded past the congestion threshold?" — dominates the
        policy's cost once the decision caches are warm, and it only
        ever compares ``min(1.0, count / cap)`` against a constant.
        Per router, precompute each port's smallest loaded *count* (the
        exact integer threshold, found by scanning the same float
        predicate ``port_load`` evaluates), so the hot path is one int
        compare per neighbor instead of a float division through a
        callback.  Keyed on the identity of ``sim.port_load``: a
        forward driven by any other probe (tests, another simulator
        sharing this memoized policy) takes the generic path unchanged.
        """
        self._sim = sim
        self._probe_cb = sim._port_load_cb
        #: this sim's per-class load closures (installed QoS only);
        #: each carries its class-id group as ``qos_ids``.  Matching is
        #: by identity, so a foreign probe still takes the generic path.
        self._class_cbs = getattr(sim, "_class_load_cbs", ())
        self._probes.clear()

    def _router_probes(self, current: int) -> list:
        probes = self._probes.get(current)
        if probes is None:
            sim = self._sim
            threshold = self.routing.congestion_threshold
            probes = []
            for nbr in self.routing.usable_neighbors(current):
                port = sim._ports.get(current * sim._n + nbr)
                if port is None:
                    port = sim._port(current, nbr)
                cap = port.cap
                # Smallest queued count the float predicate calls
                # loaded, verified against the identical expression
                # port_load computes so the int compare is exact.  The
                # ceil guess can be off by one either way at float
                # boundaries; the two adjustment loops settle it.
                # (count can exceed cap under reserve loans, but the
                # predicate saturates at 1.0 from cap onward, so c=cap
                # decides every larger count too.)
                c = min(max(int(math.ceil(threshold * cap)), 0), cap)
                while c > 0 and min(1.0, (c - 1) / cap) >= threshold:
                    c -= 1
                while c <= cap and min(1.0, c / cap) < threshold:
                    c += 1
                loaded_min: float | int = c if c <= cap else math.inf
                probes.append((port, loaded_min))
            self._probes[current] = probes
        return probes

    def forward(
        self, current: int, packet: Packet, port_load: PortLoad, first_hop: bool
    ) -> int:
        routing = self.routing
        state = packet.route_state
        plain = state is None or (state.commit is None and state.fallback_md is None)
        if not (self._cache_enabled and plain):
            # Commit/fallback state (or caching off): always compute.
            dst_vec = routing.dst_vector(packet.dst)
            if self._adaptive and first_hop:
                nxt, new_state = routing.adaptive_next_hop(
                    current, packet.dst, port_load, first_hop, dst_vec, state
                )
            else:
                nxt, new_state = routing.next_hop(
                    current, packet.dst, dst_vec, state
                )
            packet.route_state = new_state
            if new_state is not None and new_state.in_fallback:
                packet.fallback_hops += 1
            return nxt
        if self._cache_version != routing.version:
            self._cache.clear()
            self._cand_cache.clear()
            self._probes.clear()
            self._cache_version = routing.version
        dst = packet.dst
        key = current * self._key_n + dst
        if self._adaptive and first_hop and not routing.is_direct(current, dst):
            # Source-router adaptivity (paper §III-B): divert to the
            # least-loaded progressing via past the congestion
            # threshold; otherwise fall through to the greedy decision.
            threshold = routing.congestion_threshold
            cand = self._cand_cache.get(key)
            if cand is None:
                # Quick reject: a divert needs the primary port loaded
                # past the threshold, so if no output port of this
                # router is, the candidate ranking is never consulted —
                # which skips its cost on the (dominant) unloaded path.
                if port_load is self._probe_cb:
                    loaded = False
                    for probe_port, loaded_min in self._router_probes(current):
                        if probe_port.count >= loaded_min:
                            loaded = True
                            break
                elif port_load in self._class_cbs:
                    # Class-aware twin of the int quick-reject: the
                    # probe sums the queued counts of the classes in
                    # the closure's priority group against the same
                    # precomputed integer threshold (port caps are
                    # class-independent, so loaded_min transfers).
                    ids = port_load.qos_ids
                    loaded = False
                    for probe_port, loaded_min in self._router_probes(current):
                        queued = 0
                        for k in ids:
                            queued += probe_port.cls_count[k]
                        if queued >= loaded_min:
                            loaded = True
                            break
                else:
                    loaded = any(
                        port_load(current, nbr) >= threshold
                        for nbr in routing.usable_neighbors(current)
                    )
                if loaded:
                    cand = tuple(routing.candidate_set(current, dst))
                    self._cand_cache[key] = cand
            if cand is not None and len(cand) > 1 and (
                port_load(current, cand[0][1]) >= threshold
            ):
                _score, nxt = min(
                    cand,
                    key=lambda item: (port_load(current, item[1]), item[0], item[1]),
                )
                packet.route_state = None
                return nxt
        hit = self._cache.get(key)
        if hit is None:
            # Cold pair: consult the router's vectorized decision table
            # (one kernel pass covers every destination) and memoize;
            # only fallback-walk destinations drop to the scalar path.
            hit = routing.kernel_next_hop(current, dst)
            if hit is not None:
                self._cache[key] = hit
        if hit is not None:
            nxt, commit = hit
            packet.route_state = (
                RouteState(commit=commit) if commit is not None else None
            )
            return nxt
        nxt, new_state = routing.next_hop(
            current, dst, routing.dst_vector(dst), state
        )
        if not new_state.in_fallback:
            self._cache[key] = (nxt, new_state.commit)
        packet.route_state = new_state
        if new_state.in_fallback:
            packet.fallback_hops += 1
        return nxt

    def select_vc(self, src: int, dst: int) -> int:
        return self.routing.select_vc(src, dst)

    def on_reconfigure(self) -> None:
        self.routing.refresh_views()
        self._cache.clear()
        self._cand_cache.clear()
        self._probes.clear()


class TablePolicy(RoutingPolicy):
    """Precomputed candidate-table routing for baseline topologies.

    Parameters
    ----------
    tables:
        ``tables[node][dst]`` is a non-empty sequence of next-hop
        neighbors, minimal-first.  Deterministic routing uses entry 0;
        adaptive routing picks the least-loaded entry once the primary
        port's occupancy crosses *congestion_threshold*.
    adaptive:
        Enable adaptive selection among the candidates.
    vc_of:
        Optional VC selector ``(src, dst) -> vc`` (defaults to an
        id-ordering split, which breaks cyclic dependencies for the
        table-built baselines the same way the paper's two-VC scheme
        does for String Figure).
    """

    def __init__(
        self,
        tables: Mapping[int, Mapping[int, Sequence[int]]],
        adaptive: bool = False,
        congestion_threshold: float = 0.5,
        num_vcs: int = 2,
        vc_of: Callable[[int, int], int] | None = None,
    ) -> None:
        self.tables = tables
        self.adaptive = adaptive
        self.congestion_threshold = congestion_threshold
        self.num_vcs = num_vcs
        self._vc_of = vc_of

    def forward(
        self, current: int, packet: Packet, port_load: PortLoad, first_hop: bool
    ) -> int:
        candidates = self.tables[current][packet.dst]
        primary = candidates[0]
        if not self.adaptive or len(candidates) == 1:
            return primary
        if port_load(current, primary) < self.congestion_threshold:
            return primary
        return min(candidates, key=lambda w: (port_load(current, w), w))

    def select_vc(self, src: int, dst: int) -> int:
        if self._vc_of is not None:
            return self._vc_of(src, dst)
        if self.num_vcs < 2:
            return 0
        return 0 if src <= dst else 1

    def route_length(self, src: int, dst: int) -> int:
        """Deterministic path length through the tables (for tests)."""
        hops = 0
        current = src
        seen = set()
        while current != dst:
            if current in seen:
                raise RuntimeError(f"routing loop at {current} for {src}->{dst}")
            seen.add(current)
            current = self.tables[current][dst][0]
            hops += 1
        return hops


class MinimalPolicy(RoutingPolicy):
    """Minimal (shortest-path) routing over any graph, memory-scalable.

    Stores an all-pairs distance matrix (int16, a few MB even at 1296
    nodes) instead of explicit next-hop tables; the minimal candidate
    set at each hop is recomputed from the neighbor list, which is
    cheap because router radix is small.  Deterministic mode always
    takes the first candidate under *preference* ordering; adaptive
    mode (the paper's "minimal + adaptive" / "greedy + adaptive"
    schemes for mesh and flattened butterfly) diverts to the least
    loaded minimal port past the congestion threshold.

    Routes are minimal, so hop counts strictly decrease — loop-free by
    construction.  Deadlock handling matches the String Figure runs:
    two VCs split by endpoint order plus the simulator's escape-buffer
    recovery, keeping flow control identical across topology baselines.
    """

    def __init__(
        self,
        graph,
        adaptive: bool = True,
        congestion_threshold: float = 0.5,
        num_vcs: int = 2,
        preference: Callable[[int, int, int], float] | None = None,
    ) -> None:
        import networkx as nx
        import numpy as np
        from scipy.sparse import csr_matrix
        from scipy.sparse.csgraph import shortest_path

        self.adaptive = adaptive
        self.congestion_threshold = congestion_threshold
        self.num_vcs = num_vcs
        self.preference = preference
        nodes = sorted(graph.nodes())
        self._ids = nodes
        self._index = {node: i for i, node in enumerate(nodes)}
        n = len(nodes)
        adj = nx.to_scipy_sparse_array(graph, nodelist=nodes, format="csr")
        dist = shortest_path(
            csr_matrix(adj), method="D", unweighted=True, directed=graph.is_directed()
        )
        if np.isinf(dist).any():
            raise ValueError("graph is not connected; minimal routing undefined")
        self._dist = dist.astype(np.int32)
        self._neighbors: dict[int, list[int]] = {
            node: sorted(graph.successors(node))
            if graph.is_directed()
            else sorted(graph.neighbors(node))
            for node in nodes
        }
        # Minimal candidate sets are a pure function of the static
        # distance matrix, so they are filled lazily *per destination*:
        # the first packet toward a destination runs one vectorized
        # comparison over the flat adjacency below (the DM cold-path
        # hot spot), and each router's candidate list then materializes
        # from two array slices on its first visit.
        counts = [len(self._neighbors[node]) for node in nodes]
        ptr = [0] * (n + 1)
        for i, c in enumerate(counts):
            ptr[i + 1] = ptr[i] + c
        self._nbr_ptr = ptr  # plain list: scalar access on the hot path
        self._nbr_flat_ids = [w for node in nodes for w in self._neighbors[node]]
        self._nbr_flat_idx = np.array(
            [self._index[w] for w in self._nbr_flat_ids], dtype=np.int64
        )
        self._nbr_row_idx = np.repeat(np.arange(n, dtype=np.int64), counts)
        #: dst -> (flat progress mask as a list, {router -> candidates}).
        self._dst_cand: dict[int, tuple] = {}

    def distance(self, src: int, dst: int) -> int:
        """Shortest-path distance between two nodes."""
        return int(self._dist[self._index[src], self._index[dst]])

    def candidates(self, current: int, dst: int) -> list[int]:
        """Neighbors on a minimal path from *current* to *dst*."""
        di = self._index[dst]
        d = self._dist[self._index[current], di]
        result = [
            w for w in self._neighbors[current] if self._dist[self._index[w], di] < d
        ]
        if self.preference is not None:
            result.sort(key=lambda w: (self.preference(current, dst, w), w))
        return result

    def _fill_destination(self, dst: int):
        """Progress mask of *every* adjacency toward *dst*, one numpy pass.

        The heavy part of a cold candidate computation — comparing each
        neighbor's distance-to-dst against its router's own — runs once
        per destination, vectorized over the whole flat adjacency, and
        lands as a plain bool list.  Per-router candidate *lists* then
        materialize lazily on first visit from a pure-python slice (a
        short sweep touches a sparse subset of routers per destination,
        so eager list building would dominate at scale, and per-pair
        numpy fancy indexing costs more than it saves at radix 4-8).
        Matches :meth:`candidates` element-for-element: the flat
        adjacency preserves the sorted-neighbor order, so the refactor
        cannot change any forwarding decision.
        """
        dcol = self._dist[:, self._index[dst]]
        mask = dcol[self._nbr_flat_idx] < dcol[self._nbr_row_idx]
        entry = (mask.tolist(), {})
        self._dst_cand[dst] = entry
        return entry

    def forward(
        self, current: int, packet: Packet, port_load: PortLoad, first_hop: bool
    ) -> int:
        dst = packet.dst
        entry = self._dst_cand.get(dst)
        if entry is None:
            entry = self._fill_destination(dst)
        mask, per_node = entry
        options = per_node.get(current)
        if options is None:
            ptr = self._nbr_ptr
            i = self._index[current]
            lo, hi = ptr[i], ptr[i + 1]
            flat = self._nbr_flat_ids
            options = [flat[j] for j in range(lo, hi) if mask[j]]
            if self.preference is not None:
                options.sort(key=lambda w: (self.preference(current, dst, w), w))
            per_node[current] = options
        primary = options[0]
        if not self.adaptive or len(options) == 1:
            return primary
        if port_load(current, primary) < self.congestion_threshold:
            return primary
        return min(options, key=lambda w: (port_load(current, w), w))

    def select_vc(self, src: int, dst: int) -> int:
        if self.num_vcs < 2:
            return 0
        return 0 if src <= dst else 1

    def on_reconfigure(self) -> None:
        self._dst_cand.clear()

    def route_length(self, src: int, dst: int) -> int:
        """Hop count of the (minimal) route — equals graph distance."""
        return self.distance(src, dst)
