"""Routing-policy interface between topologies and the simulator.

The simulator is topology-agnostic: it asks a :class:`RoutingPolicy`
for each packet's next hop and virtual channel.  Policies receive a
``port_load(node, neighbor) -> [0, 1]`` probe so adaptive schemes can
divert around congested output ports (the hardware equivalent is the
per-port packet counter of paper §IV-B).

* :class:`GreedyPolicy` adapts the String Figure / S2 greediest
  protocol (with its per-packet commit/fallback state).
* :class:`TablePolicy` serves the baselines: it precomputes per-node
  candidate tables (minimal next hops toward each destination) and
  optionally picks adaptively among them.  This mirrors how mesh
  (dimension-order + adaptive), flattened butterfly (minimal +
  adaptive) and Jellyfish (k-shortest-path look-up) route.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Mapping, Sequence

from repro.core.routing import AdaptiveGreediestRouting, GreediestRouting
from repro.network.packet import Packet

__all__ = ["RoutingPolicy", "GreedyPolicy", "TablePolicy", "MinimalPolicy"]

PortLoad = Callable[[int, int], float]


class RoutingPolicy(ABC):
    """Per-packet forwarding decisions for the simulator."""

    num_vcs: int = 2

    @abstractmethod
    def forward(
        self, current: int, packet: Packet, port_load: PortLoad, first_hop: bool
    ) -> int:
        """Return the neighbor to forward *packet* to from *current*.

        Implementations may read and update ``packet.route_state``.
        """

    @abstractmethod
    def select_vc(self, src: int, dst: int) -> int:
        """Virtual channel assignment for a new packet."""

    def on_reconfigure(self) -> None:
        """Invalidate any caches after a topology reconfiguration."""


class GreedyPolicy(RoutingPolicy):
    """String Figure / S2 greediest (optionally adaptive) routing.

    ``cache=True`` memoizes pure-greedy forwarding decisions per
    ``(current, dst)`` — the decision is a deterministic function of
    the local table, so the cache is exact.  Adaptive first hops and
    packets carrying commit/fallback state always take the computed
    path.  The cache is dropped on reconfiguration.
    """

    def __init__(self, routing: GreediestRouting, cache: bool = True) -> None:
        self.routing = routing
        self.num_vcs = routing.num_vcs
        self._adaptive = isinstance(routing, AdaptiveGreediestRouting)
        self._cache_enabled = cache
        self._cache: dict[tuple[int, int], tuple] = {}

    def forward(
        self, current: int, packet: Packet, port_load: PortLoad, first_hop: bool
    ) -> int:
        routing = self.routing
        state = packet.route_state
        plain = state is None or (state.commit is None and not state.in_fallback)
        adaptive_hop = self._adaptive and first_hop
        if self._cache_enabled and plain and not adaptive_hop:
            key = (current, packet.dst)
            hit = self._cache.get(key)
            if hit is not None:
                nxt, new_state = hit
                packet.route_state = new_state
                return nxt
            nxt, new_state = routing.next_hop(
                current, packet.dst, routing.dst_vector(packet.dst), state
            )
            if not new_state.in_fallback:
                self._cache[key] = (nxt, new_state)
            packet.route_state = new_state
            if new_state.in_fallback:
                packet.fallback_hops += 1
            return nxt
        dst_vec = routing.dst_vector(packet.dst)
        if adaptive_hop:
            nxt, new_state = routing.adaptive_next_hop(
                current, packet.dst, port_load, first_hop, dst_vec, state
            )
        else:
            nxt, new_state = routing.next_hop(
                current, packet.dst, dst_vec, state
            )
        packet.route_state = new_state
        if new_state is not None and new_state.in_fallback:
            packet.fallback_hops += 1
        return nxt

    def select_vc(self, src: int, dst: int) -> int:
        return self.routing.select_vc(src, dst)

    def on_reconfigure(self) -> None:
        self.routing.refresh_views()
        self._cache.clear()


class TablePolicy(RoutingPolicy):
    """Precomputed candidate-table routing for baseline topologies.

    Parameters
    ----------
    tables:
        ``tables[node][dst]`` is a non-empty sequence of next-hop
        neighbors, minimal-first.  Deterministic routing uses entry 0;
        adaptive routing picks the least-loaded entry once the primary
        port's occupancy crosses *congestion_threshold*.
    adaptive:
        Enable adaptive selection among the candidates.
    vc_of:
        Optional VC selector ``(src, dst) -> vc`` (defaults to an
        id-ordering split, which breaks cyclic dependencies for the
        table-built baselines the same way the paper's two-VC scheme
        does for String Figure).
    """

    def __init__(
        self,
        tables: Mapping[int, Mapping[int, Sequence[int]]],
        adaptive: bool = False,
        congestion_threshold: float = 0.5,
        num_vcs: int = 2,
        vc_of: Callable[[int, int], int] | None = None,
    ) -> None:
        self.tables = tables
        self.adaptive = adaptive
        self.congestion_threshold = congestion_threshold
        self.num_vcs = num_vcs
        self._vc_of = vc_of

    def forward(
        self, current: int, packet: Packet, port_load: PortLoad, first_hop: bool
    ) -> int:
        candidates = self.tables[current][packet.dst]
        primary = candidates[0]
        if not self.adaptive or len(candidates) == 1:
            return primary
        if port_load(current, primary) < self.congestion_threshold:
            return primary
        return min(candidates, key=lambda w: (port_load(current, w), w))

    def select_vc(self, src: int, dst: int) -> int:
        if self._vc_of is not None:
            return self._vc_of(src, dst)
        if self.num_vcs < 2:
            return 0
        return 0 if src <= dst else 1

    def route_length(self, src: int, dst: int) -> int:
        """Deterministic path length through the tables (for tests)."""
        hops = 0
        current = src
        seen = set()
        while current != dst:
            if current in seen:
                raise RuntimeError(f"routing loop at {current} for {src}->{dst}")
            seen.add(current)
            current = self.tables[current][dst][0]
            hops += 1
        return hops


class MinimalPolicy(RoutingPolicy):
    """Minimal (shortest-path) routing over any graph, memory-scalable.

    Stores an all-pairs distance matrix (int16, a few MB even at 1296
    nodes) instead of explicit next-hop tables; the minimal candidate
    set at each hop is recomputed from the neighbor list, which is
    cheap because router radix is small.  Deterministic mode always
    takes the first candidate under *preference* ordering; adaptive
    mode (the paper's "minimal + adaptive" / "greedy + adaptive"
    schemes for mesh and flattened butterfly) diverts to the least
    loaded minimal port past the congestion threshold.

    Routes are minimal, so hop counts strictly decrease — loop-free by
    construction.  Deadlock handling matches the String Figure runs:
    two VCs split by endpoint order plus the simulator's escape-buffer
    recovery, keeping flow control identical across topology baselines.
    """

    def __init__(
        self,
        graph,
        adaptive: bool = True,
        congestion_threshold: float = 0.5,
        num_vcs: int = 2,
        preference: Callable[[int, int, int], float] | None = None,
    ) -> None:
        import networkx as nx
        import numpy as np
        from scipy.sparse import csr_matrix
        from scipy.sparse.csgraph import shortest_path

        self.adaptive = adaptive
        self.congestion_threshold = congestion_threshold
        self.num_vcs = num_vcs
        self.preference = preference
        nodes = sorted(graph.nodes())
        self._ids = nodes
        self._index = {node: i for i, node in enumerate(nodes)}
        n = len(nodes)
        adj = nx.to_scipy_sparse_array(graph, nodelist=nodes, format="csr")
        dist = shortest_path(
            csr_matrix(adj), method="D", unweighted=True, directed=graph.is_directed()
        )
        if np.isinf(dist).any():
            raise ValueError("graph is not connected; minimal routing undefined")
        self._dist = dist.astype(np.int32)
        self._neighbors: dict[int, list[int]] = {
            node: sorted(graph.successors(node))
            if graph.is_directed()
            else sorted(graph.neighbors(node))
            for node in nodes
        }

    def distance(self, src: int, dst: int) -> int:
        """Shortest-path distance between two nodes."""
        return int(self._dist[self._index[src], self._index[dst]])

    def candidates(self, current: int, dst: int) -> list[int]:
        """Neighbors on a minimal path from *current* to *dst*."""
        di = self._index[dst]
        d = self._dist[self._index[current], di]
        result = [
            w for w in self._neighbors[current] if self._dist[self._index[w], di] < d
        ]
        if self.preference is not None:
            result.sort(key=lambda w: (self.preference(current, dst, w), w))
        return result

    def forward(
        self, current: int, packet: Packet, port_load: PortLoad, first_hop: bool
    ) -> int:
        options = self.candidates(current, packet.dst)
        primary = options[0]
        if not self.adaptive or len(options) == 1:
            return primary
        if port_load(current, primary) < self.congestion_threshold:
            return primary
        return min(options, key=lambda w: (port_load(current, w), w))

    def select_vc(self, src: int, dst: int) -> int:
        if self.num_vcs < 2:
            return 0
        return 0 if src <= dst else 1

    def route_length(self, src: int, dst: int) -> int:
        """Hop count of the (minimal) route — equals graph distance."""
        return self.distance(src, dst)
