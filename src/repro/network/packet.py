"""Packets traversing the memory network.

A packet is the simulator's unit of routing and buffering; flit-level
serialization is modeled as link occupancy time (a packet of ``size``
flits holds its link for ``size`` cycles).  This packet-granularity
virtual cut-through keeps thousand-node simulations tractable while
preserving the queueing behaviour that determines latency and
saturation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.core.routing import RouteState

__all__ = ["Packet", "PacketKind"]

_packet_ids = itertools.count()


class PacketKind(str, Enum):
    """What a packet carries; determines size and memory-side behaviour."""

    DATA = "data"  # generic synthetic-traffic packet
    READ_REQ = "read_req"
    READ_RESP = "read_resp"
    WRITE_REQ = "write_req"
    WRITE_ACK = "write_ack"
    MIG_READ = "mig_read"  # migration pull request (new owner -> old owner)
    MIG_DATA = "mig_data"  # migrated page chunk (old owner -> new owner)


@dataclass
class Packet:
    """One network packet.

    ``route_state`` carries the greedy protocol's per-packet state (the
    two-hop commit and fallback-mode fields); ``context`` is an opaque
    slot for higher layers (e.g. the trace-driven runner ties responses
    back to requests through it).
    """

    src: int
    dst: int
    size_flits: int = 1
    payload_bytes: int = 64
    kind: PacketKind = PacketKind.DATA
    #: Traffic class id (row of the installed QoS class table); 0 is
    #: the default class, and without an installed table the field is
    #: carried but never consulted.
    tclass: int = 0
    vc: int = 0
    inject_time: int = 0
    measured: bool = True
    pid: int = field(default_factory=lambda: next(_packet_ids))
    hops: int = 0
    fallback_hops: int = 0
    arrive_time: int | None = None
    route_state: RouteState | None = None
    context: Any = None
    #: Observability cache: the latency anatomy parks this packet's
    #: component accumulators here (set at inject, cleared at
    #: deliver/drop) so its per-hook lookup is one attribute load.
    #: The simulator itself never reads it.
    obs_state: Any = None

    @property
    def latency(self) -> int:
        """End-to-end latency in cycles (valid after delivery)."""
        if self.arrive_time is None:
            raise ValueError(f"packet {self.pid} has not been delivered")
        return self.arrive_time - self.inject_time

    def __repr__(self) -> str:
        return (
            f"Packet(#{self.pid} {self.kind.value} {self.src}->{self.dst} "
            f"vc={self.vc} size={self.size_flits})"
        )
