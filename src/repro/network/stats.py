"""Simulation statistics: latency, throughput, energy, queue occupancy."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["LatencyAccumulator", "QuantileSketch", "SimStats", "percentile"]


def percentile(samples: list[float], q: float) -> float:
    """q-th percentile (0..100) by nearest-rank over *samples*.

    The virtual index ``q/100 * (n-1)`` is rounded half **up**, so the
    median of two samples is the upper one (plain ``round`` uses
    banker's rounding — ``round(0.5) == 0`` — which silently returned
    the lower sample).
    """
    if not samples:
        return 0.0
    data = sorted(samples)
    idx = int(q / 100.0 * (len(data) - 1) + 0.5)  # round half up (idx >= 0)
    idx = min(len(data) - 1, max(0, idx))
    return float(data[idx])


class QuantileSketch:
    """Streaming quantile sketch over a value -> count histogram.

    Simulator latencies and hop counts are integer cycle counts drawn
    from a bounded range, so the histogram is *exact* and tiny: memory
    scales with the number of distinct values seen (thousands), not the
    number of samples (millions at 1296 nodes).  Percentiles match
    :func:`percentile` over the raw sample list bit-for-bit, which is
    what lets the sample-free mode guarantee identical ``SimStats``.
    """

    __slots__ = ("counts", "count")

    def __init__(self) -> None:
        self.counts: dict[float, int] = {}
        self.count = 0

    def add(self, value: float) -> None:
        self.count += 1
        counts = self.counts
        counts[value] = counts.get(value, 0) + 1

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold *other* into this sketch (cross-worker/tenant rollups).

        Exact by construction: summing the value -> count histograms
        yields the histogram of the concatenated sample streams, so
        percentiles of the merged sketch equal :func:`percentile` over
        the combined raw samples bit-for-bit (property-tested in
        ``tests/obs/test_sketch_merge.py``).  Returns ``self``.
        """
        counts = self.counts
        for value, n in other.counts.items():
            counts[value] = counts.get(value, 0) + n
        self.count += other.count
        return self

    def percentile(self, q: float) -> float:
        """Nearest-rank (round-half-up) percentile of the histogram."""
        if not self.count:
            return 0.0
        idx = int(q / 100.0 * (self.count - 1) + 0.5)
        idx = min(self.count - 1, max(0, idx))
        cumulative = 0
        value = 0.0
        for value, n in sorted(self.counts.items()):
            cumulative += n
            if cumulative > idx:
                break
        return float(value)


@dataclass
class LatencyAccumulator:
    """Streaming mean/percentile-friendly latency accumulator.

    Two storage modes share one interface: the default keeps raw
    samples (exact percentiles, O(n) memory); the sample-free mode
    (:meth:`sample_free`) folds values into a :class:`QuantileSketch`
    so large sweeps do not hold millions of floats.
    """

    count: int = 0
    total: float = 0.0
    total_sq: float = 0.0
    maximum: float = 0.0
    samples: list[float] = field(default_factory=list)
    keep_samples: bool = True
    sketch: QuantileSketch | None = None

    @classmethod
    def sample_free(cls) -> "LatencyAccumulator":
        """An accumulator that sketches percentiles instead of storing
        samples (opt-in for large-scale runs)."""
        return cls(keep_samples=False, sketch=QuantileSketch())

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.total_sq += value * value
        if value > self.maximum:
            self.maximum = value
        if self.keep_samples:
            self.samples.append(value)
        elif self.sketch is not None:
            self.sketch.add(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def std(self) -> float:
        if self.count < 2:
            return 0.0
        var = self.total_sq / self.count - self.mean**2
        return math.sqrt(max(0.0, var))

    def percentile(self, q: float) -> float:
        """q-th percentile (0..100) of recorded samples."""
        if not self.keep_samples and self.sketch is not None:
            return self.sketch.percentile(q)
        return percentile(self.samples, q)


@dataclass
class SimStats:
    """Aggregate results of one simulation run.

    Only packets flagged ``measured`` (injected inside the measurement
    window) contribute to latency/hop statistics; energy counts all
    traffic, since power is a whole-run property.  ``sent`` counts every
    packet handed to the simulator (measured or not), so conservation
    can be checked at any time: ``sent == delivered + dropped +
    in-flight``.  ``dropped`` stays zero outside fault-injection runs —
    plain simulation never loses a packet — so the familiar
    ``sent == delivered`` invariant is unchanged there.
    """

    sent: int = 0
    injected: int = 0
    delivered: int = 0
    dropped: int = 0
    measured_delivered: int = 0
    flit_hops: int = 0
    bit_hops: float = 0.0
    dram_bits: float = 0.0
    fallback_hops: int = 0
    total_hops: int = 0
    deadlock_recoveries: int = 0
    emergency_loans: int = 0
    latency: LatencyAccumulator = field(default_factory=LatencyAccumulator)
    hops: LatencyAccumulator = field(default_factory=LatencyAccumulator)
    measure_cycles: int = 0
    num_nodes: int = 0
    queue_samples: int = 0
    queue_total: float = 0.0

    @classmethod
    def sample_free(cls) -> "SimStats":
        """Stats whose latency/hop accumulators sketch percentiles
        instead of storing every sample (1296-node sweeps)."""
        return cls(
            latency=LatencyAccumulator.sample_free(),
            hops=LatencyAccumulator.sample_free(),
        )

    @property
    def avg_latency(self) -> float:
        """Mean end-to-end packet latency (cycles) of measured packets."""
        return self.latency.mean

    @property
    def avg_hops(self) -> float:
        """Mean hop count of measured packets."""
        return self.hops.mean

    @property
    def throughput_flits_per_node_cycle(self) -> float:
        """Delivered measured flits per node per measurement cycle."""
        if not (self.measure_cycles and self.num_nodes):
            return 0.0
        return self.flit_hops_delivered / (self.measure_cycles * self.num_nodes)

    # flit_hops counts flit*hop products for energy; delivered flits for
    # throughput are tracked separately:
    flit_delivered: int = 0

    @property
    def flit_hops_delivered(self) -> float:
        return float(self.flit_delivered)

    @property
    def in_flight(self) -> int:
        """Packets sent but neither delivered nor dropped (conservation)."""
        return self.sent - self.delivered - self.dropped

    @property
    def accepted_rate(self) -> float:
        """Delivered/injected ratio of measured packets (1.0 = stable)."""
        if not self.injected:
            return 1.0
        return self.measured_delivered / self.injected

    @property
    def avg_queue_occupancy(self) -> float:
        """Mean sampled output-queue occupancy (packets)."""
        if not self.queue_samples:
            return 0.0
        return self.queue_total / self.queue_samples

    def network_energy_pj(self, pj_per_bit_hop: float) -> float:
        """Dynamic network energy (pJ) from bit-hop accounting."""
        return self.bit_hops * pj_per_bit_hop

    def dram_energy_pj(self, pj_per_bit: float) -> float:
        """Dynamic DRAM energy (pJ) from bits read/written."""
        return self.dram_bits * pj_per_bit

    def summary(self) -> dict[str, float]:
        """Flat dict of headline metrics (handy for benches/tables)."""
        return {
            "injected": float(self.injected),
            "delivered": float(self.delivered),
            "avg_latency": self.avg_latency,
            "p95_latency": self.latency.percentile(95),
            "avg_hops": self.avg_hops,
            "accepted_rate": self.accepted_rate,
            "fallback_hops": float(self.fallback_hops),
            "avg_queue": self.avg_queue_occupancy,
        }
