"""Discrete-event memory-network simulator.

Models an input-buffered, virtual-channel router network at packet
granularity with flit-accurate link serialization:

* every directed link has one output queue per virtual channel at its
  upstream router plus a credit counter sized to the downstream input
  buffer (``buffer_packets`` per VC);
* a packet of ``size_flits`` occupies its link for ``size_flits``
  cycles (virtual cut-through), then spends SerDes and wire latency
  before arriving at the next router;
* a packet holds the credit of its inbound link until it starts
  transmission on its outbound link (or is ejected), giving real
  backpressure;
* per-port packet counters expose queue occupancy to adaptive routing
  policies, as in the paper's §IV-B hardware counters.

Events are kept in a binary heap, so simulation cost scales with
traffic, not with network size times cycles — which is what makes
1296-node sweeps tractable in Python.

Hot-path layout (the "fast path"): directed links are keyed by the
packed integer ``u * num_nodes + v`` instead of an ``(u, v)`` tuple;
per-link credits, occupancy count, channel state and wire latency live
on the :class:`_OutPort` itself so one dictionary lookup reaches all
link state; and per-node counter arrays (packets destined to a node,
arrival events targeting it, packets queued on its incident links)
make :meth:`inflight_to` and :meth:`node_quiescent` cheap instead of
scanning the event heap — the scans the live-reconfiguration drain
loop used to pay on every poll.  ``_node_quiescent_scan`` keeps a
scanning implementation as the reference for the differential test.

Lazy link bookkeeping: each channel records when it frees as a
``(free_at, free_seq)`` pair instead of scheduling a LINK_FREE heap
event per transmission.  ``free_seq`` is a *reserved* sequence number
— allocated exactly where the eager implementation allocated its
LINK_FREE event's — so "is this channel free at the current processing
point?" is the total-order test ``(free_at, free_seq) <= (now,
cur_seq)``, bit-identical to whether the eager event would already
have been processed.  A LINK_FREE event is pushed (with the reserved
sequence number, so it sorts exactly where the eager event would) only
when a send attempt actually finds every channel busy and needs a
retry.  On uncongested links the event is elided entirely, cutting
heap traffic per hop by a third; ``eager_link_events=True`` restores
the always-push behaviour for differential testing.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from collections.abc import Callable, Iterable

from repro.core.virtual_channels import partition_credits
from repro.network.config import NetworkConfig
from repro.network.packet import Packet
from repro.network.policies import RoutingPolicy
from repro.network.stats import SimStats

__all__ = ["NetworkSimulator"]

# Event codes (heap entries are (time, seq, code, a, b) tuples; tuples
# beat closures by a wide margin in CPython).  Link events carry the
# _OutPort object itself in slot ``a`` — sequence numbers are unique,
# so heap ordering never compares past (time, seq).  LINK_FREE events
# carry the channel index in slot ``b``.
_ARRIVE = 0
_LINK_FREE = 1
_CALL = 2
_WAKE = 3
_STALL = 4

# Placeholder free_seq installed while a send's inbound-credit release
# cascade runs (before the real sequence number is reserved); larger
# than any reachable sequence number, so the channel reads busy and no
# retry event can be armed against it mid-cascade.
_SEQ_PENDING = 1 << 62


class _OutPort:
    """Per-directed-link output stage: one queue per VC plus link state.

    ``channels`` > 1 models a link implemented as parallel physical
    channels (the bandwidth-matched ODM baseline); each channel can
    carry one packet at a time.  A channel is busy exactly while its
    ``(free_at, free_seq)`` pair sorts after the simulator's current
    processing point ``(now, cur_seq)`` — no per-transmission heap
    event needed.  ``free_armed`` marks channels with a LINK_FREE
    retry event outstanding (every busy channel, in eager mode).  The
    port also owns the link's credit counters, queued-packet count,
    and precomputed SerDes + wire latency, so the simulator touches
    exactly one object per link event.
    """

    __slots__ = ("u", "v", "queues", "credits", "count", "free_at",
                 "free_seq", "free_armed", "channels", "rr", "wake_at",
                 "stall_armed", "reserve_debt", "stall_failures", "lat",
                 "cap", "saved_channels", "drop_pids", "cls_credits",
                 "cls_cap", "shared_credits", "cls_count", "cls_rr",
                 "deficit", "band_pos", "cls_debt", "obs_wire")

    def __init__(self, u: int, v: int, num_vcs: int, channels: int,
                 credits_per_vc: int, lat: int, cap: int) -> None:
        self.u = u
        self.v = v
        self.queues: list[deque] = [deque() for _ in range(num_vcs)]
        self.credits: list[int] = [credits_per_vc] * num_vcs
        self.count = 0  # queued packets across all VCs (occupancy)
        # Channel-busy state is sized to the *real* channel count and
        # survives freezes (which only park ``channels`` at zero): a
        # packet mid-wire on a freshly failed link stays busy until its
        # recorded tail cycle, exactly like its eager LINK_FREE event.
        self.free_at: list[int] = [0] * channels
        self.free_seq: list[int] = [0] * channels
        self.free_armed: list[bool] = [False] * channels
        self.channels = channels
        # Fault support: a frozen/failed link parks its real channel
        # count here and runs with channels == 0 (so the hot path needs
        # no extra state test); packets that were mid-wire when the
        # link failed are listed in drop_pids and dropped on arrival.
        self.saved_channels: int | None = None
        self.drop_pids: set[int] | None = None
        self.rr = 0
        self.wake_at: int | None = None
        self.stall_armed = False
        # Reserve (escape) slots loaned per VC during deadlock recovery;
        # repaid by that VC's next credit release.
        self.reserve_debt: list[int] = [0] * num_vcs
        # Consecutive stall timeouts with reserves exhausted (drives the
        # optional emergency escalation).
        self.stall_failures = 0
        self.lat = lat  # SerDes + wire cycles of this link
        self.cap = cap  # queue capacity for port_load normalization
        # QoS state (armed by NetworkSimulator.install_qos; None on the
        # classless fast path).  When armed, ``queues`` is re-laid-out
        # as a flat ``num_classes x num_vcs`` list (index
        # ``tclass * num_vcs + vc``) and each VC's credit pool is split
        # into per-class reservations plus a shared borrow pool such
        # that ``credits[vc] == shared_credits[vc] + sum over classes
        # of cls_credits[c * num_vcs + vc]`` at all times.
        self.cls_credits: list[int] | None = None  # remaining, per class x vc
        self.cls_cap: list[int] | None = None  # reservation ceiling
        self.shared_credits: list[int] | None = None  # per vc
        self.cls_count: list[int] | None = None  # queued packets per class
        self.cls_rr: list[int] | None = None  # per-class VC rotation
        self.deficit: list[int] | None = None  # DWRR deficit per class
        self.band_pos: list[int] | None = None  # rotation per priority band
        # Reserve-slot loans attributed per class x vc: a loan made for
        # a blocked class is repaid only by that class's own releases,
        # so one class's deadlock recovery can never silently drain
        # another class's credit reservation.
        self.cls_debt: list[int] | None = None
        # Observability cache: the latency anatomy parks its per-wire
        # state here (owner-checked) so its three per-hop hooks do a
        # single slot load instead of an id()-keyed dict lookup.  The
        # simulator itself never reads it.
        self.obs_wire = None

    def occupancy(self) -> int:
        """Packets currently buffered across all VCs of this port."""
        return self.count

    def total_reserve_debt(self) -> int:
        """Credits promised to in-flight sends but not yet consumed."""
        return sum(self.reserve_debt)


class NetworkSimulator:
    """Event-driven simulation of one memory network.

    Parameters
    ----------
    topology:
        Object exposing ``active_nodes``, ``neighbors(v)`` and
        ``num_nodes`` (String Figure topologies and all baselines do).
    policy:
        The :class:`~repro.network.policies.RoutingPolicy` making
        per-packet forwarding decisions.
    config:
        :class:`~repro.network.config.NetworkConfig` timing/energy.
    link_latency:
        Optional ``(u, v) -> cycles`` override for per-link wire
        latency (used with 2D placement; default is uniform
        ``config.wire_cycles``).
    sample_free:
        Collect latency/hop percentiles through a streaming quantile
        sketch instead of storing every sample
        (:meth:`SimStats.sample_free`) — identical statistics, O(1)
        memory per delivered packet; opt-in for 1296-node sweeps.
    eager_link_events:
        Schedule a LINK_FREE heap event for *every* transmission (the
        pre-lazy behaviour) instead of only when a send attempt blocks
        on a busy channel.  Results are bit-identical either way — the
        flag exists for differential testing and event accounting
        checks; see :attr:`logical_events`.
    """

    def __init__(
        self,
        topology,
        policy: RoutingPolicy,
        config: NetworkConfig | None = None,
        link_latency: Callable[[int, int], int] | None = None,
        sample_free: bool = False,
        eager_link_events: bool = False,
    ) -> None:
        self.topology = topology
        self.policy = policy
        self.config = config or NetworkConfig()
        self.stats = SimStats.sample_free() if sample_free else SimStats()
        self.stats.num_nodes = len(topology.active_nodes)
        self.now = 0
        self._heap: list[tuple] = []
        self._seq = 0
        #: sequence number of the event being processed; together with
        #: ``now`` it defines the total-order point the lazy channel
        #: test compares ``(free_at, free_seq)`` against.
        self._cur_seq = 0
        self._eager = eager_link_events
        self._n = topology.num_nodes
        #: directed link state, keyed by the packed int ``u * n + v``.
        self._ports: dict[int, _OutPort] = {}
        self._link_latency_fn = link_latency
        self._on_delivery: list[Callable[[Packet, int], None]] = []
        self._on_drop: list[Callable[[Packet, int], None]] = []
        self._arrival_hook: (
            Callable[[int, Packet, object, bool], bool] | None
        ) = None
        #: Installed fault layer (repro.faults); None keeps the arrival
        #: hot path free of fault checks beyond a single identity test.
        self._fault_layer = None
        #: Installed observability probes (repro.obs); None keeps every
        #: hot path free of instrumentation beyond a single identity
        #: test, exactly like the fault layer above.
        self._probes = None
        #: Installed QoS class table (repro.network.qos.QoSConfig);
        #: None keeps the classless arbitration/credit fast path
        #: bit-identical behind single ``is None`` tests.
        self._qos = None
        self._num_vcs = policy.num_vcs
        #: per-class port-load closures handed to the routing policy
        #: (class c sees the queued packets of every class at its own
        #: priority or higher); empty until install_qos.
        self._class_load_cbs: tuple = ()
        self._qos_bands: tuple = ()
        self._qos_band_of: tuple = ()
        self._qos_weights: tuple = ()
        self._qos_quantum = 0
        n = self._n
        #: packets in the network destined to each node (O(1) inflight_to).
        self._dst_inflight: list[int] = [0] * n
        #: _ARRIVE events in the heap targeting each node.
        self._pending_arrive: list[int] = [0] * n
        #: packets *queued* on links incident to each node; mid-wire
        #: packets are covered by the incident-port channel scan in
        #: :meth:`node_quiescent` instead of a counter, because the
        #: lazy core has no per-transmission event to decrement one at.
        self._node_traffic: list[int] = [0] * n
        #: ports incident to each node, for the wire-busy scan.
        self._node_ports: list[list[_OutPort]] = [[] for _ in range(n)]
        self._bits_cache: dict[int, float] = {}
        self._events_processed = 0
        #: LINK_FREE events the lazy core never had to schedule.
        self._link_events_elided = 0
        self.max_events = 200_000_000
        self._router_cycles = self.config.router_cycles
        #: stable bound method handed to policies every forward —
        #: policies key their fast load probes on its identity.
        self._port_load_cb = self.port_load
        # Pre-create every directed port of the topology up front: port
        # construction emits no events and allocates no sequence
        # numbers, so doing it here (instead of lazily at first use) is
        # behaviorally invisible — it just moves allocation out of the
        # timed hot path and lets policies resolve load probes eagerly.
        for u in topology.active_nodes:
            for v in topology.neighbors(u):
                self._port(u, v)
        attach = getattr(policy, "attach_simulator", None)
        if attach is not None:
            attach(self)

    # -- wiring helpers -----------------------------------------------------

    def _port(self, u: int, v: int) -> _OutPort:
        lid = u * self._n + v
        port = self._ports.get(lid)
        if port is None:
            channels = getattr(self.topology, "link_channels", None)
            count = channels(u, v) if channels is not None else 1
            config = self.config
            num_vcs = self.policy.num_vcs
            if self._link_latency_fn is not None:
                wire = self._link_latency_fn(u, v)
            else:
                wire = config.wire_cycles
            port = _OutPort(
                u, v, num_vcs, count,
                credits_per_vc=config.buffer_packets * count,
                lat=config.serdes_cycles + wire,
                cap=config.buffer_packets * num_vcs * count,
            )
            self._ports[lid] = port
            self._node_ports[u].append(port)
            if v != u:
                self._node_ports[v].append(port)
            if self._qos is not None:
                self._arm_qos_port(port)
        return port

    def port_load(self, u: int, v: int) -> float:
        """Output-queue occupancy fraction of link ``u -> v``.

        Capacity scales with the link's physical channel count, so a
        multi-channel (ODM) link at the same queue depth reports a
        proportionally lower occupancy fraction to adaptive routing.
        """
        port = self._ports.get(u * self._n + v)
        if port is None:
            return 0.0
        return min(1.0, port.count / port.cap)

    def on_delivery(self, callback: Callable[[Packet, int], None]) -> None:
        """Register ``callback(packet, time)`` to run at each ejection."""
        self._on_delivery.append(callback)

    def set_arrival_hook(
        self,
        hook: Callable[[int, Packet, object, bool], bool] | None,
    ) -> None:
        """Install ``hook(node, packet, from_link, first_hop) -> bool``.

        The hook runs before each non-terminal arrival is forwarded.
        ``from_link`` is an opaque inbound-link token (``None`` at
        injection); hand it back unchanged to :meth:`rearrive` or
        :meth:`release_inbound`.  Returning ``True`` means the hook
        took ownership of the arrival (e.g. parked it during a
        reconfiguration window) and must later hand it back via
        :meth:`rearrive`; the simulator then does nothing further for
        this event.  A hook that absorbs the packet into local storage
        should return its inbound-link credit with
        :meth:`release_inbound`, or keep it for exact backpressure.
        Live reconfiguration (:mod:`repro.network.elastic`) is the one
        intended client.
        """
        self._arrival_hook = hook

    def rearrive(
        self,
        node: int,
        packet: Packet,
        from_link,
        first_hop: bool = False,
        delay: int = 0,
    ) -> None:
        """Re-enter a held or re-routed arrival into the event loop."""
        self._pending_arrive[node] += 1
        self._push(self.now + delay, _ARRIVE, node, (packet, from_link, first_hop))

    def release_inbound(self, link, vc: int, tclass: int = 0) -> None:
        """Return an inbound-link credit early (packet absorbed locally).

        Live reconfiguration calls this when it parks a packet: the
        router's local hold buffer absorbs the packet, so the credit
        goes back upstream instead of starving the network for the
        whole blocked window.  ``link`` is the opaque inbound-link
        token from the arrival hook (a ``(u, v)`` tuple also works).
        ``tclass`` is the absorbed packet's traffic class; under an
        installed QoS table it routes the repayment to the right
        per-class credit pool and is ignored otherwise.
        """
        if not isinstance(link, _OutPort):
            link = self._ports[link[0] * self._n + link[1]]
        self._release_credit(link, vc, tclass)

    # -- fault support -----------------------------------------------------

    def install_fault_layer(self, layer) -> None:
        """Attach a :class:`repro.faults.FaultLayer` (or None to detach).

        The layer's ``intercept(node, packet, from_link, first_hop)``
        runs at the head of every arrival (before delivery and before
        the reconfiguration arrival hook) and may drop or park the
        packet.  Without a layer the arrival path pays exactly one
        ``is None`` test, keeping no-fault runs bit-identical and fast.
        """
        self._fault_layer = layer

    # -- observability support ---------------------------------------------

    def install_probes(self, probes) -> None:
        """Attach :class:`repro.obs.FabricProbes` (or None to detach).

        The probes object only *observes*: its hooks run behind single
        ``is None`` tests at the event loop and packet lifecycle
        points, and it never schedules events or allocates sequence
        numbers, so both the uninstrumented and the instrumented run
        produce bit-identical ``SimStats`` (checked by the differential
        suite in ``tests/obs``).  Prefer
        :meth:`repro.obs.FabricProbes.attach_sim`, which also registers
        the simulator's pull metrics.

        Note: :meth:`run` hoists the probes reference once per call, so
        probes installed mid-``run`` take effect at the next ``run``
        (the daemon advances in quanta, so a live install lands at the
        next quantum boundary).
        """
        self._probes = probes

    # -- QoS support -------------------------------------------------------

    def install_qos(self, qos) -> None:
        """Install a :class:`repro.network.qos.QoSConfig` class table.

        Must run before any traffic (the per-class credit partition is
        derived from the full pools): every existing port — and every
        port created later — gets its output queues re-laid-out per
        class, its credits split into per-class reservations plus a
        shared borrow pool, and its arbitration switched to
        strict-priority across bands with deficit-weighted round-robin
        within a band (:meth:`_qos_try_send`).  Routing policies are
        re-attached so adaptive scoring sees class-aware port loads.
        Without this call the simulator takes the classless fast path,
        bit-identical to builds without QoS.
        """
        if qos is None:
            raise ValueError("install_qos requires a QoSConfig, not None")
        if self._qos is not None:
            raise RuntimeError("a QoS class table is already installed")
        if self.stats.sent or self._events_processed:
            raise RuntimeError(
                "install_qos must run before any traffic (credit pools "
                "are partitioned from their initial full state)"
            )
        self._qos = qos
        bands = qos.bands()
        self._qos_bands = tuple(tuple(band) for band in bands)
        band_of = [0] * qos.num_classes
        for band_idx, members in enumerate(bands):
            for cls_id in members:
                band_of[cls_id] = band_idx
        self._qos_band_of = tuple(band_of)
        self._qos_weights = tuple(cls.weight for cls in qos.classes)
        self._qos_quantum = qos.drr_quantum
        for port in self._ports.values():
            self._arm_qos_port(port)
        # Per-class load closures: class c's view of a port is the
        # occupancy of every class at its priority or higher — lower
        # priority traffic will be arbitrated around, so it should not
        # deter adaptive routing.  Each closure carries its class-id
        # group as ``qos_ids`` so GreedyPolicy's integer quick-reject
        # can recognize it (see policies.attach_simulator).
        ports = self._ports
        n = self._n
        cbs = []
        for cls in qos.classes:
            ids = tuple(
                other.id for other in qos.classes
                if other.priority <= cls.priority
            )

            def class_load(u: int, v: int, _ids=ids) -> float:
                port = ports.get(u * n + v)
                if port is None:
                    return 0.0
                cls_count = port.cls_count
                queued = 0
                for k in _ids:
                    queued += cls_count[k]
                return min(1.0, queued / port.cap)

            class_load.qos_ids = ids
            cbs.append(class_load)
        self._class_load_cbs = tuple(cbs)
        attach = getattr(self.policy, "attach_simulator", None)
        if attach is not None:
            attach(self)

    def _arm_qos_port(self, port: _OutPort) -> None:
        """Re-lay-out one port's queues and credits for the class table.

        Only ever runs on a traffic-free port (install_qos pre-dates
        traffic and lazy port creation allocates empty ports), so the
        flat per-class queues start empty and each VC's pool is split
        from its full credit count.
        """
        qos = self._qos
        num_vcs = self._num_vcs
        num_classes = qos.num_classes
        shares = [cls.credit_share for cls in qos.classes]
        port.queues = [deque() for _ in range(num_classes * num_vcs)]
        cls_cap: list[int] = [0] * (num_classes * num_vcs)
        shared: list[int] = [0] * num_vcs
        for vc in range(num_vcs):
            reserved, spill = partition_credits(port.credits[vc], shares)
            for cls_id, amount in enumerate(reserved):
                cls_cap[cls_id * num_vcs + vc] = amount
            shared[vc] = spill
        port.cls_cap = cls_cap
        port.cls_credits = list(cls_cap)
        port.shared_credits = shared
        port.cls_count = [0] * num_classes
        port.cls_rr = [0] * num_classes
        port.deficit = [0] * num_classes
        port.band_pos = [0] * len(self._qos_bands)
        port.cls_debt = [0] * (num_classes * num_vcs)

    def on_drop(self, callback: Callable[[Packet, int], None]) -> None:
        """Register ``callback(packet, time)`` to run at each drop."""
        self._on_drop.append(callback)

    def drop_packet(self, packet: Packet, from_link=None) -> None:
        """Remove *packet* from the network without delivering it.

        The loss is counted in ``stats.dropped`` (making the checkable
        conservation law ``sent == delivered + dropped``), the packet's
        destined-in-flight slot is released, its inbound-link credit
        (if any) returns upstream, and drop callbacks — e.g. a
        retransmission queue — fire.  Only fault machinery calls this;
        plain simulation never drops.
        """
        stats = self.stats
        stats.dropped += 1
        dst = packet.dst
        remaining = self._dst_inflight[dst] - 1
        if remaining < 0:
            raise RuntimeError(
                f"destined-in-flight counter for node {dst} went negative "
                "on drop (double drop? dropping a delivered packet?)"
            )
        self._dst_inflight[dst] = remaining
        if from_link is not None:
            self._release_credit(from_link, packet.vc, packet.tclass)
        for callback in self._on_drop:
            callback(packet, self.now)
        probes = self._probes
        if probes is not None:
            probes.on_drop(packet, self.now)

    def freeze_link(self, u: int, v: int) -> None:
        """Stop transmissions on directed link ``u -> v`` (no loss).

        Queued packets stay queued (their buffers are at the upstream
        router and survive); packets already on the wire arrive
        normally.  Implemented by parking the channel count at zero, so
        ``_try_send`` refuses without any new hot-path state test.
        Models a hung downstream router: link-level flow control stops,
        backpressure spreads.
        """
        port = self._port(u, v)
        if port.saved_channels is None:
            port.saved_channels = port.channels
            port.channels = 0

    def restore_link(self, u: int, v: int) -> None:
        """Re-enable a frozen/failed link and resume its queue."""
        port = self._ports.get(u * self._n + v)
        if port is None or port.saved_channels is None:
            return
        port.channels = port.saved_channels
        port.saved_channels = None
        if port.count:
            self._try_send(port)

    def fail_links(self, pairs) -> int:
        """Hard-fail the directed links *pairs*: freeze them and doom
        the packets currently mid-wire on them.

        The mid-wire packets' arrival events cannot be pulled out of
        the heap, so their pids are recorded on their port and the
        fault layer drops them when they fire — exactly the packets
        that were in flight across the failed links, no more.  Returns
        how many were doomed.  Queued packets are left for the detector
        to sweep (:meth:`take_queued`) once the failure is noticed.
        The heap is scanned *once* for the whole batch, so a node crash
        (2 x degree directed links) costs one pass, not 2 x degree.
        """
        ports = set()
        n = self._n
        for u, v in pairs:
            self.freeze_link(u, v)
            port = self._ports[u * n + v]
            if port.drop_pids is None:
                port.drop_pids = set()
            ports.add(port)
        count = 0
        for _time, _seq, code, _a, b in self._heap:
            if code == _ARRIVE and b is not None and b[1] in ports:
                b[1].drop_pids.add(b[0].pid)
                count += 1
        return count

    def fail_link(self, u: int, v: int) -> int:
        """Hard-fail one directed link (see :meth:`fail_links`)."""
        return self.fail_links(((u, v),))

    def link_frozen(self, u: int, v: int) -> bool:
        """Whether directed link ``u -> v`` is currently frozen/failed."""
        port = self._ports.get(u * self._n + v)
        return port is not None and port.saved_channels is not None

    # -- reconfiguration support -------------------------------------------

    def inflight_to(self, node: int) -> int:
        """Packets currently in the network destined to *node* (O(1))."""
        return self._dst_inflight[node]

    def take_queued(self, u: int, v: int) -> list[tuple[Packet, object]]:
        """Remove and return all packets queued on output port ``u -> v``.

        Used when a link is disabled mid-run: the caller re-routes the
        queued packets (they have not consumed this link's credit yet,
        so only their inbound-link credit travels with them).  Packets
        already on the wire (busy channels) are not touched — their
        arrival events complete normally, modeling the topology switch
        waiting out the last in-flight flits.
        """
        port = self._ports.get(u * self._n + v)
        if port is None:
            return []
        taken: list[tuple[Packet, object]] = []
        for queue in port.queues:
            while queue:
                _ready, packet, from_link = queue.popleft()
                taken.append((packet, from_link))
        removed = len(taken)
        port.count -= removed
        if port.cls_count is not None:
            port.cls_count = [0] * len(port.cls_count)
        self._node_traffic[u] -= removed
        self._node_traffic[v] -= removed
        return taken

    def _busy_channels(self, port: _OutPort) -> int:
        """Channels of *port* mid-transmission at the current event.

        A channel is busy while its ``(free_at, free_seq)`` release
        point sorts strictly after ``(now, cur_seq)`` — the lazy-core
        equivalent of "its LINK_FREE event has not been processed yet".
        The scan covers the *full* channel list (not the live
        ``channels`` count), so a frozen or failed link still reports
        its last in-flight packet until the wire drains.
        """
        now = self.now
        cur_seq = self._cur_seq
        free_seq = port.free_seq
        busy = 0
        for c, fa in enumerate(port.free_at):
            if fa > now or (fa == now and free_seq[c] > cur_seq):
                busy += 1
        return busy

    def node_quiescent(self, node: int) -> bool:
        """Whether *node* carries no traffic at all right now.

        True when nothing is destined to it, none of its output queues
        hold packets, no packet is mid-wire on a link into or out of
        it, and no arrival event targets it.  Reconfiguration waits for
        this before powering the node's links down.  Counter checks
        are O(1); the mid-wire check scans the node's incident ports
        (O(degree), with small constants — channel release times live
        on the port, no heap access).
        """
        if (
            self._dst_inflight[node]
            or self._node_traffic[node]
            or self._pending_arrive[node]
        ):
            return False
        now = self.now
        cur_seq = self._cur_seq
        for port in self._node_ports[node]:
            free_seq = port.free_seq
            for c, fa in enumerate(port.free_at):
                if fa > now or (fa == now and free_seq[c] > cur_seq):
                    return False
        return True

    def _node_quiescent_scan(self, node: int) -> bool:
        """Reference implementation of :meth:`node_quiescent`.

        Scans every port and the whole event heap (the pre-fast-path
        behaviour).  Kept for the counter-vs-scan differential test;
        never called on the hot path.
        """
        if self._dst_inflight[node]:
            return False
        for port in self._ports.values():
            if port.u != node and port.v != node:
                continue
            if port.count or self._busy_channels(port):
                return False
        for _time, _seq, code, a, _b in self._heap:
            if code == _ARRIVE and a == node:
                return False
        return True

    # -- scheduling --------------------------------------------------------------

    def _push(self, time: int, code: int, a, b) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, code, a, b))

    def schedule(self, time: int, callback: Callable[[int], None]) -> None:
        """Run ``callback(now)`` at *time* (for traffic drivers, memory
        service models, reconfiguration scripts, ...)."""
        self._push(max(time, self.now), _CALL, callback, None)

    def send(self, packet: Packet, time: int | None = None) -> None:
        """Inject *packet* into the network at *time* (default: now).

        Injection enters through the terminal port, so it consumes no
        network credits; the source router makes its (adaptive)
        decision when the packet arrives at the head of the NIC.
        """
        t = self.now if time is None else max(time, self.now)
        packet.inject_time = t
        packet.vc = self.policy.select_vc(packet.src, packet.dst)
        self.stats.sent += 1
        self.stats.injected += int(packet.measured)
        self._dst_inflight[packet.dst] += 1
        self._pending_arrive[packet.src] += 1
        probes = self._probes
        if probes is not None:
            probes.on_inject(packet, t)
        self._push(t, _ARRIVE, packet.src, (packet, None, True))

    # -- event processing -------------------------------------------------------------

    def _deliver(self, node: int, packet: Packet, from_link) -> None:
        packet.arrive_time = self.now
        stats = self.stats
        stats.delivered += 1
        dst = packet.dst
        remaining = self._dst_inflight[dst] - 1
        if remaining < 0:
            raise RuntimeError(
                f"destined-in-flight counter for node {dst} went negative "
                "(double delivery? a hook re-entered a packet it did not own?)"
            )
        self._dst_inflight[dst] = remaining
        if packet.measured:
            stats.measured_delivered += 1
            stats.latency.add(packet.latency)
            stats.hops.add(packet.hops)
            stats.flit_delivered += packet.size_flits
            stats.fallback_hops += packet.fallback_hops
            stats.total_hops += packet.hops
        if from_link is not None:
            self._release_credit(from_link, packet.vc, packet.tclass)
        for callback in self._on_delivery:
            callback(packet, self.now)
        probes = self._probes
        if probes is not None:
            probes.on_deliver(packet, self.now)

    def _process_arrival(self, node: int, payload) -> None:
        packet, from_link, first_hop = payload
        self._pending_arrive[node] -= 1
        probes = self._probes
        if probes is not None:
            probes.on_arrive(node, packet, self.now)
        fault = self._fault_layer
        if fault is not None and fault.intercept(node, packet, from_link, first_hop):
            return  # dropped (lost) or parked at a hung node
        if node == packet.dst:
            self._deliver(node, packet, from_link)
            return
        if self._arrival_hook is not None and self._arrival_hook(
            node, packet, from_link, first_hop
        ):
            return  # parked: the hook re-enters it via rearrive()
        qos = self._qos
        if qos is None:
            nxt = self.policy.forward(
                node, packet, self._port_load_cb, first_hop
            )
        else:
            nxt = self.policy.forward(
                node, packet, self._class_load_cbs[packet.tclass], first_hop
            )
        port = self._ports.get(node * self._n + nxt)
        if port is None:
            port = self._port(node, nxt)
        stats = self.stats
        stats.queue_samples += 1
        stats.queue_total += port.count
        now = self.now
        rc = self._router_cycles
        was_empty = not port.count
        if qos is None:
            port.queues[packet.vc].append((now + rc, packet, from_link))
        else:
            tclass = packet.tclass
            port.queues[tclass * self._num_vcs + packet.vc].append(
                (now + rc, packet, from_link)
            )
            port.cls_count[tclass] += 1
        port.count += 1
        traffic = self._node_traffic
        traffic[node] += 1
        traffic[nxt] += 1
        if probes is not None:
            probes.on_enqueue(node, nxt, packet, port, now)
            probes.on_queue_join(port, packet, now + rc, now)
        if was_empty and rc and port.channels == 1:
            # Dominant case inlined: the packet just queued on an empty
            # single-channel port and cannot be ready before
            # ``now + router_cycles``, so a full _try_send scan can only
            # ever arm one retry event.  Replicates exactly its two
            # reachable outcomes: wire free -> arm the head-ready wake;
            # wire busy -> arm the channel's LINK_FREE retry.
            fa = port.free_at[0]
            if fa < now or (fa == now and port.free_seq[0] <= self._cur_seq):
                ready = now + rc
                if port.wake_at is None or port.wake_at > ready:
                    port.wake_at = ready
                    seq = self._seq + 1
                    self._seq = seq
                    heapq.heappush(self._heap, (ready, seq, _WAKE, port, None))
            elif not port.free_armed[0]:
                port.free_armed[0] = True
                self._link_events_elided -= 1
                heapq.heappush(
                    self._heap, (fa, port.free_seq[0], _LINK_FREE, port, 0)
                )
            return
        self._try_send(port)

    def _release_credit(self, port: _OutPort, vc: int, tclass: int = 0) -> None:
        debt = port.reserve_debt
        if self._qos is None:
            if debt[vc] > 0:
                # A reserve (escape) slot was loaned to this VC during
                # deadlock recovery; repay it before restoring normal
                # credits, so downstream buffering stays bounded.
                debt[vc] -= 1
            else:
                port.credits[vc] += 1
        else:
            flat = tclass * self._num_vcs + vc
            cls_debt = port.cls_debt
            if cls_debt[flat] > 0:
                # Repay only this class's own loans: debt swallowing is
                # class-attributed, so one class's deadlock recovery
                # never drains another class's reservation (a
                # class-blind swallow would let background stalls
                # siphon the latency class's credits into thin air).
                cls_debt[flat] -= 1
                debt[vc] -= 1
            else:
                port.credits[vc] += 1
                # Repay the releasing class's reservation first (up to
                # its ceiling), overflow to the shared borrow pool —
                # the inverse of the consume rule in _qos_try_send.
                cls_credits = port.cls_credits
                if cls_credits[flat] < port.cls_cap[flat]:
                    cls_credits[flat] += 1
                else:
                    port.shared_credits[vc] += 1
        if port.count:
            self._try_send(port)

    def _try_send(self, port: _OutPort) -> None:
        # Hot path: iterative (the tail call used to recurse once per
        # transmission), with everything loop-invariant hoisted.  The
        # hoisted lists are mutated in place everywhere, so re-entrant
        # cascades stay visible through them.  The cheap guards run
        # before the prologue: roughly half the calls (credit releases
        # into empty ports, retries on frozen links) do no work at all.
        if self._qos is not None:
            self._qos_try_send(port)
            return
        if not port.count or not port.channels:
            return
        now = self.now
        cur_seq = self._cur_seq
        free_at = port.free_at
        free_seq = port.free_seq
        armed = port.free_armed
        queues = port.queues
        credits = port.credits
        num_vcs = len(queues)
        probes = self._probes
        heap = self._heap
        heappush = heapq.heappush
        eager = self._eager
        traffic = self._node_traffic
        pending_arrive = self._pending_arrive
        bits_cache = self._bits_cache
        stats = self.stats
        while True:
            if not port.count:
                return  # nothing queued on any VC: skip every scan
            channels = port.channels
            if not channels:
                return  # frozen/failed link: never transmits, lazy or not
            if channels == 1:
                # Overwhelmingly common wire shape: test channel 0
                # directly instead of scanning.
                fa = free_at[0]
                if fa < now or (fa == now and free_seq[0] <= cur_seq):
                    chan = 0
                else:
                    chan = -1
            else:
                chan = -1
                for c in range(channels):
                    fa = free_at[c]
                    if fa < now or (fa == now and free_seq[c] <= cur_seq):
                        chan = c
                        break
            if chan < 0:
                # Every channel is mid-transmission.  Arm one retry at
                # the earliest release point; pushed with the
                # *reserved* sequence number, the retry processes
                # exactly where the eager LINK_FREE event would have,
                # so everything observed downstream of it stays
                # bit-identical.  (In eager mode every busy channel is
                # already armed, so this never pushes.)
                best = 0
                bfa = free_at[0]
                bfs = free_seq[0]
                for c in range(1, channels):
                    fa = free_at[c]
                    if fa < bfa or (fa == bfa and free_seq[c] < bfs):
                        best = c
                        bfa = fa
                        bfs = free_seq[c]
                if not armed[best]:
                    armed[best] = True
                    self._link_events_elided -= 1
                    heappush(heap, (bfa, bfs, _LINK_FREE, port, best))
                return
            rr = port.rr
            chosen_vc = -1
            min_ready = None
            credit_blocked = False
            for i in range(num_vcs):
                vc = rr + i
                if vc >= num_vcs:
                    vc -= num_vcs
                queue = queues[vc]
                if not queue:
                    continue
                ready = queue[0][0]
                if ready > now:
                    if min_ready is None or ready < min_ready:
                        min_ready = ready
                    continue
                if credits[vc] <= 0:
                    credit_blocked = True
                    continue  # retried on credit release
                chosen_vc = vc
                break
            if chosen_vc < 0:
                if min_ready is not None:
                    if port.wake_at is None or port.wake_at > min_ready:
                        port.wake_at = min_ready
                        self._push(min_ready, _WAKE, port, None)
                    # A busy channel that frees at (or before) the head
                    # packet's ready cycle processes ahead of the wake
                    # event in the eager core — its reserved sequence
                    # number predates the wake's — and starts the
                    # transmission in that earlier frame.  Arm the
                    # earliest such channel so the lazy core sends at
                    # the identical (time, seq) point; if it fires
                    # before the head is ready it re-enters here and
                    # arms the next.
                    best = -1
                    bfa = bfs = 0
                    for c in range(channels):
                        fa = free_at[c]
                        fs = free_seq[c]
                        if (fa > now or (fa == now and fs > cur_seq)) and (
                            fa <= min_ready
                        ) and (
                            best < 0 or fa < bfa or (fa == bfa and fs < bfs)
                        ):
                            best = c
                            bfa = fa
                            bfs = fs
                    if best >= 0 and not armed[best]:
                        armed[best] = True
                        self._link_events_elided -= 1
                        heappush(heap, (bfa, bfs, _LINK_FREE, port, best))
                if credit_blocked and not port.stall_armed:
                    port.stall_armed = True
                    self._push(
                        now + self.config.deadlock_timeout_cycles,
                        _STALL, port, None,
                    )
                    if probes is not None:
                        probes.on_credit_stall(port, now)
                return
            _ready, packet, from_link = queues[chosen_vc].popleft()
            if probes is not None:
                probes.on_dequeue(port, packet, _ready, now)
            port.count -= 1
            port.rr = chosen_vc + 1 if chosen_vc + 1 < num_vcs else 0
            credits[chosen_vc] -= 1
            tail = now + packet.size_flits
            # Claim the channel *before* releasing the inbound credit:
            # the release can cascade through a blocked cycle back into
            # this port, and a re-entrant _try_send seeing a stale-free
            # channel would drive a second packet onto a single-channel
            # wire.  The real release sequence number is reserved only
            # *after* the cascade (where the eager implementation
            # allocated its LINK_FREE event's); until then the
            # placeholder keeps the channel unambiguously busy and
            # un-armable.
            free_at[chan] = tail
            free_seq[chan] = _SEQ_PENDING
            armed[chan] = True
            traffic[port.u] -= 1
            traffic[port.v] -= 1
            if from_link is not None:
                # _release_credit, inlined for the per-hop fast path.
                debt = from_link.reserve_debt
                fvc = packet.vc
                if debt[fvc] > 0:
                    debt[fvc] -= 1
                else:
                    from_link.credits[fvc] += 1
                if from_link.count:
                    self._try_send(from_link)
            seq = self._seq + 1
            self._seq = seq
            free_seq[chan] = seq
            if eager:
                heappush(heap, (tail, seq, _LINK_FREE, port, chan))
            else:
                armed[chan] = False
                self._link_events_elided += 1
            packet.hops += 1
            bits = bits_cache.get(packet.payload_bytes)
            if bits is None:
                bits = self.config.packet_bits(packet.payload_bytes)
                bits_cache[packet.payload_bytes] = bits
            stats.bit_hops += bits
            stats.flit_hops += packet.size_flits
            v = port.v
            pending_arrive[v] += 1
            seq = self._seq + 1
            self._seq = seq
            heappush(heap, (tail + port.lat, seq, _ARRIVE, v, (packet, port, False)))
            if probes is not None:
                probes.on_send(port, packet, now, tail)

    def _qos_try_send(self, port: _OutPort) -> None:
        """Class-aware arbitration (the QoS twin of :meth:`_try_send`).

        The channel scan, retry/wake/stall arming, lazy sequence-number
        reservation and transmit tail replicate :meth:`_try_send`
        exactly; only the *selection* differs.  Selection is strict
        priority across bands — a band is consulted only when every
        higher band has no head-ready packet with an available credit —
        and deficit-weighted round-robin within a band: the rotation
        (``port.band_pos``) parks on a class while its deficit counter
        lasts (refilled with ``weight x drr_quantum`` flits when the
        rotation reaches it) and advances when the deficit is spent or
        the class has nothing sendable.  Within a class, VCs rotate
        round-robin (``port.cls_rr``).  A class can send when its own
        credit reservation *or* the shared borrow pool has a credit —
        the work-conserving half of the partition.
        """
        if not port.count or not port.channels:
            return
        now = self.now
        cur_seq = self._cur_seq
        free_at = port.free_at
        free_seq = port.free_seq
        armed = port.free_armed
        queues = port.queues
        credits = port.credits
        cls_credits = port.cls_credits
        shared = port.shared_credits
        cls_rr = port.cls_rr
        deficit = port.deficit
        band_pos = port.band_pos
        num_vcs = self._num_vcs
        bands = self._qos_bands
        band_of = self._qos_band_of
        weights = self._qos_weights
        quantum = self._qos_quantum
        probes = self._probes
        heap = self._heap
        heappush = heapq.heappush
        eager = self._eager
        traffic = self._node_traffic
        pending_arrive = self._pending_arrive
        bits_cache = self._bits_cache
        stats = self.stats
        while True:
            if not port.count:
                return
            channels = port.channels
            if not channels:
                return
            if channels == 1:
                fa = free_at[0]
                if fa < now or (fa == now and free_seq[0] <= cur_seq):
                    chan = 0
                else:
                    chan = -1
            else:
                chan = -1
                for c in range(channels):
                    fa = free_at[c]
                    if fa < now or (fa == now and free_seq[c] <= cur_seq):
                        chan = c
                        break
            if chan < 0:
                # Every channel mid-transmission: arm one retry at the
                # earliest release point (same as _try_send).
                best = 0
                bfa = free_at[0]
                bfs = free_seq[0]
                for c in range(1, channels):
                    fa = free_at[c]
                    if fa < bfa or (fa == bfa and free_seq[c] < bfs):
                        best = c
                        bfa = fa
                        bfs = free_seq[c]
                if not armed[best]:
                    armed[best] = True
                    self._link_events_elided -= 1
                    heappush(heap, (bfa, bfs, _LINK_FREE, port, best))
                return
            chosen_cls = -1
            chosen_vc = -1
            min_ready = None
            credit_blocked = False
            for band_idx, members in enumerate(bands):
                m = len(members)
                pos = band_pos[band_idx]
                for _step in range(m):
                    cls = members[pos]
                    rr = cls_rr[cls]
                    base = cls * num_vcs
                    found_vc = -1
                    for i in range(num_vcs):
                        vc = rr + i
                        if vc >= num_vcs:
                            vc -= num_vcs
                        queue = queues[base + vc]
                        if not queue:
                            continue
                        ready = queue[0][0]
                        if ready > now:
                            if min_ready is None or ready < min_ready:
                                min_ready = ready
                            continue
                        if cls_credits[base + vc] <= 0 and shared[vc] <= 0:
                            credit_blocked = True
                            continue  # retried on credit release
                        found_vc = vc
                        break
                    if found_vc >= 0:
                        if deficit[cls] <= 0:
                            deficit[cls] += quantum * weights[cls]
                        chosen_cls = cls
                        chosen_vc = found_vc
                        band_pos[band_idx] = pos
                        break
                    # Nothing sendable for this class right now: drop
                    # its leftover deficit (standard DRR — an idle or
                    # blocked class must not hoard service) and rotate.
                    deficit[cls] = 0
                    pos += 1
                    if pos >= m:
                        pos = 0
                if chosen_cls >= 0:
                    break
            if chosen_cls < 0:
                if min_ready is not None:
                    if port.wake_at is None or port.wake_at > min_ready:
                        port.wake_at = min_ready
                        self._push(min_ready, _WAKE, port, None)
                    best = -1
                    bfa = bfs = 0
                    for c in range(channels):
                        fa = free_at[c]
                        fs = free_seq[c]
                        if (fa > now or (fa == now and fs > cur_seq)) and (
                            fa <= min_ready
                        ) and (
                            best < 0 or fa < bfa or (fa == bfa and fs < bfs)
                        ):
                            best = c
                            bfa = fa
                            bfs = fs
                    if best >= 0 and not armed[best]:
                        armed[best] = True
                        self._link_events_elided -= 1
                        heappush(heap, (bfa, bfs, _LINK_FREE, port, best))
                if credit_blocked and not port.stall_armed:
                    port.stall_armed = True
                    self._push(
                        now + self.config.deadlock_timeout_cycles,
                        _STALL, port, None,
                    )
                    if probes is not None:
                        probes.on_credit_stall(port, now)
                return
            flat = chosen_cls * num_vcs + chosen_vc
            _ready, packet, from_link = queues[flat].popleft()
            if probes is not None:
                probes.on_qos_dequeue(port, packet, _ready, now)
            port.count -= 1
            port.cls_count[chosen_cls] -= 1
            cls_rr[chosen_cls] = (
                chosen_vc + 1 if chosen_vc + 1 < num_vcs else 0
            )
            # Consume: the aggregate per-VC counter always moves (the
            # stall/escape machinery reasons about it); the class pays
            # from its reservation first, then borrows shared.
            credits[chosen_vc] -= 1
            if cls_credits[flat] > 0:
                cls_credits[flat] -= 1
            else:
                shared[chosen_vc] -= 1
            deficit[chosen_cls] -= packet.size_flits
            if deficit[chosen_cls] <= 0:
                # Quantum spent: rotate this band past the class.
                band_idx = band_of[chosen_cls]
                members = bands[band_idx]
                pos = band_pos[band_idx] + 1
                band_pos[band_idx] = 0 if pos >= len(members) else pos
            tail = now + packet.size_flits
            # Claim before the inbound-credit release cascade — see the
            # _SEQ_PENDING commentary in _try_send.
            free_at[chan] = tail
            free_seq[chan] = _SEQ_PENDING
            armed[chan] = True
            traffic[port.u] -= 1
            traffic[port.v] -= 1
            if from_link is not None:
                self._release_credit(from_link, packet.vc, packet.tclass)
            seq = self._seq + 1
            self._seq = seq
            free_seq[chan] = seq
            if eager:
                heappush(heap, (tail, seq, _LINK_FREE, port, chan))
            else:
                armed[chan] = False
                self._link_events_elided += 1
            packet.hops += 1
            bits = bits_cache.get(packet.payload_bytes)
            if bits is None:
                bits = self.config.packet_bits(packet.payload_bytes)
                bits_cache[packet.payload_bytes] = bits
            stats.bit_hops += bits
            stats.flit_hops += packet.size_flits
            v = port.v
            pending_arrive[v] += 1
            seq = self._seq + 1
            self._seq = seq
            heappush(
                heap, (tail + port.lat, seq, _ARRIVE, v, (packet, port, False))
            )
            if probes is not None:
                probes.on_send(port, packet, now, tail)

    def _recover_stall(self, port: _OutPort) -> None:
        """Escape-buffer deadlock recovery (see module docstring).

        If the link is still credit-blocked after the stall timeout,
        loan one reserve buffer slot of the downstream router to the
        blocked VC with the oldest head packet.  The loan is repaid by
        the next credit release, so downstream buffering stays within
        ``buffer_packets + reserve_slots`` per VC.

        With ``config.emergency_stall_threshold`` set, a link that
        stays fully wedged (blocked with every reserve slot loaned out)
        for that many consecutive timeouts may loan *beyond* the
        reserve bound — router-local elastic overflow that breaks
        persistent cyclic stalls, such as the ones a reconfiguration
        transient can leave behind in a saturated network.  Each
        over-bound loan is counted in ``stats.emergency_loans``.
        """
        port.stall_armed = False
        channels = port.channels
        if not channels:
            return
        now = self.now
        cur_seq = self._cur_seq
        free_at = port.free_at
        free_seq = port.free_seq
        for c in range(channels):
            fa = free_at[c]
            if fa < now or (fa == now and free_seq[c] <= cur_seq):
                break
        else:
            return  # every channel busy: recovery can't transmit anyway
        credits = port.credits
        qos = self._qos
        if qos is None:
            blocked = [
                vc
                for vc, queue in enumerate(port.queues)
                if queue and queue[0][0] <= self.now and credits[vc] <= 0
            ]
        else:
            # Flat class x VC queues: a class is credit-blocked when
            # both its own reservation and the shared borrow pool for
            # that VC are empty (the aggregate counter may still be
            # positive on behalf of *other* classes' reservations).
            num_vcs = self._num_vcs
            cls_credits = port.cls_credits
            shared = port.shared_credits
            blocked = [
                flat
                for flat, queue in enumerate(port.queues)
                if queue and queue[0][0] <= self.now
                and cls_credits[flat] <= 0 and shared[flat % num_vcs] <= 0
            ]
        if not blocked:
            port.stall_failures = 0
            return
        if port.total_reserve_debt() >= self.config.reserve_slots:
            port.stall_failures += 1
            threshold = self.config.emergency_stall_threshold
            if not threshold or port.stall_failures < threshold:
                # All reserve slots loaned out already; re-arm and wait.
                port.stall_armed = True
                self._push(
                    self.now + self.config.deadlock_timeout_cycles,
                    _STALL, port, None,
                )
                return
            self.stats.emergency_loans += 1
        else:
            port.stall_failures = 0
        oldest = min(blocked, key=lambda i: port.queues[i][0][0])
        if qos is None:
            oldest_vc = oldest
        else:
            # Loan straight into the blocked class's own pool and
            # attribute the debt to it, so the loan is repaid by that
            # class's next release (class-attributed debt; see
            # _release_credit).  Conservation holds: aggregate and the
            # class pool move together.
            oldest_vc = oldest % self._num_vcs
            port.cls_credits[oldest] += 1
            port.cls_debt[oldest] += 1
        credits[oldest_vc] += 1
        port.reserve_debt[oldest_vc] += 1
        self.stats.deadlock_recoveries += 1
        self._try_send(port)

    # -- main loop ---------------------------------------------------------------------

    def run(self, until: int | None = None) -> SimStats:
        """Process events up to *until* cycles (or until the heap empties).

        Events scheduled past *until* stay queued; call :meth:`drain`
        (or ``run`` again) to let in-flight traffic finish after the
        injection processes stop.
        """
        heap = self._heap
        heappop = heapq.heappop
        process_arrival = self._process_arrival
        try_send = self._try_send
        max_events = self.max_events
        limit = math.inf if until is None else until
        heappush = heapq.heappush
        processed = self._events_processed
        probes = self._probes
        while heap:
            entry = heappop(heap)
            time = entry[0]
            if time > limit:
                # Overshot the horizon: put the event back (once per
                # run call, vs. a peek-then-pop on every iteration).
                heappush(heap, entry)
                break
            self.now = time
            self._cur_seq = entry[1]
            processed += 1
            # Kept current every event: schedule() callbacks may read it.
            self._events_processed = processed
            if processed > max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events "
                    "(livelock or runaway injection?)"
                )
            code = entry[2]
            if probes is not None:
                probes.on_event(code, time)
            if code == _ARRIVE:
                process_arrival(entry[3], entry[4])
            elif code == _LINK_FREE:
                port = entry[3]
                port.free_armed[entry[4]] = False
                try_send(port)
            elif code == _WAKE:
                port = entry[3]
                port.wake_at = None
                try_send(port)
            elif code == _STALL:
                self._recover_stall(entry[3])
            else:  # _CALL
                entry[3](time)
        if until is not None:
            self.now = max(self.now, until)
        return self.stats

    @property
    def pending_events(self) -> int:
        """Events still queued (0 = fully drained)."""
        return len(self._heap)

    @property
    def link_events_elided(self) -> int:
        """LINK_FREE events the lazy core avoided scheduling.

        Zero in eager mode.  A retry that later materializes one of
        these events is subtracted back out, so the count is exactly
        the heap traffic saved.
        """
        return self._link_events_elided

    @property
    def logical_events(self) -> int:
        """Events processed plus link events elided.

        Mode-independent measure of simulated work: after a full
        drain it equals ``_events_processed`` of an eager run exactly
        (elision is counted at send time, processing at pop time, so
        mid-run the two can transiently differ by the in-flight
        links), which keeps events/sec comparable across the recorded
        perf trajectory.
        """
        return self._events_processed + self._link_events_elided

    def drain(self, limit: int | None = None) -> SimStats:
        """Run until every queued event has been processed."""
        return self.run(until=limit)


def zero_load_latency(
    config: NetworkConfig, hops: int, size_flits: int = 1
) -> int:
    """Analytic zero-load latency of a *hops*-hop route (for tests).

    Each hop costs router pipeline + serialization + SerDes + wire.
    """
    per_hop = (
        config.router_cycles
        + size_flits
        + config.serdes_cycles
        + config.wire_cycles
    )
    return hops * per_hop


def all_pairs_iter(nodes: Iterable[int]):
    """Utility: ordered (src, dst) pairs with src != dst."""
    nodes = list(nodes)
    for a in nodes:
        for b in nodes:
            if a != b:
                yield a, b
