"""Discrete-event memory-network simulator substrate.

Stands in for the paper's RTL (SystemVerilog/PyMTL) simulation: packet-
granularity virtual cut-through with per-VC credits, flit-accurate link
serialization, SerDes and wire latency, adaptive-routing port counters,
and escape-buffer deadlock recovery.
"""

from repro.network.config import DramTiming, NetworkConfig
from repro.network.elastic import (
    LiveReconfigEvent,
    LiveReconfigurator,
    WindowedLatencyProbe,
    disturbance_metrics,
)
from repro.network.packet import Packet, PacketKind
from repro.network.policies import (
    GreedyPolicy,
    MinimalPolicy,
    RoutingPolicy,
    TablePolicy,
)
from repro.network.simulator import NetworkSimulator, zero_load_latency
from repro.network.stats import LatencyAccumulator, SimStats

__all__ = [
    "DramTiming",
    "GreedyPolicy",
    "LatencyAccumulator",
    "LiveReconfigEvent",
    "LiveReconfigurator",
    "MinimalPolicy",
    "NetworkConfig",
    "NetworkSimulator",
    "Packet",
    "PacketKind",
    "RoutingPolicy",
    "SimStats",
    "TablePolicy",
    "WindowedLatencyProbe",
    "disturbance_metrics",
    "zero_load_latency",
]
