"""System configuration constants (paper Table I).

All timing is expressed in network-clock cycles.  The network clock
matches the memory-node clock, 312.5 MHz for HMC-based nodes, so one
cycle is 3.2 ns — conveniently equal to the paper's per-hop SerDes
latency (1.6 ns each side).

Link width derivation: an HMC-style link runs 16 lanes at 30 Gb/s,
i.e. 480 Gb/s = 192 bytes per 3.2 ns cycle.  One flit is therefore one
cycle's worth of link transfer (192 B), and a 64 B cache-line packet
with header fits in a single flit; only large multi-line transfers need
multiple flits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["NetworkConfig", "DramTiming"]


@dataclass(frozen=True)
class DramTiming:
    """DRAM timing parameters of one memory node (Table I), in ns."""

    t_rcd: float = 12.0
    t_cl: float = 6.0
    t_rp: float = 14.0
    t_ras: float = 33.0

    def row_hit_ns(self) -> float:
        """Access latency when the row buffer already holds the row."""
        return self.t_cl

    def row_miss_ns(self) -> float:
        """Access latency on a row-buffer conflict (precharge + activate)."""
        return self.t_rp + self.t_rcd + self.t_cl

    def row_empty_ns(self) -> float:
        """Access latency when the bank is precharged (activate + CAS)."""
        return self.t_rcd + self.t_cl


@dataclass(frozen=True)
class NetworkConfig:
    """Memory-network configuration (Table I defaults).

    Attributes
    ----------
    clock_ghz:
        Network/memory-node clock (312.5 MHz for HMC nodes).
    flit_bytes:
        Link transfer per cycle (192 B = 16 lanes x 30 Gb/s x 3.2 ns).
    header_bytes:
        Packet header (addresses, routing state, CRC).
    cacheline_bytes:
        Payload granularity of memory traffic.
    serdes_cycles:
        SerDes latency per hop (3.2 ns = 1 cycle, 1.6 ns each side).
    router_cycles:
        Router pipeline latency (route computation + switch traversal).
    wire_cycles:
        Base link propagation latency.
    long_wire_extra_cycles:
        Extra latency for wires longer than ``long_wire_grid_units`` on
        the 2D placement grid (paper: one extra hop latency per ten
        grid units of wire).
    long_wire_grid_units:
        Grid-distance threshold for the long-wire penalty.
    buffer_packets:
        Input-buffer capacity per (port, virtual channel), in packets;
        this is also the credit count of each link VC.
    num_vcs:
        Virtual channels per port (2 — paper §IV-A).
    deadlock_timeout_cycles:
        Credit-stall duration after which a link may claim one of the
        downstream router's reserve buffer slots (escape-buffer
        deadlock recovery; recoveries are counted in the run's stats).
    reserve_slots:
        Reserve buffer slots per link for deadlock recovery.
    emergency_stall_threshold:
        After this many *consecutive* stall timeouts in which a link
        stayed credit-blocked with every reserve slot already loaned
        out, the recovery may exceed the reserve bound (modeling
        router-local elastic overflow) to break a persistent cyclic
        stall.  ``0`` (default) disables escalation, preserving the
        hard ``buffer_packets + reserve_slots`` bound; live
        reconfiguration scenarios enable it because the transition
        window can drive a saturated network into cycles the bounded
        reserve cannot undo.
    network_pj_per_bit_hop:
        Dynamic network energy (5 pJ/bit/hop).
    dram_pj_per_bit:
        DRAM read/write energy (12 pJ/bit).
    node_background_pj_per_cycle:
        Per-active-node background dynamic energy (clock trees, idle
        router/SerDes activity, refresh logic) — the component that
        power gating saves in the paper's Figure 9(b) evaluation.  The
        2000 pJ/cycle default is 0.625 W per node, conservative against
        the several watts of real HMC link+SerDes idle power.
        Used only by the power-management experiments; the Figure 12
        comparisons stay pure 5 pJ/bit/hop as in Table I.
    cpu_sockets / lanes_total / lane_gbps:
        CPU-side channel parameters (documentation of Table I; the
        simulator injects at memory nodes, mirroring the paper's
        synthetic-traffic methodology).
    """

    clock_ghz: float = 0.3125
    flit_bytes: int = 192
    header_bytes: int = 16
    cacheline_bytes: int = 64
    serdes_cycles: int = 1
    router_cycles: int = 2
    wire_cycles: int = 1
    long_wire_extra_cycles: int = 1
    long_wire_grid_units: int = 10
    buffer_packets: int = 8
    num_vcs: int = 2
    deadlock_timeout_cycles: int = 64
    reserve_slots: int = 4
    emergency_stall_threshold: int = 0
    network_pj_per_bit_hop: float = 5.0
    dram_pj_per_bit: float = 12.0
    node_background_pj_per_cycle: float = 2000.0
    cpu_sockets: int = 4
    lanes_total: int = 256
    lane_gbps: float = 30.0
    dram: DramTiming = field(default_factory=DramTiming)

    @property
    def cycle_ns(self) -> float:
        """Nanoseconds per network cycle."""
        return 1.0 / self.clock_ghz

    def cycles_from_ns(self, ns: float) -> int:
        """Round a latency in ns up to whole cycles."""
        return max(1, math.ceil(ns / self.cycle_ns - 1e-9))

    def packet_flits(self, payload_bytes: int) -> int:
        """Flits needed for a packet with *payload_bytes* of data."""
        total = payload_bytes + self.header_bytes
        return max(1, -(-total // self.flit_bytes))

    def packet_bits(self, payload_bytes: int) -> int:
        """Bits actually transferred for a packet (energy accounting)."""
        return 8 * (payload_bytes + self.header_bytes)

    def dram_access_cycles(self, row_hit: bool) -> int:
        """DRAM service latency in network cycles."""
        ns = self.dram.row_hit_ns() if row_hit else self.dram.row_miss_ns()
        return self.cycles_from_ns(ns)
