"""Traffic classes for multi-tenant quality of service.

The paper's fabric carries every flow at equal priority; this module
adds the missing control plane: a small, fixed table of *traffic
classes* that rides on every packet (``Packet.tclass``) and drives

* **strict-priority arbitration** across priority bands at every
  output port (lower ``priority`` number wins), with
  **deficit-weighted round-robin** among the classes sharing a band
  (``weight`` flits of service per quantum), and
* **per-class credit partitioning**: each virtual channel's credit
  pool is split into per-class reservations (``credit_share`` of the
  pool, floored) plus a shared remainder that any class may borrow
  from when its own reservation is exhausted — work-conserving, so an
  idle reservation never strands link bandwidth.

The table is installed *before traffic* via
:meth:`repro.network.simulator.NetworkSimulator.install_qos`; without
it the simulator runs the classless fast path bit-identically to
builds that predate this module.  Class ids are dense (``0..K-1``) and
id 0 is the default: untagged packets — every packet created by code
that does not opt in — land in class 0, so the conventional table
below puts the latency-critical class there.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "TrafficClass",
    "QoSConfig",
    "LATENCY_CLASS",
    "BULK_CLASS",
    "BACKGROUND_CLASS",
    "default_classes",
]

#: Conventional class ids used across the stack (injectors, the
#: migration engine, the fault retransmit queue, and the service's
#: tenant mapping all agree on these).
LATENCY_CLASS = 0
BULK_CLASS = 1
BACKGROUND_CLASS = 2


@dataclass(frozen=True)
class TrafficClass:
    """One row of the class table.

    Parameters
    ----------
    id:
        Dense class id, equal to the row's index in the table; carried
        on every packet as ``Packet.tclass``.
    name:
        Human-readable label, used in reports, SLO summaries and
        metric labels.
    priority:
        Strict-priority band; *lower is more urgent*.  A port never
        transmits from a band while a higher band has a ready packet
        with an available credit.
    weight:
        Deficit-weighted round-robin weight among classes sharing a
        priority band: each rotation grants ``weight x drr_quantum``
        flits of service.
    credit_share:
        Fraction of each virtual channel's credit pool reserved for
        this class (floored to whole credits); the unreserved
        remainder forms the shared pool every class can borrow from.
    """

    id: int
    name: str
    priority: int
    weight: int = 1
    credit_share: float = 0.0

    def __post_init__(self) -> None:
        if self.id < 0:
            raise ValueError(f"class id must be >= 0, got {self.id}")
        if not self.name:
            raise ValueError("class name must be non-empty")
        if self.priority < 0:
            raise ValueError(
                f"priority must be >= 0, got {self.priority}"
            )
        if self.weight < 1:
            raise ValueError(f"weight must be >= 1, got {self.weight}")
        if not 0.0 <= self.credit_share <= 1.0:
            raise ValueError(
                f"credit_share must be in [0, 1], got {self.credit_share}"
            )


def default_classes() -> tuple[TrafficClass, ...]:
    """The conventional three-class table used across the repo.

    ``latency`` (id 0, the default class) outranks ``bulk`` (id 1),
    which outranks ``background`` (id 2 — migration and retransmit
    traffic).  Latency reserves half of every credit pool, bulk a
    quarter; background runs almost entirely on borrowed shared
    credits, which is exactly the rate shaping that keeps recovery
    traffic schedulable instead of disruptive.
    """
    return (
        TrafficClass(LATENCY_CLASS, "latency", priority=0,
                     weight=4, credit_share=0.5),
        TrafficClass(BULK_CLASS, "bulk", priority=1,
                     weight=2, credit_share=0.25),
        TrafficClass(BACKGROUND_CLASS, "background", priority=2,
                     weight=1, credit_share=0.0),
    )


@dataclass(frozen=True)
class QoSConfig:
    """A validated class table plus arbitration tuning.

    Parameters
    ----------
    classes:
        The class table; ids must be dense ``0..K-1`` in order, and
        the credit shares must sum to at most 1.
    drr_quantum:
        Flits of service granted per unit of ``weight`` each time the
        intra-band rotation reaches a class.
    """

    classes: tuple[TrafficClass, ...]
    drr_quantum: int = 4

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("QoSConfig needs at least one traffic class")
        for i, cls in enumerate(self.classes):
            if cls.id != i:
                raise ValueError(
                    f"class ids must be dense 0..K-1 in table order; "
                    f"row {i} has id {cls.id}"
                )
        names = [cls.name for cls in self.classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate class names: {names}")
        total_share = sum(cls.credit_share for cls in self.classes)
        if total_share > 1.0 + 1e-9:
            raise ValueError(
                f"credit shares sum to {total_share:.3f} > 1; the shared "
                "pool would be negative"
            )
        if self.drr_quantum < 1:
            raise ValueError(
                f"drr_quantum must be >= 1, got {self.drr_quantum}"
            )

    @classmethod
    def default(cls) -> "QoSConfig":
        """The three-class latency/bulk/background table."""
        return cls(classes=default_classes())

    @property
    def num_classes(self) -> int:
        """Number of rows in the class table."""
        return len(self.classes)

    def bands(self) -> list[list[int]]:
        """Class ids grouped by priority band, most urgent band first.

        Within a band, ids keep table order — the deterministic
        starting rotation of the deficit-weighted round-robin.
        """
        by_priority: dict[int, list[int]] = {}
        for cls in self.classes:
            by_priority.setdefault(cls.priority, []).append(cls.id)
        return [by_priority[p] for p in sorted(by_priority)]

    def class_of(self, tclass: int) -> TrafficClass:
        """Look up a class row by id (raises on unknown ids)."""
        if not 0 <= tclass < len(self.classes):
            raise ValueError(
                f"unknown traffic class {tclass} (table has "
                f"{len(self.classes)} classes)"
            )
        return self.classes[tclass]
