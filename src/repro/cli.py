"""Command-line interface: ``python -m repro <command>``.

Four subcommands cover the library's main entry points:

* ``topology`` — build a named topology and print structural metrics
  (radix, path lengths, bisection bandwidth, routing state).
* ``simulate`` — run a synthetic-traffic simulation and print latency,
  throughput, and energy.
* ``workload`` — replay a Table IV workload trace and print runtime,
  read latency, and energy.
* ``reconfigure`` — demonstrate elastic scaling: gate a fraction of a
  String Figure network, probe it, and restore it (offline).
* ``sweep`` — run a declarative experiment grid (designs x nodes x
  patterns x rates x seeds, or workload replays) through the parallel
  experiment engine, with multiprocess execution and result caching.
* ``churn`` — live elasticity under load: gate/wake nodes *while
  traffic flows*, measuring per-event latency disturbance and recovery
  time; sweeps run through the same parallel engine and cache.
* ``migrate`` — elasticity that pays for data movement: a gate-off/wake
  cycle where the victims' pages move as real network traffic, swept
  over migration rate limits x page sizes (plus the instant-remap
  ``teleport`` baseline) through the same parallel engine and cache.
* ``faults`` — unplanned failures end-to-end: link flaps/failures and
  node hangs/crashes fire into the event loop with no drain and no
  warning; timeout-based detection triggers emergency reroute and (for
  crashes) page recovery, swept over fault rate x detection timeout x
  topology (SF vs DM vs Jellyfish — the paper's resilience
  comparison) through the same parallel engine and cache.
* ``perf`` — simulator-throughput measurement (events/sec, wall time)
  over a designs x scales grid; the benchmark harness records these
  points as the repo's tracked performance trajectory
  (``benchmarks/results/sim_throughput.json``).
* ``trace`` — one instrumented experiment point of any kind: installs
  the observability probes (metrics registry, cycle-domain timeseries,
  packet flight recorder) and emits artifacts — timeseries JSONL,
  Chrome/Perfetto trace JSON, metrics snapshot + Prometheus text —
  then verifies that summed per-interval counter deltas reconcile
  exactly with the final totals (see ``docs/OBSERVABILITY.md``).
* ``serve`` — the simulator as a long-running daemon: a resident
  fabric accepts concurrent client read/write streams over a
  newline-JSON TCP socket, with admission control, per-tenant p50/p99,
  live ``scale``/``fault``/``drain`` control verbs, request-log
  capture, and bit-identical ``--replay``; ``--selftest`` runs the
  full socket-level load test in-process (see ``docs/SERVICE.md``).
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="String Figure memory network (HPCA 2019) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    topo = sub.add_parser("topology", help="structural metrics of a design")
    topo.add_argument("name", help="SF, S2, DM, ODM, FB, AFB, Jellyfish")
    topo.add_argument("--nodes", type=int, default=64)
    topo.add_argument("--ports", type=int, default=None)
    topo.add_argument("--seed", type=int, default=0)

    sim = sub.add_parser("simulate", help="synthetic-traffic simulation")
    sim.add_argument("name")
    sim.add_argument("--nodes", type=int, default=64)
    sim.add_argument("--pattern", default="uniform_random")
    sim.add_argument("--rate", type=float, default=0.2)
    sim.add_argument("--warmup", type=int, default=200)
    sim.add_argument("--measure", type=int, default=600)
    sim.add_argument("--seed", type=int, default=0)

    work = sub.add_parser("workload", help="trace-driven workload replay")
    work.add_argument("name")
    work.add_argument("--workload", default="redis")
    work.add_argument("--nodes", type=int, default=64)
    work.add_argument("--accesses", type=int, default=2000)
    work.add_argument("--scale", type=float, default=0.02)
    work.add_argument("--seed", type=int, default=0)

    reconf = sub.add_parser("reconfigure", help="elastic scaling demo")
    reconf.add_argument("--nodes", type=int, default=96)
    reconf.add_argument("--ports", type=int, default=8)
    reconf.add_argument("--fraction", type=float, default=0.25)
    reconf.add_argument("--seed", type=int, default=0)

    sweep = sub.add_parser(
        "sweep", help="declarative experiment grid (parallel + cached)"
    )
    sweep.add_argument(
        "--spec", default=None, metavar="FILE",
        help="JSON ExperimentSpec file (grid flags below are ignored)",
    )
    sweep.add_argument(
        "--kind", default="synthetic",
        choices=("synthetic", "saturation", "workload", "path_stats",
                 "service"),
    )
    sweep.add_argument(
        "--designs", default="SF",
        help="comma-separated topology names (default: SF)",
    )
    sweep.add_argument(
        "--nodes", default="64", help="comma-separated node counts"
    )
    sweep.add_argument(
        "--patterns", default="uniform_random",
        help="comma-separated traffic patterns",
    )
    sweep.add_argument(
        "--rates", default="0.1,0.2,0.4",
        help="comma-separated injection rates (synthetic kind)",
    )
    sweep.add_argument(
        "--workloads", default="redis",
        help="comma-separated Table IV workloads (workload kind)",
    )
    sweep.add_argument("--seeds", default="0", help="comma-separated seeds")
    sweep.add_argument("--topology-seed", type=int, default=0)
    sweep.add_argument("--warmup", type=int, default=None)
    sweep.add_argument("--measure", type=int, default=None)
    sweep.add_argument("--drain-limit", type=int, default=None)
    sweep.add_argument(
        "--workers", type=int, default=1,
        help="process count (0 = one per CPU; results identical)",
    )
    sweep.add_argument(
        "--cache-dir", default=None,
        help="result cache directory (default: benchmarks/results/cache "
             "when run from the repo, else ~/.cache/string-figure-repro)",
    )
    sweep.add_argument(
        "--no-cache", action="store_true",
        help="run every point even if cached, and store nothing",
    )
    sweep.add_argument(
        "--output", default=None, metavar="FILE",
        help="also dump raw task payloads as JSON",
    )

    churn = sub.add_parser(
        "churn", help="live elasticity under load (parallel + cached)"
    )
    churn.add_argument("--nodes", default="64", help="comma-separated node counts")
    churn.add_argument("--ports", type=int, default=None)
    churn.add_argument(
        "--gate-fraction", type=float, default=0.25,
        help="fraction of active nodes to power-gate per event",
    )
    churn.add_argument(
        "--schedule", default="cycle",
        choices=("cycle", "periodic", "utilization"),
        help="cycle: one gate-off + wake; periodic: duty-cycled churn; "
             "utilization: closed-loop controller",
    )
    churn.add_argument("--pattern", default="uniform_random")
    churn.add_argument(
        "--rates", default="0.15", help="comma-separated injection rates"
    )
    churn.add_argument("--seeds", default="0", help="comma-separated seeds")
    churn.add_argument("--topology-seed", type=int, default=0)
    churn.add_argument("--warmup", type=int, default=300)
    churn.add_argument("--measure", type=int, default=4000)
    churn.add_argument("--drain-limit", type=int, default=60_000)
    churn.add_argument(
        "--workers", type=int, default=1,
        help="process count (0 = one per CPU; results identical)",
    )
    churn.add_argument("--cache-dir", default=None)
    churn.add_argument("--no-cache", action="store_true")
    churn.add_argument(
        "--output", default=None, metavar="FILE",
        help="also dump raw task payloads as JSON",
    )

    mig = sub.add_parser(
        "migrate",
        help="data migration cost of elastic scaling (parallel + cached)",
    )
    mig.add_argument("--nodes", default="64", help="comma-separated node counts")
    mig.add_argument("--ports", type=int, default=None)
    mig.add_argument(
        "--gate-fraction", type=float, default=0.25,
        help="fraction of active nodes to power-gate (and later wake)",
    )
    mig.add_argument(
        "--rates", default="0.1", help="comma-separated foreground request rates"
    )
    mig.add_argument(
        "--rate-limits", default="32,128",
        help="comma-separated migration bandwidth budgets (bytes/cycle); "
             "each becomes one sweep variant",
    )
    mig.add_argument(
        "--page-bytes", default="4096",
        help="comma-separated page sizes (power-of-two bytes); "
             "each becomes one sweep variant",
    )
    mig.add_argument(
        "--footprint-pages", type=int, default=128,
        help="resident working-set size, in pages",
    )
    mig.add_argument(
        "--mode", default="both", choices=("migrate", "teleport", "both"),
        help="pay the real movement cost, use the PR-2 instant remap, "
             "or run both and compare (default)",
    )
    mig.add_argument("--seeds", default="0", help="comma-separated seeds")
    mig.add_argument("--topology-seed", type=int, default=0)
    mig.add_argument("--warmup", type=int, default=300)
    mig.add_argument("--measure", type=int, default=6000)
    mig.add_argument("--drain-limit", type=int, default=80_000)
    mig.add_argument(
        "--workers", type=int, default=1,
        help="process count (0 = one per CPU; results identical)",
    )
    mig.add_argument("--cache-dir", default=None)
    mig.add_argument("--no-cache", action="store_true")
    mig.add_argument(
        "--output", default=None, metavar="FILE",
        help="also dump raw task payloads as JSON",
    )

    faults = sub.add_parser(
        "faults",
        help="unplanned failures: crash/hang/flap resilience "
             "(parallel + cached)",
    )
    faults.add_argument(
        "--designs", default="SF,DM,Jellyfish",
        help="comma-separated topology names (the resilience comparison)",
    )
    faults.add_argument("--nodes", default="64", help="comma-separated node counts")
    faults.add_argument("--ports", type=int, default=None)
    faults.add_argument(
        "--schedule", default="random", choices=("random", "crash"),
        help="random: mixed fault arrivals at --fault-rates; "
             "crash: one unannounced node crash (the recovery benchmark)",
    )
    faults.add_argument(
        "--fault-rates", default="0.001",
        help="comma-separated fault arrival rates (faults/cycle); "
             "each becomes one sweep variant",
    )
    faults.add_argument(
        "--detection-timeouts", default="200",
        help="comma-separated detection latencies (cycles); "
             "each becomes one sweep variant",
    )
    faults.add_argument(
        "--kinds", default="link_down,link_flap,node_crash,node_hang",
        help="comma-separated fault kinds for the random schedule",
    )
    faults.add_argument("--pattern", default="uniform_random")
    faults.add_argument(
        "--rates", default="0.1", help="comma-separated injection rates"
    )
    faults.add_argument(
        "--footprint-pages", type=int, default=64,
        help="resident pages tracked through crash recovery (0 = no "
             "page layer)",
    )
    faults.add_argument(
        "--no-mirror", action="store_true",
        help="pages have no replica: a crash loses them (lost-page "
             "accounting instead of recovery)",
    )
    faults.add_argument(
        "--retransmit-timeout", type=int, default=64,
        help="cycles a source waits before re-sending a lost packet",
    )
    faults.add_argument("--max-retries", type=int, default=8)
    faults.add_argument("--seeds", default="0", help="comma-separated seeds")
    faults.add_argument("--topology-seed", type=int, default=0)
    faults.add_argument("--warmup", type=int, default=300)
    faults.add_argument("--measure", type=int, default=4000)
    faults.add_argument("--drain-limit", type=int, default=60_000)
    faults.add_argument(
        "--workers", type=int, default=1,
        help="process count (0 = one per CPU; results identical)",
    )
    faults.add_argument("--cache-dir", default=None)
    faults.add_argument("--no-cache", action="store_true")
    faults.add_argument(
        "--output", default=None, metavar="FILE",
        help="also dump raw task payloads as JSON",
    )

    inter = sub.add_parser(
        "interference",
        help="multi-tenant QoS: per-class p99 vs offered interference "
             "load (parallel + cached)",
    )
    inter.add_argument(
        "--designs", default="SF,DM,Jellyfish",
        help="comma-separated topology names",
    )
    inter.add_argument("--nodes", default="64", help="comma-separated node counts")
    inter.add_argument("--ports", type=int, default=None)
    inter.add_argument(
        "--modes", default="noise",
        help="comma-separated interference shapes: noise, burst, incast",
    )
    inter.add_argument(
        "--rates", default="0.1,0.3,0.5",
        help="comma-separated offered interference loads (the swept axis)",
    )
    inter.add_argument(
        "--fg-rate", type=float, default=0.05,
        help="latency-critical foreground injection rate",
    )
    inter.add_argument(
        "--no-qos", action="store_true",
        help="classless baseline only (no class table installed)",
    )
    inter.add_argument(
        "--baseline", action="store_true",
        help="also run the classless baseline variant for comparison",
    )
    inter.add_argument("--pattern", default="uniform_random")
    inter.add_argument("--seeds", default="0", help="comma-separated seeds")
    inter.add_argument("--topology-seed", type=int, default=0)
    inter.add_argument("--warmup", type=int, default=300)
    inter.add_argument("--measure", type=int, default=2000)
    inter.add_argument("--drain-limit", type=int, default=60_000)
    inter.add_argument(
        "--workers", type=int, default=1,
        help="process count (0 = one per CPU; results identical)",
    )
    inter.add_argument("--cache-dir", default=None)
    inter.add_argument("--no-cache", action="store_true")
    inter.add_argument(
        "--output", default=None, metavar="FILE",
        help="also dump raw task payloads as JSON",
    )

    perf = sub.add_parser(
        "perf",
        help="simulator events/sec across designs x scales (perf trajectory)",
    )
    perf.add_argument(
        "--designs", default="SF,DM,Jellyfish",
        help="comma-separated topology names",
    )
    perf.add_argument("--nodes", default="64,144", help="comma-separated node counts")
    perf.add_argument("--pattern", default="uniform_random")
    perf.add_argument(
        "--rates", default="0.05", help="comma-separated injection rates"
    )
    perf.add_argument("--seeds", default="0", help="comma-separated seeds")
    perf.add_argument("--topology-seed", type=int, default=0)
    perf.add_argument("--warmup", type=int, default=100)
    perf.add_argument("--measure", type=int, default=300)
    perf.add_argument("--drain-limit", type=int, default=20_000)
    perf.add_argument(
        "--repeats", type=int, default=2,
        help="timing repetitions per point (the best is reported)",
    )
    perf.add_argument(
        "--isolate", action="store_true",
        help="one pinned worker per core, serial timing inside each "
             "worker (scales the grid without timing interference)",
    )
    perf.add_argument(
        "--eager-link-events", action="store_true",
        help="time the eager LINK_FREE core instead of the default "
             "lazy one (differential benchmarking)",
    )
    perf.add_argument(
        "--output", default=None, metavar="FILE",
        help="also dump raw task payloads as JSON",
    )

    trace = sub.add_parser(
        "trace",
        help="run one instrumented point and emit observability "
             "artifacts (metrics, timeseries, packet trace; "
             "docs/OBSERVABILITY.md)",
    )
    trace.add_argument(
        "--kind", default="synthetic",
        choices=("synthetic", "churn", "migration", "faults", "service",
                 "perf", "interference", "anatomy"),
        help="experiment kind to run under probes",
    )
    trace.add_argument("--design", default="SF")
    trace.add_argument("--nodes", type=int, default=144)
    trace.add_argument("--pattern", default="uniform_random")
    trace.add_argument("--rate", type=float, default=0.1)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--topology-seed", type=int, default=0)
    trace.add_argument("--ports", type=int, default=None)
    trace.add_argument("--warmup", type=int, default=None)
    trace.add_argument("--measure", type=int, default=None)
    trace.add_argument("--drain-limit", type=int, default=None)
    trace.add_argument(
        "--sample-interval", type=int, default=256,
        help="timeseries sampling interval in simulated cycles",
    )
    trace.add_argument(
        "--trace-fraction", type=float, default=0.02,
        help="fraction of packets flight-recorded (seeded hash sample)",
    )
    trace.add_argument("--trace-seed", type=int, default=0)
    trace.add_argument(
        "--ring", type=int, default=256,
        help="post-mortem ring: last N heap events kept",
    )
    trace.add_argument(
        "--max-trace-records", type=int, default=250_000,
        help="flight-recorder hop-record bound (excess counted, not kept)",
    )
    trace.add_argument(
        "--out-dir", default="trace-out", metavar="DIR",
        help="artifact directory (created if missing)",
    )
    trace.add_argument(
        "--no-anatomy", action="store_true",
        help="skip the per-packet delay decomposition (and its "
             "anatomy.json / per-link CSV artifacts)",
    )

    hot = sub.add_parser(
        "hotspots",
        help="one contended scenario under the latency anatomy: "
             "per-component delay, top contended links, class "
             "interference matrix (docs/LATENCY.md)",
    )
    hot.add_argument("--design", default="SF")
    hot.add_argument("--nodes", type=int, default=64)
    hot.add_argument("--ports", type=int, default=None)
    hot.add_argument(
        "--mode", default="incast", choices=("noise", "burst", "incast"),
        help="interference shape aimed at the fabric",
    )
    hot.add_argument(
        "--rate", type=float, default=0.3,
        help="offered interference load per interfering node",
    )
    hot.add_argument(
        "--fg-rate", type=float, default=0.05,
        help="latency-critical foreground injection rate",
    )
    hot.add_argument(
        "--no-qos", action="store_true",
        help="classless run (no class table; every wait is queueing)",
    )
    hot.add_argument("--pattern", default="uniform_random")
    hot.add_argument("--seed", type=int, default=0)
    hot.add_argument("--topology-seed", type=int, default=0)
    hot.add_argument("--warmup", type=int, default=300)
    hot.add_argument("--measure", type=int, default=2000)
    hot.add_argument("--drain-limit", type=int, default=60_000)
    hot.add_argument(
        "--top", type=int, default=8,
        help="top-K contended links/routers shown",
    )
    hot.add_argument(
        "--output", default=None, metavar="FILE",
        help="also dump the full anatomy summary as JSON",
    )
    hot.add_argument(
        "--links-csv", default=None, metavar="FILE",
        help="also dump every per-link contention row as CSV",
    )

    serve = sub.add_parser(
        "serve",
        help="resident fabric daemon over newline-JSON TCP "
             "(docs/SERVICE.md)",
    )
    serve.add_argument("--design", default="SF")
    serve.add_argument("--nodes", type=int, default=144)
    serve.add_argument("--ports", type=int, default=None)
    serve.add_argument("--topology-seed", type=int, default=0)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=7117,
        help="TCP port (0 = ephemeral, printed at startup)",
    )
    serve.add_argument("--page-bytes", type=int, default=4096)
    serve.add_argument("--footprint-pages", type=int, default=512)
    serve.add_argument(
        "--max-outstanding", type=int, default=256,
        help="global in-flight request budget before queueing",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=512,
        help="admission queue bound; beyond it requests shed",
    )
    serve.add_argument(
        "--node-watermark", type=int, default=32,
        help="per-destination in-flight packet watermark",
    )
    serve.add_argument(
        "--quantum", type=int, default=64,
        help="simulated cycles advanced per ingestion batch",
    )
    serve.add_argument(
        "--capture", default=None, metavar="FILE",
        help="write the request log (JSONL) at shutdown for --replay",
    )
    serve.add_argument(
        "--replay", default=None, metavar="FILE",
        help="re-run a captured request log bit-identically and exit",
    )
    serve.add_argument(
        "--metrics", action="store_true",
        help="install observability probes at boot (the `metrics` verb "
             "installs them lazily on first scrape otherwise)",
    )
    serve.add_argument(
        "--qos", action="store_true",
        help="install the default traffic-class table: priority "
             "arbitration, per-class credits, class-aware admission, "
             "per-class SLO blocks in stats/metrics",
    )
    serve.add_argument(
        "--tenant-class", action="append", default=None,
        metavar="TENANT=CLASS",
        help="map a tenant to a class id (repeatable; unmapped tenants "
             "ride class 0, the latency class); implies nothing "
             "without --qos",
    )
    serve.add_argument(
        "--slow-log", type=int, default=None, metavar="CYCLES",
        help="log completed requests at/above this end-to-end latency: "
             "one JSON line per request on stderr with the full delay "
             "breakdown (admission/network components/dram); also "
             "installs probes+anatomy at boot and exposes the recent "
             "ring via the stats verb",
    )
    serve.add_argument(
        "--slow-log-size", type=int, default=256,
        help="bounded ring: recent slow-request records kept in memory",
    )
    serve.add_argument(
        "--selftest", action="store_true",
        help="in-process daemon + concurrent socket clients + live "
             "scale/fault verbs + conservation and replay checks",
    )
    serve.add_argument(
        "--clients", type=int, default=32,
        help="selftest: concurrent client connections",
    )
    serve.add_argument(
        "--requests", type=int, default=24,
        help="selftest: requests per client (closed loop)",
    )
    serve.add_argument(
        "--window", type=int, default=4,
        help="selftest: per-client in-flight window",
    )
    serve.add_argument(
        "--no-verify-replay", action="store_true",
        help="selftest: skip the bit-identical replay check",
    )

    return parser


def _cmd_topology(args) -> int:
    from repro.analysis.bisection import empirical_bisection
    from repro.analysis.paths import shortest_path_stats
    from repro.core.routing_table import table_bits
    from repro.core.topology import StringFigureTopology
    from repro.topologies.registry import make_topology

    topo = make_topology(args.name, args.nodes, seed=args.seed, ports=args.ports)
    g = topo.graph()
    paths = shortest_path_stats(g, sample_sources=64)
    radix = topo.num_ports if hasattr(topo, "num_ports") else topo.radix
    print(f"design:          {args.name}")
    print(f"nodes:           {topo.num_nodes}")
    print(f"router radix:    {radix}")
    print(f"links:           {g.number_of_edges()}")
    print(f"avg path:        {paths.mean:.2f} (p90 {paths.p90:.0f}, "
          f"max {paths.maximum})")
    print(f"bisection:       {empirical_bisection(g, partitions=10):.0f}")
    if isinstance(topo, StringFigureTopology):
        bits = table_bits(topo.num_nodes, topo.num_ports)
        print(f"routing table:   <= {bits / 8 / 1024:.2f} KB per router "
              "(constant in N)")
        print(f"virtual spaces:  {topo.num_spaces}")
        print(f"shortcut wires:  {len(topo.shortcut_wires)}")
    return 0


def _cmd_simulate(args) -> int:
    from repro.energy.model import EnergyModel
    from repro.topologies.registry import make_policy, make_topology
    from repro.traffic.injection import run_synthetic
    from repro.traffic.patterns import make_pattern

    topo = make_topology(args.name, args.nodes, seed=args.seed)
    policy = make_policy(topo)
    pattern = make_pattern(args.pattern, topo.active_nodes)
    stats = run_synthetic(
        topo,
        policy,
        pattern,
        args.rate,
        warmup=args.warmup,
        measure=args.measure,
        seed=args.seed,
    )
    energy = EnergyModel().from_stats(stats)
    print(f"{args.name} N={args.nodes} {args.pattern} @ {args.rate:.0%}:")
    print(f"  avg latency:   {stats.avg_latency:.1f} cycles "
          f"({stats.avg_latency * 3.2:.0f} ns)")
    print(f"  p95 latency:   {stats.latency.percentile(95):.1f} cycles")
    print(f"  avg hops:      {stats.avg_hops:.2f}")
    print(f"  accepted:      {stats.accepted_rate:.1%}")
    print(f"  fallback hops: {stats.fallback_hops}")
    print(f"  network energy:{energy.network_pj / 1e6:10.2f} uJ")
    return 0


def _cmd_workload(args) -> int:
    from repro.topologies.registry import make_policy, make_topology
    from repro.workloads.runner import run_workload
    from repro.workloads.trace import collect_trace

    trace = collect_trace(
        args.workload,
        max_memory_accesses=args.accesses,
        scale=args.scale,
        seed=args.seed,
    )
    topo = make_topology(args.name, args.nodes, seed=args.seed)
    result = run_workload(topo, make_policy(topo), trace)
    print(f"{args.workload} on {args.name} (N={args.nodes}):")
    print(f"  memory accesses: {result.operations}")
    print(f"  runtime:         {result.runtime_cycles} cycles "
          f"({result.runtime_cycles * 3.2 / 1000:.1f} us)")
    print(f"  avg read latency:{result.avg_read_latency:9.1f} cycles")
    print(f"  throughput:      {result.throughput_ops_per_kcycle:.1f} "
          "ops/kcycle")
    print(f"  energy:          net {result.energy.network_pj / 1e6:.2f} uJ, "
          f"dram {result.energy.dram_pj / 1e6:.2f} uJ")
    return 0


def _cmd_reconfigure(args) -> int:
    from repro.analysis.paths import greedy_path_stats
    from repro.core.reconfig import ReconfigurationManager
    from repro.core.routing import AdaptiveGreediestRouting
    from repro.core.topology import StringFigureTopology
    from repro.energy.power_gating import PowerManager

    topo = StringFigureTopology(args.nodes, args.ports, seed=args.seed)
    routing = AdaptiveGreediestRouting(topo)
    manager = PowerManager(ReconfigurationManager(topo, routing))
    before = greedy_path_stats(routing, sample_pairs=1000)
    print(f"full network:   {args.nodes} nodes, avg {before.mean:.2f} hops")
    plan = manager.gate_fraction(args.fraction)
    after = greedy_path_stats(routing, sample_pairs=1000)
    print(f"gated {len(plan.gated)} nodes (sleep {plan.overhead_ns:.0f} ns); "
          f"{len(topo.active_shortcuts)} shortcut wires switched in")
    print(f"down-scaled:    {len(topo.active_nodes)} nodes, "
          f"avg {after.mean:.2f} hops, "
          f"connected: {manager.manager.validate_connectivity()}")
    plan = manager.wake_all(now_ns=200_000)
    restored = greedy_path_stats(routing, sample_pairs=1000)
    print(f"restored:       {len(topo.active_nodes)} nodes, "
          f"avg {restored.mean:.2f} hops "
          f"(wake {plan.overhead_ns:.0f} ns)")
    return 0


def _split(text: str, convert=str) -> list:
    return [convert(item.strip()) for item in text.split(",") if item.strip()]


def _resolve_cache_dir(cache_dir):
    if cache_dir is not None:
        return cache_dir
    from pathlib import Path

    repo_default = Path("benchmarks/results/cache")
    return (
        repo_default
        if repo_default.parent.parent.is_dir()
        else Path.home() / ".cache" / "string-figure-repro"
    )


def _run_spec_command(args, spec, per_task_report=None) -> int:
    """Shared sweep execution tail: run, report, cache note, JSON dump."""
    from repro.experiments import ParallelRunner, ResultCache
    from repro.experiments.report import sweep_table, write_result_json

    cache = (
        None if args.no_cache else ResultCache(_resolve_cache_dir(args.cache_dir))
    )
    runner = ParallelRunner(workers=args.workers, cache=cache)
    result = runner.run(spec)
    print(sweep_table(result))
    if per_task_report is not None:
        per_task_report(result)
    print(f"\n{spec.name} [{spec.spec_hash()}]: {result.summary()}")
    if cache is not None:
        print(f"cache: {cache.directory}")
    if args.output:
        path = write_result_json(
            args.output,
            {task.key(): {"task": task.to_dict(), "payload": payload}
             for task, payload in result},
        )
        print(f"payloads: {path}")
    return 0


def _cmd_sweep(args) -> int:
    from repro.experiments import ExperimentSpec

    if args.spec:
        spec = ExperimentSpec.from_file(args.spec)
    else:
        sim_params = {
            key: value
            for key, value in (
                ("warmup", args.warmup),
                ("measure", args.measure),
                ("drain_limit", args.drain_limit),
            )
            if value is not None
        }
        spec = ExperimentSpec(
            name="cli-sweep",
            kind=args.kind,
            designs=_split(args.designs),
            nodes=_split(args.nodes, int),
            patterns=_split(args.patterns),
            rates=_split(args.rates, float),
            workloads=_split(args.workloads),
            seeds=_split(args.seeds, int),
            topology_seed=args.topology_seed,
            sim_params=sim_params,
        )
    return _run_spec_command(args, spec)


def _churn_report(result) -> None:
    """Per-event detail under the churn summary table."""
    for task, payload in result:
        if payload.get("unsupported"):
            continue
        print(f"\n{task.label()}: "
              f"{payload['num_events']} reconfiguration events, "
              f"min active {payload['min_active_nodes']}/{payload['num_nodes']} "
              f"nodes, conservation "
              f"{'ok' if payload['sent'] == payload['delivered'] else 'BROKEN'}")
        for event in payload["events"]:
            recovery = (
                f"recovered in {event['recovery_cycles']} cyc"
                if event["recovered"] and event["recovery_cycles"] is not None
                else ("nothing to recover" if event["recovered"]
                      else "not recovered in horizon")
            )
            print(f"  {event['kind']:8s} x{event['num_nodes']:<3d} "
                  f"@t={event['t_request']:<6d} "
                  f"drain {event['drain_cycles']:4d} cyc, "
                  f"blocked {event['block_cycles']:4d} cyc, "
                  f"parked {event['parked_packets']:4d}, "
                  f"peak latency {event['peak_ratio']:.2f}x baseline, "
                  f"{recovery}")


def _cmd_churn(args) -> int:
    from repro.experiments import ExperimentSpec

    sim_params = {
        "warmup": args.warmup,
        "measure": args.measure,
        "drain_limit": args.drain_limit,
        "gate_fraction": args.gate_fraction,
        "schedule": args.schedule,
    }
    topology_params = {}
    if args.ports is not None:
        topology_params["ports"] = args.ports
    spec = ExperimentSpec(
        name="cli-churn",
        kind="churn",
        designs=("SF",),
        nodes=_split(args.nodes, int),
        patterns=(args.pattern,),
        rates=_split(args.rates, float),
        seeds=_split(args.seeds, int),
        topology_seed=args.topology_seed,
        sim_params=sim_params,
        topology_params=topology_params,
    )
    return _run_spec_command(args, spec, per_task_report=_churn_report)


def _cmd_migrate(args) -> int:
    """Migration-cost sweep: rate limits x page sizes (x teleport)."""
    from repro.experiments import ExperimentSpec, ParallelRunner, ResultCache
    from repro.experiments.report import sweep_table, write_result_json

    modes = ("migrate", "teleport") if args.mode == "both" else (args.mode,)
    rate_limits = _split(args.rate_limits, float)
    page_sizes = _split(args.page_bytes, int)
    base_params = {
        "warmup": args.warmup,
        "measure": args.measure,
        "drain_limit": args.drain_limit,
        "gate_fraction": args.gate_fraction,
        "footprint_pages": args.footprint_pages,
    }
    topology_params = {}
    if args.ports is not None:
        topology_params["ports"] = args.ports
    specs = []
    for mode in modes:
        for page_bytes in page_sizes:
            # Teleport moves zero bytes, so its rate limit is moot: one
            # baseline variant per page size is enough.
            limits = rate_limits if mode == "migrate" else rate_limits[:1]
            for rate_limit in limits:
                specs.append(ExperimentSpec(
                    name=f"cli-migrate-{mode}-pb{page_bytes}-rl{rate_limit:g}",
                    kind="migration",
                    designs=("SF",),
                    nodes=_split(args.nodes, int),
                    patterns=("uniform_random",),
                    rates=_split(args.rates, float),
                    seeds=_split(args.seeds, int),
                    topology_seed=args.topology_seed,
                    sim_params={
                        **base_params,
                        "mode": mode,
                        "page_bytes": page_bytes,
                        "rate_limit": rate_limit,
                    },
                    topology_params=topology_params,
                ))

    cache = (
        None if args.no_cache else ResultCache(_resolve_cache_dir(args.cache_dir))
    )
    runner = ParallelRunner(workers=args.workers, cache=cache)
    all_payloads: dict[str, dict] = {}
    by_mode: dict[str, list[dict]] = {}
    for spec in specs:
        result = runner.run(spec)
        print(f"\n== {spec.name} [{spec.spec_hash()}]: {result.summary()}")
        print(sweep_table(result))
        for task, payload in result:
            all_payloads[task.key()] = {
                "task": task.to_dict(), "payload": payload,
            }
            if not payload.get("unsupported"):
                by_mode.setdefault(payload["mode"], []).append(payload)
    if "migrate" in by_mode and "teleport" in by_mode:
        moved = sum(p["bytes_moved"] for p in by_mode["migrate"])
        makespan = max(p["max_makespan"] for p in by_mode["migrate"])

        def worst_p99(mode: str) -> float:
            return max(p["fg_p99_overall"] for p in by_mode[mode])

        teleport_p99 = worst_p99("teleport")
        print(
            f"\nmigrate vs teleport: {moved / 1024:.0f} KiB actually moved "
            f"(teleport: 0), longest batch makespan {makespan} cycles, "
            f"worst foreground p99 {worst_p99('migrate'):.0f} vs "
            f"{teleport_p99:.0f} cycles"
        )
    if cache is not None:
        print(f"cache: {cache.directory}")
    if args.output:
        path = write_result_json(args.output, all_payloads)
        print(f"payloads: {path}")
    return 0


def _faults_report(result) -> None:
    """Per-point phase latency + availability detail under the table."""
    for task, payload in result:
        if payload.get("unsupported"):
            continue
        conserved = payload["all_conserved"]
        print(
            f"\n{task.label()}: {payload['num_faults']} faults "
            f"{payload['faults_by_kind']}, "
            f"lost {payload['lost']} pkts ({payload['retransmits']} "
            f"retransmits, {payload['abandoned_retries']} gave up), "
            f"unreachable {payload['unreachable_node_cycles']} node-cycles, "
            f"pages lost/recovered {payload['pages_lost']}/"
            f"{payload['pages_recovered']}, "
            f"conservation {'ok' if conserved else 'BROKEN'}"
        )
        for phase in ("baseline", "during", "after"):
            print(
                f"  {phase:8s} p50 {payload[f'fg_p50_{phase}']:7.1f}  "
                f"p99 {payload[f'fg_p99_{phase}']:7.1f}  "
                f"({payload[f'fg_{phase}_requests']} requests)"
            )
        for event in payload["events"]:
            where = (
                f"node {event['node']}" if event["node"] is not None
                else f"link {tuple(event['link'])}"
            )
            timeline = f"@t={event['t_fault']}"
            if event["t_detected"] is not None:
                timeline += f" detected +{event['t_detected'] - event['t_fault']}"
            if event["t_repaired"] is not None:
                timeline += f", repaired +{event['t_repaired'] - event['t_fault']}"
            if event["t_recovered"] is not None:
                timeline += f", recovered +{event['t_recovered'] - event['t_fault']}"
            recovery = (
                f"latency recovered in {event['recovery_cycles']} cyc"
                if event["recovered"] and event["recovery_cycles"] is not None
                else ("nothing to recover" if event["recovered"]
                      else "not recovered in horizon")
            )
            print(f"  {event['kind']:10s} {where:16s} {timeline}, "
                  f"peak {event['peak_ratio']:.2f}x baseline, {recovery}")


def _cmd_faults(args) -> int:
    """Resilience sweep: fault rate x detection timeout x topology."""
    from repro.experiments import ExperimentSpec, ParallelRunner, ResultCache
    from repro.experiments.report import sweep_table, write_result_json

    fault_rates = _split(args.fault_rates, float)
    timeouts = _split(args.detection_timeouts, int)
    base_params = {
        "warmup": args.warmup,
        "measure": args.measure,
        "drain_limit": args.drain_limit,
        "schedule": args.schedule,
        "kinds": tuple(_split(args.kinds)),
        "footprint_pages": args.footprint_pages,
        "mirrored": not args.no_mirror,
        "retransmit_timeout": args.retransmit_timeout,
        "max_retries": args.max_retries,
    }
    topology_params = {}
    if args.ports is not None:
        topology_params["ports"] = args.ports
    specs = []
    # A single-crash schedule ignores the arrival rate, so it gets one
    # variant per detection timeout — and the unused rate stays out of
    # the spec name *and* sim_params, or identical crash runs would
    # hash to different cache keys.
    rates_axis = fault_rates if args.schedule == "random" else [None]
    for fault_rate in rates_axis:
        for timeout in timeouts:
            variant = {"detection_timeout": timeout}
            name = f"cli-faults-dt{timeout}"
            if fault_rate is not None:
                variant["fault_rate"] = fault_rate
                name = f"cli-faults-fr{fault_rate:g}-dt{timeout}"
            specs.append(ExperimentSpec(
                name=name,
                kind="faults",
                designs=_split(args.designs),
                nodes=_split(args.nodes, int),
                patterns=(args.pattern,),
                rates=_split(args.rates, float),
                seeds=_split(args.seeds, int),
                topology_seed=args.topology_seed,
                sim_params={**base_params, **variant},
                topology_params=topology_params,
            ))

    cache = (
        None if args.no_cache else ResultCache(_resolve_cache_dir(args.cache_dir))
    )
    runner = ParallelRunner(workers=args.workers, cache=cache)
    all_payloads: dict[str, dict] = {}
    by_design: dict[str, list[dict]] = {}
    for spec in specs:
        result = runner.run(spec)
        print(f"\n== {spec.name} [{spec.spec_hash()}]: {result.summary()}")
        print(sweep_table(result))
        _faults_report(result)
        for task, payload in result:
            all_payloads[task.key()] = {
                "task": task.to_dict(), "payload": payload,
            }
            if not payload.get("unsupported"):
                by_design.setdefault(task.design, []).append(payload)
    if len(by_design) > 1:
        print("\nresilience comparison (worst grid point per design):")
        for design, payloads in sorted(by_design.items()):
            print(
                f"  {design:>9s}: worst during-fault p99 "
                f"{max(p['fg_p99_during'] for p in payloads):6.0f} cyc, "
                f"lost {sum(p['lost'] for p in payloads):4d} pkts, "
                f"unreachable {sum(p['unreachable_node_cycles'] for p in payloads):6d} "
                f"node-cycles over {sum(p['num_faults'] for p in payloads)} faults"
            )
    if cache is not None:
        print(f"cache: {cache.directory}")
    if args.output:
        path = write_result_json(args.output, all_payloads)
        print(f"payloads: {path}")
    return 0


def _cmd_interference(args) -> int:
    """Multi-tenant QoS sweep: per-class p99 vs interference load."""
    from repro.experiments import ExperimentSpec, ParallelRunner, ResultCache
    from repro.experiments.report import sweep_table, write_result_json

    base_params = {
        "warmup": args.warmup,
        "measure": args.measure,
        "drain_limit": args.drain_limit,
        "fg_rate": args.fg_rate,
    }
    topology_params = {}
    if args.ports is not None:
        topology_params["ports"] = args.ports
    qos_variants = [False] if args.no_qos else [True]
    if args.baseline and not args.no_qos:
        qos_variants.append(False)
    specs = []
    for mode in _split(args.modes):
        for qos in qos_variants:
            tag = "qos" if qos else "raw"
            specs.append(ExperimentSpec(
                name=f"cli-interference-{mode}-{tag}",
                kind="interference",
                designs=_split(args.designs),
                nodes=_split(args.nodes, int),
                patterns=(args.pattern,),
                rates=_split(args.rates, float),
                seeds=_split(args.seeds, int),
                topology_seed=args.topology_seed,
                sim_params={**base_params, "mode": mode, "qos": qos},
                topology_params=topology_params,
            ))

    cache = (
        None if args.no_cache else ResultCache(_resolve_cache_dir(args.cache_dir))
    )
    runner = ParallelRunner(workers=args.workers, cache=cache)
    all_payloads: dict[str, dict] = {}
    by_design: dict[str, list[dict]] = {}
    for spec in specs:
        result = runner.run(spec)
        print(f"\n== {spec.name} [{spec.spec_hash()}]: {result.summary()}")
        print(sweep_table(result))
        for task, payload in result:
            all_payloads[task.key()] = {
                "task": task.to_dict(), "payload": payload,
            }
            if not payload.get("unsupported"):
                by_design.setdefault(task.design, []).append(payload)
    if by_design:
        print("\nisolation summary (worst grid point per design):")
        for design, payloads in sorted(by_design.items()):
            protected = [p for p in payloads if p.get("qos")]
            exposed = [p for p in payloads if not p.get("qos")]
            line = f"  {design:>9s}:"
            if protected:
                line += (
                    f" qos fg_p99 {max(p['fg_p99'] for p in protected):6.0f}"
                    f" / bulk_p99 "
                    f"{max(p['bulk_p99'] for p in protected):6.0f} cyc"
                )
            if exposed:
                line += (
                    f"; classless fg_p99 "
                    f"{max(p['fg_p99'] for p in exposed):6.0f} cyc"
                )
            print(line)
    if cache is not None:
        print(f"cache: {cache.directory}")
    if args.output:
        path = write_result_json(args.output, all_payloads)
        print(f"payloads: {path}")
    return 0


def _cmd_perf(args) -> int:
    """Simulator-throughput sweep (always uncached: timings are live)."""
    from repro.experiments import ExperimentSpec, ParallelRunner
    from repro.experiments.report import sweep_table, write_result_json

    spec = ExperimentSpec(
        name="cli-perf",
        kind="perf",
        designs=_split(args.designs),
        nodes=_split(args.nodes, int),
        patterns=(args.pattern,),
        rates=_split(args.rates, float),
        seeds=_split(args.seeds, int),
        topology_seed=args.topology_seed,
        sim_params={
            "warmup": args.warmup,
            "measure": args.measure,
            "drain_limit": args.drain_limit,
            "repeats": args.repeats,
            "eager_link_events": bool(args.eager_link_events),
        },
    )
    # Cacheless by construction: wall-clock timings must never be
    # served from cache.  Default execution is serial — concurrently
    # timed points would steal each other's cycles — while --isolate
    # runs one affinity-pinned worker per core (tasks inside each
    # worker still time serially), so large grids finish in parallel
    # without sharing cores.
    if args.isolate:
        runner = ParallelRunner(workers=0, cache=None, isolate=True)
    else:
        runner = ParallelRunner(workers=1, cache=None)
    result = runner.run(spec)
    print(sweep_table(result))
    print(f"\n{spec.name} [{spec.spec_hash()}]: {result.summary()}")
    print("trajectory file: python benchmarks/bench_sim_throughput.py "
          "records these points over time")
    if args.output:
        path = write_result_json(
            args.output,
            {task.key(): {"task": task.to_dict(), "payload": payload}
             for task, payload in result},
        )
        print(f"payloads: {path}")
    return 0


def _cmd_trace(args) -> int:
    """Run one instrumented point; emit metrics/timeseries/trace artifacts."""
    import json
    import re
    from pathlib import Path

    from repro.experiments import ExperimentSpec
    from repro.experiments.worker import execute_task
    from repro.obs import FabricProbes

    sim_params = {}
    for name in ("warmup", "measure", "drain_limit"):
        value = getattr(args, name)
        if value is not None:
            sim_params[name] = value
    if args.kind == "perf":
        # One timed repeat: a second repeat would hand a *fresh*
        # simulator to the same probes and split counters across runs.
        sim_params["repeats"] = 1
    topology_params = {}
    if args.ports is not None:
        topology_params["ports"] = args.ports
    spec = ExperimentSpec(
        name="cli-trace",
        kind=args.kind,
        designs=(args.design,),
        nodes=(args.nodes,),
        patterns=(args.pattern,),
        rates=(args.rate,),
        seeds=(args.seed,),
        topology_seed=args.topology_seed,
        sim_params=sim_params,
        topology_params=topology_params,
    )
    task = spec.tasks()[0]

    probes = FabricProbes.full(
        interval=args.sample_interval,
        fraction=args.trace_fraction,
        seed=args.trace_seed,
        ring_size=args.ring,
        max_records=args.max_trace_records,
        anatomy=not args.no_anatomy,
    )
    attached: dict[str, object] = {}

    def instrument(obj) -> None:
        """Attach probes to whatever the runner built (sim or service)."""
        if hasattr(obj, "sim"):  # FabricService: full-stack wiring
            obj.install_probes(probes)
            attached["sim"] = obj.sim
        else:
            probes.attach_sim(obj)
            attached["sim"] = obj

    payload = execute_task(task, instrument=instrument)
    if payload.get("unsupported"):
        print(f"unsupported point: {payload.get('error')}")
        return 1
    sim = attached.get("sim")
    if sim is None:
        print(f"kind {args.kind!r} never built an instrumentable run")
        return 1
    probes.finish(sim.now)

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    base = re.sub(r"[^A-Za-z0-9._-]+", "-", task.label()).strip("-")
    recorder, tracer, registry = probes.recorder, probes.tracer, probes.registry
    anatomy = probes.anatomy
    artifacts = {
        "timeseries": out_dir / f"{base}.timeseries.jsonl",
        "chrome trace": out_dir / f"{base}.trace.json",
        "trace jsonl": out_dir / f"{base}.trace.jsonl",
        "metrics json": out_dir / f"{base}.metrics.json",
        "prometheus": out_dir / f"{base}.metrics.prom",
        "summary": out_dir / f"{base}.summary.json",
    }
    if anatomy is not None:
        artifacts["anatomy json"] = out_dir / f"{base}.anatomy.json"
        artifacts["links csv"] = out_dir / f"{base}.links.csv"
    recorder.write_jsonl(artifacts["timeseries"])
    tracer.write_chrome(artifacts["chrome trace"])
    tracer.write_jsonl(artifacts["trace jsonl"])
    artifacts["metrics json"].write_text(
        json.dumps(registry.snapshot(), indent=2, sort_keys=True) + "\n"
    )
    artifacts["prometheus"].write_text(registry.to_prometheus())
    if anatomy is not None:
        artifacts["anatomy json"].write_text(json.dumps(
            anatomy.summary(), indent=2, sort_keys=True,
        ) + "\n")
        artifacts["links csv"].write_text(anatomy.hotspots.links_csv())
    obs = probes.summary()
    if anatomy is not None:
        # The flat obs_ fields ride in the persisted payload too, so
        # sweep reports and artifact consumers see the same columns.
        payload = {**payload, **anatomy.payload()}
    artifacts["summary"].write_text(json.dumps(
        {"task": task.to_dict(), "payload": payload, "obs": obs},
        indent=2, sort_keys=True, default=str,
    ) + "\n")

    print(f"{task.label()} — instrumented run complete @ cycle {sim.now}")
    print(f"  events processed:  {obs['events_processed']} {obs['events']}")
    print(f"  credit stalls:     {obs['credit_stalls']}, queue high-water "
          f"{obs['occupancy_highwater']} pkts")
    print(f"  timeseries rows:   {obs.get('ts_rows', 0)} "
          f"(interval {args.sample_interval} cycles)")
    print(f"  trace records:     {obs.get('trace_records', 0)} "
          f"({obs.get('trace_dropped', 0)} dropped), "
          f"ring {len(tracer.ring)} events")
    if anatomy is not None:
        totals = anatomy.component_totals()
        grand = sum(totals.values())
        stack = " ".join(
            f"{name}={cycles / grand:.1%}" if grand else f"{name}=0"
            for name, cycles in totals.items() if cycles
        )
        print(f"  latency anatomy:   {anatomy.delivered} packets "
              f"decomposed; {stack or 'no delivered packets'}")
    for name, path in artifacts.items():
        print(f"  {name:16s} -> {path}")

    # The standard report table for this kind, with the observability
    # roll-up riding along as generic ``obs_`` columns.
    from repro.experiments.report import sweep_table

    table_payload = {
        **payload,
        "obs_events": obs["events_processed"],
        "obs_stalls": obs["credit_stalls"],
        "obs_q_hw": obs["occupancy_highwater"],
        "obs_ts_rows": obs.get("ts_rows", 0),
        "obs_trace_recs": obs.get("trace_records", 0),
    }
    print()
    print(sweep_table([(task, table_payload)]))
    print()

    # Acceptance invariant: per-interval timeseries deltas must sum
    # exactly to the final counter totals of the same run.
    sums = recorder.sum_counters()
    finals = {
        s.key: s.value for s in registry.collect() if s.kind == "counter"
    }
    bad = {
        key: (sums.get(key, 0), value)
        for key, value in finals.items()
        if sums.get(key, 0) != value
    }
    if bad:
        print("  RECONCILIATION FAILED:")
        for key, (got, want) in sorted(bad.items()):
            print(f"    {key}: timeseries sum {got} != final {want}")
        return 1
    print(f"  reconciliation:    ok ({len(finals)} counters: timeseries "
          "sums == final totals)")

    # Second acceptance invariant: every delivered packet's component
    # sum must equal its measured end-to-end latency exactly.
    if anatomy is not None:
        if not anatomy.conserved():
            print(f"  CONSERVATION FAILED: "
                  f"{anatomy.conservation_violations} packets' component "
                  f"sums != end-to-end latency")
            for example in anatomy.violation_examples[:3]:
                print(f"    {example}")
            return 1
        print(f"  conservation:      ok ({anatomy.delivered} packets: "
              "component sums == end-to-end latency)")
    return 0


def _cmd_hotspots(args) -> int:
    """Run one contended scenario under the anatomy; print the views."""
    import json

    from repro.experiments.report import render_table
    from repro.topologies.registry import make_topology
    from repro.workloads.interference import run_interference

    try:
        topology = make_topology(
            args.design, args.nodes, seed=args.topology_seed,
            ports=args.ports,
        )
    except ValueError as exc:
        print(f"cannot build {args.design} at N={args.nodes}: {exc}")
        return 1
    result = run_interference(
        topology,
        mode=args.mode,
        rate=args.rate,
        fg_rate=args.fg_rate,
        pattern=args.pattern,
        qos=not args.no_qos,
        warmup=args.warmup,
        measure=args.measure,
        drain_limit=args.drain_limit,
        seed=args.seed,
        anatomy=True,
    )
    anatomy = result.anatomy
    hotspots = anatomy.hotspots

    qos_label = "classless" if args.no_qos else "QoS"
    print(f"{args.design} N={args.nodes} {args.mode} rate={args.rate:g} "
          f"fg={args.fg_rate:g} ({qos_label}) — "
          f"{anatomy.delivered} packets decomposed @ cycle {result.run_end}")

    print("\nper-class delay anatomy (cycles):")
    from repro.obs.anatomy import COMPONENTS

    rows = []
    for label, row in anatomy.class_breakdown().items():
        comps = row["components"]
        rows.append(
            [label, row["delivered"], f"{row['latency_mean']:.1f}"]
            + [comps[name] for name in COMPONENTS]
        )
    print(render_table(
        ["class", "delivered", "mean_lat", *COMPONENTS], rows,
    ))

    print(f"\ntop {args.top} contended links (by blocked cycles):")
    rows = []
    for entry in hotspots.top_links(args.top):
        row = entry.to_dict()
        rows.append([
            f"{entry.u}->{entry.v}", row["enqueues"], row["wait_cycles"],
            f"{row['wait_p50']:.0f}", f"{row['wait_p99']:.0f}",
            f"{row['occupancy_p99']:.0f}",
        ])
    print(render_table(
        ["link", "enqueues", "wait_cyc", "wait_p50", "wait_p99", "occ_p99"],
        rows,
    ))

    print(f"\ntop {args.top} contended routers (outgoing links summed):")
    rows = [
        [r["router"], r["links"], r["dequeues"], r["wait_cycles"]]
        for r in hotspots.router_rollup(args.top)
    ]
    print(render_table(["router", "links", "dequeues", "wait_cyc"], rows))

    matrix = hotspots.matrix_table(anatomy.class_names)
    if matrix:
        print("\nclass-on-class interference (blocked-class rows, cycles "
              "spent behind the column class):")
        cols = sorted({j for row in matrix.values() for j in row})
        rows = [
            [blocked] + [row.get(j, 0) for j in cols]
            for blocked, row in matrix.items()
        ]
        print(render_table(["blocked\\behind", *cols], rows))

    if args.output:
        with open(args.output, "w") as fh:
            json.dump(anatomy.summary(top_k=args.top), fh,
                      indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nanatomy summary -> {args.output}")
    if args.links_csv:
        with open(args.links_csv, "w") as fh:
            fh.write(hotspots.links_csv())
        print(f"per-link CSV -> {args.links_csv}")

    if not anatomy.conserved():
        print(f"\nCONSERVATION FAILED: {anatomy.conservation_violations} "
              "packets' component sums != end-to-end latency")
        return 1
    print(f"\nconservation: ok ({anatomy.delivered} packets, "
          f"drained={result.drained})")
    return 0


def _cmd_serve(args) -> int:
    """Run the fabric daemon, a log replay, or the socket self-test."""
    if args.selftest:
        from repro.service.selftest import run_selftest

        return run_selftest(
            nodes=args.nodes,
            clients=args.clients,
            requests=args.requests,
            window=args.window,
            quantum=args.quantum,
            capture_path=args.capture,
            verify_replay=not args.no_verify_replay,
        )

    if args.replay:
        from repro.service.log import RequestLog, replay

        log = RequestLog.load(args.replay)
        service = replay(log)
        digest = service.digest()
        report = service.snapshot()
        print(f"replayed {digest['requests']} requests from {args.replay}")
        print(f"  completions digest: {digest['completions']}")
        print(f"  sent={digest['sent']} delivered={digest['delivered']} "
              f"dropped={digest['dropped']} shed={digest['shed']}")
        print(f"  pages_lost={report['pages_lost']} "
              f"migrations={report['migrations']} faults={report['faults']}")
        if args.capture:
            from repro.service.log import RequestLog as _Log

            _Log.capture(service).save(args.capture)
            print(f"  re-captured log -> {args.capture}")
        return 0

    import asyncio

    from repro.service.core import FabricService
    from repro.service.daemon import FabricDaemon
    from repro.service.log import RequestLog

    tenant_classes = None
    if args.tenant_class:
        tenant_classes = {}
        for entry in args.tenant_class:
            tenant, _, cls = entry.partition("=")
            if not tenant or not cls.lstrip("-").isdigit():
                raise SystemExit(
                    f"--tenant-class expects TENANT=CLASS, got {entry!r}"
                )
            tenant_classes[tenant] = int(cls)

    service = FabricService(
        nodes=args.nodes,
        design=args.design,
        ports=args.ports,
        topology_seed=args.topology_seed,
        seed=args.seed,
        footprint_pages=args.footprint_pages,
        page_bytes=args.page_bytes,
        max_outstanding=args.max_outstanding,
        queue_depth=args.queue_depth,
        node_watermark=args.node_watermark,
        qos=args.qos,
        tenant_classes=tenant_classes,
        slow_log_threshold=args.slow_log,
        slow_log_size=args.slow_log_size,
    )
    if args.metrics or args.slow_log is not None:
        # --slow-log needs the anatomy installed from the first request
        # so every record carries its network component breakdown.
        service.install_probes()

    async def _serve() -> None:
        import sys

        daemon = FabricDaemon(
            service, host=args.host, port=args.port, quantum=args.quantum,
            slow_log_stream=(
                sys.stderr if args.slow_log is not None else None
            ),
        )
        host, port = await daemon.start()
        print(f"fabric daemon: {args.design} N={args.nodes} resident on "
              f"{host}:{port} ({args.footprint_pages} pages x "
              f"{args.page_bytes} B)")
        print(f'try: printf \'{{"op":"read","page":0,"id":"x"}}\\n\' '
              f"| nc {host} {port}")
        try:
            await daemon.wait_stopped()
        except (KeyboardInterrupt, asyncio.CancelledError):
            await daemon.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("\ninterrupted; draining")
        service.drain()
    if args.capture:
        RequestLog.capture(service).save(args.capture)
        print(f"captured request log -> {args.capture}")
    return 0


_COMMANDS = {
    "topology": _cmd_topology,
    "simulate": _cmd_simulate,
    "workload": _cmd_workload,
    "reconfigure": _cmd_reconfigure,
    "sweep": _cmd_sweep,
    "churn": _cmd_churn,
    "migrate": _cmd_migrate,
    "faults": _cmd_faults,
    "interference": _cmd_interference,
    "perf": _cmd_perf,
    "trace": _cmd_trace,
    "hotspots": _cmd_hotspots,
    "serve": _cmd_serve,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
