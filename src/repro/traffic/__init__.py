"""Synthetic traffic patterns (paper Table III) and injection processes."""

from repro.traffic.injection import BernoulliInjector, run_synthetic
from repro.traffic.patterns import (
    PATTERNS,
    ComplementTraffic,
    HotspotTraffic,
    NearestNeighborTraffic,
    OppositeTraffic,
    Partition2Traffic,
    TornadoTraffic,
    TrafficPattern,
    UniformRandomTraffic,
    make_pattern,
)
from repro.traffic.sources import SOURCE_STRATEGIES, select_sources

__all__ = [
    "PATTERNS",
    "SOURCE_STRATEGIES",
    "BernoulliInjector",
    "ComplementTraffic",
    "HotspotTraffic",
    "NearestNeighborTraffic",
    "OppositeTraffic",
    "Partition2Traffic",
    "TornadoTraffic",
    "TrafficPattern",
    "UniformRandomTraffic",
    "make_pattern",
    "run_synthetic",
    "select_sources",
]
