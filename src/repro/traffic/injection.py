"""Packet injection processes for synthetic-traffic experiments.

Each active node injects packets as a Bernoulli process: at every
cycle, with probability equal to the injection rate, the node creates a
packet whose destination comes from the configured traffic pattern
(paper §V: "given an injection rate of 0.6, nodes randomly inject
packets 60% of the time").  In the event-driven simulator this becomes
geometric inter-arrival gaps, which is statistically identical and far
cheaper than a per-cycle coin flip.
"""

from __future__ import annotations

import math

from repro.network.config import NetworkConfig
from repro.network.packet import Packet, PacketKind
from repro.network.simulator import NetworkSimulator
from repro.network.stats import SimStats
from repro.traffic.patterns import TrafficPattern
from repro.utils.rng import derive_rng

__all__ = ["BernoulliInjector", "run_synthetic"]


class BernoulliInjector:
    """Per-node Bernoulli packet injection driven by a traffic pattern.

    Parameters
    ----------
    sim:
        Target simulator.
    pattern:
        Destination generator (a Table III pattern).
    rate:
        Injection probability per node per cycle, in ``(0, 1]``.
    warmup, measure:
        Packets injected in ``[warmup, warmup + measure)`` are flagged
        as measured; injection stops at ``warmup + measure`` (plus an
        optional cooldown of unmeasured background traffic).
    cooldown:
        Extra cycles of unmeasured injection after the window, keeping
        the network loaded while measured packets drain.
    payload_bytes:
        Packet payload (default one cache line).
    sources:
        Restrict injecting nodes (default: every active node —
        "similar to attaching a processor to each memory node").
    tclass:
        Traffic class id stamped on every injected packet (row of the
        simulator's installed QoS table; 0 — the default class — when
        the run is classless).
    """

    def __init__(
        self,
        sim: NetworkSimulator,
        pattern: TrafficPattern,
        rate: float,
        warmup: int = 300,
        measure: int = 1000,
        cooldown: int = 0,
        payload_bytes: int = 64,
        seed: int | None = 0,
        sources: list[int] | None = None,
        tclass: int = 0,
    ) -> None:
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"rate must be in (0, 1], got {rate}")
        self.sim = sim
        self.pattern = pattern
        self.rate = rate
        self.warmup = warmup
        self.measure = measure
        self.cooldown = cooldown
        self.payload_bytes = payload_bytes
        self.seed = seed
        self.tclass = tclass
        self.sources = (
            list(sim.topology.active_nodes) if sources is None else list(sources)
        )
        config: NetworkConfig = sim.config
        self._size_flits = config.packet_flits(payload_bytes)
        self._stop = warmup + measure + cooldown

    def _gap(self, rng) -> int:
        """Geometric inter-arrival gap matching the Bernoulli process."""
        u = rng.random()
        if self.rate >= 1.0:
            return 1
        return max(1, math.ceil(math.log(1.0 - u) / math.log(1.0 - self.rate)))

    def start(self) -> None:
        """Schedule every source's injection process."""
        for node in self.sources:
            rng = derive_rng(self.seed, "inject", node)
            self._schedule_next(node, rng, 0)

    def _schedule_next(self, node: int, rng, now: int) -> None:
        t = now + self._gap(rng)
        if t >= self._stop:
            return

        def fire(current_time: int, node=node, rng=rng) -> None:
            dst = self.pattern.destination(node, rng)
            measured = self.warmup <= current_time < self.warmup + self.measure
            packet = Packet(
                src=node,
                dst=dst,
                size_flits=self._size_flits,
                payload_bytes=self.payload_bytes,
                kind=PacketKind.DATA,
                tclass=self.tclass,
                measured=measured,
            )
            self.sim.send(packet, current_time)
            self._schedule_next(node, rng, current_time)

        self.sim.schedule(t, fire)


def run_synthetic(
    topology,
    policy,
    pattern: TrafficPattern,
    rate: float,
    config: NetworkConfig | None = None,
    warmup: int = 300,
    measure: int = 1000,
    drain_limit: int = 40_000,
    seed: int | None = 0,
    payload_bytes: int = 64,
    sources: list[int] | None = None,
    link_latency=None,
    sample_free: bool = False,
    eager_link_events: bool = False,
    instrument=None,
) -> SimStats:
    """One synthetic-traffic simulation, start to drain.

    Returns the :class:`~repro.network.stats.SimStats` with measured
    latency/throughput.  ``drain_limit`` bounds the post-injection
    drain so saturated runs terminate (their accepted-rate < 1 then
    flags saturation).  ``sample_free`` swaps the latency/hop sample
    lists for streaming quantile sketches (identical statistics,
    bounded memory — intended for 1296-node sweeps).  ``instrument``
    (if given) is called with the freshly built simulator before any
    traffic starts — the observability layer attaches its probes here.
    """
    sim = NetworkSimulator(
        topology, policy, config, link_latency=link_latency,
        sample_free=sample_free, eager_link_events=eager_link_events,
    )
    if instrument is not None:
        instrument(sim)
    injector = BernoulliInjector(
        sim,
        pattern,
        rate,
        warmup=warmup,
        measure=measure,
        payload_bytes=payload_bytes,
        seed=seed,
        sources=sources,
    )
    injector.start()
    sim.run(until=warmup + measure)
    sim.run(until=warmup + measure + drain_limit)
    sim.stats.measure_cycles = measure
    return sim.stats
