"""Synthetic network traffic patterns (paper Table III).

Every pattern maps a source node to a destination node over the
currently active node set.  The paper defines patterns over node
*indices* (``nports`` there denotes the number of nodes); we follow the
same formulas, applied to the position of a node in the sorted active
node list, so patterns remain meaningful on down-scaled networks.

Patterns implemented (Table III):

=================  =====================================================
uniform_random     each node sends to a random destination
tornado            ``dest = (src + N/2) mod N``
hotspot            every node sends to one fixed destination
opposite           ``dest = N - 1 - src`` (mirror)
neighbor           ``dest = src + 1`` (nearest neighbor by node id)
complement         ``dest = src XOR (N - 1)`` (bitwise complement)
partition2         two halves; nodes send uniformly within their half
=================  =====================================================
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections.abc import Sequence

__all__ = [
    "TrafficPattern",
    "UniformRandomTraffic",
    "TornadoTraffic",
    "HotspotTraffic",
    "OppositeTraffic",
    "NearestNeighborTraffic",
    "ComplementTraffic",
    "Partition2Traffic",
    "PATTERNS",
    "make_pattern",
]


class TrafficPattern(ABC):
    """Maps sources to destinations over an active node list."""

    name: str = "abstract"

    def __init__(self, nodes: Sequence[int]) -> None:
        if len(nodes) < 2:
            raise ValueError("traffic needs at least two nodes")
        self.nodes = list(nodes)
        self.index = {node: i for i, node in enumerate(self.nodes)}

    @property
    def n(self) -> int:
        return len(self.nodes)

    @abstractmethod
    def destination(self, src: int, rng: random.Random) -> int:
        """Destination node for a packet injected at *src*."""

    def _position(self, src: int) -> int:
        try:
            return self.index[src]
        except KeyError:
            raise ValueError(f"node {src} is not in the active node set") from None


class UniformRandomTraffic(TrafficPattern):
    """Each node produces requests to a random destination node."""

    name = "uniform_random"

    def destination(self, src: int, rng: random.Random) -> int:
        while True:
            dst = self.nodes[rng.randrange(self.n)]
            if dst != src:
                return dst


class TornadoTraffic(TrafficPattern):
    """Nodes send packets to a destination halfway around the network."""

    name = "tornado"

    def destination(self, src: int, rng: random.Random) -> int:
        i = self._position(src)
        return self.nodes[(i + self.n // 2) % self.n]


class HotspotTraffic(TrafficPattern):
    """Every node produces requests to the same single destination."""

    name = "hotspot"

    def __init__(self, nodes: Sequence[int], hotspot: int | None = None) -> None:
        super().__init__(nodes)
        self.hotspot = self.nodes[0] if hotspot is None else hotspot
        if self.hotspot not in self.index:
            raise ValueError(f"hotspot {self.hotspot} is not an active node")

    def destination(self, src: int, rng: random.Random) -> int:
        if src == self.hotspot:
            # The hotspot itself picks a random victim, keeping every
            # node injecting as the paper's setup does.
            while True:
                dst = self.nodes[rng.randrange(self.n)]
                if dst != src:
                    return dst
        return self.hotspot


class OppositeTraffic(TrafficPattern):
    """Traffic to the opposite side of the network, like a mirror."""

    name = "opposite"

    def destination(self, src: int, rng: random.Random) -> int:
        i = self._position(src)
        j = self.n - 1 - i
        if j == i:
            j = (i + 1) % self.n
        return self.nodes[j]


class NearestNeighborTraffic(TrafficPattern):
    """Each node sends requests to its nearest neighbor node, one away.

    Note (paper §VI): "neighboring" is by router id, not by hop count —
    on String Figure the id-successor is generally *not* one hop away,
    which is why mesh beats SF on this pattern.
    """

    name = "neighbor"

    def destination(self, src: int, rng: random.Random) -> int:
        i = self._position(src)
        return self.nodes[(i + 1) % self.n]


class ComplementTraffic(TrafficPattern):
    """Nodes send requests to their bitwise-complement destination."""

    name = "complement"

    def destination(self, src: int, rng: random.Random) -> int:
        i = self._position(src)
        mask = (1 << max(1, (self.n - 1).bit_length())) - 1
        j = (i ^ mask) % self.n
        if j == i:
            j = (i + 1) % self.n
        return self.nodes[j]


class Partition2Traffic(TrafficPattern):
    """Network split into two groups; nodes send randomly within theirs."""

    name = "partition2"

    def destination(self, src: int, rng: random.Random) -> int:
        i = self._position(src)
        half = self.n // 2
        lo, hi = (0, half) if i < half else (half, self.n)
        if hi - lo < 2:
            return self.nodes[(i + 1) % self.n]
        while True:
            j = rng.randrange(lo, hi)
            if self.nodes[j] != src:
                return self.nodes[j]


PATTERNS: dict[str, type[TrafficPattern]] = {
    cls.name: cls
    for cls in (
        UniformRandomTraffic,
        TornadoTraffic,
        HotspotTraffic,
        OppositeTraffic,
        NearestNeighborTraffic,
        ComplementTraffic,
        Partition2Traffic,
    )
}


def make_pattern(name: str, nodes: Sequence[int], **kwargs) -> TrafficPattern:
    """Instantiate a Table III pattern by name."""
    try:
        cls = PATTERNS[name]
    except KeyError:
        raise ValueError(
            f"unknown traffic pattern {name!r}; choose from {sorted(PATTERNS)}"
        ) from None
    return cls(nodes, **kwargs)
