"""Processor attachment strategies (paper §IV-C "Processor placement").

String Figure lets processors attach to any subset of memory nodes;
the paper's evaluation "examines ways of injecting memory traffic from
various locations, such as corner memory nodes, subset of memory
nodes, random memory nodes, and all memory nodes".  These helpers
produce the injecting-source sets for each strategy:

============  ====================================================
all           every memory node injects (the Figure 10/11 default)
corner        the four corners of the 2D placement grid
subset        every k-th node in id order (evenly spread sockets)
random        a seeded random sample of nodes
============  ====================================================
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.utils.rng import derive_rng

__all__ = ["SOURCE_STRATEGIES", "select_sources"]

SOURCE_STRATEGIES = ("all", "corner", "subset", "random")


def _corner_nodes(topology, active: list[int], count: int) -> list[int]:
    """Nodes at the corners of the topology's 2D placement grid."""
    from repro.analysis.placement import GridPlacement

    placement = GridPlacement(topology)
    by_position = {placement.position(v): v for v in active}
    rows = max(r for r, _c in by_position) if by_position else 0
    cols = max(c for _r, c in by_position) if by_position else 0

    def nearest(target: tuple[int, int]) -> int:
        return min(
            active,
            key=lambda v: abs(placement.position(v)[0] - target[0])
            + abs(placement.position(v)[1] - target[1]),
        )

    corners = [(0, 0), (0, cols), (rows, 0), (rows, cols)]
    picked: list[int] = []
    for corner in corners[:count]:
        node = nearest(corner)
        if node not in picked:
            picked.append(node)
    return picked


def select_sources(
    topology,
    strategy: str,
    count: int = 4,
    seed: int | None = 0,
    active: Sequence[int] | None = None,
) -> list[int]:
    """Injecting nodes for a processor-placement *strategy*.

    ``count`` is the number of attachment points for the ``corner``,
    ``subset`` and ``random`` strategies (the paper's working example
    has four CPU sockets); ``all`` ignores it.
    """
    nodes = list(topology.active_nodes if active is None else active)
    if not nodes:
        raise ValueError("no active nodes to attach processors to")
    if strategy == "all":
        return nodes
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    count = min(count, len(nodes))
    if strategy == "corner":
        return _corner_nodes(topology, nodes, count)
    if strategy == "subset":
        return [nodes[(i * len(nodes)) // count] for i in range(count)]
    if strategy == "random":
        rng = derive_rng(seed, "sources", strategy)
        return sorted(rng.sample(nodes, count))
    raise ValueError(
        f"unknown strategy {strategy!r}; choose from {SOURCE_STRATEGIES}"
    )
