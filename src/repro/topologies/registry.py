"""Factory for every evaluated topology + routing pairing (Figure 8).

``make_topology`` builds any of the paper's six designs by name;
``make_policy`` attaches the routing scheme the paper pairs with it:

=========  ==========================  ==============================
name       topology                    routing scheme
=========  ==========================  ==============================
DM         2D distributed mesh         XY (greedy) + adaptive
ODM        bandwidth-matched mesh      XY (greedy) + adaptive
FB         2D flattened butterfly      minimal + adaptive
AFB        partitioned FB              minimal + adaptive
S2         multi-space random (ideal)  greediest look-up table
SF         String Figure               greediest + adaptive + table
Jellyfish  random regular graph        k-shortest-path (minimal ECMP)
=========  ==========================  ==============================

Router ports for SF/S2 follow Figure 8: 4 network ports up to 128
nodes, 8 beyond.
"""

from __future__ import annotations

from repro.core.routing import AdaptiveGreediestRouting, GreediestRouting
from repro.core.topology import S2Topology, StringFigureTopology
from repro.network.policies import GreedyPolicy, RoutingPolicy
from repro.topologies.flattened_butterfly import (
    AdaptedFlattenedButterflyTopology,
    FlattenedButterflyTopology,
)
from repro.topologies.jellyfish import JellyfishTopology
from repro.topologies.mesh import MeshTopology, OptimizedMeshTopology

__all__ = [
    "TOPOLOGY_NAMES",
    "canonical_name",
    "figure8_ports",
    "make_topology",
    "make_policy",
]

TOPOLOGY_NAMES = ("DM", "ODM", "FB", "AFB", "S2", "SF", "Jellyfish")

_ALIASES = {
    "sf": "SF", "string-figure": "SF", "stringfigure": "SF",
    "string_figure": "SF",
    "s2": "S2", "s2-ideal": "S2", "s2ideal": "S2",
    "dm": "DM", "odm": "ODM", "fb": "FB", "afb": "AFB",
    "jellyfish": "Jellyfish",
}


def canonical_name(name: str) -> str:
    """Resolve a design name/alias to its Figure 8 label, or raise."""
    canonical = _ALIASES.get(name.strip().lower())
    if canonical is None:
        raise ValueError(
            f"unknown topology {name!r}; choose from {TOPOLOGY_NAMES}"
        )
    return canonical


def figure8_ports(num_nodes: int) -> int:
    """SF/S2 router ports at a given scale (Figure 8: 4 up to 128, else 8)."""
    return 4 if num_nodes <= 128 else 8


def make_topology(
    name: str,
    num_nodes: int,
    seed: int | None = 0,
    ports: int | None = None,
    **kwargs,
):
    """Build a named topology at *num_nodes* scale.

    ``ports`` overrides the Figure 8 port schedule for SF, S2 and
    Jellyfish; extra ``kwargs`` reach the topology constructor (e.g.
    ``channels`` for ODM, ``segment`` for AFB, ``direction`` for SF).
    """
    key = canonical_name(name)
    if key == "SF":
        p = ports or figure8_ports(num_nodes)
        return StringFigureTopology(num_nodes, p, seed=seed, **kwargs)
    if key == "S2":
        p = ports or figure8_ports(num_nodes)
        return S2Topology(num_nodes, p, seed=seed, **kwargs)
    if key == "DM":
        return MeshTopology(num_nodes, **kwargs)
    if key == "ODM":
        return OptimizedMeshTopology(num_nodes, **kwargs)
    if key == "FB":
        return FlattenedButterflyTopology(num_nodes, **kwargs)
    if key == "AFB":
        return AdaptedFlattenedButterflyTopology(num_nodes, **kwargs)
    if key == "Jellyfish":
        degree = ports or figure8_ports(num_nodes)
        return JellyfishTopology(num_nodes, degree=degree, seed=seed, **kwargs)
    raise ValueError(f"no constructor registered for {key!r}")


def make_policy(topology, adaptive: bool = True, **kwargs) -> RoutingPolicy:
    """Attach the paper's routing scheme to *topology*."""
    if isinstance(topology, StringFigureTopology):
        if adaptive:
            routing = AdaptiveGreediestRouting(topology, **kwargs)
        else:
            routing = GreediestRouting(topology, **kwargs)
        return GreedyPolicy(routing)
    return topology.make_policy(adaptive=adaptive, **kwargs)
