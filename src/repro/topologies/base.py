"""Common interface for baseline memory-network topologies.

Every topology — String Figure included — exposes the same minimal
surface to the analysis and simulation layers:

* ``num_nodes`` / ``active_nodes`` / ``is_active``: the node set;
* ``neighbors(v)``: active adjacency;
* ``graph()``: a NetworkX view for path/bisection analysis;
* ``radix``: network ports per router (excluding the terminal port),
  the hardware-cost axis of the paper's Table II;
* ``make_policy()``: the routing scheme the paper pairs with the
  topology (Figure 8's "Routing Scheme" column).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import networkx as nx

from repro.network.policies import MinimalPolicy, RoutingPolicy

__all__ = ["BaseTopology"]


class BaseTopology(ABC):
    """A static baseline topology over ``num_nodes`` memory nodes."""

    name: str = "base"
    #: Whether the design can reconfigure (down-scale) a deployed network.
    reconfigurable: bool = False
    #: Whether router radix must grow with network scale (Table II).
    radix_scales_with_n: bool = False

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 2:
            raise ValueError(f"num_nodes must be >= 2, got {num_nodes}")
        self.num_nodes = num_nodes
        self._graph: nx.Graph | None = None

    # -- node set ------------------------------------------------------------

    @property
    def active_nodes(self) -> list[int]:
        """Baselines have no power gating: every node is active."""
        return list(range(self.num_nodes))

    def is_active(self, node: int) -> bool:
        return 0 <= node < self.num_nodes

    # -- structure -----------------------------------------------------------

    @abstractmethod
    def build_graph(self) -> nx.Graph:
        """Construct the interconnect graph (called once, then cached)."""

    def graph(self) -> nx.Graph:
        """The (cached) interconnect graph."""
        if self._graph is None:
            self._graph = self.build_graph()
        return self._graph

    def neighbors(self, node: int) -> list[int]:
        g = self.graph()
        if g.is_directed():
            return sorted(g.successors(node))
        return sorted(g.neighbors(node))

    @property
    def radix(self) -> int:
        """Maximum network ports used by any router."""
        g = self.graph()
        return max(dict(g.degree()).values())

    def link_channels(self, u: int, v: int) -> int:
        """Parallel physical channels per link (ODM overrides this)."""
        return 1

    # -- routing -----------------------------------------------------------------

    def make_policy(self, adaptive: bool = True) -> RoutingPolicy:
        """The routing scheme evaluated with this topology."""
        return MinimalPolicy(self.graph(), adaptive=adaptive)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(num_nodes={self.num_nodes})"
