"""Flattened butterfly baselines: FB and the partitioned AFB.

**FB** (Kim, Dally & Abts, ISCA 2007) arranges routers on an
``a x b`` grid and fully connects every row and every column, giving
``(a-1) + (b-1)`` network ports per router and at most two network
hops between any pair.  It achieves the best path lengths of all
evaluated designs at the price of high-radix routers whose port count
keeps growing with network scale (Table II, Figure 9a).

**AFB** is the paper's *adapted* flattened butterfly: a partitioned FB
(after Slim NoC) with fewer links per router, used to match bisection
bandwidth fairly.  Our construction divides each row/column into
segments of ``segment`` routers: segments stay fully connected
internally and consecutive segments are bridged by a single gateway
link, cutting radix roughly from ``a + b - 2`` to
``2 (segment - 1) + 4`` while keeping path lengths low.
"""

from __future__ import annotations

import math

import networkx as nx

from repro.topologies.base import BaseTopology

__all__ = ["FlattenedButterflyTopology", "AdaptedFlattenedButterflyTopology"]


def _grid_dimensions(num_nodes: int) -> tuple[int, int]:
    best: tuple[int, int] | None = None
    for rows in range(int(math.isqrt(num_nodes)), 1, -1):
        if num_nodes % rows == 0:
            best = (rows, num_nodes // rows)
            break
    if best is None:
        raise ValueError(
            f"flattened butterfly does not support {num_nodes} nodes "
            "(prime count; see paper Figure 8)"
        )
    return best


class FlattenedButterflyTopology(BaseTopology):
    """2D flattened butterfly with minimal + adaptive routing."""

    name = "FB"
    reconfigurable = False
    radix_scales_with_n = True

    def __init__(self, num_nodes: int) -> None:
        super().__init__(num_nodes)
        self.rows, self.cols = _grid_dimensions(num_nodes)

    def coordinates_of(self, node: int) -> tuple[int, int]:
        return divmod(node, self.cols)

    def node_at(self, row: int, col: int) -> int:
        return row * self.cols + col

    def build_graph(self) -> nx.Graph:
        g = nx.Graph()
        g.add_nodes_from(range(self.num_nodes))
        for r in range(self.rows):
            row_nodes = [self.node_at(r, c) for c in range(self.cols)]
            for i, u in enumerate(row_nodes):
                for v in row_nodes[i + 1 :]:
                    g.add_edge(u, v)
        for c in range(self.cols):
            col_nodes = [self.node_at(r, c) for r in range(self.rows)]
            for i, u in enumerate(col_nodes):
                for v in col_nodes[i + 1 :]:
                    g.add_edge(u, v)
        return g


class AdaptedFlattenedButterflyTopology(FlattenedButterflyTopology):
    """AFB: partitioned flattened butterfly with reduced radix.

    Parameters
    ----------
    num_nodes:
        Node count (must factor into a grid).
    segment:
        Routers per fully-connected row/column segment.  ``None``
        selects ~sqrt of the row length, which lands the radix near the
        paper's Figure 8 values (e.g. 13 at 256 nodes vs FB's 20+).
    """

    name = "AFB"

    def __init__(self, num_nodes: int, segment: int | None = None) -> None:
        super().__init__(num_nodes)
        if segment is None:
            segment = max(2, round(math.sqrt(max(self.rows, self.cols))) + 2)
        if segment < 2:
            raise ValueError(f"segment must be >= 2, got {segment}")
        self.segment = segment

    def _partition_line(self, line: list[int], g: nx.Graph) -> None:
        """Fully connect segments; bridge consecutive segments (+wrap)."""
        s = self.segment
        chunks = [line[i : i + s] for i in range(0, len(line), s)]
        for chunk in chunks:
            for i, u in enumerate(chunk):
                for v in chunk[i + 1 :]:
                    g.add_edge(u, v)
        if len(chunks) > 1:
            for i, chunk in enumerate(chunks):
                nxt = chunks[(i + 1) % len(chunks)]
                g.add_edge(chunk[-1], nxt[0])

    def build_graph(self) -> nx.Graph:
        g = nx.Graph()
        g.add_nodes_from(range(self.num_nodes))
        for r in range(self.rows):
            self._partition_line([self.node_at(r, c) for c in range(self.cols)], g)
        for c in range(self.cols):
            self._partition_line([self.node_at(r, c) for r in range(self.rows)], g)
        return g
