"""Baseline topologies evaluated against String Figure (paper Figure 8)."""

from repro.topologies.base import BaseTopology
from repro.topologies.flattened_butterfly import (
    AdaptedFlattenedButterflyTopology,
    FlattenedButterflyTopology,
)
from repro.topologies.jellyfish import JellyfishTopology
from repro.topologies.mesh import MeshTopology, OptimizedMeshTopology, mesh_dimensions
from repro.topologies.registry import (
    TOPOLOGY_NAMES,
    figure8_ports,
    make_policy,
    make_topology,
)

__all__ = [
    "AdaptedFlattenedButterflyTopology",
    "BaseTopology",
    "FlattenedButterflyTopology",
    "JellyfishTopology",
    "MeshTopology",
    "OptimizedMeshTopology",
    "TOPOLOGY_NAMES",
    "figure8_ports",
    "make_policy",
    "make_topology",
    "mesh_dimensions",
]
