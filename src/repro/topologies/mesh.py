"""Distributed mesh baselines: DM and the bandwidth-matched ODM.

The paper's strongest traditional-memory-network baseline is the
distributed mesh of Kim et al. (PACT 2013), evaluated as:

* **DM** — a plain 2D mesh over an ``a x b`` grid of memory nodes with
  dimension-order (XY) primary routing plus minimal-adaptive diversion
  ("greedy + adaptive" in Figure 8).  Router radix stays at 4, but hop
  count grows with ``(a + b) / 3``.
* **ODM** — the *optimized* DM, identical topology but with every link
  widened (parallel channels) to match String Figure's empirical
  bisection bandwidth at the same node count, which is how the paper
  makes the saturation comparison fair.

Mesh requires ``N`` to factor into a near-square grid; prime node
counts are unsupported (the "N" entries of Figure 8).
"""

from __future__ import annotations

import math

import networkx as nx

from repro.network.policies import MinimalPolicy, RoutingPolicy
from repro.topologies.base import BaseTopology

__all__ = ["MeshTopology", "OptimizedMeshTopology", "mesh_dimensions"]


def mesh_dimensions(num_nodes: int) -> tuple[int, int]:
    """Most-square ``(rows, cols)`` factorization of *num_nodes*.

    Raises ``ValueError`` for node counts with no non-trivial
    factorization (primes) — those network scales are unsupported by
    mesh, mirroring Figure 8.
    """
    best: tuple[int, int] | None = None
    for rows in range(int(math.isqrt(num_nodes)), 1, -1):
        if num_nodes % rows == 0:
            best = (rows, num_nodes // rows)
            break
    if best is None:
        raise ValueError(
            f"mesh does not support {num_nodes} nodes (prime count; "
            "see paper Figure 8)"
        )
    return best


class MeshTopology(BaseTopology):
    """2D distributed mesh (DM) with XY + minimal-adaptive routing."""

    name = "DM"
    reconfigurable = False
    radix_scales_with_n = False

    def __init__(self, num_nodes: int) -> None:
        super().__init__(num_nodes)
        self.rows, self.cols = mesh_dimensions(num_nodes)

    def coordinates_of(self, node: int) -> tuple[int, int]:
        """Grid (row, col) of a node id."""
        return divmod(node, self.cols)

    def node_at(self, row: int, col: int) -> int:
        return row * self.cols + col

    def build_graph(self) -> nx.Graph:
        g = nx.Graph()
        g.add_nodes_from(range(self.num_nodes))
        for node in range(self.num_nodes):
            r, c = self.coordinates_of(node)
            if c + 1 < self.cols:
                g.add_edge(node, self.node_at(r, c + 1))
            if r + 1 < self.rows:
                g.add_edge(node, self.node_at(r + 1, c))
        return g

    def _xy_preference(self, current: int, dst: int, candidate: int) -> float:
        """Rank minimal candidates X-first (dimension-order primary)."""
        cr, cc = self.coordinates_of(current)
        kr, kc = self.coordinates_of(candidate)
        moves_x = kc != cc
        dr, dc = self.coordinates_of(dst)
        if dc != cc:  # X offset remains: XY prefers the X move
            return 0.0 if moves_x else 1.0
        return 0.0 if not moves_x else 1.0

    def make_policy(self, adaptive: bool = True) -> RoutingPolicy:
        return MinimalPolicy(
            self.graph(), adaptive=adaptive, preference=self._xy_preference
        )

    def average_hops_analytic(self) -> float:
        """Closed-form mean XY hop count (~(rows + cols)/3 for large grids)."""
        rows, cols = self.rows, self.cols
        # Mean |Δ| of two uniform ints in [0, k): (k^2 - 1) / (3k)
        ex = (cols * cols - 1) / (3 * cols)
        ey = (rows * rows - 1) / (3 * rows)
        return ex + ey


class OptimizedMeshTopology(MeshTopology):
    """ODM: mesh with links widened to match String Figure's bisection.

    ``channels`` is the per-link parallel-channel count.  Use
    :func:`repro.analysis.bisection.matched_channels` to derive it from
    empirical bisection bandwidths, or keep the default factor of 2
    (adequate at the scales the paper sweeps; the bench records the
    factor used).
    """

    name = "ODM"

    def __init__(self, num_nodes: int, channels: int = 2) -> None:
        super().__init__(num_nodes)
        if channels < 1:
            raise ValueError(f"channels must be >= 1, got {channels}")
        self.channels = channels

    def link_channels(self, u: int, v: int) -> int:
        return self.channels
