"""Jellyfish baseline: uniform-random regular graphs (NSDI 2012).

Jellyfish samples a topology uniformly from the space of r-regular
graphs and achieves near-optimal throughput and path lengths — the
paper uses it in Figure 5 as the sufficiently-uniform-random-graph
(SURG) gold standard for shortest path length.  Its drawback in a
memory network is routing state: it needs k-shortest-path forwarding
tables whose size grows superlinearly with the network, which is why
String Figure exists.  We model its routing as minimal-adaptive over
the random graph (the latency-relevant behaviour of k-shortest-path
ECMP), and additionally expose k-shortest-path table sizes for the
routing-state comparison.
"""

from __future__ import annotations

import networkx as nx

from repro.topologies.base import BaseTopology

__all__ = ["JellyfishTopology"]


class JellyfishTopology(BaseTopology):
    """Random r-regular graph with minimal (k-shortest-path-like) routing."""

    name = "Jellyfish"
    reconfigurable = False
    radix_scales_with_n = False

    def __init__(self, num_nodes: int, degree: int = 4, seed: int | None = 0) -> None:
        super().__init__(num_nodes)
        if degree < 2:
            raise ValueError(f"degree must be >= 2, got {degree}")
        if degree >= num_nodes:
            raise ValueError("degree must be below num_nodes")
        if (num_nodes * degree) % 2:
            raise ValueError(
                f"no {degree}-regular graph exists on {num_nodes} nodes "
                "(odd degree sum)"
            )
        self.degree = degree
        self.seed = seed

    def build_graph(self) -> nx.Graph:
        # Retry with shifted seeds until the sampled regular graph is
        # connected (disconnection is rare for r >= 3 but possible).
        for attempt in range(64):
            seed = None if self.seed is None else self.seed + attempt
            g = nx.random_regular_graph(self.degree, self.num_nodes, seed=seed)
            if nx.is_connected(g):
                return g
        raise RuntimeError(
            f"failed to sample a connected {self.degree}-regular graph "
            f"on {self.num_nodes} nodes"
        )

    def k_shortest_path_state(self, k: int = 4, sample: int = 32) -> float:
        """Estimated per-router k-shortest-path entries (routing state).

        Jellyfish forwarding stores, per destination, the next hops of
        k shortest paths; state per router is ``O(k N)`` entries and
        the total grows superlinearly.  Returns the mean number of
        table entries per router, estimated over *sample* destinations.
        """
        g = self.graph()
        import itertools

        from repro.utils.rng import derive_rng

        rng = derive_rng(self.seed, "ksp-sample")
        nodes = list(g.nodes())
        dsts = rng.sample(nodes, min(sample, len(nodes)))
        total_entries = 0
        for dst in dsts:
            for src in nodes:
                if src == dst:
                    continue
                paths = itertools.islice(
                    nx.shortest_simple_paths(g, src, dst), k
                )
                next_hops = {p[1] for p in paths}
                total_entries += len(next_hops)
        per_router_per_dst = total_entries / (len(dsts) * (len(nodes) - 1))
        return per_router_per_dst * (len(nodes) - 1)
