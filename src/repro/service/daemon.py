"""The asyncio ingestion frontier: newline-JSON sockets over the core.

:class:`FabricDaemon` owns a :class:`~repro.service.core.FabricService`
and a TCP server speaking one JSON object per line (so ``nc`` and shell
scripts work).  Concurrency is cooperative, not parallel: connection
handlers only *enqueue* parsed messages into an inbox; a single pump
coroutine alternately (1) applies every queued message at the current
simulated-cycle boundary and (2) advances the event loop by a fixed
quantum.  Handlers and the pump interleave on one asyncio loop, so the
core never sees a submit mid-run — exactly the sequencing invariant
that makes a captured log replay bit-identically.

Simulated time is therefore *ingestion-driven*: it advances only while
requests are outstanding or queued input exists, and stalls (cheaply,
on an ``asyncio.Event``) when the fabric is quiescent.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from repro.service.core import FabricService, ServiceRequest

__all__ = ["FabricDaemon"]


class FabricDaemon:
    """Serve one resident :class:`FabricService` over newline-JSON TCP.

    The wire protocol (full reference in ``docs/SERVICE.md``): data
    verbs ``read``/``write`` complete asynchronously — the response
    line carries the request's ``id`` and end-to-end simulated latency;
    ``hello`` names the connection's tenant; control verbs ``stats``,
    ``scale``, ``fault``, ``drain``, ``shutdown`` answer in arrival
    order at the next quantum boundary.  The read-only ``metrics``
    verb returns the observability snapshot plus a Prometheus text
    exposition (probes are installed lazily on the first scrape).
    """

    def __init__(
        self,
        service: FabricService,
        host: str = "127.0.0.1",
        port: int = 0,
        quantum: int = 64,
        slow_log_stream=None,
    ) -> None:
        if quantum < 1:
            raise ValueError(f"quantum must be >= 1, got {quantum}")
        self.service = service
        if slow_log_stream is not None:
            # Stream each slow-request record (identity + component
            # breakdown) as one JSON line the moment it is logged —
            # the ``repro serve --slow-log`` operator feed.  The ring
            # in the service keeps the recent history either way.
            def emit(record, stream=slow_log_stream):
                stream.write(json.dumps(record, sort_keys=True) + "\n")
                stream.flush()

            service.on_slow = emit
        self.host = host
        self.port = port
        self.quantum = quantum
        self._inbox: list[tuple[str, Any, Any]] = []
        self._wake = asyncio.Event()
        self._stopped = asyncio.Event()
        self._stopping = False
        self._server: asyncio.AbstractServer | None = None
        self._pump_task: asyncio.Task | None = None
        self._next_client = 0
        self._conn_tasks: set[asyncio.Task] = set()
        self._conn_writers: set[asyncio.StreamWriter] = set()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind the server and start the pump; returns (host, port)."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        self._pump_task = asyncio.get_running_loop().create_task(self._pump())
        return self.host, self.port

    async def wait_stopped(self) -> None:
        """Block until a ``shutdown`` verb (or :meth:`stop`) completes."""
        await self._stopped.wait()

    async def stop(self) -> None:
        """Drain the fabric and tear the server down."""
        if self._stopping:
            await self._stopped.wait()
            return
        self._stopping = True
        self._wake.set()
        if self._pump_task is not None:
            await self._pump_task
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._stopped.set()

    # -- connection handling -------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        tenant = f"client-{self._next_client}"
        self._next_client += 1
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._conn_writers.add(writer)
        try:
            while not self._stopping:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    message = json.loads(line)
                    if not isinstance(message, dict):
                        raise ValueError("message must be a JSON object")
                except ValueError as exc:
                    self._reply(writer, {
                        "ok": False, "error": f"bad json: {exc}",
                    })
                    continue
                verb = message.get("op")
                if verb == "hello":
                    tenant = str(message.get("tenant", tenant))
                    self._reply(writer, {"ok": True, "tenant": tenant})
                elif verb == "stats":
                    # Read-only; safe between awaits and never logged.
                    self._reply(
                        writer,
                        {**self.service.snapshot(), "id": message.get("id")},
                    )
                elif verb == "metrics":
                    # Read-only like ``stats``: rendered between
                    # awaits, never logged, never touches the request
                    # path.  First scrape installs the probes.
                    self._reply(writer, self._metrics_reply(message))
                elif verb in ("read", "write"):
                    self._enqueue("request", (tenant, message), writer)
                elif verb in ("scale", "fault", "drain", "shutdown"):
                    self._enqueue("control", message, writer)
                else:
                    self._reply(writer, {
                        "ok": False, "id": message.get("id"),
                        "error": f"unknown op {verb!r}",
                    })
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            self._conn_writers.discard(writer)
            try:
                writer.close()
            except Exception:
                pass

    def _metrics_reply(self, message: dict[str, Any]) -> dict[str, Any]:
        """The ``metrics`` verb body: snapshot + Prometheus exposition.

        Probes are installed on the first scrape — installation only
        attaches observers (no events, no sequence numbers), so doing
        it mid-run is safe and keeps unscraped daemons entirely
        uninstrumented.  Event-type counters start from the install
        point; pull metrics (delivered, shed, tenant latency) reflect
        the full run regardless.
        """
        service = self.service
        probes = service.probes
        if probes is None:
            probes = service.install_probes()
        return {
            "ok": True,
            "id": message.get("id"),
            "now": service.sim.now,
            "metrics": probes.registry.snapshot(),
            "prometheus": probes.registry.to_prometheus(),
        }

    def _enqueue(self, kind: str, payload: Any, writer) -> None:
        self._inbox.append((kind, payload, writer))
        self._wake.set()

    def _reply(self, writer, payload: dict[str, Any]) -> None:
        if writer.is_closing():
            return
        try:
            writer.write(json.dumps(payload, sort_keys=True).encode() + b"\n")
        except (ConnectionResetError, RuntimeError):
            pass

    # -- the pump ------------------------------------------------------------

    def _idle(self) -> bool:
        service = self.service
        return (
            not self._inbox
            and service.outstanding == 0
            and not service._queue
            and service.sim.pending_events == 0
        )

    async def _pump(self) -> None:
        """Single writer of simulated time: ingest, advance, yield."""
        service = self.service
        while not self._stopping:
            if self._idle():
                self._wake.clear()
                if self._idle():  # re-check after clear (enqueue races)
                    await self._wake.wait()
                continue
            batch, self._inbox = self._inbox, []
            stop_after = False
            for kind, payload, writer in batch:
                if kind == "request":
                    self._apply_request(payload, writer)
                else:
                    if self._apply_control(payload, writer):
                        stop_after = True
            if stop_after:
                self._stopping = True
                break
            service.advance(self.quantum)
            # Yield so handlers can read more client lines before the
            # next quantum.
            await asyncio.sleep(0)
        # Reached on shutdown-verb exit or external stop(): tear the
        # server down, EOF every open connection so its handler exits
        # on its own (no task cancellation, which Python 3.11 streams
        # report noisily at loop close), and wait for the handlers.
        if self._server is not None:
            self._server.close()
        for writer in list(self._conn_writers):
            try:
                writer.close()
            except Exception:
                pass
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._stopped.set()

    def _apply_request(self, payload: tuple[str, dict], writer) -> None:
        tenant, message = payload

        def on_done(req: ServiceRequest, w=writer, mid=message.get("id")):
            """Write the terminal-state response line back to the client."""
            body = req.to_dict()
            body["id"] = mid
            body["ok"] = req.status == "done"
            self._reply(w, body)

        self.service.submit(
            tenant,
            message["op"],
            int(message.get("page", -1)),
            offset=int(message.get("offset", 0)),
            size=message.get("size"),
            req_id=message.get("id"),
            on_done=on_done,
        )

    def _apply_control(self, message: dict, writer) -> bool:
        """Apply one control verb; returns True when it was ``shutdown``."""
        verb = message["op"]
        mid = message.get("id")
        if verb == "scale":
            direction = message.get("direction", "down")
            if direction == "down":
                result = self.service.scale_down(
                    fraction=message.get("fraction"),
                    count=message.get("count"),
                    nodes=message.get("nodes"),
                )
            else:
                result = self.service.scale_up(nodes=message.get("nodes"))
            self._reply(writer, {**result, "id": mid})
            return False
        if verb == "fault":
            result = self.service.inject_fault(
                message.get("kind", "node_crash"),
                node=message.get("node"),
                link=message.get("link"),
                duration=int(message.get("duration", 0)),
            )
            self._reply(writer, {**result, "id": mid})
            return False
        if verb == "drain":
            result = self.service.drain()
            self._reply(writer, {**result, "id": mid})
            return False
        # shutdown: drain first so conservation is checked exactly once,
        # then report and stop the daemon.
        result = self.service.drain()
        self._reply(writer, {**result, "verb": "shutdown", "id": mid})
        return True
