"""End-to-end service self-test: daemon + real sockets + live verbs.

``repro serve --selftest`` runs this: boot a resident SF fabric behind
a :class:`~repro.service.daemon.FabricDaemon` on an ephemeral port,
attack it with N concurrent closed-loop socket clients, issue scale and
fault verbs mid-traffic from a controller connection, then drain,
shut down, and verify every property the service mode promises:

* conservation at drain (``sent == delivered + dropped``, page
  directory intact, every request terminal);
* admission control engaged under the induced overload (some requests
  queued or shed);
* zero pages lost across the scale-down/scale-up cycle;
* the captured request log replays **bit-identically** (equal
  :meth:`~repro.service.core.FabricService.digest`).

Returns a process exit code (0 = all checks passed), printing a
per-tenant accounting table and the check list on the way out.
"""

from __future__ import annotations

import asyncio
import json
import random
from typing import Any

from repro.service.core import FabricService
from repro.service.daemon import FabricDaemon
from repro.service.log import RequestLog, replay

__all__ = ["run_selftest"]


async def _client(
    host: str,
    port: int,
    idx: int,
    requests: int,
    window: int,
    footprint_pages: int,
    results: list[dict[str, Any]],
) -> None:
    """One closed-loop tenant: keep *window* requests in flight."""
    reader, writer = await asyncio.open_connection(host, port)
    tenant = f"tenant-{idx:02d}"
    writer.write(
        json.dumps({"op": "hello", "tenant": tenant}).encode() + b"\n"
    )
    await writer.drain()
    await reader.readline()  # hello ack
    rng = random.Random(10_000 + idx)
    sent = done = 0

    async def issue() -> None:
        """Send one randomized read/write request line."""
        nonlocal sent
        op = "read" if rng.random() < 0.7 else "write"
        message = {
            "op": op,
            "page": rng.randrange(footprint_pages),
            "size": 64,
            "id": f"{tenant}/{sent}",
        }
        writer.write(json.dumps(message).encode() + b"\n")
        await writer.drain()
        sent += 1

    while sent < min(window, requests):
        await issue()
    while done < requests:
        line = await reader.readline()
        if not line:
            break
        results.append(json.loads(line))
        done += 1
        if sent < requests:
            await issue()
    writer.close()


async def _controller(host: str, port: int) -> list[dict[str, Any]]:
    """Mid-traffic operator: scale down, flap a link, scale back up."""
    replies: list[dict[str, Any]] = []
    reader, writer = await asyncio.open_connection(host, port)

    async def verb(message: dict[str, Any]) -> None:
        """Issue one control verb and record its acknowledgement."""
        writer.write(json.dumps(message).encode() + b"\n")
        await writer.drain()
        replies.append(json.loads(await reader.readline()))

    await asyncio.sleep(0.15)
    await verb({"op": "scale", "direction": "down", "count": 2, "id": "c1"})
    await asyncio.sleep(0.15)
    # No explicit link: the seeded injector picks an eligible victim
    # (never a guaranteed-delivery ring wire), identically on replay.
    await verb({
        "op": "fault", "kind": "link_flap", "duration": 400, "id": "c2",
    })
    await asyncio.sleep(0.15)
    await verb({"op": "scale", "direction": "up", "id": "c3"})
    writer.close()
    return replies


async def _run(
    nodes: int,
    clients: int,
    requests: int,
    window: int,
    quantum: int,
    capture_path: str | None,
    verify_replay: bool,
) -> tuple[int, list[str]]:
    footprint_pages = 256
    service = FabricService(
        nodes=nodes,
        footprint_pages=footprint_pages,
        # Tight budgets on purpose: the selftest must observe admission
        # control engaging, so the 32×window offered load has to exceed
        # the in-flight budget.
        max_outstanding=max(8, clients * window // 6),
        node_watermark=4,
        queue_depth=clients * window,
    )
    daemon = FabricDaemon(service, quantum=quantum)
    host, port = await daemon.start()
    print(
        f"selftest: fabric SF N={nodes} resident on {host}:{port}; "
        f"{clients} clients x {requests} requests (window {window})"
    )

    responses: list[dict[str, Any]] = []
    client_tasks = [
        asyncio.create_task(
            _client(host, port, i, requests, window, footprint_pages,
                    responses)
        )
        for i in range(clients)
    ]
    control_task = asyncio.create_task(_controller(host, port))
    await asyncio.gather(*client_tasks)
    control_replies = await control_task

    # Operator epilogue: drain (conservation report), then shutdown.
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(json.dumps({"op": "drain", "id": "final"}).encode() + b"\n")
    await writer.drain()
    drain_report = json.loads(await reader.readline())
    writer.write(json.dumps({"op": "shutdown"}).encode() + b"\n")
    await writer.drain()
    await reader.readline()
    writer.close()
    await daemon.wait_stopped()

    snapshot = service.snapshot()
    failures: list[str] = []

    def check(name: str, ok: bool, detail: str = "") -> None:
        """Print one pass/fail line and record failures."""
        print(f"  [{'ok' if ok else 'FAIL'}] {name}" + (f" — {detail}" if detail else ""))
        if not ok:
            failures.append(name)

    print("\nper-tenant accounting:")
    print(
        f"  {'tenant':<12} {'sub':>5} {'done':>5} {'shed':>5} "
        f"{'queued':>6} {'p50':>8} {'p99':>8}"
    )
    for name, ts in snapshot["tenants"].items():
        print(
            f"  {name:<12} {ts['submitted']:>5} {ts['completed']:>5} "
            f"{ts['shed']:>5} {ts['queued']:>6} "
            f"{ts['p50']:>8.1f} {ts['p99']:>8.1f}"
        )
    print()

    expected = clients * requests
    check(
        "all client responses received",
        len(responses) == expected,
        f"{len(responses)}/{expected}",
    )
    check(
        "conservation at drain (packets, pages, requests)",
        bool(drain_report.get("all_conserved")),
        f"sent={drain_report.get('sent')} "
        f"delivered={drain_report.get('delivered')} "
        f"dropped={drain_report.get('dropped')}",
    )
    engaged = snapshot["queued_total"] + snapshot["shed"]
    check(
        "admission control engaged under overload",
        engaged > 0,
        f"queued={snapshot['queued_total']} shed={snapshot['shed']}",
    )
    check(
        "zero pages lost across scale cycle",
        snapshot["pages_lost"] == 0,
        f"migrations={snapshot['migrations']}",
    )
    check(
        "fault fired against live traffic",
        snapshot["faults"] >= 1,
        f"faults={snapshot['faults']}",
    )
    check(
        "control verbs acknowledged",
        all(r.get("ok") for r in control_replies),
        f"{len(control_replies)} replies",
    )

    log = RequestLog.capture(service)
    if capture_path:
        log.save(capture_path)
        print(f"  captured request log -> {capture_path}")
    if verify_replay:
        replayed = replay(log)
        check(
            "captured log replays bit-identically",
            replayed.digest() == service.digest(),
            f"{len(log.entries)} log entries",
        )
    return (1 if failures else 0), failures


def run_selftest(
    nodes: int = 144,
    clients: int = 32,
    requests: int = 24,
    window: int = 4,
    quantum: int = 64,
    capture_path: str | None = None,
    verify_replay: bool = True,
) -> int:
    """Run the full socket-level self-test; returns a process exit code."""
    code, failures = asyncio.run(
        _run(nodes, clients, requests, window, quantum, capture_path,
             verify_replay)
    )
    if failures:
        print(f"selftest FAILED: {', '.join(failures)}")
    else:
        print("selftest passed: all checks green")
    return code
