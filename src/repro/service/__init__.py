"""Memory-fabric service mode: the simulator as a long-running daemon.

This package turns the batch simulator into a *resident* system: one
:class:`~repro.service.core.FabricService` keeps a
:class:`~repro.network.simulator.NetworkSimulator`, an
:class:`~repro.memory.address.AddressMapper`, and a
:class:`~repro.memory.migration.PageDirectory` alive while many
concurrent client streams feed read/write page requests into the
deterministic event loop.  The split is strict:

* **Deterministic core** (:mod:`repro.service.core`) — wall-clock-free.
  Every externally-driven action (a request submit, a control verb)
  enters through a single sequenced injection queue at an explicit
  simulated time, so the core's entire evolution is a pure function of
  the ordered request log.
* **Ingestion frontier** (:mod:`repro.service.daemon`) — an asyncio
  newline-JSON socket server that stamps client traffic into the core
  at quantum boundaries and pumps simulated time forward.  Only the
  frontier touches wall-clock concerns (sockets, scheduling).

Because the core is replayable, a captured request log
(:mod:`repro.service.log`) re-runs **bit-identically**: the replay
engine advances the simulator to each recorded ingest cycle and
re-submits in recorded order, reproducing every per-request latency and
every :class:`~repro.network.stats.SimStats` counter.  This is the
property the service tests and ``repro serve --selftest`` assert.
"""

from repro.service.core import FabricService, ServiceRequest, TenantStats
from repro.service.log import RequestLog, drive, replay

__all__ = [
    "FabricService",
    "ServiceRequest",
    "TenantStats",
    "RequestLog",
    "drive",
    "replay",
]
